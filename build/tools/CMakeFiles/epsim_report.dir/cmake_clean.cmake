file(REMOVE_RECURSE
  "CMakeFiles/epsim_report.dir/epsim_report.cpp.o"
  "CMakeFiles/epsim_report.dir/epsim_report.cpp.o.d"
  "epsim_report"
  "epsim_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epsim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
