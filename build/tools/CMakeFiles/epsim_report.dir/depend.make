# Empty dependencies file for epsim_report.
# This may be replaced when dependencies are built.
