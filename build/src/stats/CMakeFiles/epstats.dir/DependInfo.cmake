
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chisq.cpp" "src/stats/CMakeFiles/epstats.dir/chisq.cpp.o" "gcc" "src/stats/CMakeFiles/epstats.dir/chisq.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/epstats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/epstats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/epstats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/epstats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/epstats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/epstats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "src/stats/CMakeFiles/epstats.dir/ttest.cpp.o" "gcc" "src/stats/CMakeFiles/epstats.dir/ttest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
