file(REMOVE_RECURSE
  "libepstats.a"
)
