file(REMOVE_RECURSE
  "CMakeFiles/epstats.dir/chisq.cpp.o"
  "CMakeFiles/epstats.dir/chisq.cpp.o.d"
  "CMakeFiles/epstats.dir/descriptive.cpp.o"
  "CMakeFiles/epstats.dir/descriptive.cpp.o.d"
  "CMakeFiles/epstats.dir/distributions.cpp.o"
  "CMakeFiles/epstats.dir/distributions.cpp.o.d"
  "CMakeFiles/epstats.dir/regression.cpp.o"
  "CMakeFiles/epstats.dir/regression.cpp.o.d"
  "CMakeFiles/epstats.dir/ttest.cpp.o"
  "CMakeFiles/epstats.dir/ttest.cpp.o.d"
  "libepstats.a"
  "libepstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
