# Empty dependencies file for epstats.
# This may be replaced when dependencies are built.
