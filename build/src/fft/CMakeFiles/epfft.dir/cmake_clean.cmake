file(REMOVE_RECURSE
  "CMakeFiles/epfft.dir/fft.cpp.o"
  "CMakeFiles/epfft.dir/fft.cpp.o.d"
  "libepfft.a"
  "libepfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
