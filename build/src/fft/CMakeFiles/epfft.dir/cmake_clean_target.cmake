file(REMOVE_RECURSE
  "libepfft.a"
)
