# Empty compiler generated dependencies file for epfft.
# This may be replaced when dependencies are built.
