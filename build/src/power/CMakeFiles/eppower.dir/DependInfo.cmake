
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/measurer.cpp" "src/power/CMakeFiles/eppower.dir/measurer.cpp.o" "gcc" "src/power/CMakeFiles/eppower.dir/measurer.cpp.o.d"
  "/root/repo/src/power/meter.cpp" "src/power/CMakeFiles/eppower.dir/meter.cpp.o" "gcc" "src/power/CMakeFiles/eppower.dir/meter.cpp.o.d"
  "/root/repo/src/power/profile.cpp" "src/power/CMakeFiles/eppower.dir/profile.cpp.o" "gcc" "src/power/CMakeFiles/eppower.dir/profile.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/eppower.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/eppower.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
