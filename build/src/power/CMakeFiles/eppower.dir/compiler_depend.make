# Empty compiler generated dependencies file for eppower.
# This may be replaced when dependencies are built.
