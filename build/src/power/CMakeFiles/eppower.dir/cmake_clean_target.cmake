file(REMOVE_RECURSE
  "libeppower.a"
)
