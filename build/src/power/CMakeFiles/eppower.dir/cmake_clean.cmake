file(REMOVE_RECURSE
  "CMakeFiles/eppower.dir/measurer.cpp.o"
  "CMakeFiles/eppower.dir/measurer.cpp.o.d"
  "CMakeFiles/eppower.dir/meter.cpp.o"
  "CMakeFiles/eppower.dir/meter.cpp.o.d"
  "CMakeFiles/eppower.dir/profile.cpp.o"
  "CMakeFiles/eppower.dir/profile.cpp.o.d"
  "CMakeFiles/eppower.dir/trace.cpp.o"
  "CMakeFiles/eppower.dir/trace.cpp.o.d"
  "libeppower.a"
  "libeppower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
