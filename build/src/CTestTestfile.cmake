# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("pareto")
subdirs("power")
subdirs("hw")
subdirs("cudasim")
subdirs("blas")
subdirs("fft")
subdirs("partition")
subdirs("dvfs")
subdirs("apps")
subdirs("energymodel")
subdirs("core")
