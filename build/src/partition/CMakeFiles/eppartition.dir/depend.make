# Empty dependencies file for eppartition.
# This may be replaced when dependencies are built.
