file(REMOVE_RECURSE
  "CMakeFiles/eppartition.dir/partitioner.cpp.o"
  "CMakeFiles/eppartition.dir/partitioner.cpp.o.d"
  "CMakeFiles/eppartition.dir/profile.cpp.o"
  "CMakeFiles/eppartition.dir/profile.cpp.o.d"
  "libeppartition.a"
  "libeppartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
