file(REMOVE_RECURSE
  "libeppartition.a"
)
