
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energymodel/additivity.cpp" "src/energymodel/CMakeFiles/epmodel.dir/additivity.cpp.o" "gcc" "src/energymodel/CMakeFiles/epmodel.dir/additivity.cpp.o.d"
  "/root/repo/src/energymodel/linear_model.cpp" "src/energymodel/CMakeFiles/epmodel.dir/linear_model.cpp.o" "gcc" "src/energymodel/CMakeFiles/epmodel.dir/linear_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ephw.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
