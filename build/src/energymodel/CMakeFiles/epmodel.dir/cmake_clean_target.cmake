file(REMOVE_RECURSE
  "libepmodel.a"
)
