# Empty compiler generated dependencies file for epmodel.
# This may be replaced when dependencies are built.
