file(REMOVE_RECURSE
  "CMakeFiles/epmodel.dir/additivity.cpp.o"
  "CMakeFiles/epmodel.dir/additivity.cpp.o.d"
  "CMakeFiles/epmodel.dir/linear_model.cpp.o"
  "CMakeFiles/epmodel.dir/linear_model.cpp.o.d"
  "libepmodel.a"
  "libepmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
