file(REMOVE_RECURSE
  "libepdvfs.a"
)
