# Empty compiler generated dependencies file for epdvfs.
# This may be replaced when dependencies are built.
