file(REMOVE_RECURSE
  "CMakeFiles/epdvfs.dir/governor.cpp.o"
  "CMakeFiles/epdvfs.dir/governor.cpp.o.d"
  "CMakeFiles/epdvfs.dir/optimize.cpp.o"
  "CMakeFiles/epdvfs.dir/optimize.cpp.o.d"
  "CMakeFiles/epdvfs.dir/processor.cpp.o"
  "CMakeFiles/epdvfs.dir/processor.cpp.o.d"
  "CMakeFiles/epdvfs.dir/pstate.cpp.o"
  "CMakeFiles/epdvfs.dir/pstate.cpp.o.d"
  "libepdvfs.a"
  "libepdvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epdvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
