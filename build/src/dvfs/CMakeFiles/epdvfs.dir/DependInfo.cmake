
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/governor.cpp" "src/dvfs/CMakeFiles/epdvfs.dir/governor.cpp.o" "gcc" "src/dvfs/CMakeFiles/epdvfs.dir/governor.cpp.o.d"
  "/root/repo/src/dvfs/optimize.cpp" "src/dvfs/CMakeFiles/epdvfs.dir/optimize.cpp.o" "gcc" "src/dvfs/CMakeFiles/epdvfs.dir/optimize.cpp.o.d"
  "/root/repo/src/dvfs/processor.cpp" "src/dvfs/CMakeFiles/epdvfs.dir/processor.cpp.o" "gcc" "src/dvfs/CMakeFiles/epdvfs.dir/processor.cpp.o.d"
  "/root/repo/src/dvfs/pstate.cpp" "src/dvfs/CMakeFiles/epdvfs.dir/pstate.cpp.o" "gcc" "src/dvfs/CMakeFiles/epdvfs.dir/pstate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/eppareto.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ephw.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
