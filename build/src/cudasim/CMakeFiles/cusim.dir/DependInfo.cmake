
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudasim/cupti.cpp" "src/cudasim/CMakeFiles/cusim.dir/cupti.cpp.o" "gcc" "src/cudasim/CMakeFiles/cusim.dir/cupti.cpp.o.d"
  "/root/repo/src/cudasim/device.cpp" "src/cudasim/CMakeFiles/cusim.dir/device.cpp.o" "gcc" "src/cudasim/CMakeFiles/cusim.dir/device.cpp.o.d"
  "/root/repo/src/cudasim/executor.cpp" "src/cudasim/CMakeFiles/cusim.dir/executor.cpp.o" "gcc" "src/cudasim/CMakeFiles/cusim.dir/executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ephw.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
