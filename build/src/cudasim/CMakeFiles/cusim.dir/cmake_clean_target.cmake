file(REMOVE_RECURSE
  "libcusim.a"
)
