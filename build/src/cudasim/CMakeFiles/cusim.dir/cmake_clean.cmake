file(REMOVE_RECURSE
  "CMakeFiles/cusim.dir/cupti.cpp.o"
  "CMakeFiles/cusim.dir/cupti.cpp.o.d"
  "CMakeFiles/cusim.dir/device.cpp.o"
  "CMakeFiles/cusim.dir/device.cpp.o.d"
  "CMakeFiles/cusim.dir/executor.cpp.o"
  "CMakeFiles/cusim.dir/executor.cpp.o.d"
  "libcusim.a"
  "libcusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
