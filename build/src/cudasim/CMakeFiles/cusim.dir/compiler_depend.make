# Empty compiler generated dependencies file for cusim.
# This may be replaced when dependencies are built.
