file(REMOVE_RECURSE
  "CMakeFiles/epcommon.dir/mathutil.cpp.o"
  "CMakeFiles/epcommon.dir/mathutil.cpp.o.d"
  "CMakeFiles/epcommon.dir/rng.cpp.o"
  "CMakeFiles/epcommon.dir/rng.cpp.o.d"
  "CMakeFiles/epcommon.dir/table.cpp.o"
  "CMakeFiles/epcommon.dir/table.cpp.o.d"
  "CMakeFiles/epcommon.dir/thread_pool.cpp.o"
  "CMakeFiles/epcommon.dir/thread_pool.cpp.o.d"
  "libepcommon.a"
  "libepcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
