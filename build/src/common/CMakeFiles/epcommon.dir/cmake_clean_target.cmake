file(REMOVE_RECURSE
  "libepcommon.a"
)
