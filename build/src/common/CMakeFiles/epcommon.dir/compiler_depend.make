# Empty compiler generated dependencies file for epcommon.
# This may be replaced when dependencies are built.
