file(REMOVE_RECURSE
  "CMakeFiles/ephw.dir/cpu_model.cpp.o"
  "CMakeFiles/ephw.dir/cpu_model.cpp.o.d"
  "CMakeFiles/ephw.dir/gpu_model.cpp.o"
  "CMakeFiles/ephw.dir/gpu_model.cpp.o.d"
  "CMakeFiles/ephw.dir/spec.cpp.o"
  "CMakeFiles/ephw.dir/spec.cpp.o.d"
  "libephw.a"
  "libephw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ephw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
