
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu_model.cpp" "src/hw/CMakeFiles/ephw.dir/cpu_model.cpp.o" "gcc" "src/hw/CMakeFiles/ephw.dir/cpu_model.cpp.o.d"
  "/root/repo/src/hw/gpu_model.cpp" "src/hw/CMakeFiles/ephw.dir/gpu_model.cpp.o" "gcc" "src/hw/CMakeFiles/ephw.dir/gpu_model.cpp.o.d"
  "/root/repo/src/hw/spec.cpp" "src/hw/CMakeFiles/ephw.dir/spec.cpp.o" "gcc" "src/hw/CMakeFiles/ephw.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
