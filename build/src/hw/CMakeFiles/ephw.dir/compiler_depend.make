# Empty compiler generated dependencies file for ephw.
# This may be replaced when dependencies are built.
