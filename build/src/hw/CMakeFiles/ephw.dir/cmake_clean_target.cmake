file(REMOVE_RECURSE
  "libephw.a"
)
