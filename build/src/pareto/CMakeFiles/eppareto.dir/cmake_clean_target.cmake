file(REMOVE_RECURSE
  "libeppareto.a"
)
