file(REMOVE_RECURSE
  "CMakeFiles/eppareto.dir/front.cpp.o"
  "CMakeFiles/eppareto.dir/front.cpp.o.d"
  "CMakeFiles/eppareto.dir/tradeoff.cpp.o"
  "CMakeFiles/eppareto.dir/tradeoff.cpp.o.d"
  "libeppareto.a"
  "libeppareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
