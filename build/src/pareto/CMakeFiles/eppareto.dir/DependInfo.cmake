
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pareto/front.cpp" "src/pareto/CMakeFiles/eppareto.dir/front.cpp.o" "gcc" "src/pareto/CMakeFiles/eppareto.dir/front.cpp.o.d"
  "/root/repo/src/pareto/tradeoff.cpp" "src/pareto/CMakeFiles/eppareto.dir/tradeoff.cpp.o" "gcc" "src/pareto/CMakeFiles/eppareto.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
