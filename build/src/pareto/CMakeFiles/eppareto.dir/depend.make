# Empty dependencies file for eppareto.
# This may be replaced when dependencies are built.
