file(REMOVE_RECURSE
  "libepblas.a"
)
