file(REMOVE_RECURSE
  "CMakeFiles/epblas.dir/dgemm.cpp.o"
  "CMakeFiles/epblas.dir/dgemm.cpp.o.d"
  "libepblas.a"
  "libepblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
