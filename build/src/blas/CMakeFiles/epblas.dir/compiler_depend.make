# Empty compiler generated dependencies file for epblas.
# This may be replaced when dependencies are built.
