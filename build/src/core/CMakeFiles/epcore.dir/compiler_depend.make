# Empty compiler generated dependencies file for epcore.
# This may be replaced when dependencies are built.
