
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cpu_study.cpp" "src/core/CMakeFiles/epcore.dir/cpu_study.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/cpu_study.cpp.o.d"
  "/root/repo/src/core/definitions.cpp" "src/core/CMakeFiles/epcore.dir/definitions.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/definitions.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/epcore.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/metrics.cpp.o.d"
  "/root/repo/src/core/ncore.cpp" "src/core/CMakeFiles/epcore.dir/ncore.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/ncore.cpp.o.d"
  "/root/repo/src/core/serverpark.cpp" "src/core/CMakeFiles/epcore.dir/serverpark.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/serverpark.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/epcore.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/study.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/epcore.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/tuner.cpp.o.d"
  "/root/repo/src/core/twocore.cpp" "src/core/CMakeFiles/epcore.dir/twocore.cpp.o" "gcc" "src/core/CMakeFiles/epcore.dir/twocore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/eppareto.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/epapps.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ephw.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/epblas.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/epfft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
