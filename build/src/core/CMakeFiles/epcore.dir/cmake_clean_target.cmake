file(REMOVE_RECURSE
  "libepcore.a"
)
