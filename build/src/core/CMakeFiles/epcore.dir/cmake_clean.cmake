file(REMOVE_RECURSE
  "CMakeFiles/epcore.dir/cpu_study.cpp.o"
  "CMakeFiles/epcore.dir/cpu_study.cpp.o.d"
  "CMakeFiles/epcore.dir/definitions.cpp.o"
  "CMakeFiles/epcore.dir/definitions.cpp.o.d"
  "CMakeFiles/epcore.dir/metrics.cpp.o"
  "CMakeFiles/epcore.dir/metrics.cpp.o.d"
  "CMakeFiles/epcore.dir/ncore.cpp.o"
  "CMakeFiles/epcore.dir/ncore.cpp.o.d"
  "CMakeFiles/epcore.dir/serverpark.cpp.o"
  "CMakeFiles/epcore.dir/serverpark.cpp.o.d"
  "CMakeFiles/epcore.dir/study.cpp.o"
  "CMakeFiles/epcore.dir/study.cpp.o.d"
  "CMakeFiles/epcore.dir/tuner.cpp.o"
  "CMakeFiles/epcore.dir/tuner.cpp.o.d"
  "CMakeFiles/epcore.dir/twocore.cpp.o"
  "CMakeFiles/epcore.dir/twocore.cpp.o.d"
  "libepcore.a"
  "libepcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
