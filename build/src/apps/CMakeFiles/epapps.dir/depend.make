# Empty dependencies file for epapps.
# This may be replaced when dependencies are built.
