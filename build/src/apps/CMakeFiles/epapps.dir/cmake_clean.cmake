file(REMOVE_RECURSE
  "CMakeFiles/epapps.dir/cpu_dgemm_app.cpp.o"
  "CMakeFiles/epapps.dir/cpu_dgemm_app.cpp.o.d"
  "CMakeFiles/epapps.dir/fft2d_app.cpp.o"
  "CMakeFiles/epapps.dir/fft2d_app.cpp.o.d"
  "CMakeFiles/epapps.dir/gpu_matmul_app.cpp.o"
  "CMakeFiles/epapps.dir/gpu_matmul_app.cpp.o.d"
  "CMakeFiles/epapps.dir/matmul_kernel.cpp.o"
  "CMakeFiles/epapps.dir/matmul_kernel.cpp.o.d"
  "libepapps.a"
  "libepapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
