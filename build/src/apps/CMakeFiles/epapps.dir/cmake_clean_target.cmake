file(REMOVE_RECURSE
  "libepapps.a"
)
