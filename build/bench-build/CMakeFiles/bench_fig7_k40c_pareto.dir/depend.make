# Empty dependencies file for bench_fig7_k40c_pareto.
# This may be replaced when dependencies are built.
