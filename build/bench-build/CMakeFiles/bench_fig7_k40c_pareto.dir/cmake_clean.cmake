file(REMOVE_RECURSE
  "../bench/bench_fig7_k40c_pareto"
  "../bench/bench_fig7_k40c_pareto.pdb"
  "CMakeFiles/bench_fig7_k40c_pareto.dir/bench_fig7_k40c_pareto.cpp.o"
  "CMakeFiles/bench_fig7_k40c_pareto.dir/bench_fig7_k40c_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_k40c_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
