# Empty compiler generated dependencies file for bench_baseline_partition.
# This may be replaced when dependencies are built.
