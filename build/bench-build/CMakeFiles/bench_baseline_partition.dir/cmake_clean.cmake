file(REMOVE_RECURSE
  "../bench/bench_baseline_partition"
  "../bench/bench_baseline_partition.pdb"
  "CMakeFiles/bench_baseline_partition.dir/bench_baseline_partition.cpp.o"
  "CMakeFiles/bench_baseline_partition.dir/bench_baseline_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
