# Empty dependencies file for bench_fig8_p100_pareto.
# This may be replaced when dependencies are built.
