# Empty compiler generated dependencies file for bench_fig2_p100_n18432.
# This may be replaced when dependencies are built.
