file(REMOVE_RECURSE
  "../bench/bench_fig2_p100_n18432"
  "../bench/bench_fig2_p100_n18432.pdb"
  "CMakeFiles/bench_fig2_p100_n18432.dir/bench_fig2_p100_n18432.cpp.o"
  "CMakeFiles/bench_fig2_p100_n18432.dir/bench_fig2_p100_n18432.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_p100_n18432.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
