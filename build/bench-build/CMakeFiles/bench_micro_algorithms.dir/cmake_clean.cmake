file(REMOVE_RECURSE
  "../bench/bench_micro_algorithms"
  "../bench/bench_micro_algorithms.pdb"
  "CMakeFiles/bench_micro_algorithms.dir/bench_micro_algorithms.cpp.o"
  "CMakeFiles/bench_micro_algorithms.dir/bench_micro_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
