file(REMOVE_RECURSE
  "../bench/bench_cpu_weak_ep"
  "../bench/bench_cpu_weak_ep.pdb"
  "CMakeFiles/bench_cpu_weak_ep.dir/bench_cpu_weak_ep.cpp.o"
  "CMakeFiles/bench_cpu_weak_ep.dir/bench_cpu_weak_ep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_weak_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
