# Empty compiler generated dependencies file for bench_cpu_weak_ep.
# This may be replaced when dependencies are built.
