file(REMOVE_RECURSE
  "../bench/bench_theory_twocore"
  "../bench/bench_theory_twocore.pdb"
  "CMakeFiles/bench_theory_twocore.dir/bench_theory_twocore.cpp.o"
  "CMakeFiles/bench_theory_twocore.dir/bench_theory_twocore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_twocore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
