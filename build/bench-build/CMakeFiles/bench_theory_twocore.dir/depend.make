# Empty dependencies file for bench_theory_twocore.
# This may be replaced when dependencies are built.
