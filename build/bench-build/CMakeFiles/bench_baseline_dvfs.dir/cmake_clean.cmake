file(REMOVE_RECURSE
  "../bench/bench_baseline_dvfs"
  "../bench/bench_baseline_dvfs.pdb"
  "CMakeFiles/bench_baseline_dvfs.dir/bench_baseline_dvfs.cpp.o"
  "CMakeFiles/bench_baseline_dvfs.dir/bench_baseline_dvfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
