# Empty dependencies file for bench_baseline_dvfs.
# This may be replaced when dependencies are built.
