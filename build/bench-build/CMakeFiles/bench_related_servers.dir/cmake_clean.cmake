file(REMOVE_RECURSE
  "../bench/bench_related_servers"
  "../bench/bench_related_servers.pdb"
  "CMakeFiles/bench_related_servers.dir/bench_related_servers.cpp.o"
  "CMakeFiles/bench_related_servers.dir/bench_related_servers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
