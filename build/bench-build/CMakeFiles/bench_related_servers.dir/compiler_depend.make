# Empty compiler generated dependencies file for bench_related_servers.
# This may be replaced when dependencies are built.
