file(REMOVE_RECURSE
  "../bench/bench_fig6_additivity"
  "../bench/bench_fig6_additivity.pdb"
  "CMakeFiles/bench_fig6_additivity.dir/bench_fig6_additivity.cpp.o"
  "CMakeFiles/bench_fig6_additivity.dir/bench_fig6_additivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_additivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
