# Empty dependencies file for bench_fig6_additivity.
# This may be replaced when dependencies are built.
