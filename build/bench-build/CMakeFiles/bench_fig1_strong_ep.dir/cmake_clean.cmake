file(REMOVE_RECURSE
  "../bench/bench_fig1_strong_ep"
  "../bench/bench_fig1_strong_ep.pdb"
  "CMakeFiles/bench_fig1_strong_ep.dir/bench_fig1_strong_ep.cpp.o"
  "CMakeFiles/bench_fig1_strong_ep.dir/bench_fig1_strong_ep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_strong_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
