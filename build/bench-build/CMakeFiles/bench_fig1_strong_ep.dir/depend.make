# Empty dependencies file for bench_fig1_strong_ep.
# This may be replaced when dependencies are built.
