file(REMOVE_RECURSE
  "../bench/bench_front_statistics"
  "../bench/bench_front_statistics.pdb"
  "CMakeFiles/bench_front_statistics.dir/bench_front_statistics.cpp.o"
  "CMakeFiles/bench_front_statistics.dir/bench_front_statistics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_front_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
