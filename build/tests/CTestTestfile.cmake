# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_pareto[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_hw_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_hw_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_cudasim[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_energymodel[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_dvfs[1]_include.cmake")
