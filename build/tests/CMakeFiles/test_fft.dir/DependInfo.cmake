
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/test_fft.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_fft.dir/test_fft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/epcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/epstats.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/eppareto.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eppower.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ephw.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/epblas.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/epfft.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/epapps.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/eppartition.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/epdvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/energymodel/CMakeFiles/epmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/epcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
