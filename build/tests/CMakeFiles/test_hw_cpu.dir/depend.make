# Empty dependencies file for test_hw_cpu.
# This may be replaced when dependencies are built.
