file(REMOVE_RECURSE
  "CMakeFiles/test_hw_cpu.dir/test_hw_cpu.cpp.o"
  "CMakeFiles/test_hw_cpu.dir/test_hw_cpu.cpp.o.d"
  "test_hw_cpu"
  "test_hw_cpu.pdb"
  "test_hw_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
