# Empty compiler generated dependencies file for test_energymodel.
# This may be replaced when dependencies are built.
