file(REMOVE_RECURSE
  "CMakeFiles/test_energymodel.dir/test_energymodel.cpp.o"
  "CMakeFiles/test_energymodel.dir/test_energymodel.cpp.o.d"
  "test_energymodel"
  "test_energymodel.pdb"
  "test_energymodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energymodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
