# Empty compiler generated dependencies file for test_hw_gpu.
# This may be replaced when dependencies are built.
