file(REMOVE_RECURSE
  "CMakeFiles/test_hw_gpu.dir/test_hw_gpu.cpp.o"
  "CMakeFiles/test_hw_gpu.dir/test_hw_gpu.cpp.o.d"
  "test_hw_gpu"
  "test_hw_gpu.pdb"
  "test_hw_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
