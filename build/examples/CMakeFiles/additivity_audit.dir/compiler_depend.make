# Empty compiler generated dependencies file for additivity_audit.
# This may be replaced when dependencies are built.
