file(REMOVE_RECURSE
  "CMakeFiles/additivity_audit.dir/additivity_audit.cpp.o"
  "CMakeFiles/additivity_audit.dir/additivity_audit.cpp.o.d"
  "additivity_audit"
  "additivity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additivity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
