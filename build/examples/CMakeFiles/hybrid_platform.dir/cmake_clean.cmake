file(REMOVE_RECURSE
  "CMakeFiles/hybrid_platform.dir/hybrid_platform.cpp.o"
  "CMakeFiles/hybrid_platform.dir/hybrid_platform.cpp.o.d"
  "hybrid_platform"
  "hybrid_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
