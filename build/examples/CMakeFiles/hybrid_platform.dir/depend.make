# Empty dependencies file for hybrid_platform.
# This may be replaced when dependencies are built.
