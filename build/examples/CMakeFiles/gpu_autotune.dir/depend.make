# Empty dependencies file for gpu_autotune.
# This may be replaced when dependencies are built.
