file(REMOVE_RECURSE
  "CMakeFiles/gpu_autotune.dir/gpu_autotune.cpp.o"
  "CMakeFiles/gpu_autotune.dir/gpu_autotune.cpp.o.d"
  "gpu_autotune"
  "gpu_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
