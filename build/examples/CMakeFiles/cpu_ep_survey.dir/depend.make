# Empty dependencies file for cpu_ep_survey.
# This may be replaced when dependencies are built.
