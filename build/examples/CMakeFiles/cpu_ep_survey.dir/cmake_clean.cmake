file(REMOVE_RECURSE
  "CMakeFiles/cpu_ep_survey.dir/cpu_ep_survey.cpp.o"
  "CMakeFiles/cpu_ep_survey.dir/cpu_ep_survey.cpp.o.d"
  "cpu_ep_survey"
  "cpu_ep_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_ep_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
