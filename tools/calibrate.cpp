// Model-calibration inspector.
//
// Dumps, for the paper's headline workloads, the noise-free model
// outputs: per-configuration (time, energy), the global and local Pareto
// fronts, trade-off numbers, and Fig 6 additivity errors — next to the
// paper's target values.  Used while tuning ephw response constants;
// kept in-tree so future model changes can be re-checked quickly.
#include <cstdio>

#include <fstream>
#include <string_view>

#include "apps/gpu_matmul_app.hpp"
#include "core/study.hpp"
#include "energymodel/additivity.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"
#include "obs/trace.hpp"

using namespace ep;

namespace {

void dumpResult(const char* tag, const core::WorkloadResult& r, bool listAll) {
  std::printf("\n=== %s N=%d: %zu configs ===\n", tag, r.n, r.points.size());
  if (listAll) {
    for (const auto& d : r.data) {
      std::printf("  %-18s t=%9.3f s  E=%10.1f J  occ=%.2f boost=%.3f%s\n",
                  d.label().c_str(), d.time.value(),
                  d.dynamicEnergy.value(), d.model.occupancy.fraction,
                  d.model.boostRatio, d.model.uncoreActive ? " UNCORE" : "");
    }
  }
  std::printf("global front (%zu):\n", r.globalFront.size());
  for (const auto& p : r.globalFront) {
    std::printf("  %-18s t=%9.3f s  E=%10.1f J\n", p.label.c_str(),
                p.time.value(), p.energy.value());
  }
  std::printf("local front (%zu):\n", r.localFront.size());
  for (const auto& p : r.localFront) {
    std::printf("  %-18s t=%9.3f s  E=%10.1f J\n", p.label.c_str(),
                p.time.value(), p.energy.value());
  }
  std::printf("global tradeoff: savings=%.1f%% degradation=%.1f%%\n",
              100.0 * r.globalTradeoff.maxEnergySavings,
              100.0 * r.globalTradeoff.performanceDegradation);
  if (r.localTradeoff) {
    std::printf("local tradeoff:  savings=%.1f%% degradation=%.1f%%\n",
                100.0 * r.localTradeoff->maxEnergySavings,
                100.0 * r.localTradeoff->performanceDegradation);
  }
}

// Evaluate `sizes` for one device, optionally through the crash-safe
// sweep journal (--checkpoint): workloads already recorded are restored
// instead of recomputed, and each completed workload is appended, so an
// interrupted calibration run resumes where it stopped.
void dumpWorkloads(const char* tag, const core::GpuEpStudy& study,
                   const std::vector<int>& sizes, bool listAll,
                   const char* checkpointDir) {
  Rng rng(42);
  core::SweepOptions opts;
  if (checkpointDir) {
    opts.checkpointPath =
        std::string(checkpointDir) + "/calibrate-" + tag + ".journal";
  }
  const auto sweep = study.runSweepChecked(sizes, rng, opts);
  if (checkpointDir) {
    std::printf("\n%s: resumed %zu of %zu workloads from %s\n", tag,
                sweep.resumedWorkloads, sizes.size(),
                opts.checkpointPath.c_str());
  }
  for (const auto& r : sweep.results) dumpResult(tag, r, listAll);
}

void dumpAdditivity(const char* tag, const apps::GpuMatMulApp& app, int bs) {
  std::printf("\n=== %s Fig6 additivity (BS=%d) ===\n", tag, bs);
  for (int n : {5120, 8192, 10240, 12288, 14336, 15360, 16384, 18432}) {
    hw::MatMulConfig base{n, bs, 1, 1};
    if (!app.model().isLaunchable(base)) continue;
    const auto m1 = app.model().modelMatMul(base);
    std::printf("  N=%6d:", n);
    for (int g : {2, 4}) {
      hw::MatMulConfig cfg{n, bs, g, 1};
      const auto mg = app.model().modelMatMul(cfg);
      const auto rec = model::analyzeEnergyAdditivity(
          m1.dynamicEnergy().value(), mg.dynamicEnergy().value(), g);
      std::printf("  G=%d err=%5.1f%%", g, 100.0 * rec.error);
    }
    std::printf("   (t1=%.2f s, uncore=%d)\n", m1.time.value(),
                m1.uncoreActive ? 1 : 0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool listAll = false;
  const char* tracePath = nullptr;
  const char* checkpointDir = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--all") {
      listAll = true;
    } else if (a == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (a == "--checkpoint" && i + 1 < argc) {
      checkpointDir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: calibrate [--all] [--trace out.json]"
                   " [--checkpoint dir]\n");
      return 2;
    }
  }
  if (tracePath) obs::Tracer::global().setEnabled(true);

  {
    // Top-level span so the exported trace attributes the whole run;
    // it must close before export, so the scope ends before the dump.
    obs::Span run("calibrate/run");

    apps::GpuMatMulOptions fast;
    fast.useMeter = false;  // noise-free model output for calibration

    apps::GpuMatMulApp p100(hw::GpuModel(hw::nvidiaP100Pcie()), fast);
    apps::GpuMatMulApp k40c(hw::GpuModel(hw::nvidiaK40c()), fast);
    core::GpuEpStudy p100Study(p100);
    core::GpuEpStudy k40cStudy(k40c);

    std::printf("paper targets:\n");
    std::printf("  P100 N=10240: global front 3 pts, (50%%, 11%%)\n");
    std::printf("  P100 N=18432: front 2 pts, (12.5%%, 2.5%%); BS<=30: (24%%, 8%%)\n");
    std::printf("  P100 sweep:   global fronts avg 2 / max 3\n");
    std::printf("  K40c:         global front 1 pt (BS=32); local avg 4 / max 5; (18%%, 7%%)\n");

    dumpWorkloads("P100", p100Study, {10240, 14336, 18432}, listAll,
                  checkpointDir);
    dumpWorkloads("K40c", k40cStudy, {8704, 10240}, listAll, checkpointDir);

    dumpAdditivity("P100", p100, 32);
    dumpAdditivity("K40c", k40c, 32);
  }

  if (tracePath) {
    std::ofstream out(tracePath);
    out << obs::Tracer::global().exportChromeTrace();
    if (!out) {
      std::fprintf(stderr, "calibrate: cannot write trace to %s\n", tracePath);
      return 1;
    }
    std::fprintf(stderr, "calibrate: wrote %zu trace events to %s\n",
                 obs::Tracer::global().recordedCount(), tracePath);
  }
  return 0;
}
