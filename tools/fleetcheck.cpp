// fleetcheck — end-to-end drill for the epfleet layer.
//
// Default mode runs the whole fault story in-process against the real
// EpStudyEngine and exits non-zero on the first broken invariant:
//
//   1. warm a spread of keys across a 3-shard fleet (energy-aware
//      routing lands every key on its ring home; each key pays its
//      cold study exactly once cluster-wide);
//   2. kill a warm key's home shard and verify the ring successor
//      answers from the replicated stale store, flagged stale, with
//      no new cold study;
//   3. rebalance the ring (drop the dead shard's vnodes), re-drive
//      the traffic, and verify the streaming cluster Pareto fronts
//      are still bitwise-identical to a fresh batch recompute;
//   4. revive + re-add the shard and verify the partition returns to
//      the original layout and fronts stay consistent;
//   5. a heterogeneous-fleet drill (one GPU-only shard, one mixed, one
//      CPU-only): "device":"auto" routing only lands on shards serving
//      the resolved device, and replica stale-serving keeps working
//      across the asymmetric shard set.
//
// With --port P --check it instead connects to a running epfleetd,
// fetches {"op":"fleet"} and asserts a clean recovered state: status
// ok, every shard alive, and frontsConsistent true.  tools/ci.sh runs
// the drill both ways (in-process, and over the wire after a scripted
// kill/revive).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fleet/router.hpp"
#include "serve/engine.hpp"
#include "serve/wire.hpp"

namespace {

using ep::fleet::FleetOptions;
using ep::fleet::FleetRequest;
using ep::fleet::FleetRouter;
using ep::fleet::FleetShardConfig;
using ep::fleet::RouteDecision;
using ep::serve::Device;

int gFailures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++gFailures;
}

FleetRequest freq(int n, Device d = Device::P100) {
  FleetRequest r;
  r.device = d;
  r.n = n;
  r.maxDegradation = 0.11;
  return r;
}

int runDrill() {
  std::printf("== fleetcheck: shard-kill / stale-serve / rebalance drill ==\n");
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "s" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.broker.queueCapacity = 128;
    cfgs.push_back(std::move(c));
  }
  FleetRouter router(std::move(cfgs), FleetOptions{});

  // 1. Warm: small sizes keep the real studies fast; 16 keys over 3
  // shards make every shard home to several.
  std::printf("-- warm --\n");
  std::vector<int> keys;
  for (int n = 512; n < 512 + 16 * 64; n += 64) keys.push_back(n);
  bool warmOk = true;
  bool allHome = true;
  for (int n : keys) {
    RouteDecision d;
    const auto resp = router.tune(freq(n), &d);
    warmOk = warmOk && resp.status == ep::serve::Status::Ok && !resp.stale;
    allHome = allHome && d.home;
  }
  check(warmOk, "all warm requests served fresh");
  check(allHome, "energy-aware routing landed every key on its ring home");
  auto m = router.metrics();
  std::uint64_t executed = 0;
  for (const auto& s : m.shards) executed += s.studiesExecuted;
  check(executed == keys.size(), "each key paid its cold study exactly once");
  check(router.frontsConsistent(), "cluster fronts consistent after warm");

  // 2. Kill a warm key's home; its keys must be stale-served by the
  // replica holder with no new studies.
  const std::string victim = router.homeShard(Device::P100, keys.front());
  std::printf("-- kill %s --\n", victim.c_str());
  check(router.killShard(victim), "killShard(" + victim + ")");
  int staleServed = 0;
  bool staleOk = true;
  for (int n : keys) {
    if (router.homeShard(Device::P100, n) != victim) continue;
    RouteDecision d;
    const auto resp = router.tune(freq(n), &d);
    staleOk = staleOk && resp.status == ep::serve::Status::Ok && resp.stale &&
              d.staleFallback && d.shardId != victim;
    ++staleServed;
  }
  check(staleServed > 0, "victim was home to at least one warm key");
  check(staleOk, "dead home's keys answered stale from the replica");
  m = router.metrics();
  std::uint64_t executedAfterKill = 0;
  for (const auto& s : m.shards) executedAfterKill += s.studiesExecuted;
  check(executedAfterKill == executed, "stale serving executed no new study");

  // 3. Rebalance: the dead shard leaves the ring; its keys re-home and
  // re-execute, and the streaming fronts must match a batch recompute.
  std::printf("-- rebalance (remove %s from ring) --\n", victim.c_str());
  check(router.removeShardFromRing(victim), "removeShardFromRing");
  bool rehomed = true;
  bool rebalanceOk = true;
  for (int n : keys) {
    rehomed = rehomed && router.homeShard(Device::P100, n) != victim;
    const auto resp = router.tune(freq(n));
    rebalanceOk = rebalanceOk && resp.status == ep::serve::Status::Ok;
  }
  check(rehomed, "no key homes on the removed shard");
  check(rebalanceOk, "all keys served after rebalance");
  check(router.frontsConsistent(),
        "streaming fronts bitwise-match batch recompute after rebalance");

  // 4. Recover: revive, re-add, and the original partition returns.
  std::printf("-- recover --\n");
  check(router.reviveShard(victim), "reviveShard");
  check(router.addShardToRing(victim), "addShardToRing");
  check(router.homeShard(Device::P100, keys.front()) == victim,
        "re-added shard owns its original keys again");
  bool recoverOk = true;
  for (int n : keys) {
    recoverOk =
        recoverOk && router.tune(freq(n)).status == ep::serve::Status::Ok;
  }
  check(recoverOk, "all keys served after recovery");
  check(router.frontsConsistent(), "cluster fronts consistent after recovery");
  m = router.metrics();
  std::uint64_t inFlight = 0;
  for (const auto& s : m.shards) inFlight += s.inFlight;
  check(inFlight == 0, "no request left in flight");
  check(m.noCandidate == 0, "no request ever lacked a live shard");

  std::printf("== fleetcheck: %s ==\n",
              gFailures == 0 ? "all checks passed" : "FAILURES");
  return gFailures == 0 ? 0 : 1;
}

// Heterogeneous fleet: shards with asymmetric device sets.  "auto"
// requests must only ever land on shards serving the resolved device,
// and replica stale-serving must keep working when the ring successor
// chain skips a shard that cannot serve the key's device.
int runHeteroDrill() {
  std::printf("== fleetcheck: heterogeneous-fleet drill ==\n");
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "g" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.broker.queueCapacity = 128;
    cfgs.push_back(std::move(c));
  }
  cfgs[0].devices = {Device::K40c};                 // GPU-only shard
  cfgs[1].devices = {Device::P100, Device::K40c};   // mixed shard
  cfgs[2].devices = {Device::P100};                 // CPU-only shard
  FleetRouter router(std::move(cfgs), ep::fleet::FleetOptions{});

  // "device":"auto": the router resolves the device first, then routes
  // within the shards that serve it.
  bool autoOk = true;
  bool autoPlaced = true;
  for (int n = 768; n < 768 + 12 * 96; n += 96) {
    FleetRequest r;
    r.n = n;  // no device: auto
    r.maxDegradation = 0.11;
    RouteDecision d;
    const auto resp = router.tune(r, &d);
    autoOk = autoOk && resp.status == ep::serve::Status::Ok;
    // The decision's shard must actually serve the decision's device.
    const bool gpuShardOk = d.shardId != "g2" || d.device == Device::P100;
    const bool cpuShardOk = d.shardId != "g0" || d.device == Device::K40c;
    autoPlaced = autoPlaced && gpuShardOk && cpuShardOk;
  }
  check(autoOk, "auto-device requests all served");
  check(autoPlaced, "auto requests only landed on shards serving the device");

  // Warm explicit K40c keys (served by g0 or g1 only), then kill the
  // shard that served them and require the other K40c-capable shard to
  // answer from its replicated stale store.  (The ring home of a K40c
  // key may be the CPU-only shard; what matters is who executed it.)
  std::vector<int> gpuKeys;
  std::vector<std::string> servedBy;
  for (int n = 2048; n < 2048 + 12 * 128; n += 128) gpuKeys.push_back(n);
  bool warmOk = true;
  for (int n : gpuKeys) {
    RouteDecision d;
    const auto resp = router.tune(freq(n, Device::K40c), &d);
    warmOk = warmOk && resp.status == ep::serve::Status::Ok && !resp.stale &&
             d.shardId != "g2";
    servedBy.push_back(d.shardId);
  }
  check(warmOk, "explicit K40c keys served fresh by K40c-capable shards");
  const std::string gpuVictim = servedBy.front();
  check(router.killShard(gpuVictim), "killShard(" + gpuVictim + ")");
  const std::string gpuSurvivor = gpuVictim == "g0" ? "g1" : "g0";
  int staleServed = 0;
  bool staleOk = true;
  for (std::size_t i = 0; i < gpuKeys.size(); ++i) {
    if (servedBy[i] != gpuVictim) continue;
    RouteDecision d;
    const auto resp = router.tune(freq(gpuKeys[i], Device::K40c), &d);
    staleOk = staleOk && resp.status == ep::serve::Status::Ok && resp.stale &&
              d.staleFallback && d.shardId == gpuSurvivor;
    ++staleServed;
  }
  check(staleServed > 0, "victim served at least one warm K40c key");
  check(staleOk, "K40c keys stale-served by the other K40c-capable shard");
  check(router.reviveShard(gpuVictim), "reviveShard(" + gpuVictim + ")");
  check(router.frontsConsistent(), "cluster fronts consistent (hetero)");
  auto m = router.metrics();
  check(m.noCandidate == 0, "no request ever lacked a capable shard");
  router.shutdown();

  std::printf("== fleetcheck hetero: %s ==\n",
              gFailures == 0 ? "all checks passed" : "FAILURES");
  return gFailures == 0 ? 0 : 1;
}

// --check mode: assert a running epfleetd reports a clean state.
int runRemoteCheck(const std::string& host, std::uint16_t port) {
  std::printf("== fleetcheck --check against %s:%u ==\n", host.c_str(), port);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("connect");
    close(fd);
    return 1;
  }
  const std::string request = "{\"op\":\"fleet\"}\n";
  if (send(fd, request.data(), request.size(), 0) <= 0) {
    std::perror("send");
    close(fd);
    return 1;
  }
  std::string buffer;
  char chunk[4096];
  std::size_t nl;
  while ((nl = buffer.find('\n')) == std::string::npos) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  close(fd);
  nl = buffer.find('\n');
  if (nl == std::string::npos) {
    std::fprintf(stderr, "no response line\n");
    return 1;
  }
  std::string error;
  const auto obj =
      ep::serve::wire::parseObject(buffer.substr(0, nl), &error);
  if (!obj) {
    std::fprintf(stderr, "bad snapshot: %s\n", error.c_str());
    return 1;
  }
  auto num = [&](const std::string& key) {
    const auto it = obj->find(key);
    return it == obj->end() ? -1.0 : it->second.number;
  };
  const auto status = obj->find("status");
  check(status != obj->end() && status->second.string == "ok",
        "snapshot status ok");
  check(num("shards") > 0, "snapshot lists shards");
  check(num("aliveShards") == num("shards"), "every shard alive");
  const auto consistent = obj->find("frontsConsistent");
  check(consistent != obj->end() && consistent->second.boolean,
        "cluster fronts consistent");
  std::printf("== fleetcheck --check: %s ==\n",
              gFailures == 0 ? "clean" : "FAILURES");
  return gFailures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool remoteCheck = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--host") {
      const char* v = next();
      if (!v) return 2;
      host = v;
    } else if (a == "--port") {
      const char* v = next();
      if (!v) return 2;
      port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (a == "--check") {
      remoteCheck = true;
    } else {
      std::fprintf(stderr,
                   "usage: fleetcheck            (in-process drill)\n"
                   "       fleetcheck --port P [--host H] --check\n");
      return 2;
    }
  }
  if (remoteCheck) {
    if (port == 0) {
      std::fprintf(stderr, "--check needs --port\n");
      return 2;
    }
    return runRemoteCheck(host, port);
  }
  const int rc = runDrill();
  const int heteroRc = runHeteroDrill();
  return rc != 0 ? rc : heteroRc;
}
