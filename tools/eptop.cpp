// eptop — live terminal dashboard over the fleet observability plane.
//
// Usage:
//   eptop [--host H] [--port P] [--interval-ms MS] [--once] [--check]
//
// Polls an epfleetd (or epserved) endpoint and renders one screen per
// interval:
//   * per-shard serving state from {"op":"fleet"}: q50/q99 latency,
//     queue depth, completed / stale-served counts and J/request
//     (attributed joules over completed),
//   * cluster p50/p99 from {"op":"tsdb"} windowed histogram quantiles
//     over the scraped latency family,
//   * every declared SLO from {"op":"slo"}: burn gauge (worst window
//     burn vs threshold) and burning/ok state,
//   * active flight-recorder alerts from {"op":"events"} when any
//     recorder is armed.
//
// Single-shard epserved endpoints simply have no shard rows; the tsdb
// and SLO panes work the same against either daemon.
//
// Exit status (script/CI-friendly):
//   0 — connected, and (with --check) no SLO is burning
//   1 — could not connect / server answered garbage
//   2 — --check and at least one SLO is burning
//
// --once renders a single frame without clearing the screen (the mode
// the ci.sh burn drill uses with --check); the interactive loop
// repaints with ANSI home+clear until interrupted.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hpp"

namespace {

volatile std::sig_atomic_t gStop = 0;
void handleStopSignal(int) { gStop = 1; }

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7071;
  std::int64_t intervalMs = 1000;
  bool once = false;
  bool check = false;
  bool json = false;  // one machine-readable snapshot line, no screen
};

bool parseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      a->host = v;
    } else if (arg == "--port" && (v = next())) {
      a->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (arg == "--interval-ms" && (v = next())) {
      a->intervalMs = std::stoll(v);
    } else if (arg == "--once") {
      a->once = true;
    } else if (arg == "--check") {
      a->check = true;
    } else if (arg == "--json") {
      a->json = true;
      a->once = true;  // one snapshot, no repaint loop
    } else {
      return false;
    }
  }
  return true;
}

class Connection {
 public:
  bool open(const std::string& host, std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  bool roundTrip(const std::string& request, std::string* response) {
    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    std::size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t got = recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    *response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

using Object = ep::serve::wire::Object;

double numberOr(const Object& obj, const std::string& key, double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::Number) {
    return fallback;
  }
  return it->second.number;
}

bool boolOr(const Object& obj, const std::string& key, bool fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::Bool) {
    return fallback;
  }
  return it->second.boolean;
}

std::string stringOr(const Object& obj, const std::string& key,
                     const std::string& fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::String) {
    return fallback;
  }
  return it->second.string;
}

// Ask one op; nullopt when the transport fails or the line is not a
// JSON object.  A {"status":"error"} answer still parses — callers
// check "status" when they care (some ops are legitimately absent,
// e.g. {"op":"slo"} on a daemon with no --slo).
std::optional<Object> query(Connection& conn, const std::string& request) {
  std::string response;
  if (!conn.roundTrip(request, &response)) return std::nullopt;
  std::string error;
  return ep::serve::wire::parseObject(response, &error);
}

// The shard ids present in a fleet snapshot's flat "shard.<id>.<k>"
// keys, in key order.
std::vector<std::string> shardIdsIn(const Object& fleet) {
  std::vector<std::string> ids;
  for (const auto& [key, value] : fleet) {
    (void)value;
    if (key.rfind("shard.", 0) != 0) continue;
    const std::size_t dot = key.find('.', 6);
    if (dot == std::string::npos) continue;
    const std::string id = key.substr(6, dot - 6);
    if (ids.empty() || ids.back() != id) {
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
  }
  return ids;
}

// One "burnGauge" cell: worst burn against its alerting threshold,
// e.g. "0.31/2.0x".
std::string burnGauge(double burn, double threshold) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f/%.1fx", burn, threshold);
  return buf;
}

struct Frame {
  bool ok = false;          // fleet (or metrics) answered
  std::uint64_t burning = 0;  // SLOs currently burning
};

// Re-emit every key of `src` into `w` under `prefix` with its original
// JSON kind (the op responses are flat, so this is lossless); `skip`
// names one key to drop (bulky text bodies).
void copyInto(ep::serve::wire::ObjectWriter& w, const Object& src,
              const std::string& prefix, const std::string& skip = "") {
  for (const auto& [key, value] : src) {
    if (key == "status" || (!skip.empty() && key == skip)) continue;
    const std::string out = prefix + key;
    switch (value.kind) {
      case ep::serve::wire::Value::Kind::String:
        w.add(out, value.string);
        break;
      case ep::serve::wire::Value::Kind::Number:
        w.add(out, value.number);
        break;
      case ep::serve::wire::Value::Kind::Bool:
        w.add(out, value.boolean);
        break;
      case ep::serve::wire::Value::Kind::Null:
        break;
    }
  }
}

// --json: one flat JSON object on stdout — the fleet snapshot, tsdb
// latency quantiles, SLO burn state, alert totals and the profiler's
// top frames, each family under its own key prefix.  This is the
// machine-readable face ci drills consume instead of scraping the
// human screen.
Frame renderJson(Connection& conn, const Args& args) {
  Frame frame;
  const auto fleet = query(conn, "{\"op\":\"fleet\"}");
  if (!fleet) return frame;
  frame.ok = true;

  ep::serve::wire::ObjectWriter w;
  w.add("status", "ok").add("host", args.host).add("port",
                                                   static_cast<int>(args.port));
  if (stringOr(*fleet, "status", "") == "ok") {
    copyInto(w, *fleet, "fleet.");
  }
  for (const double q : {0.50, 0.99}) {
    char reqLine[160];
    std::snprintf(reqLine, sizeof reqLine,
                  "{\"op\":\"tsdb\",\"series\":\"ep_serve_request_latency_ms\""
                  ",\"agg\":\"quantile\",\"q\":%.2f,\"windowMs\":60000}",
                  q);
    const auto tq = query(conn, reqLine);
    if (!tq || stringOr(*tq, "status", "") != "ok") continue;
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "tsdb.p%.0f.", q * 100);
    copyInto(w, *tq, prefix);
  }
  const auto slo = query(conn, "{\"op\":\"slo\"}");
  if (slo && stringOr(*slo, "status", "") == "ok") {
    frame.burning = static_cast<std::uint64_t>(numberOr(*slo, "burning", 0));
    copyInto(w, *slo, "");  // keeps the natural "slo.<name>.*" keys
  }
  const auto events = query(conn, "{\"op\":\"events\"}");
  if (events && stringOr(*events, "status", "") == "ok") {
    w.add("alerts", numberOr(*events, "alerts", 0));
  }
  const auto prof =
      query(conn, "{\"op\":\"profile\",\"action\":\"snapshot\",\"topN\":5}");
  if (prof && stringOr(*prof, "status", "") == "ok") {
    copyInto(w, *prof, "profile.", "body");
  }
  std::printf("%s\n", w.str().c_str());
  std::fflush(stdout);
  return frame;
}

Frame renderFrame(Connection& conn, const Args& args) {
  Frame frame;

  const auto fleet = query(conn, "{\"op\":\"fleet\"}");
  const auto slo = query(conn, "{\"op\":\"slo\"}");
  const auto events = query(conn, "{\"op\":\"events\"}");
  if (!fleet) return frame;
  const bool isFleet = stringOr(*fleet, "status", "") == "ok";
  frame.ok = true;

  std::printf("eptop @ %s:%u", args.host.c_str(),
              static_cast<unsigned>(args.port));
  if (isFleet) {
    std::printf(" — policy=%s shards=%g alive=%g requests=%g "
                "staleFallbacks=%g",
                stringOr(*fleet, "policy", "?").c_str(),
                numberOr(*fleet, "shards", 0), numberOr(*fleet, "aliveShards", 0),
                numberOr(*fleet, "requests", 0),
                numberOr(*fleet, "staleFallbacks", 0));
  }
  if (events && stringOr(*events, "status", "") == "ok") {
    std::printf("  alerts=%g", numberOr(*events, "alerts", 0));
  }
  std::printf("\n\n");

  if (isFleet) {
    std::printf("  %-6s %-5s %9s %9s %7s %10s %8s %10s\n", "shard", "state",
                "q50 ms", "q99 ms", "queue", "completed", "stale",
                "J/request");
    for (const std::string& id : shardIdsIn(*fleet)) {
      const std::string p = "shard." + id + ".";
      const bool alive = boolOr(*fleet, p + "alive", true);
      const double completed = numberOr(*fleet, p + "completed", 0);
      const double joules = numberOr(*fleet, p + "attributedJoules", 0);
      const double jpr = completed > 0 ? joules / completed : 0.0;
      std::printf("  %-6s %-5s %9.3f %9.3f %7.0f %10.0f %8.0f %10.4g\n",
                  id.c_str(), alive ? "up" : "DOWN",
                  numberOr(*fleet, p + "q50Ms", 0),
                  numberOr(*fleet, p + "q99Ms", 0),
                  numberOr(*fleet, p + "queueDepth", 0), completed,
                  numberOr(*fleet, p + "staleServed", 0), jpr);
    }
    std::printf("\n");
  }

  // Cluster-window latency quantiles out of the tsdb (whatever the
  // scraper has ingested; absent early in a daemon's life).
  for (const double q : {0.50, 0.99}) {
    char reqLine[160];
    std::snprintf(reqLine, sizeof reqLine,
                  "{\"op\":\"tsdb\",\"series\":\"ep_serve_request_latency_ms\""
                  ",\"agg\":\"quantile\",\"q\":%.2f,\"windowMs\":60000}",
                  q);
    const auto tq = query(conn, reqLine);
    if (!tq || stringOr(*tq, "status", "") != "ok") continue;
    if (!boolOr(*tq, "defined", false)) continue;
    if (boolOr(*tq, "unbounded", false)) {
      std::printf("  tsdb p%.0f (60s) : beyond last bucket bound\n", q * 100);
    } else {
      std::printf("  tsdb p%.0f (60s) : <= %.3f ms\n", q * 100,
                  numberOr(*tq, "value", 0));
    }
  }

  if (slo && stringOr(*slo, "status", "") == "ok") {
    frame.burning = static_cast<std::uint64_t>(numberOr(*slo, "burning", 0));
    std::printf("\n  %-14s %-8s %-8s %12s %8s\n", "slo", "kind", "state",
                "burn gauge", "raised");
    // Flat keys "slo.<name>.<field>" — collect the names first.
    std::vector<std::string> names;
    for (const auto& [key, value] : *slo) {
      (void)value;
      if (key.rfind("slo.", 0) != 0) continue;
      const std::size_t dot = key.find('.', 4);
      if (dot == std::string::npos) continue;
      const std::string name = key.substr(4, dot - 4);
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    for (const std::string& name : names) {
      const std::string p = "slo." + name + ".";
      const bool burning = boolOr(*slo, p + "burning", false);
      // The tightest (first) window's threshold anchors the gauge.
      const double threshold = numberOr(*slo, p + "w0.threshold", 1.0);
      std::printf("  %-14s %-8s %-8s %12s %8.0f\n", name.c_str(),
                  stringOr(*slo, p + "kind", "?").c_str(),
                  burning ? "BURNING" : "ok",
                  burnGauge(numberOr(*slo, p + "worstBurn", 0), threshold)
                      .c_str(),
                  numberOr(*slo, p + "raised", 0));
    }
  } else {
    std::printf("\n  (no SLOs declared on this endpoint)\n");
  }
  std::fflush(stdout);
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: eptop [--host H] [--port P] [--interval-ms MS]"
                 " [--once] [--check] [--json]\n";
    return 2;
  }

  Connection conn;
  if (!conn.open(args.host, args.port)) {
    std::cerr << "eptop: cannot connect to " << args.host << ":" << args.port
              << "\n";
    return 1;
  }

  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);

  Frame frame;
  for (;;) {
    if (!args.once) std::printf("\x1b[H\x1b[2J");
    frame = args.json ? renderJson(conn, args) : renderFrame(conn, args);
    if (!frame.ok) {
      std::cerr << "eptop: lost connection to " << args.host << ":"
                << args.port << "\n";
      return 1;
    }
    if (args.once || gStop) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(args.intervalMs));
    if (gStop) break;
  }

  if (args.check && frame.burning > 0) return 2;
  return 0;
}
