// epserved — the epserve TCP frontend.
//
// A thin line-delimited-JSON transport over the in-process Broker: one
// request per line, one response line per request (see serve/wire.hpp
// for the vocabulary).  All tuning logic lives in the broker; this file
// only does sockets, line framing and signal-driven shutdown.
//
// Usage:
//   epserved [--port P] [--threads N] [--queue Q] [--cache C]
//            [--deadline-ms D] [--meter] [--seed S] [--tracing]
//            [--watchdog] [--watchdog-watts W]
//            [--fault-offset W] [--fault-offset-rate R]
//            [--scrape-ms MS] [--slo SPEC]... [--slo-window L:S:B]...
//
// --port 0 picks an ephemeral port; the chosen one is printed either
// way so scripts (and epserve_client) can parse it.  SIGINT/SIGTERM
// drain in-flight work before exiting and print the final metrics.
//
// Observability: {"op":"metrics","format":"prometheus"} answers with
// the combined broker + process registry exposition; with --tracing
// enabled, {"op":"trace"} answers with the Chrome trace-event JSON
// recorded so far (load it in Perfetto).  Requests carrying "trace_id"
// run under that trace (and echo it); "report":true adds the energy-
// attribution ledger to the response.
//
// --watchdog arms the power-anomaly watchdog over every measurement
// window (implies nothing else; pair with --meter for real windows);
// {"op":"events"} drains its flight recorder and tools/epwatch renders
// it.  --fault-offset injects the paper's Fig 6 constant component
// (default rate 1.0 when only the wattage is given) — the canonical
// demo is  --meter --watchdog --fault-offset 58.
//
// A background scraper feeds the in-process tsdb from the broker +
// process registries every --scrape-ms (0 disables); {"op":"tsdb"}
// runs range/window queries over it.  --slo declares latency/energy
// SLOs ("latency:<ms>:<objective>" / "energy:<joulesPerReq>"),
// evaluated at scrape cadence with multi-window burn-rate alerting
// ({"op":"slo"}; burn transitions also land in {"op":"events"}).
// --slo-window L:S:B (ms:ms:burn) overrides the default window pairs.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/watchdog.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "power/observer.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"
#include "serve/wire.hpp"

namespace {

std::atomic<int> gListenFd{-1};

void handleStopSignal(int) {
  // Closing the listener unblocks accept(); the main loop does the
  // orderly drain.  (Async-signal-safe: close only.)
  const int fd = gListenFd.exchange(-1);
  if (fd >= 0) close(fd);
}

// Open connection sockets, so shutdown can unblock threads parked in
// recv() on idle connections.
class FdRegistry {
 public:
  void add(int fd) {
    std::lock_guard lk(mu_);
    fds_.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard lk(mu_);
    std::erase(fds_, fd);
  }
  void shutdownAll() {
    std::lock_guard lk(mu_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  std::vector<int> fds_;
};

struct Args {
  std::uint16_t port = 7070;
  std::size_t threads = 0;
  std::size_t queue = 64;
  std::size_t cache = 128;
  double deadlineMs = 0.0;
  bool meter = false;
  bool tracing = false;
  std::uint64_t seed = 0xEB5EEDULL;
  bool watchdog = false;
  double watchdogWatts = 25.0;
  double faultOffset = 0.0;
  double faultOffsetRate = 1.0;
  std::int64_t scrapeMs = 250;  // 0 disables the background scraper
  std::vector<std::string> sloSpecs;
  std::vector<ep::obs::BurnWindow> sloWindows;
};

bool parseBurnWindow(const std::string& text, ep::obs::BurnWindow* out) {
  long long longMs = 0;
  long long shortMs = 0;
  double burn = 0.0;
  if (std::sscanf(text.c_str(), "%lld:%lld:%lf", &longMs, &shortMs, &burn) !=
          3 ||
      longMs <= 0 || shortMs <= 0 || shortMs > longMs || !(burn > 0.0)) {
    return false;
  }
  out->longMs = longMs;
  out->shortMs = shortMs;
  out->burnThreshold = burn;
  return true;
}

bool parseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next();
      if (!v) return false;
      out->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--queue") {
      const char* v = next();
      if (!v) return false;
      out->queue = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--cache") {
      const char* v = next();
      if (!v) return false;
      out->cache = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      out->deadlineMs = std::stod(v);
    } else if (a == "--meter") {
      out->meter = true;
    } else if (a == "--tracing") {
      out->tracing = true;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      out->seed = std::stoull(v);
    } else if (a == "--watchdog") {
      out->watchdog = true;
    } else if (a == "--watchdog-watts") {
      const char* v = next();
      if (!v) return false;
      out->watchdogWatts = std::stod(v);
    } else if (a == "--fault-offset") {
      const char* v = next();
      if (!v) return false;
      out->faultOffset = std::stod(v);
    } else if (a == "--fault-offset-rate") {
      const char* v = next();
      if (!v) return false;
      out->faultOffsetRate = std::stod(v);
    } else if (a == "--scrape-ms") {
      const char* v = next();
      if (!v) return false;
      out->scrapeMs = std::stoll(v);
    } else if (a == "--slo") {
      const char* v = next();
      if (!v) return false;
      out->sloSpecs.emplace_back(v);
    } else if (a == "--slo-window") {
      const char* v = next();
      ep::obs::BurnWindow w;
      if (!v || !parseBurnWindow(v, &w)) return false;
      out->sloWindows.push_back(w);
    } else {
      return false;
    }
  }
  return true;
}

// Serve one connection: read lines, answer each.  Returns when the
// peer closes, the server is shutting down, or the peer streams a
// "line" past the frame ceiling (buffering is bounded: a client that
// never sends a newline cannot grow our memory without limit).
std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void serveConnection(int fd, ep::serve::Broker& broker,
                     ep::core::PowerAnomalyWatchdog* watchdog,
                     const ep::obs::TimeSeriesStore& tsdb,
                     ep::obs::SloEngine* slo) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.find('\n') == std::string::npos &&
        buffer.size() > ep::serve::wire::kMaxFrameBytes) {
      const std::string reply =
          ep::serve::wire::encodeError("frame too large") + "\n";
      (void)send(fd, reply.data(), reply.size(), 0);
      break;
    }
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string response;
      std::string error;
      const auto req = ep::serve::wire::decodeRequest(line, &error);
      if (!req) {
        response = ep::serve::wire::encodeError(error);
      } else {
        switch (req->op) {
          case ep::serve::wire::WireRequest::Op::Tune: {
            if (req->deviceAuto) {
              // Device selection needs the fleet's price table.
              response = ep::serve::wire::encodeError(
                  "\"auto\" device needs a fleet server (epfleetd)");
              break;
            }
            // Run the request under the caller's trace: the root span
            // and everything the broker hands to pool workers carry it.
            ep::obs::TraceContext root;
            root.traceId = ep::obs::traceIdFromString(req->traceId);
            ep::obs::ScopedTraceContext traceScope(root);
            ep::obs::Span span("serve/request");
            response = ep::serve::wire::encodeTuneResponse(
                broker.tune(req->tune), req->traceId, req->report);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Study: {
            ep::obs::TraceContext root;
            root.traceId = ep::obs::traceIdFromString(req->traceId);
            ep::obs::ScopedTraceContext traceScope(root);
            ep::obs::Span span("serve/request");
            response = ep::serve::wire::encodeStudyResponse(
                broker.study(req->study), req->traceId, req->report);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Metrics:
            if (req->clusterScope) {
              response = ep::serve::wire::encodeError(
                  "cluster scope needs a fleet server (epfleetd)");
            } else if (req->metricsFormat ==
                       ep::serve::wire::MetricsFormat::Json) {
              response = ep::serve::wire::encodeMetrics(broker.metrics());
            } else {
              // Broker registry first, then the process-wide registry
              // (thread pool, cusim, study phases) — disjoint names.
              // One combined snapshot so the OpenMetrics form carries a
              // single trailing # EOF.
              ep::obs::RegistrySnapshot snap = broker.snapshotRegistry();
              snap.append(ep::obs::Registry::global().snapshot());
              const auto fmt = req->metricsFormat ==
                                       ep::serve::wire::MetricsFormat::
                                           OpenMetrics
                                   ? ep::obs::ExpositionFormat::OpenMetrics100
                                   : ep::obs::ExpositionFormat::Prometheus004;
              response = ep::serve::wire::encodeTextBody(
                  ep::obs::renderExposition(snap, fmt));
            }
            break;
          case ep::serve::wire::WireRequest::Op::Trace:
            response = ep::serve::wire::encodeTextBody(
                ep::obs::Tracer::global().exportChromeTrace());
            break;
          case ep::serve::wire::WireRequest::Op::Events: {
            if (watchdog == nullptr && slo == nullptr) {
              response = ep::serve::wire::encodeError(
                  "no flight recorders armed (start epserved with"
                  " --watchdog and/or --slo)");
              break;
            }
            // One drain over every armed recorder: the watchdog's
            // power-anomaly events and the SLO engine's burn
            // transitions share the wire format (epwatch renders both).
            std::string body;
            std::uint64_t alerts = 0;
            std::uint64_t recorded = 0;
            std::uint64_t dropped = 0;
            if (watchdog != nullptr) {
              for (const ep::obs::FlightEvent& e :
                   watchdog->events(req->eventsSince)) {
                body += ep::obs::encodeFlightEventLine(e);
                body += '\n';
              }
              alerts += watchdog->activeAlerts();
              recorded += watchdog->recorder().recorded();
              dropped += watchdog->recorder().dropped();
            }
            if (slo != nullptr) {
              for (const ep::obs::FlightEvent& e :
                   slo->events(req->eventsSince)) {
                body += ep::obs::encodeFlightEventLine(e);
                body += '\n';
              }
              alerts += slo->activeAlerts();
              recorded += slo->recorder().recorded();
              dropped += slo->recorder().dropped();
            }
            response = ep::serve::wire::encodeEvents(alerts, recorded,
                                                     dropped, body);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Tsdb:
            response =
                ep::serve::wire::encodeTsdbResponse(tsdb, *req, steadyNowNs());
            break;
          case ep::serve::wire::WireRequest::Op::Slo:
            if (slo == nullptr) {
              response = ep::serve::wire::encodeError(
                  "no SLOs declared (start epserved with --slo)");
            } else {
              response = ep::serve::wire::encodeSloStatus(slo->status());
            }
            break;
          case ep::serve::wire::WireRequest::Op::Fleet:
            response = ep::serve::wire::encodeError(
                "fleet ops need a fleet server (epfleetd)");
            break;
        }
      }
      response += '\n';
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n =
            send(fd, response.data() + sent, response.size() - sent, 0);
        if (n <= 0) return;
        sent += static_cast<std::size_t>(n);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: epserved [--port P] [--threads N] [--queue Q]"
                 " [--cache C] [--deadline-ms D] [--meter] [--seed S]"
                 " [--tracing] [--watchdog] [--watchdog-watts W]"
                 " [--fault-offset W] [--fault-offset-rate R]"
                 " [--scrape-ms MS] [--slo SPEC]... [--slo-window L:S:B]...\n";
    return 2;
  }
  std::vector<ep::obs::SloSpec> sloSpecs;
  for (const std::string& text : args.sloSpecs) {
    std::string sloError;
    const auto spec = ep::obs::parseSloSpec(text, &sloError);
    if (!spec) {
      std::cerr << "epserved: " << sloError << "\n";
      return 2;
    }
    sloSpecs.push_back(*spec);
  }
  if (args.tracing) ep::obs::Tracer::global().setEnabled(true);

  ep::serve::EpStudyEngineOptions engineOpts;
  engineOpts.useMeter = args.meter;
  engineOpts.seed = args.seed;
  if (args.faultOffset > 0.0) {
    // The Fig 6 constant component rides on the meter; without the
    // wall-meter protocol there is nothing to offset.
    engineOpts.useMeter = true;
    engineOpts.faults.enabled = true;
    engineOpts.faults.offsetWatts = args.faultOffset;
    engineOpts.faults.offsetRate = args.faultOffsetRate;
  }
  auto engine = std::make_shared<ep::serve::EpStudyEngine>(engineOpts);

  // The watchdog outlives the broker (declared first): broker workers
  // feed it request outcomes, measuring threads feed it windows.
  std::unique_ptr<ep::core::PowerAnomalyWatchdog> watchdog;
  if (args.watchdog) {
    ep::core::WatchdogOptions wdOpts;
    wdOpts.constantComponentWatts = args.watchdogWatts;
    watchdog = std::make_unique<ep::core::PowerAnomalyWatchdog>(wdOpts);
    ep::power::setMeasureObserver(watchdog.get());
  }

  ep::serve::BrokerOptions brokerOpts;
  brokerOpts.threads = args.threads;
  brokerOpts.queueCapacity = args.queue;
  brokerOpts.cacheCapacity = args.cache;
  brokerOpts.defaultDeadlineMs = args.deadlineMs;
  brokerOpts.watchdog = watchdog.get();
  ep::serve::Broker broker(engine, brokerOpts);

  // Observability plane: the tsdb is fed by a background scraper over
  // the broker + process registries; the SLO engine (when any --slo was
  // declared) evaluates on every scrape.  Declared after the broker so
  // the scraper stops before the broker it snapshots is torn down.
  ep::obs::TimeSeriesStore tsdb;
  std::unique_ptr<ep::obs::SloEngine> slo;
  if (!sloSpecs.empty()) {
    ep::obs::SloEngine::Options sloOpts;
    if (!args.sloWindows.empty()) sloOpts.defaultWindows = args.sloWindows;
    slo = std::make_unique<ep::obs::SloEngine>(&tsdb, sloSpecs, sloOpts);
  }
  ep::obs::Scraper::Options scrapeOpts;
  scrapeOpts.intervalMs = args.scrapeMs > 0 ? args.scrapeMs : 250;
  if (slo != nullptr) {
    scrapeOpts.afterScrape = [&slo](std::int64_t nowNs) {
      slo->evaluate(nowNs);
    };
  }
  ep::obs::Scraper scraper(
      &tsdb,
      [&broker] {
        ep::obs::RegistrySnapshot snap = broker.snapshotRegistry();
        snap.append(ep::obs::Registry::global().snapshot());
        return snap;
      },
      scrapeOpts);
  if (args.scrapeMs > 0) scraper.start();

  const int listenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(args.port);
  if (bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(listenFd, 64) < 0) {
    std::perror("bind/listen");
    close(listenFd);
    return 1;
  }
  socklen_t len = sizeof addr;
  getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::cout << "epserved listening on 127.0.0.1:" << ntohs(addr.sin_port)
            << " (threads=" << (brokerOpts.threads == 0
                                    ? std::thread::hardware_concurrency()
                                    : brokerOpts.threads)
            << " queue=" << brokerOpts.queueCapacity
            << " cache=" << brokerOpts.cacheCapacity
            << " meter=" << (engineOpts.useMeter ? "on" : "off")
            << " watchdog=" << (args.watchdog ? "on" : "off")
            << " scrape-ms=" << (args.scrapeMs > 0 ? args.scrapeMs : 0)
            << " slos=" << sloSpecs.size()
            << (engineOpts.faults.enabled ? " fault-offset=" : "")
            << (engineOpts.faults.enabled
                    ? std::to_string(engineOpts.faults.offsetWatts)
                    : "")
            << ")" << std::endl;

  gListenFd.store(listenFd);
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);

  FdRegistry registry;
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listenFd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by the signal handler
    registry.add(fd);
    connections.emplace_back([fd, &broker, &registry, &watchdog, &tsdb, &slo] {
      serveConnection(fd, broker, watchdog.get(), tsdb, slo.get());
      registry.remove(fd);
      close(fd);
    });
  }

  std::cout << "epserved: draining..." << std::endl;
  scraper.stop();
  broker.shutdown();
  registry.shutdownAll();
  for (auto& t : connections) t.join();
  ep::power::setMeasureObserver(nullptr);
  std::cout << ep::serve::formatMetrics(broker.metrics());
  return 0;
}
