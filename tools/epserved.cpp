// epserved — the epserve TCP frontend.
//
// Mounts net::Server (edge-triggered epoll event loop, SO_REUSEPORT
// sharding, cross-connection request batching) over the in-process
// Broker.  Two wire framings share the port, picked per connection by
// the first byte:
//   * line-delimited JSON (the PR 1 protocol; see serve/wire.hpp),
//   * EPB1 binary framing (see net/frame.hpp) carrying either compact
//     binary tune frames or the full JSON vocabulary tunneled.
// Every tune request drained in one epoll round — across all
// connections — is admitted through ONE Broker::submitTuneBatch call.
//
// Usage:
//   epserved [--port P] [--threads N] [--event-threads E] [--queue Q]
//            [--cache C] [--deadline-ms D] [--meter] [--seed S]
//            [--tracing] [--watchdog] [--watchdog-watts W]
//            [--fault-offset W] [--fault-offset-rate R]
//            [--scrape-ms MS] [--slo SPEC]... [--slo-window L:S:B]...
//
// --port 0 picks an ephemeral port; the chosen one is printed either
// way so scripts (and epserve_client) can parse it.  SIGINT/SIGTERM
// drain in-flight work before exiting and print the final metrics.
//
// Observability: {"op":"metrics","format":"prometheus"} answers with
// the combined broker + process registry exposition (now including the
// ep_net_* transport family); with --tracing enabled, {"op":"trace"}
// answers with the Chrome trace-event JSON recorded so far (load it in
// Perfetto).  Requests carrying "trace_id" run under that trace (and
// echo it); "report":true adds the energy-attribution ledger.
//
// --watchdog arms the power-anomaly watchdog over every measurement
// window (implies nothing else; pair with --meter for real windows);
// {"op":"events"} drains its flight recorder and tools/epwatch renders
// it.  --fault-offset injects the paper's Fig 6 constant component
// (default rate 1.0 when only the wattage is given) — the canonical
// demo is  --meter --watchdog --fault-offset 58.
//
// A background scraper feeds the in-process tsdb from the broker +
// process registries every --scrape-ms (0 disables); {"op":"tsdb"}
// runs range/window queries over it.  --slo declares latency/energy
// SLOs ("latency:<ms>:<objective>" / "energy:<joulesPerReq>"),
// evaluated at scrape cadence with multi-window burn-rate alerting
// ({"op":"slo"}; burn transitions also land in {"op":"events"}).
// --slo-window L:S:B (ms:ms:burn) overrides the default window pairs.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/watchdog.hpp"
#include "net/server.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "power/observer.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

// Self-pipe: the signal handler's only async-signal-safe job is one
// write; the main thread parks on the read end.
int gStopPipe[2] = {-1, -1};

void handleStopSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t rc = write(gStopPipe[1], &byte, 1);
}

struct Args {
  std::uint16_t port = 7070;
  std::size_t threads = 0;
  std::size_t eventThreads = 1;
  std::size_t queue = 64;
  std::size_t cache = 128;
  double deadlineMs = 0.0;
  bool meter = false;
  bool tracing = false;
  std::uint64_t seed = 0xEB5EEDULL;
  bool watchdog = false;
  double watchdogWatts = 25.0;
  double faultOffset = 0.0;
  double faultOffsetRate = 1.0;
  std::int64_t scrapeMs = 250;  // 0 disables the background scraper
  std::vector<std::string> sloSpecs;
  std::vector<ep::obs::BurnWindow> sloWindows;
};

bool parseBurnWindow(const std::string& text, ep::obs::BurnWindow* out) {
  long long longMs = 0;
  long long shortMs = 0;
  double burn = 0.0;
  if (std::sscanf(text.c_str(), "%lld:%lld:%lf", &longMs, &shortMs, &burn) !=
          3 ||
      longMs <= 0 || shortMs <= 0 || shortMs > longMs || !(burn > 0.0)) {
    return false;
  }
  out->longMs = longMs;
  out->shortMs = shortMs;
  out->burnThreshold = burn;
  return true;
}

bool parseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next();
      if (!v) return false;
      out->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--event-threads") {
      const char* v = next();
      if (!v) return false;
      out->eventThreads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--queue") {
      const char* v = next();
      if (!v) return false;
      out->queue = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--cache") {
      const char* v = next();
      if (!v) return false;
      out->cache = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      out->deadlineMs = std::stod(v);
    } else if (a == "--meter") {
      out->meter = true;
    } else if (a == "--tracing") {
      out->tracing = true;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      out->seed = std::stoull(v);
    } else if (a == "--watchdog") {
      out->watchdog = true;
    } else if (a == "--watchdog-watts") {
      const char* v = next();
      if (!v) return false;
      out->watchdogWatts = std::stod(v);
    } else if (a == "--fault-offset") {
      const char* v = next();
      if (!v) return false;
      out->faultOffset = std::stod(v);
    } else if (a == "--fault-offset-rate") {
      const char* v = next();
      if (!v) return false;
      out->faultOffsetRate = std::stod(v);
    } else if (a == "--scrape-ms") {
      const char* v = next();
      if (!v) return false;
      out->scrapeMs = std::stoll(v);
    } else if (a == "--slo") {
      const char* v = next();
      if (!v) return false;
      out->sloSpecs.emplace_back(v);
    } else if (a == "--slo-window") {
      const char* v = next();
      ep::obs::BurnWindow w;
      if (!v || !parseBurnWindow(v, &w)) return false;
      out->sloWindows.push_back(w);
    } else {
      return false;
    }
  }
  return true;
}

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The non-tune, non-study op switch (runs inline on event threads; all
// of these are string renders).
std::string handleControlOp(const ep::serve::wire::WireRequest& req,
                            ep::serve::Broker& broker,
                            ep::core::PowerAnomalyWatchdog* watchdog,
                            const ep::obs::TimeSeriesStore& tsdb,
                            ep::obs::SloEngine* slo) {
  using ep::serve::wire::WireRequest;
  switch (req.op) {
    case WireRequest::Op::Metrics:
      if (req.clusterScope) {
        return ep::serve::wire::encodeError(
            "cluster scope needs a fleet server (epfleetd)");
      } else if (req.metricsFormat == ep::serve::wire::MetricsFormat::Json) {
        return ep::serve::wire::encodeMetrics(broker.metrics());
      } else {
        // Broker registry first, then the process-wide registry
        // (thread pool, cusim, study phases, epnet) — disjoint names.
        // One combined snapshot so the OpenMetrics form carries a
        // single trailing # EOF.
        ep::obs::RegistrySnapshot snap = broker.snapshotRegistry();
        snap.append(ep::obs::Registry::global().snapshot());
        const auto fmt =
            req.metricsFormat == ep::serve::wire::MetricsFormat::OpenMetrics
                ? ep::obs::ExpositionFormat::OpenMetrics100
                : ep::obs::ExpositionFormat::Prometheus004;
        return ep::serve::wire::encodeTextBody(
            ep::obs::renderExposition(snap, fmt));
      }
    case WireRequest::Op::Trace:
      return ep::serve::wire::encodeTextBody(
          ep::obs::Tracer::global().exportChromeTrace());
    case WireRequest::Op::Events: {
      if (watchdog == nullptr && slo == nullptr) {
        return ep::serve::wire::encodeError(
            "no flight recorders armed (start epserved with"
            " --watchdog and/or --slo)");
      }
      // One drain over every armed recorder: the watchdog's
      // power-anomaly events and the SLO engine's burn transitions
      // share the wire format (epwatch renders both).
      std::string body;
      std::uint64_t alerts = 0;
      std::uint64_t recorded = 0;
      std::uint64_t dropped = 0;
      if (watchdog != nullptr) {
        for (const ep::obs::FlightEvent& e : watchdog->events(req.eventsSince)) {
          body += ep::obs::encodeFlightEventLine(e);
          body += '\n';
        }
        alerts += watchdog->activeAlerts();
        recorded += watchdog->recorder().recorded();
        dropped += watchdog->recorder().dropped();
      }
      if (slo != nullptr) {
        for (const ep::obs::FlightEvent& e : slo->events(req.eventsSince)) {
          body += ep::obs::encodeFlightEventLine(e);
          body += '\n';
        }
        alerts += slo->activeAlerts();
        recorded += slo->recorder().recorded();
        dropped += slo->recorder().dropped();
      }
      return ep::serve::wire::encodeEvents(alerts, recorded, dropped, body);
    }
    case WireRequest::Op::Tsdb:
      return ep::serve::wire::encodeTsdbResponse(tsdb, req, steadyNowNs());
    case WireRequest::Op::Slo:
      if (slo == nullptr) {
        return ep::serve::wire::encodeError(
            "no SLOs declared (start epserved with --slo)");
      }
      return ep::serve::wire::encodeSloStatus(slo->status());
    case WireRequest::Op::Fleet:
      return ep::serve::wire::encodeError(
          "fleet ops need a fleet server (epfleetd)");
    case WireRequest::Op::Profile: {
      ep::obs::Profiler& prof = ep::obs::Profiler::global();
      if (req.profileAction == "start") {
        ep::obs::ProfilerOptions popts;
        popts.samplePeriodUs = req.profilePeriodUs;
        popts.cpuSampling = req.profileCpuSampling;
        const bool started = prof.start(popts);
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(),
            started ? "start" : "already_running");
      }
      if (req.profileAction == "stop") {
        prof.stop();
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(), "stop");
      }
      if (req.profileAction == "clear") {
        prof.clear();
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(), "clear");
      }
      if (req.profileAction == "snapshot") {
        if (req.clusterScope) {
          return ep::serve::wire::encodeError(
              "cluster scope needs a fleet server (epfleetd)");
        }
        return ep::serve::wire::encodeProfileSnapshot(
            prof.snapshot(req.profileKind == "energy"
                              ? ep::obs::ProfileKind::Energy
                              : ep::obs::ProfileKind::Cpu),
            req);
      }
      return ep::serve::wire::encodeProfileStatus(
          prof.running(), prof.registeredThreads(), "status");
    }
    case WireRequest::Op::Tune:
    case WireRequest::Op::Study:
      break;  // handled by NetService, never routed here
  }
  return ep::serve::wire::encodeError("unsupported op");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: epserved [--port P] [--threads N]"
                 " [--event-threads E] [--queue Q]"
                 " [--cache C] [--deadline-ms D] [--meter] [--seed S]"
                 " [--tracing] [--watchdog] [--watchdog-watts W]"
                 " [--fault-offset W] [--fault-offset-rate R]"
                 " [--scrape-ms MS] [--slo SPEC]... [--slo-window L:S:B]...\n";
    return 2;
  }
  std::vector<ep::obs::SloSpec> sloSpecs;
  for (const std::string& text : args.sloSpecs) {
    std::string sloError;
    const auto spec = ep::obs::parseSloSpec(text, &sloError);
    if (!spec) {
      std::cerr << "epserved: " << sloError << "\n";
      return 2;
    }
    sloSpecs.push_back(*spec);
  }
  if (args.tracing) ep::obs::Tracer::global().setEnabled(true);

  ep::serve::EpStudyEngineOptions engineOpts;
  engineOpts.useMeter = args.meter;
  engineOpts.seed = args.seed;
  if (args.faultOffset > 0.0) {
    // The Fig 6 constant component rides on the meter; without the
    // wall-meter protocol there is nothing to offset.
    engineOpts.useMeter = true;
    engineOpts.faults.enabled = true;
    engineOpts.faults.offsetWatts = args.faultOffset;
    engineOpts.faults.offsetRate = args.faultOffsetRate;
  }
  auto engine = std::make_shared<ep::serve::EpStudyEngine>(engineOpts);

  // The watchdog outlives the broker (declared first): broker workers
  // feed it request outcomes, measuring threads feed it windows.
  std::unique_ptr<ep::core::PowerAnomalyWatchdog> watchdog;
  if (args.watchdog) {
    ep::core::WatchdogOptions wdOpts;
    wdOpts.constantComponentWatts = args.watchdogWatts;
    watchdog = std::make_unique<ep::core::PowerAnomalyWatchdog>(wdOpts);
    ep::power::setMeasureObserver(watchdog.get());
  }

  ep::serve::BrokerOptions brokerOpts;
  brokerOpts.threads = args.threads;
  brokerOpts.queueCapacity = args.queue;
  brokerOpts.cacheCapacity = args.cache;
  brokerOpts.defaultDeadlineMs = args.deadlineMs;
  brokerOpts.watchdog = watchdog.get();
  ep::serve::Broker broker(engine, brokerOpts);

  // Observability plane: the tsdb is fed by a background scraper over
  // the broker + process registries; the SLO engine (when any --slo was
  // declared) evaluates on every scrape.  Declared after the broker so
  // the scraper stops before the broker it snapshots is torn down.
  ep::obs::TimeSeriesStore tsdb;
  std::unique_ptr<ep::obs::SloEngine> slo;
  if (!sloSpecs.empty()) {
    ep::obs::SloEngine::Options sloOpts;
    if (!args.sloWindows.empty()) sloOpts.defaultWindows = args.sloWindows;
    slo = std::make_unique<ep::obs::SloEngine>(&tsdb, sloSpecs, sloOpts);
  }
  ep::obs::Scraper::Options scrapeOpts;
  scrapeOpts.intervalMs = args.scrapeMs > 0 ? args.scrapeMs : 250;
  if (slo != nullptr) {
    scrapeOpts.afterScrape = [&slo](std::int64_t nowNs) {
      slo->evaluate(nowNs);
    };
  }
  ep::obs::Scraper scraper(
      &tsdb,
      [&broker] {
        ep::obs::RegistrySnapshot snap = broker.snapshotRegistry();
        snap.append(ep::obs::Registry::global().snapshot());
        return snap;
      },
      scrapeOpts);
  if (args.scrapeMs > 0) scraper.start();

  // Frame batches -> broker.  Tunes from every connection in one epoll
  // round are admitted via ONE submitTuneBatch call; the single-broker
  // daemon rejects "device":"auto" (that needs the fleet's price table).
  ep::serve::NetServiceHooks hooks;
  hooks.tuneBatch = [&broker](std::vector<ep::serve::ServiceTuneItem>&& items) {
    std::vector<ep::serve::Broker::TuneBatchItem> batch;
    batch.reserve(items.size());
    for (auto& item : items) {
      if (item.deviceAuto) {
        ep::serve::TuneResponse resp;
        resp.status = ep::serve::Status::Error;
        resp.error = "\"auto\" device needs a fleet server (epfleetd)";
        item.done(std::move(resp));
        continue;
      }
      ep::serve::Broker::TuneBatchItem member;
      member.req = item.req;
      member.ctx = item.ctx;
      member.done = std::move(item.done);
      batch.push_back(std::move(member));
    }
    broker.submitTuneBatch(std::move(batch));
  };
  hooks.study = [&broker](const ep::serve::StudyRequest& req) {
    return broker.study(req);
  };
  hooks.control = [&broker, &watchdog, &tsdb, &slo](
                      const ep::serve::wire::WireRequest& req) {
    return handleControlOp(req, broker, watchdog.get(), tsdb, slo.get());
  };
  ep::serve::NetService service(std::move(hooks));

  // epprof: the main thread participates in continuous profiles too
  // (it mostly sleeps, so per-thread CPU timers make it nearly free).
  ep::obs::ProfileThreadLabel profileRoot("serve/main");
  ep::obs::Profiler::global().registerCurrentThread();

  ep::net::ServerOptions netOpts;
  netOpts.port = args.port;
  netOpts.eventThreads = args.eventThreads;
  // Keep the ep_net_* transport family on the process registry the
  // {"op":"metrics"} handler renders (servers default to a private
  // per-instance registry now).
  netOpts.registry = &ep::obs::Registry::global();
  ep::net::Server server(netOpts, service.handler());
  std::string netError;
  if (!server.start(&netError)) {
    std::cerr << "epserved: " << netError << "\n";
    return 1;
  }

  std::cout << "epserved listening on 127.0.0.1:" << server.port()
            << " (threads=" << (brokerOpts.threads == 0
                                    ? std::thread::hardware_concurrency()
                                    : brokerOpts.threads)
            << " event-threads=" << args.eventThreads
            << " queue=" << brokerOpts.queueCapacity
            << " cache=" << brokerOpts.cacheCapacity
            << " meter=" << (engineOpts.useMeter ? "on" : "off")
            << " watchdog=" << (args.watchdog ? "on" : "off")
            << " scrape-ms=" << (args.scrapeMs > 0 ? args.scrapeMs : 0)
            << " slos=" << sloSpecs.size()
            << (engineOpts.faults.enabled ? " fault-offset=" : "")
            << (engineOpts.faults.enabled
                    ? std::to_string(engineOpts.faults.offsetWatts)
                    : "")
            << ")" << std::endl;

  if (pipe(gStopPipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  char byte = 0;
  while (read(gStopPipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "epserved: draining..." << std::endl;
  scraper.stop();
  // Order matters: stop the transport first (drops unanswered frames),
  // THEN drain the broker — its late done-callbacks hit a stopped but
  // still-alive server and are ignored.
  server.stop();
  service.stop();
  broker.shutdown();
  ep::power::setMeasureObserver(nullptr);
  std::cout << ep::serve::formatMetrics(broker.metrics());
  return 0;
}
