// Randomized calibration search for the GPU architecture-response
// constants (GpuTuning) against the paper's reported shape targets.
//
// Run as:  tune p100 <iterations>   or   tune k40c <iterations>
// Prints the best-scoring constant set; winners are baked into
// GpuModel::defaultTuning.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/journal.hpp"
#include "core/study.hpp"
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>

#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"
#include "obs/trace.hpp"
#include "pareto/tradeoff.hpp"

using namespace ep;

namespace {

// Squared relative miss of value vs target, scaled by weight.
double miss(double value, double target, double weight) {
  const double rel = (value - target) / target;
  return weight * rel * rel;
}

// Shared evaluation pool (--threads N); scores are identical with or
// without it because the parallel study path is bitwise-deterministic.
std::unique_ptr<ThreadPool> gPool;

// Iteration-score checkpoint for --checkpoint: a "epsimtune 1 <hash16>"
// header, then one "I <iter> <scorebits16>" line per scored candidate
// (NaN bits record a candidate whose evaluation threw).  On resume the
// search still *samples* every candidate — the RNG stream advances
// exactly as in the original run — and only the expensive scoring is
// skipped, so an interrupted search continues bit-identically.
class ScoreJournal {
 public:
  ScoreJournal(std::string path, std::uint64_t hash) : path_(std::move(path)) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(hash));
    std::ifstream in(path_);
    std::string tag;
    if (!(in >> tag)) {
      std::ofstream out(path_, std::ios::trunc);
      out << "epsimtune 1 " << hex << "\n";
      return;
    }
    int version = 0;
    std::string stored;
    if (tag != "epsimtune" || !(in >> version >> stored) || version != 1 ||
        stored != hex) {
      std::fprintf(stderr,
                   "tune: checkpoint %s was recorded by a different search"
                   " (target, mode or iteration count changed); refusing"
                   " to resume\n",
                   path_.c_str());
      std::exit(2);
    }
    int iter = 0;
    std::string bits;
    // Any anomaly (a torn tail from a crash mid-append) ends the replay;
    // everything before it is still usable.
    while (in >> tag >> iter >> bits) {
      if (tag != "I" || bits.size() != 16) break;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(bits.c_str(), &end, 16);
      if (end != bits.c_str() + 16) break;
      scores_[iter] = core::bitsToDouble(static_cast<std::uint64_t>(v));
    }
    std::fprintf(stderr, "tune: resumed %zu scored iterations from %s\n",
                 scores_.size(), path_.c_str());
  }

  [[nodiscard]] std::optional<double> get(int iter) const {
    const auto it = scores_.find(iter);
    if (it == scores_.end()) return std::nullopt;
    return it->second;
  }

  void put(int iter, double score) {
    char bits[17];
    std::snprintf(bits, sizeof bits, "%016llx",
                  static_cast<unsigned long long>(core::doubleBits(score)));
    std::ofstream out(path_, std::ios::app);
    out << "I " << iter << " " << bits << "\n" << std::flush;
  }

 private:
  std::string path_;
  std::map<int, double> scores_;
};

std::unique_ptr<ScoreJournal> gJournal;

core::WorkloadResult runN(const hw::GpuSpec& spec, const hw::GpuTuning& t,
                          int n) {
  apps::GpuMatMulOptions fast;
  fast.useMeter = false;
  apps::GpuMatMulApp app(hw::GpuModel(spec, t), fast);
  core::GpuEpStudy study(app);
  Rng rng(1);
  return study.runWorkload(n, rng, gPool.get());
}

int perfOptimalBs(const core::WorkloadResult& r) {
  const auto& p = r.globalTradeoff.performanceOptimal;
  return r.data[p.configId].config.bs;
}

double scoreP100(const hw::GpuTuning& t) {
  const hw::GpuSpec spec = hw::nvidiaP100Pcie();
  double s = 0.0;

  // N=10240: 3-point global front, (50 %, 11 %).
  const auto r10240 = runN(spec, t, 10240);
  s += miss(static_cast<double>(r10240.globalFront.size()), 3.0, 3.0);
  s += miss(r10240.globalTradeoff.maxEnergySavings, 0.50, 6.0);
  s += miss(r10240.globalTradeoff.performanceDegradation, 0.11, 6.0);
  if (perfOptimalBs(r10240) != 32) s += 10.0;

  // N=18432 (Fig 2): 2-point front, (12.5 %, 2.5 %); BS<=30: (24 %, 8 %).
  const auto r18432 = runN(spec, t, 18432);
  s += miss(static_cast<double>(r18432.globalFront.size()), 2.0, 2.0);
  s += miss(r18432.globalTradeoff.maxEnergySavings, 0.125, 4.0);
  s += miss(r18432.globalTradeoff.performanceDegradation, 0.025, 2.0);
  if (perfOptimalBs(r18432) != 32) s += 10.0;
  {
    std::vector<pareto::BiPoint> le30;
    for (const auto& d : r18432.data) {
      if (d.config.bs <= 30) le30.push_back(d.toPoint(le30.size()));
    }
    const auto tr = pareto::analyzeTradeoff(le30);
    s += miss(tr.maxEnergySavings, 0.24, 3.0);
    s += miss(tr.performanceDegradation, 0.08, 2.0);
  }

  // Sweep statistics: global fronts average 2, max 3.
  double sumFront = 0.0;
  std::size_t maxFront = 0;
  const std::vector<int> sweep{10240, 11264, 12288, 13312, 14336, 15360,
                               16384, 17408, 18432};
  for (int n : sweep) {
    const auto r = runN(spec, t, n);
    sumFront += static_cast<double>(r.globalFront.size());
    maxFront = std::max(maxFront, r.globalFront.size());
    if (perfOptimalBs(r) != 32) s += 2.0;
  }
  s += miss(sumFront / sweep.size(), 2.0, 2.0);
  if (maxFront > 3) s += 2.0 * static_cast<double>(maxFront - 3);
  return s;
}

double scoreK40c(const hw::GpuTuning& t) {
  const hw::GpuSpec spec = hw::nvidiaK40c();
  double s = 0.0;
  double sumLocal = 0.0;
  std::size_t maxLocal = 0;
  double bestLocalSavings = 0.0;
  double degAtBest = 0.0;
  const std::vector<int> sweep{8704, 9728, 10240, 11264, 12288, 13312,
                               14336};
  for (int n : sweep) {
    const auto r = runN(spec, t, n);
    // Global front must collapse to a single point at BS=32.
    if (r.globalFront.size() != 1) {
      s += 3.0 * std::fabs(static_cast<double>(r.globalFront.size()) - 1.0);
    }
    if (perfOptimalBs(r) != 32) s += 10.0;
    sumLocal += static_cast<double>(r.localFront.size());
    maxLocal = std::max(maxLocal, r.localFront.size());
    if (r.localTradeoff &&
        r.localTradeoff->maxEnergySavings > bestLocalSavings) {
      bestLocalSavings = r.localTradeoff->maxEnergySavings;
      degAtBest = r.localTradeoff->performanceDegradation;
    }
  }
  s += miss(sumLocal / sweep.size(), 4.0, 3.0);
  s += miss(static_cast<double>(maxLocal), 5.0, 1.0);
  s += miss(bestLocalSavings, 0.18, 6.0);
  s += miss(degAtBest, 0.07, 4.0);
  return s;
}

// Score a candidate through the checkpoint: cached iterations skip the
// sweep entirely; fresh ones are scored and appended.  NaN = "threw".
std::optional<double> scoreCheckpointed(int iter, bool isP100,
                                        const hw::GpuTuning& t) {
  if (gJournal) {
    if (const auto cached = gJournal->get(iter)) {
      if (std::isnan(*cached)) return std::nullopt;
      return *cached;
    }
  }
  double score;
  try {
    score = isP100 ? scoreP100(t) : scoreK40c(t);
  } catch (const ep::EpError&) {
    if (gJournal) gJournal->put(iter, std::nan(""));
    return std::nullopt;
  }
  if (gJournal) gJournal->put(iter, score);
  return score;
}

hw::GpuTuning sampleP100(Rng& rng, const hw::GpuTuning& base) {
  hw::GpuTuning t = base;
  t.smEnergyPerGflop = rng.uniform(0.02, 0.14);
  t.memEnergyPerGB = rng.uniform(0.08, 0.45);
  t.residencyPower = rng.uniform(5.0, 45.0);
  t.boostPowerExponent = rng.uniform(3.0, 7.5);
  t.midBinBoostFraction = rng.uniform(0.15, 0.75);
  t.occScaleCompute = rng.uniform(0.15, 0.55);
  t.fetchPowerPerLevel = rng.uniform(1.0, 8.0);
  t.gLinearPenalty = rng.uniform(0.001, 0.01);
  t.runWarmupFraction = rng.uniform(0.002, 0.02);
  t.constantActivePower = rng.uniform(3.0, 15.0);
  t.bandwidthEfficiency = rng.uniform(0.45, 0.95);
  t.uncoreTailSec = rng.uniform(0.5, 8.0);
  return t;
}

hw::GpuTuning sampleK40c(Rng& rng, const hw::GpuTuning& base) {
  hw::GpuTuning t = base;
  t.smEnergyPerGflop = rng.uniform(0.05, 0.35);
  t.memEnergyPerGB = rng.uniform(0.1, 0.7);
  t.residencyPower = rng.uniform(5.0, 45.0);
  t.occScaleCompute = rng.uniform(0.15, 0.55);
  t.fetchPowerPerLevel = rng.uniform(1.0, 10.0);
  t.gLinearPenalty = rng.uniform(0.001, 0.012);
  t.runWarmupFraction = rng.uniform(0.002, 0.025);
  t.constantActivePower = rng.uniform(3.0, 15.0);
  t.bandwidthEfficiency = rng.uniform(0.5, 1.0);
  t.uncoreTailSec = rng.uniform(0.5, 4.0);
  return t;
}

void print(const hw::GpuTuning& t, double score) {
  std::printf(
      "score=%.4f\n"
      "  t.smEnergyPerGflop = %.4f;\n"
      "  t.memEnergyPerGB = %.4f;\n"
      "  t.residencyPower = %.2f;\n"
      "  t.fetchPowerPerLevel = %.2f;\n"
      "  t.constantActivePower = %.2f;\n"
      "  t.occScaleCompute = %.3f;\n"
      "  t.boostPowerExponent = %.3f;\n"
      "  t.midBinBoostFraction = %.3f;\n"
      "  t.gLinearPenalty = %.4f;\n"
      "  t.runWarmupFraction = %.4f;\n"
      "  t.bandwidthEfficiency = %.3f;\n"
      "  t.uncoreTailSec = %.3f;\n",
      score, t.smEnergyPerGflop, t.memEnergyPerGB, t.residencyPower,
      t.fetchPowerPerLevel, t.constantActivePower, t.occScaleCompute,
      t.boostPowerExponent, t.midBinBoostFraction, t.gLinearPenalty,
      t.runWarmupFraction, t.bandwidthEfficiency, t.uncoreTailSec);
}

}  // namespace

// Stochastic hill climb around a starting point: perturb one random
// field at a time by a shrinking relative step, keep improvements.
hw::GpuTuning localRefine(const hw::GpuTuning& start, bool isP100,
                          int iterations, Rng& rng, double& bestScore) {
  auto fields = [](hw::GpuTuning& t) {
    return std::vector<double*>{
        &t.smEnergyPerGflop,  &t.memEnergyPerGB,     &t.residencyPower,
        &t.fetchPowerPerLevel, &t.constantActivePower, &t.occScaleCompute,
        &t.boostPowerExponent, &t.midBinBoostFraction, &t.gLinearPenalty,
        &t.runWarmupFraction,  &t.bandwidthEfficiency, &t.uncoreTailSec};
  };
  // Physical bounds per field (same order as fields()).
  const std::vector<std::pair<double, double>> bounds{
      {0.0005, 0.30}, {0.01, 0.70}, {2.0, 60.0},  {0.5, 10.0},
      {1.0, 20.0},    {0.12, 0.50}, {2.5, 6.0},   {0.20, 0.80},
      {5e-4, 0.02},   {1e-3, 0.08}, {0.50, 1.00}, {0.3, 6.0}};
  hw::GpuTuning best = start;
  // Iteration -1 = the starting point's score (also checkpointed).
  bestScore = scoreCheckpointed(-1, isP100, best).value();
  for (int i = 0; i < iterations; ++i) {
    const double step = 0.30 * std::exp(-2.0 * i / iterations);
    hw::GpuTuning cand = best;
    auto ptrs = fields(cand);
    const std::size_t k = rng.uniformInt(0, ptrs.size() - 1);
    *ptrs[k] *= 1.0 + rng.uniform(-step, step);
    *ptrs[k] = std::clamp(*ptrs[k], bounds[k].first, bounds[k].second);
    const auto score = scoreCheckpointed(i, isP100, cand);
    if (!score) continue;
    if (*score < bestScore) {
      bestScore = *score;
      best = cand;
    }
  }
  return best;
}

int main(int argc, char** argv) {
  // Extract --trace <path> wherever it appears; the rest stays
  // positional.
  const char* tracePath = nullptr;
  const char* checkpointPath = nullptr;
  std::size_t threads = 0;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::string_view(argv[i]) == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::string_view(argv[i]) == "--checkpoint" && i + 1 < argc) {
      checkpointPath = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: tune {p100|k40c} [iterations] [--local]"
                 " [--trace out.json] [--threads N] [--checkpoint f]\n"
                 "  --local: hill-climb from the built-in defaults instead\n"
                 "           of random search\n"
                 "  --threads: evaluate each candidate's configuration\n"
                 "           space on N pool threads (identical scores;\n"
                 "           use the physical core count)\n"
                 "  --checkpoint: append per-iteration scores to f and\n"
                 "           resume an interrupted search bit-identically\n");
    return 1;
  }
  if (threads > 0) gPool = std::make_unique<ThreadPool>(threads);
  const std::string which = args[0];
  const int iterations = args.size() > 1 ? std::atoi(args[1].c_str()) : 2000;
  const bool isP100 = which == "p100";
  const bool local = args.size() > 2 && args[2] == "--local";
  if (tracePath) obs::Tracer::global().setEnabled(true);
  if (checkpointPath) {
    // The journal identity covers everything that changes which score
    // belongs to which iteration: target device, search mode, iteration
    // count (the --local step schedule depends on it) and the seed.
    std::uint64_t h = mix64(0, isP100 ? 1 : 2);
    h = mix64(h, local ? 1 : 0);
    h = mix64(h, static_cast<std::uint64_t>(iterations));
    h = mix64(h, 2024);
    gJournal = std::make_unique<ScoreJournal>(checkpointPath, h);
  }

  Rng rng(2024);
  hw::GpuTuning best;
  double bestScore = 1e300;
  {
    // Top-level span covering the search; closed before export.
    obs::Span run("tune/search");
    if (local) {
      const hw::GpuModel model(isP100 ? hw::nvidiaP100Pcie()
                                      : hw::nvidiaK40c());
      best = localRefine(model.tuning(), isP100, iterations, rng, bestScore);
    } else {
      const hw::GpuTuning base;
      for (int i = 0; i < iterations; ++i) {
        // Sampling always draws — the stream must advance identically
        // whether or not this iteration's score comes from the journal.
        const hw::GpuTuning cand =
            isP100 ? sampleP100(rng, base) : sampleK40c(rng, base);
        const auto score = scoreCheckpointed(i, isP100, cand);
        if (!score) continue;
        if (*score < bestScore) {
          bestScore = *score;
          best = cand;
          std::printf("[iter %d] ", i);
          print(best, bestScore);
          std::fflush(stdout);
        }
      }
    }
  }
  std::printf("\nBEST for %s:\n", which.c_str());
  print(best, bestScore);

  if (tracePath) {
    std::ofstream out(tracePath);
    out << obs::Tracer::global().exportChromeTrace();
    if (!out) {
      std::fprintf(stderr, "tune: cannot write trace to %s\n", tracePath);
      return 1;
    }
    std::fprintf(stderr, "tune: wrote %zu trace events to %s\n",
                 obs::Tracer::global().recordedCount(), tracePath);
  }
  return 0;
}
