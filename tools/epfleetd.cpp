// epfleetd — the epfleet TCP frontend: N broker shards behind one
// energy-aware router, speaking the same line-delimited-JSON protocol
// as epserved (see serve/wire.hpp) plus the fleet vocabulary:
//
//   {"op":"tune","device":"auto","n":10240,"maxDegradation":0.11}
//   {"op":"fleet"}                                  — cluster snapshot
//   {"op":"fleet","action":"kill","shard":"s1"}     — drill operations
//   {"op":"fleet","action":"revive","shard":"s1"}
//   {"op":"fleet","action":"remove","shard":"s1"}   — ring rebalance
//   {"op":"fleet","action":"add","shard":"s1"}
//
// "device":"auto" lets the router place the workload on the cheaper
// device by its EWMA cold-study price table.  The fleet snapshot
// carries per-shard gauges, cluster energy, both cluster Pareto front
// sizes, and frontsConsistent (streaming fronts vs batch recompute).
//
// Cluster observability plane:
//   {"op":"metrics","scope":"cluster"}                — federated
//     Prometheus text: per-shard broker registries merged (counters
//     summed, gauges labeled {shard="sN"}, histogram buckets added);
//     "format":"openmetrics" renders OpenMetrics 1.0 with exemplars.
//   {"op":"tsdb", ...}  — windowed queries over the in-process tsdb,
//     fed by a background scraper of the cluster registry every
//     --scrape-ms.
//   {"op":"slo"}        — burn-rate state of every --slo declaration.
//   {"op":"events"}     — per-shard watchdog recorders (--watchdog)
//     drained with "shard" tags, plus SLO burn transitions.
//
// The shards are in-process broker replicas sharing one deterministic
// engine (same seed => same tuning hash, so a replica resurrected from
// a peer's stale store answers for the same cache identity).  --port 0
// picks an ephemeral port; the chosen one is printed either way.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/watchdog.hpp"
#include "fleet/router.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "serve/engine.hpp"
#include "serve/wire.hpp"

namespace {

std::atomic<int> gListenFd{-1};

void handleStopSignal(int) {
  // Closing the listener unblocks accept(); the main loop drains.
  const int fd = gListenFd.exchange(-1);
  if (fd >= 0) close(fd);
}

class FdRegistry {
 public:
  void add(int fd) {
    std::lock_guard lk(mu_);
    fds_.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard lk(mu_);
    std::erase(fds_, fd);
  }
  void shutdownAll() {
    std::lock_guard lk(mu_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  std::vector<int> fds_;
};

struct Args {
  std::uint16_t port = 7071;
  std::size_t shards = 3;
  std::size_t threads = 2;  // broker workers per shard
  std::size_t queue = 64;
  std::size_t cache = 128;
  std::string policy = "energy";
  std::size_t vnodes = 64;
  std::uint64_t seed = 0xEB5EEDULL;
  bool meter = false;
  bool tracing = false;
  bool watchdog = false;
  std::int64_t scrapeMs = 250;  // 0 disables the background scraper
  std::vector<std::string> sloSpecs;
  std::vector<ep::obs::BurnWindow> sloWindows;
};

bool parseBurnWindow(const std::string& text, ep::obs::BurnWindow* out) {
  long long longMs = 0;
  long long shortMs = 0;
  double burn = 0.0;
  if (std::sscanf(text.c_str(), "%lld:%lld:%lf", &longMs, &shortMs, &burn) !=
          3 ||
      longMs <= 0 || shortMs <= 0 || shortMs > longMs || !(burn > 0.0)) {
    return false;
  }
  out->longMs = longMs;
  out->shortMs = shortMs;
  out->burnThreshold = burn;
  return true;
}

bool parseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next();
      if (!v) return false;
      out->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return false;
      out->shards = static_cast<std::size_t>(std::stoul(v));
      if (out->shards == 0) return false;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--queue") {
      const char* v = next();
      if (!v) return false;
      out->queue = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--cache") {
      const char* v = next();
      if (!v) return false;
      out->cache = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--policy") {
      const char* v = next();
      if (!v) return false;
      out->policy = v;
    } else if (a == "--vnodes") {
      const char* v = next();
      if (!v) return false;
      out->vnodes = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      out->seed = std::stoull(v);
    } else if (a == "--meter") {
      out->meter = true;
    } else if (a == "--tracing") {
      out->tracing = true;
    } else if (a == "--watchdog") {
      out->watchdog = true;
    } else if (a == "--scrape-ms") {
      const char* v = next();
      if (!v) return false;
      out->scrapeMs = std::stoll(v);
    } else if (a == "--slo") {
      const char* v = next();
      if (!v) return false;
      out->sloSpecs.emplace_back(v);
    } else if (a == "--slo-window") {
      const char* v = next();
      ep::obs::BurnWindow w;
      if (!v || !parseBurnWindow(v, &w)) return false;
      out->sloWindows.push_back(w);
    } else {
      return false;
    }
  }
  return true;
}

std::string handleFleetOp(ep::fleet::FleetRouter& router,
                          const ep::serve::wire::WireRequest& req) {
  if (req.fleetAction == "snapshot") return router.renderWireSnapshot();
  bool ok = false;
  if (req.fleetAction == "kill") {
    ok = router.killShard(req.fleetShard);
  } else if (req.fleetAction == "revive") {
    ok = router.reviveShard(req.fleetShard);
  } else if (req.fleetAction == "remove") {
    ok = router.removeShardFromRing(req.fleetShard);
  } else if (req.fleetAction == "add") {
    ok = router.addShardToRing(req.fleetShard);
  }
  if (!ok) {
    return ep::serve::wire::encodeError("unknown shard \"" + req.fleetShard +
                                        "\"");
  }
  ep::serve::wire::ObjectWriter w;
  w.add("status", "ok")
      .add("action", req.fleetAction)
      .add("shard", req.fleetShard);
  return w.str();
}

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One per-shard flight recorder (the shard broker's watchdog), drained
// with its shard id as the event tag.
using ShardWatchdogs =
    std::vector<std::pair<std::string, ep::core::PowerAnomalyWatchdog*>>;

void serveConnection(int fd, ep::fleet::FleetRouter& router,
                     const ShardWatchdogs& watchdogs,
                     const ep::obs::TimeSeriesStore& tsdb,
                     ep::obs::SloEngine* slo) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.find('\n') == std::string::npos &&
        buffer.size() > ep::serve::wire::kMaxFrameBytes) {
      const std::string reply =
          ep::serve::wire::encodeError("frame too large") + "\n";
      (void)send(fd, reply.data(), reply.size(), 0);
      break;
    }
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string response;
      std::string error;
      const auto req = ep::serve::wire::decodeRequest(line, &error);
      if (!req) {
        response = ep::serve::wire::encodeError(error);
      } else {
        switch (req->op) {
          case ep::serve::wire::WireRequest::Op::Tune: {
            ep::obs::TraceContext root;
            root.traceId = ep::obs::traceIdFromString(req->traceId);
            ep::obs::ScopedTraceContext traceScope(root);
            ep::obs::Span span("fleet/request");
            ep::fleet::FleetRequest freq;
            if (!req->deviceAuto) freq.device = req->tune.device;
            freq.n = req->tune.n;
            freq.maxDegradation = req->tune.maxDegradation;
            freq.deadlineMs = req->tune.deadlineMs;
            response = ep::serve::wire::encodeTuneResponse(
                router.tune(freq), req->traceId, req->report);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Study: {
            ep::obs::TraceContext root;
            root.traceId = ep::obs::traceIdFromString(req->traceId);
            ep::obs::ScopedTraceContext traceScope(root);
            ep::obs::Span span("fleet/request");
            response = ep::serve::wire::encodeStudyResponse(
                router.study(req->study), req->traceId, req->report);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Metrics: {
            const auto fmt =
                req->metricsFormat ==
                        ep::serve::wire::MetricsFormat::OpenMetrics
                    ? ep::obs::ExpositionFormat::OpenMetrics100
                    : ep::obs::ExpositionFormat::Prometheus004;
            if (req->clusterScope) {
              // Federated cluster registry: every shard broker's
              // snapshot merged (counters summed, gauges shard-
              // labeled, histogram buckets added).
              response = ep::serve::wire::encodeTextBody(
                  router.renderClusterMetrics(fmt));
            } else if (req->metricsFormat ==
                       ep::serve::wire::MetricsFormat::Json) {
              // The cluster snapshot is the fleet's flat-JSON surface.
              response = router.renderWireSnapshot();
            } else {
              response = ep::serve::wire::encodeTextBody(
                  ep::obs::renderExposition(
                      ep::obs::Registry::global().snapshot(), fmt));
            }
            break;
          }
          case ep::serve::wire::WireRequest::Op::Trace:
            response = ep::serve::wire::encodeTextBody(
                ep::obs::Tracer::global().exportChromeTrace());
            break;
          case ep::serve::wire::WireRequest::Op::Events: {
            if (watchdogs.empty() && slo == nullptr) {
              response = ep::serve::wire::encodeError(
                  "no flight recorders armed (start epfleetd with"
                  " --watchdog and/or --slo)");
              break;
            }
            std::string body;
            std::uint64_t alerts = 0;
            std::uint64_t recorded = 0;
            std::uint64_t dropped = 0;
            for (const auto& [shardId, wd] : watchdogs) {
              for (const ep::obs::FlightEvent& e :
                   wd->events(req->eventsSince)) {
                body += ep::obs::encodeFlightEventLine(e, shardId);
                body += '\n';
              }
              alerts += wd->activeAlerts();
              recorded += wd->recorder().recorded();
              dropped += wd->recorder().dropped();
            }
            if (slo != nullptr) {
              for (const ep::obs::FlightEvent& e :
                   slo->events(req->eventsSince)) {
                body += ep::obs::encodeFlightEventLine(e, "cluster");
                body += '\n';
              }
              alerts += slo->activeAlerts();
              recorded += slo->recorder().recorded();
              dropped += slo->recorder().dropped();
            }
            response = ep::serve::wire::encodeEvents(alerts, recorded,
                                                     dropped, body);
            break;
          }
          case ep::serve::wire::WireRequest::Op::Tsdb:
            response =
                ep::serve::wire::encodeTsdbResponse(tsdb, *req, steadyNowNs());
            break;
          case ep::serve::wire::WireRequest::Op::Slo:
            if (slo == nullptr) {
              response = ep::serve::wire::encodeError(
                  "no SLOs declared (start epfleetd with --slo)");
            } else {
              response = ep::serve::wire::encodeSloStatus(slo->status());
            }
            break;
          case ep::serve::wire::WireRequest::Op::Fleet:
            response = handleFleetOp(router, *req);
            break;
        }
      }
      response += '\n';
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n =
            send(fd, response.data() + sent, response.size() - sent, 0);
        if (n <= 0) return;
        sent += static_cast<std::size_t>(n);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: epfleetd [--port P] [--shards N] [--threads T]"
                 " [--queue Q] [--cache C] [--policy rr|queue|energy]"
                 " [--vnodes V] [--seed S] [--meter] [--tracing]"
                 " [--watchdog] [--scrape-ms MS] [--slo SPEC]..."
                 " [--slo-window L:S:B]...\n";
    return 2;
  }
  std::vector<ep::obs::SloSpec> sloSpecs;
  for (const std::string& text : args.sloSpecs) {
    std::string sloError;
    const auto spec = ep::obs::parseSloSpec(text, &sloError);
    if (!spec) {
      std::cerr << "epfleetd: " << sloError << "\n";
      return 2;
    }
    sloSpecs.push_back(*spec);
  }
  const auto policy = ep::fleet::parsePolicy(args.policy);
  if (!policy) {
    std::cerr << "epfleetd: unknown policy \"" << args.policy << "\"\n";
    return 2;
  }
  if (args.tracing) ep::obs::Tracer::global().setEnabled(true);

  ep::serve::EpStudyEngineOptions engineOpts;
  engineOpts.useMeter = args.meter;
  engineOpts.seed = args.seed;
  // One shared deterministic engine: every shard computes the same
  // result for a key, which is what makes stale replicas equivalent.
  auto engine = std::make_shared<ep::serve::EpStudyEngine>(engineOpts);

  // Per-shard watchdogs (declared before the router so shard brokers
  // can feed them request outcomes until the router drains).
  std::vector<std::unique_ptr<ep::core::PowerAnomalyWatchdog>> watchdogs;
  ShardWatchdogs shardWatchdogs;
  std::vector<ep::fleet::FleetShardConfig> shards;
  shards.reserve(args.shards);
  for (std::size_t i = 0; i < args.shards; ++i) {
    ep::fleet::FleetShardConfig cfg;
    cfg.id = "s" + std::to_string(i);
    cfg.engine = engine;
    cfg.broker.threads = args.threads;
    cfg.broker.queueCapacity = args.queue;
    cfg.broker.cacheCapacity = args.cache;
    if (args.watchdog) {
      watchdogs.push_back(std::make_unique<ep::core::PowerAnomalyWatchdog>(
          ep::core::WatchdogOptions{}));
      cfg.broker.watchdog = watchdogs.back().get();
      shardWatchdogs.emplace_back(cfg.id, watchdogs.back().get());
    }
    shards.push_back(std::move(cfg));
  }
  ep::fleet::FleetOptions fleetOpts;
  fleetOpts.policy = *policy;
  fleetOpts.virtualNodes = args.vnodes;
  ep::fleet::FleetRouter router(std::move(shards), fleetOpts);

  // Observability plane: scrape the federated cluster registry (plus
  // the process-wide one) into the tsdb; SLOs evaluate per scrape.
  ep::obs::TimeSeriesStore tsdb;
  std::unique_ptr<ep::obs::SloEngine> slo;
  if (!sloSpecs.empty()) {
    ep::obs::SloEngine::Options sloOpts;
    if (!args.sloWindows.empty()) sloOpts.defaultWindows = args.sloWindows;
    slo = std::make_unique<ep::obs::SloEngine>(&tsdb, sloSpecs, sloOpts);
  }
  ep::obs::Scraper::Options scrapeOpts;
  scrapeOpts.intervalMs = args.scrapeMs > 0 ? args.scrapeMs : 250;
  if (slo != nullptr) {
    scrapeOpts.afterScrape = [&slo](std::int64_t nowNs) {
      slo->evaluate(nowNs);
    };
  }
  ep::obs::Scraper scraper(
      &tsdb,
      [&router] {
        ep::obs::RegistrySnapshot snap = router.clusterSnapshot();
        snap.append(ep::obs::Registry::global().snapshot());
        return snap;
      },
      scrapeOpts);
  if (args.scrapeMs > 0) scraper.start();

  const int listenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(args.port);
  if (bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(listenFd, 64) < 0) {
    std::perror("bind/listen");
    close(listenFd);
    return 1;
  }
  socklen_t len = sizeof addr;
  getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::cout << "epfleetd listening on 127.0.0.1:" << ntohs(addr.sin_port)
            << " (shards=" << args.shards << " threads=" << args.threads
            << " policy=" << ep::fleet::policyName(*policy)
            << " vnodes=" << args.vnodes
            << " meter=" << (args.meter ? "on" : "off")
            << " watchdog=" << (args.watchdog ? "on" : "off")
            << " scrape-ms=" << (args.scrapeMs > 0 ? args.scrapeMs : 0)
            << " slos=" << sloSpecs.size() << ")" << std::endl;

  gListenFd.store(listenFd);
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);

  FdRegistry registry;
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listenFd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by the signal handler
    registry.add(fd);
    connections.emplace_back(
        [fd, &router, &registry, &shardWatchdogs, &tsdb, &slo] {
          serveConnection(fd, router, shardWatchdogs, tsdb, slo.get());
          registry.remove(fd);
          close(fd);
        });
  }

  std::cout << "epfleetd: draining..." << std::endl;
  scraper.stop();
  router.shutdown();
  registry.shutdownAll();
  for (auto& t : connections) t.join();
  std::cout << router.renderWireSnapshot() << std::endl;
  return 0;
}
