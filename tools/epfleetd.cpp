// epfleetd — the epfleet TCP frontend: N broker shards behind one
// energy-aware router, mounted on the same net::Server event loop as
// epserved (edge-triggered epoll, SO_REUSEPORT sharding, cross-
// connection request batching).  Two wire framings share the port,
// picked per connection by the first byte: line-delimited JSON (see
// serve/wire.hpp) and EPB1 binary framing (net/frame.hpp).  The fleet
// vocabulary on top of the serve one:
//
//   {"op":"tune","device":"auto","n":10240,"maxDegradation":0.11}
//   {"op":"fleet"}                                  — cluster snapshot
//   {"op":"fleet","action":"kill","shard":"s1"}     — drill operations
//   {"op":"fleet","action":"revive","shard":"s1"}
//   {"op":"fleet","action":"remove","shard":"s1"}   — ring rebalance
//   {"op":"fleet","action":"add","shard":"s1"}
//
// "device":"auto" lets the router place the workload on the cheaper
// device by its EWMA cold-study price table (binary tune frames carry
// the same flag).  Every tune drained in one epoll round — across all
// connections — is routed lock-free and handed to the shard brokers
// through ONE FleetRouter::submitTuneBatch call.  The fleet snapshot
// carries per-shard gauges, cluster energy, both cluster Pareto front
// sizes, and frontsConsistent (streaming fronts vs batch recompute).
//
// Cluster observability plane:
//   {"op":"metrics","scope":"cluster"}                — federated
//     Prometheus text: per-shard broker registries merged (counters
//     summed, gauges labeled {shard="sN"}, histogram buckets added);
//     "format":"openmetrics" renders OpenMetrics 1.0 with exemplars.
//   {"op":"tsdb", ...}  — windowed queries over the in-process tsdb,
//     fed by a background scraper of the cluster registry every
//     --scrape-ms.
//   {"op":"slo"}        — burn-rate state of every --slo declaration.
//   {"op":"events"}     — per-shard watchdog recorders (--watchdog)
//     drained with "shard" tags, SLO burn transitions, and — with
//     --health-probe-ms — shard eject/reinstate transitions from the
//     self-healing monitor, tagged "fleet".
//
// The shards are in-process broker replicas sharing one deterministic
// engine (same seed => same tuning hash, so a replica resurrected from
// a peer's stale store answers for the same cache identity).  --port 0
// picks an ephemeral port; the chosen one is printed either way.
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/watchdog.hpp"
#include "fleet/router.hpp"
#include "net/server.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

// Self-pipe: the signal handler's only async-signal-safe job is one
// write; the main thread parks on the read end.
int gStopPipe[2] = {-1, -1};

void handleStopSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t rc = write(gStopPipe[1], &byte, 1);
}

struct Args {
  std::uint16_t port = 7071;
  std::size_t shards = 3;
  std::size_t threads = 2;  // broker workers per shard
  std::size_t eventThreads = 1;
  std::size_t queue = 64;
  std::size_t cache = 128;
  std::string policy = "energy";
  std::size_t vnodes = 64;
  std::uint64_t seed = 0xEB5EEDULL;
  bool meter = false;
  bool tracing = false;
  bool watchdog = false;
  std::int64_t scrapeMs = 250;  // 0 disables the background scraper
  // Self-healing shard health: probe cadence of the background monitor
  // (fleet/router.hpp FleetHealthOptions); 0 disables health entirely,
  // keeping the fleet bitwise-identical to a pre-epchaos one.
  double healthProbeMs = 0.0;
  std::vector<std::string> sloSpecs;
  std::vector<ep::obs::BurnWindow> sloWindows;
};

bool parseBurnWindow(const std::string& text, ep::obs::BurnWindow* out) {
  long long longMs = 0;
  long long shortMs = 0;
  double burn = 0.0;
  if (std::sscanf(text.c_str(), "%lld:%lld:%lf", &longMs, &shortMs, &burn) !=
          3 ||
      longMs <= 0 || shortMs <= 0 || shortMs > longMs || !(burn > 0.0)) {
    return false;
  }
  out->longMs = longMs;
  out->shortMs = shortMs;
  out->burnThreshold = burn;
  return true;
}

bool parseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const char* v = next();
      if (!v) return false;
      out->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return false;
      out->shards = static_cast<std::size_t>(std::stoul(v));
      if (out->shards == 0) return false;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--event-threads") {
      const char* v = next();
      if (!v) return false;
      out->eventThreads = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--queue") {
      const char* v = next();
      if (!v) return false;
      out->queue = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--cache") {
      const char* v = next();
      if (!v) return false;
      out->cache = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--policy") {
      const char* v = next();
      if (!v) return false;
      out->policy = v;
    } else if (a == "--vnodes") {
      const char* v = next();
      if (!v) return false;
      out->vnodes = static_cast<std::size_t>(std::stoul(v));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      out->seed = std::stoull(v);
    } else if (a == "--meter") {
      out->meter = true;
    } else if (a == "--tracing") {
      out->tracing = true;
    } else if (a == "--watchdog") {
      out->watchdog = true;
    } else if (a == "--scrape-ms") {
      const char* v = next();
      if (!v) return false;
      out->scrapeMs = std::stoll(v);
    } else if (a == "--health-probe-ms") {
      const char* v = next();
      if (!v) return false;
      out->healthProbeMs = std::stod(v);
      if (out->healthProbeMs < 0.0) return false;
    } else if (a == "--slo") {
      const char* v = next();
      if (!v) return false;
      out->sloSpecs.emplace_back(v);
    } else if (a == "--slo-window") {
      const char* v = next();
      ep::obs::BurnWindow w;
      if (!v || !parseBurnWindow(v, &w)) return false;
      out->sloWindows.push_back(w);
    } else {
      return false;
    }
  }
  return true;
}

std::string handleFleetOp(ep::fleet::FleetRouter& router,
                          const ep::serve::wire::WireRequest& req) {
  if (req.fleetAction == "snapshot") return router.renderWireSnapshot();
  bool ok = false;
  if (req.fleetAction == "kill") {
    ok = router.killShard(req.fleetShard);
  } else if (req.fleetAction == "revive") {
    ok = router.reviveShard(req.fleetShard);
  } else if (req.fleetAction == "remove") {
    ok = router.removeShardFromRing(req.fleetShard);
  } else if (req.fleetAction == "add") {
    ok = router.addShardToRing(req.fleetShard);
  }
  if (!ok) {
    return ep::serve::wire::encodeError("unknown shard \"" + req.fleetShard +
                                        "\"");
  }
  ep::serve::wire::ObjectWriter w;
  w.add("status", "ok")
      .add("action", req.fleetAction)
      .add("shard", req.fleetShard);
  return w.str();
}

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One per-shard flight recorder (the shard broker's watchdog), drained
// with its shard id as the event tag.
using ShardWatchdogs =
    std::vector<std::pair<std::string, ep::core::PowerAnomalyWatchdog*>>;

// The non-tune, non-study op switch (runs inline on event threads; all
// of these are string renders).
std::string handleControlOp(const ep::serve::wire::WireRequest& req,
                            ep::fleet::FleetRouter& router,
                            const ShardWatchdogs& watchdogs,
                            const ep::obs::TimeSeriesStore& tsdb,
                            ep::obs::SloEngine* slo, bool healthArmed) {
  using ep::serve::wire::WireRequest;
  switch (req.op) {
    case WireRequest::Op::Metrics: {
      const auto fmt =
          req.metricsFormat == ep::serve::wire::MetricsFormat::OpenMetrics
              ? ep::obs::ExpositionFormat::OpenMetrics100
              : ep::obs::ExpositionFormat::Prometheus004;
      if (req.clusterScope) {
        // Federated cluster registry: every shard broker's snapshot
        // merged (counters summed, gauges shard-labeled, histogram
        // buckets added).
        return ep::serve::wire::encodeTextBody(
            router.renderClusterMetrics(fmt));
      }
      if (req.metricsFormat == ep::serve::wire::MetricsFormat::Json) {
        // The cluster snapshot is the fleet's flat-JSON surface.
        return router.renderWireSnapshot();
      }
      // Process-wide registry (thread pools, cusim, study phases, the
      // ep_net_* transport family).
      return ep::serve::wire::encodeTextBody(ep::obs::renderExposition(
          ep::obs::Registry::global().snapshot(), fmt));
    }
    case WireRequest::Op::Trace:
      return ep::serve::wire::encodeTextBody(
          ep::obs::Tracer::global().exportChromeTrace());
    case WireRequest::Op::Events: {
      if (watchdogs.empty() && slo == nullptr && !healthArmed) {
        return ep::serve::wire::encodeError(
            "no flight recorders armed (start epfleetd with"
            " --watchdog, --slo and/or --health-probe-ms)");
      }
      std::string body;
      std::uint64_t alerts = 0;
      std::uint64_t recorded = 0;
      std::uint64_t dropped = 0;
      for (const auto& [shardId, wd] : watchdogs) {
        for (const ep::obs::FlightEvent& e : wd->events(req.eventsSince)) {
          body += ep::obs::encodeFlightEventLine(e, shardId);
          body += '\n';
        }
        alerts += wd->activeAlerts();
        recorded += wd->recorder().recorded();
        dropped += wd->recorder().dropped();
      }
      if (slo != nullptr) {
        for (const ep::obs::FlightEvent& e : slo->events(req.eventsSince)) {
          body += ep::obs::encodeFlightEventLine(e, "cluster");
          body += '\n';
        }
        alerts += slo->activeAlerts();
        recorded += slo->recorder().recorded();
        dropped += slo->recorder().dropped();
      }
      if (healthArmed) {
        // Shard eject/reinstate transitions from the health monitor.
        for (const ep::obs::FlightEvent& e :
             router.healthEvents(req.eventsSince)) {
          body += ep::obs::encodeFlightEventLine(e, "fleet");
          body += '\n';
          ++recorded;
        }
      }
      return ep::serve::wire::encodeEvents(alerts, recorded, dropped, body);
    }
    case WireRequest::Op::Tsdb:
      return ep::serve::wire::encodeTsdbResponse(tsdb, req, steadyNowNs());
    case WireRequest::Op::Slo:
      if (slo == nullptr) {
        return ep::serve::wire::encodeError(
            "no SLOs declared (start epfleetd with --slo)");
      }
      return ep::serve::wire::encodeSloStatus(slo->status());
    case WireRequest::Op::Fleet:
      return handleFleetOp(router, req);
    case WireRequest::Op::Profile: {
      ep::obs::Profiler& prof = ep::obs::Profiler::global();
      if (req.profileAction == "start") {
        ep::obs::ProfilerOptions popts;
        popts.samplePeriodUs = req.profilePeriodUs;
        popts.cpuSampling = req.profileCpuSampling;
        const bool started = prof.start(popts);
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(),
            started ? "start" : "already_running");
      }
      if (req.profileAction == "stop") {
        prof.stop();
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(), "stop");
      }
      if (req.profileAction == "clear") {
        prof.clear();
        return ep::serve::wire::encodeProfileStatus(
            prof.running(), prof.registeredThreads(), "clear");
      }
      if (req.profileAction == "snapshot") {
        const ep::obs::ProfileKind kind = req.profileKind == "energy"
                                              ? ep::obs::ProfileKind::Energy
                                              : ep::obs::ProfileKind::Cpu;
        // Cluster scope federates shard profiles (stacks partitioned by
        // the shard/<id> roots, merged back like clusterSnapshot()).
        return ep::serve::wire::encodeProfileSnapshot(
            req.clusterScope ? router.clusterProfile(kind)
                             : ep::obs::Profiler::global().snapshot(kind),
            req);
      }
      return ep::serve::wire::encodeProfileStatus(
          prof.running(), prof.registeredThreads(), "status");
    }
    case WireRequest::Op::Tune:
    case WireRequest::Op::Study:
      break;  // handled by NetService, never routed here
  }
  return ep::serve::wire::encodeError("unsupported op");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: epfleetd [--port P] [--shards N] [--threads T]"
                 " [--event-threads E] [--queue Q] [--cache C]"
                 " [--policy rr|queue|energy]"
                 " [--vnodes V] [--seed S] [--meter] [--tracing]"
                 " [--watchdog] [--scrape-ms MS] [--health-probe-ms MS]"
                 " [--slo SPEC]... [--slo-window L:S:B]...\n";
    return 2;
  }
  std::vector<ep::obs::SloSpec> sloSpecs;
  for (const std::string& text : args.sloSpecs) {
    std::string sloError;
    const auto spec = ep::obs::parseSloSpec(text, &sloError);
    if (!spec) {
      std::cerr << "epfleetd: " << sloError << "\n";
      return 2;
    }
    sloSpecs.push_back(*spec);
  }
  const auto policy = ep::fleet::parsePolicy(args.policy);
  if (!policy) {
    std::cerr << "epfleetd: unknown policy \"" << args.policy << "\"\n";
    return 2;
  }
  if (args.tracing) ep::obs::Tracer::global().setEnabled(true);

  ep::serve::EpStudyEngineOptions engineOpts;
  engineOpts.useMeter = args.meter;
  engineOpts.seed = args.seed;
  // One shared deterministic engine: every shard computes the same
  // result for a key, which is what makes stale replicas equivalent.
  auto engine = std::make_shared<ep::serve::EpStudyEngine>(engineOpts);

  // Per-shard watchdogs (declared before the router so shard brokers
  // can feed them request outcomes until the router drains).
  std::vector<std::unique_ptr<ep::core::PowerAnomalyWatchdog>> watchdogs;
  ShardWatchdogs shardWatchdogs;
  std::vector<ep::fleet::FleetShardConfig> shards;
  shards.reserve(args.shards);
  for (std::size_t i = 0; i < args.shards; ++i) {
    ep::fleet::FleetShardConfig cfg;
    cfg.id = "s" + std::to_string(i);
    cfg.engine = engine;
    cfg.broker.threads = args.threads;
    cfg.broker.queueCapacity = args.queue;
    cfg.broker.cacheCapacity = args.cache;
    if (args.watchdog) {
      watchdogs.push_back(std::make_unique<ep::core::PowerAnomalyWatchdog>(
          ep::core::WatchdogOptions{}));
      cfg.broker.watchdog = watchdogs.back().get();
      shardWatchdogs.emplace_back(cfg.id, watchdogs.back().get());
    }
    shards.push_back(std::move(cfg));
  }
  ep::fleet::FleetOptions fleetOpts;
  fleetOpts.policy = *policy;
  fleetOpts.virtualNodes = args.vnodes;
  if (args.healthProbeMs > 0.0) {
    fleetOpts.health.enabled = true;
    fleetOpts.health.probeIntervalMs = args.healthProbeMs;
  }
  ep::fleet::FleetRouter router(std::move(shards), fleetOpts);
  if (args.healthProbeMs > 0.0) router.startHealthMonitor();

  // Observability plane: scrape the federated cluster registry (plus
  // the process-wide one) into the tsdb; SLOs evaluate per scrape.
  ep::obs::TimeSeriesStore tsdb;
  std::unique_ptr<ep::obs::SloEngine> slo;
  if (!sloSpecs.empty()) {
    ep::obs::SloEngine::Options sloOpts;
    if (!args.sloWindows.empty()) sloOpts.defaultWindows = args.sloWindows;
    slo = std::make_unique<ep::obs::SloEngine>(&tsdb, sloSpecs, sloOpts);
  }
  ep::obs::Scraper::Options scrapeOpts;
  scrapeOpts.intervalMs = args.scrapeMs > 0 ? args.scrapeMs : 250;
  if (slo != nullptr) {
    scrapeOpts.afterScrape = [&slo](std::int64_t nowNs) {
      slo->evaluate(nowNs);
    };
  }
  ep::obs::Scraper scraper(
      &tsdb,
      [&router] {
        ep::obs::RegistrySnapshot snap = router.clusterSnapshot();
        snap.append(ep::obs::Registry::global().snapshot());
        return snap;
      },
      scrapeOpts);
  if (args.scrapeMs > 0) scraper.start();

  // Frame batches -> router.  Tunes from every connection in one epoll
  // round are routed lock-free and admitted per shard through ONE
  // Broker::submitTuneBatch call; "device":"auto" (deviceAuto) maps to
  // the nullopt-device FleetRequest the router's price table resolves.
  ep::serve::NetServiceHooks hooks;
  hooks.tuneBatch = [&router](std::vector<ep::serve::ServiceTuneItem>&& items) {
    std::vector<ep::fleet::FleetRouter::FleetTuneBatchItem> batch;
    batch.reserve(items.size());
    for (auto& item : items) {
      ep::fleet::FleetRouter::FleetTuneBatchItem member;
      if (!item.deviceAuto) member.req.device = item.req.device;
      member.req.n = item.req.n;
      member.req.maxDegradation = item.req.maxDegradation;
      member.req.deadlineMs = item.req.deadlineMs;
      member.ctx = item.ctx;
      member.done = std::move(item.done);
      batch.push_back(std::move(member));
    }
    router.submitTuneBatch(std::move(batch));
  };
  hooks.study = [&router](const ep::serve::StudyRequest& req) {
    return router.study(req);
  };
  const bool healthArmed = args.healthProbeMs > 0.0;
  hooks.control = [&router, &shardWatchdogs, &tsdb, &slo, healthArmed](
                      const ep::serve::wire::WireRequest& req) {
    return handleControlOp(req, router, shardWatchdogs, tsdb, slo.get(),
                           healthArmed);
  };
  ep::serve::NetService service(std::move(hooks));

  // epprof: register the main thread for continuous profiles.
  ep::obs::ProfileThreadLabel profileRoot("fleet/main");
  ep::obs::Profiler::global().registerCurrentThread();

  ep::net::ServerOptions netOpts;
  netOpts.port = args.port;
  netOpts.eventThreads = args.eventThreads;
  // Keep the ep_net_* transport family on the process registry the
  // {"op":"metrics"} handler renders (servers default to a private
  // per-instance registry now).
  netOpts.registry = &ep::obs::Registry::global();
  ep::net::Server server(netOpts, service.handler());
  std::string netError;
  if (!server.start(&netError)) {
    std::cerr << "epfleetd: " << netError << "\n";
    return 1;
  }

  std::cout << "epfleetd listening on 127.0.0.1:" << server.port()
            << " (shards=" << args.shards << " threads=" << args.threads
            << " event-threads=" << args.eventThreads
            << " policy=" << ep::fleet::policyName(*policy)
            << " vnodes=" << args.vnodes
            << " meter=" << (args.meter ? "on" : "off")
            << " watchdog=" << (args.watchdog ? "on" : "off")
            << " scrape-ms=" << (args.scrapeMs > 0 ? args.scrapeMs : 0)
            << " health-probe-ms=" << args.healthProbeMs
            << " slos=" << sloSpecs.size() << ")" << std::endl;

  if (pipe(gStopPipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  char byte = 0;
  while (read(gStopPipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "epfleetd: draining..." << std::endl;
  scraper.stop();
  // Order matters: stop the transport first (drops unanswered frames),
  // then the slow-op pool, THEN drain the shards — late done-callbacks
  // hit a stopped but still-alive server and are ignored.
  server.stop();
  service.stop();
  router.shutdown();
  std::cout << router.renderWireSnapshot() << std::endl;
  return 0;
}
