// epserve_client — load generator and CLI client for epserved.
//
// Usage:
//   epserve_client [--host H] [--port P] [--requests R] [--connections C]
//                  [--device p100|k40c] [--n N[,N...]] [--budget B]
//                  [--deadline-ms D] [--study BEGIN:END:STEP] [--metrics]
//                  [--trace-id ID] [--report] [--raw '<json line>']
//                  [--binary] [--pipeline W] [--retry N] [--backoff]
//
// Default mode sends `--requests` tune requests per connection, cycling
// through the `--n` workload list, and reports client-side latency
// percentiles and requests/sec.  `--metrics` additionally fetches the
// server's own ServeMetrics snapshot at the end.
//
// --trace-id tags every request with the given trace (the server's
// {"op":"trace"} export then shows the request's span tree); --report
// asks for the per-request energy-attribution ledger and prints the
// summed attributed joules — over any request mix this equals the
// energy of the studies actually executed, regardless of cache hits
// and coalescing.
//
// --binary speaks the EPB1 framing (net/frame.hpp) with the compact
// binary tune codec (serve/wire_binary.hpp) instead of line JSON;
// --pipeline W keeps up to W tune requests in flight per connection
// with batched writes (one send() per window refill) — the pair is how
// the event-loop server's cross-connection batching is actually fed.
// Both apply to the default tune-load mode only; --study/--raw/
// --metrics stay line-JSON round trips.
//
// --retry N re-sends requests the server shed (overloaded, queue_full,
// circuit_open) up to N times each once the main window drains, under
// a process-wide retry budget (chaos/retry.hpp) so a retry storm can
// never multiply offered load unboundedly; --backoff spaces the
// attempts with deterministic exponential-backoff-plus-jitter from the
// same seeded schedule the chaos tests pin.
//
// --raw sends one verbatim request line and prints the response line —
// the escape hatch for ops the flag surface doesn't cover (epfleetd's
// {"op":"fleet",...} drill actions, "device":"auto" tunes).  Exits 0
// iff the response says status ok.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/retry.hpp"
#include "net/frame.hpp"
#include "serve/wire.hpp"
#include "serve/wire_binary.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  int requests = 100;
  int connections = 1;
  std::string device = "p100";
  std::vector<int> ns = {1024};
  double budget = 0.11;
  double deadlineMs = 0.0;
  bool study = false;
  int studyBegin = 0, studyEnd = 0, studyStep = 1;
  bool metrics = false;
  std::string traceId;
  bool report = false;
  std::string raw;
  bool binary = false;
  int pipeline = 1;  // in-flight tune requests per connection
  int retry = 0;     // retries per shed request (0 = no retries)
  bool backoff = false;  // exponential backoff + jitter between retries
};

std::vector<int> parseIntList(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

bool parseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      a->host = v;
    } else if (arg == "--port" && (v = next())) {
      a->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (arg == "--requests" && (v = next())) {
      a->requests = std::stoi(v);
    } else if (arg == "--connections" && (v = next())) {
      a->connections = std::stoi(v);
    } else if (arg == "--device" && (v = next())) {
      a->device = v;
    } else if (arg == "--n" && (v = next())) {
      a->ns = parseIntList(v);
    } else if (arg == "--budget" && (v = next())) {
      a->budget = std::stod(v);
    } else if (arg == "--deadline-ms" && (v = next())) {
      a->deadlineMs = std::stod(v);
    } else if (arg == "--study" && (v = next())) {
      a->study = true;
      if (std::sscanf(v, "%d:%d:%d", &a->studyBegin, &a->studyEnd,
                      &a->studyStep) < 2) {
        return false;
      }
    } else if (arg == "--metrics") {
      a->metrics = true;
    } else if (arg == "--trace-id" && (v = next())) {
      a->traceId = v;
    } else if (arg == "--report") {
      a->report = true;
    } else if (arg == "--raw" && (v = next())) {
      a->raw = v;
    } else if (arg == "--binary") {
      a->binary = true;
    } else if (arg == "--pipeline" && (v = next())) {
      a->pipeline = std::stoi(v);
    } else if (arg == "--retry" && (v = next())) {
      a->retry = std::stoi(v);
    } else if (arg == "--backoff") {
      a->backoff = true;
    } else {
      return false;
    }
  }
  return !a->ns.empty() && a->requests > 0 && a->connections > 0 &&
         a->pipeline > 0 && a->retry >= 0;
}

class Connection {
 public:
  bool open(const std::string& host, std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  [[nodiscard]] int fd() const { return fd_; }

  // One request line out, one response line back.
  bool roundTrip(const std::string& request, std::string* response) {
    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    std::size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t got = recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    *response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct WorkerResult {
  std::vector<double> latenciesMs;
  int ok = 0;
  int rejected = 0;
  int errors = 0;
  double attributedJoules = 0.0;
  std::uint64_t studiesExecuted = 0;
  int retriesAttempted = 0;
  int retriesRecovered = 0;   // shed requests that succeeded on retry
  int retriesDenied = 0;      // retry budget refused the attempt
};

std::string tuneLine(const Args& a, int n) {
  ep::serve::wire::ObjectWriter w;
  w.add("op", "tune").add("device", a.device).add("n", n).add(
      "maxDegradation", a.budget);
  if (a.deadlineMs > 0.0) w.add("deadlineMs", a.deadlineMs);
  if (!a.traceId.empty()) w.add("trace_id", a.traceId);
  if (a.report) w.add("report", true);
  return w.str();
}

bool retryableStatus(const std::string& status) {
  return status == "overloaded" || status == "queue_full" ||
         status == "circuit_open";
}

// Tally one decoded response (either wire format) into the result.
// When `mayRetry` is set, a retryable rejection (overloaded /
// queue_full / circuit_open) is NOT counted — the caller re-sends it —
// and true is returned; everything else is counted and returns false.
bool tallyJson(const std::string& line, double ms, bool mayRetry,
               WorkerResult* out) {
  std::string err;
  const auto obj = ep::serve::wire::parseObject(line, &err);
  if (!obj) {
    ++out->errors;
    return false;
  }
  const auto st = obj->find("status");
  const std::string status = st != obj->end() ? st->second.string : "";
  if (status == "ok") {
    ++out->ok;
    out->latenciesMs.push_back(ms);
    if (const auto j = obj->find("attributedJoules"); j != obj->end()) {
      out->attributedJoules += j->second.number;
    }
    if (const auto s = obj->find("studiesExecuted"); s != obj->end()) {
      out->studiesExecuted += static_cast<std::uint64_t>(s->second.number);
    }
  } else if (mayRetry && retryableStatus(status)) {
    return true;
  } else {
    ++out->rejected;
  }
  return false;
}

bool tallyBinary(const std::string& payload, double ms, bool mayRetry,
                 WorkerResult* out) {
  std::string err;
  const auto resp = ep::serve::wire_binary::decodeTuneResponse(payload, &err);
  if (!resp) {
    ++out->errors;
    return false;
  }
  if (resp->status == ep::serve::Status::Ok) {
    ++out->ok;
    out->latenciesMs.push_back(ms);
    if (resp->hasReport) {
      out->attributedJoules += resp->report.attributedJoules;
      out->studiesExecuted += resp->report.studiesExecuted;
    }
  } else if (mayRetry && (resp->status == ep::serve::Status::Overloaded ||
                          resp->status == ep::serve::Status::QueueFull ||
                          resp->status == ep::serve::Status::CircuitOpen)) {
    return true;
  } else {
    ++out->rejected;
  }
  return false;
}

// The tune-load worker: a sliding window of up to a.pipeline requests
// in flight, writes batched per window refill (one send() covers many
// requests), responses decoded incrementally.  Responses arrive in
// request order (the server restores pipelined order per connection),
// so a FIFO of start times matches them up.
void runWorker(const Args& a, std::uint64_t stream,
               ep::chaos::RetryBudget* budget, WorkerResult* out) {
  Connection conn;
  if (!conn.open(a.host, a.port)) {
    std::cerr << "connect failed\n";
    out->errors = a.requests;
    return;
  }
  const int fd = conn.fd();
  out->latenciesMs.reserve(static_cast<std::size_t>(a.requests));

  std::string outBuf;
  if (a.binary) outBuf.append(ep::net::kMagic, sizeof ep::net::kMagic);
  std::string inBuf;
  struct Pending {
    Clock::time_point start;
    int n = 0;
    int requestIndex = 0;
  };
  std::deque<Pending> starts;
  // Shed requests parked for the retry pass after the window drains.
  std::vector<Pending> toRetry;
  int queued = 0;    // requests encoded (and soon flushed)
  int received = 0;  // responses tallied

  ep::serve::wire_binary::BinaryTuneRequest breq;
  breq.tune.device = a.device == "k40c" ? ep::serve::Device::K40c
                                        : ep::serve::Device::P100;
  breq.tune.maxDegradation = a.budget;
  breq.tune.deadlineMs = a.deadlineMs > 0.0 ? a.deadlineMs : 0.0;
  breq.report = a.report;
  breq.traceId = a.traceId;

  while (received < a.requests) {
    while (queued < a.requests && queued - received < a.pipeline) {
      const int n = a.ns[static_cast<std::size_t>(queued) % a.ns.size()];
      if (a.retry > 0) budget->onAttempt();
      starts.push_back(Pending{Clock::now(), n, queued});
      if (a.binary) {
        breq.tune.n = n;
        ep::net::appendFrame(outBuf, ep::net::kOpTune,
                             ep::serve::wire_binary::encodeTuneRequest(breq));
      } else {
        outBuf += tuneLine(a, n);
        outBuf += '\n';
      }
      ++queued;
    }
    std::size_t sent = 0;
    while (sent < outBuf.size()) {
      const ssize_t k = send(fd, outBuf.data() + sent, outBuf.size() - sent, 0);
      if (k <= 0) {
        out->errors += a.requests - received;
        return;
      }
      sent += static_cast<std::size_t>(k);
    }
    outBuf.clear();

    // Read until at least one full response is available, then drain
    // everything already buffered.
    bool madeProgress = false;
    while (!madeProgress || received < queued) {
      if (a.binary) {
        std::uint64_t len = 0;
        const int used =
            ep::net::readVarint(inBuf.data(), inBuf.size(), &len);
        if (used < 0 || (used > 0 && len == 0)) {
          out->errors += a.requests - received;
          return;
        }
        if (used > 0 && inBuf.size() >= static_cast<std::size_t>(used) + len) {
          const std::string payload =
              inBuf.substr(static_cast<std::size_t>(used) + 1,
                           static_cast<std::size_t>(len) - 1);
          inBuf.erase(0, static_cast<std::size_t>(used) +
                             static_cast<std::size_t>(len));
          const Pending p = starts.front();
          starts.pop_front();
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - p.start)
                                .count();
          if (tallyBinary(payload, ms, a.retry > 0, out)) toRetry.push_back(p);
          ++received;
          madeProgress = true;
          continue;
        }
      } else {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
          std::string line = inBuf.substr(0, nl);
          inBuf.erase(0, nl + 1);
          const Pending p = starts.front();
          starts.pop_front();
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - p.start)
                                .count();
          if (tallyJson(line, ms, a.retry > 0, out)) toRetry.push_back(p);
          ++received;
          madeProgress = true;
          continue;
        }
      }
      if (madeProgress) break;  // buffer drained; go refill the window
      char chunk[65536];
      const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) {
        out->errors += a.requests - received;
        return;
      }
      inBuf.append(chunk, static_cast<std::size_t>(got));
    }
  }

  if (toRetry.empty()) return;

  // Retry pass: re-send shed requests serially on the same connection
  // once the burst has drained, each under the shared retry budget and
  // (with --backoff) the deterministic seeded backoff schedule.
  const ep::chaos::RetryPolicy policy{};
  auto sendOne = [&](int n) -> bool {
    std::string req;
    if (a.binary) {
      breq.tune.n = n;
      ep::net::appendFrame(req, ep::net::kOpTune,
                           ep::serve::wire_binary::encodeTuneRequest(breq));
    } else {
      req = tuneLine(a, n) + "\n";
    }
    std::size_t sent = 0;
    while (sent < req.size()) {
      const ssize_t k = send(fd, req.data() + sent, req.size() - sent, 0);
      if (k <= 0) return false;
      sent += static_cast<std::size_t>(k);
    }
    return true;
  };
  auto recvOne = [&](std::string* payload) -> bool {
    for (;;) {
      if (a.binary) {
        std::uint64_t len = 0;
        const int used = ep::net::readVarint(inBuf.data(), inBuf.size(), &len);
        if (used < 0 || (used > 0 && len == 0)) return false;
        if (used > 0 && inBuf.size() >= static_cast<std::size_t>(used) + len) {
          payload->assign(inBuf, static_cast<std::size_t>(used) + 1,
                          static_cast<std::size_t>(len) - 1);
          inBuf.erase(0, static_cast<std::size_t>(used) +
                             static_cast<std::size_t>(len));
          return true;
        }
      } else {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
          payload->assign(inBuf, 0, nl);
          inBuf.erase(0, nl + 1);
          return true;
        }
      }
      char chunk[65536];
      const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) return false;
      inBuf.append(chunk, static_cast<std::size_t>(got));
    }
  };

  const int okBefore = out->ok;
  for (const Pending& p : toRetry) {
    bool resolved = false;
    for (int attempt = 1; attempt <= a.retry && !resolved; ++attempt) {
      if (!budget->tryRetry()) {
        ++out->retriesDenied;
        break;
      }
      ++out->retriesAttempted;
      if (a.backoff) {
        const double delayMs = policy.delayMs(
            stream, static_cast<std::uint64_t>(p.requestIndex), attempt);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delayMs));
      }
      const auto t0 = Clock::now();
      std::string payload;
      if (!sendOne(p.n) || !recvOne(&payload)) {
        ++out->errors;
        resolved = true;
        break;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      const bool mayRetryAgain = attempt < a.retry;
      const bool shedAgain =
          a.binary ? tallyBinary(payload, ms, mayRetryAgain, out)
                   : tallyJson(payload, ms, mayRetryAgain, out);
      if (!shedAgain) resolved = true;
    }
    // Budget denied before any attempt could be counted: the original
    // shed response becomes the request's final outcome.
    if (!resolved) ++out->rejected;
  }
  out->retriesRecovered = out->ok - okBefore;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr
        << "usage: epserve_client [--host H] [--port P] [--requests R]\n"
           "         [--connections C] [--device p100|k40c] [--n N[,N...]]\n"
           "         [--budget B] [--deadline-ms D] [--study B:E:S]"
           " [--metrics]\n"
           "         [--binary] [--pipeline W] [--retry N] [--backoff]\n"
           "         [--trace-id ID] [--report] [--raw J]\n";
    return 2;
  }

  if (!args.raw.empty()) {
    Connection conn;
    if (!conn.open(args.host, args.port)) {
      std::cerr << "connect failed\n";
      return 1;
    }
    std::string response;
    if (!conn.roundTrip(args.raw, &response)) {
      std::cerr << "raw request failed\n";
      return 1;
    }
    std::cout << response << "\n";
    std::string err;
    const auto obj = ep::serve::wire::parseObject(response, &err);
    bool ok = false;
    if (obj) {
      const auto st = obj->find("status");
      ok = st != obj->end() && st->second.string == "ok";
    }
    return ok ? 0 : 1;
  }

  if (args.study) {
    Connection conn;
    if (!conn.open(args.host, args.port)) {
      std::cerr << "connect failed\n";
      return 1;
    }
    ep::serve::wire::ObjectWriter w;
    w.add("op", "study")
        .add("device", args.device)
        .add("nBegin", args.studyBegin)
        .add("nEnd", args.studyEnd)
        .add("nStep", args.studyStep);
    if (!args.traceId.empty()) w.add("trace_id", args.traceId);
    if (args.report) w.add("report", true);
    std::string response;
    if (!conn.roundTrip(w.str(), &response)) {
      std::cerr << "study request failed\n";
      return 1;
    }
    std::cout << response << "\n";
    return 0;
  }

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(args.connections));
  std::vector<std::thread> workers;
  // One retry budget for the whole client process: every connection's
  // attempts accrue tokens into it, every retry draws from it.
  ep::chaos::RetryBudget budget;
  const auto start = Clock::now();
  for (int c = 0; c < args.connections; ++c) {
    workers.emplace_back(runWorker, std::cref(args),
                         static_cast<std::uint64_t>(c), &budget,
                         &results[static_cast<std::size_t>(c)]);
  }
  for (auto& t : workers) t.join();
  const double wallS =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  for (auto& r : results) {
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.errors += r.errors;
    total.attributedJoules += r.attributedJoules;
    total.studiesExecuted += r.studiesExecuted;
    total.retriesAttempted += r.retriesAttempted;
    total.retriesRecovered += r.retriesRecovered;
    total.retriesDenied += r.retriesDenied;
    total.latenciesMs.insert(total.latenciesMs.end(), r.latenciesMs.begin(),
                             r.latenciesMs.end());
  }
  const int sentTotal = total.ok + total.rejected + total.errors;
  std::cout << "sent " << sentTotal << " requests over " << args.connections
            << " connection(s) in " << wallS << " s\n"
            << "ok=" << total.ok << " rejected=" << total.rejected
            << " errors=" << total.errors << "\n";
  if (wallS > 0.0) {
    std::cout << "throughput: "
              << static_cast<double>(sentTotal) / wallS << " req/s\n";
  }
  if (args.retry > 0) {
    std::cout << "retries: attempted=" << total.retriesAttempted
              << " recovered=" << total.retriesRecovered
              << " budget_denied=" << total.retriesDenied << "\n";
  }
  if (args.report) {
    std::cout << "attributed energy: " << total.attributedJoules << " J over "
              << total.studiesExecuted << " executed studies\n";
  }
  if (!total.latenciesMs.empty()) {
    std::cout << "latency ms: p50=" << percentile(total.latenciesMs, 0.50)
              << " p90=" << percentile(total.latenciesMs, 0.90)
              << " p99=" << percentile(total.latenciesMs, 0.99)
              << " max=" << total.latenciesMs.back() << "\n";
  }

  if (args.metrics) {
    Connection conn;
    if (conn.open(args.host, args.port)) {
      std::string response;
      if (conn.roundTrip("{\"op\":\"metrics\"}", &response)) {
        std::cout << "server metrics: " << response << "\n";
      }
    }
  }
  return total.errors == 0 ? 0 : 1;
}
