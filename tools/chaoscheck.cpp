// chaoscheck — end-to-end chaos drill for the epchaos robustness layer.
//
// Runs the whole fault campaign in-process against the real
// EpStudyEngine and exits non-zero on the first broken invariant:
//
//   A. a 5 % transport-fault campaign (connection resets, torn frames,
//      corrupted EPB1 varints, stalls) over a real net::Server fronting
//      a 3-shard fleet: every request resolves, the error rate stays
//      bounded, and the whole campaign — fault schedule, statuses,
//      recommendations — is bitwise-identical when replayed from the
//      same seed;
//   B. server-side chaos hooks (accept drops, inbound corruption): the
//      server keeps serving through them;
//   C. shard crash -> breaker opens -> health probes auto-eject (no
//      operator kill) -> warm keys stale-served by the ring successor
//      exactly as under a manual kill -> engine recovers -> probes
//      auto-reinstate; time-to-eject/reinstate reported in probe ticks;
//   D. a 2x overload burst against an adaptive-admission broker: every
//      future resolves, overflow is fast-failed Overloaded (no queue
//      collapse), admitted requests complete;
//   E. SLO burn raised while the campaign degrades client latency
//      (retry backoff against a crashed shard) and cleared after
//      recovery;
//   F. energy-aware routing still beats round-robin on cluster joules
//      over the same trace.
//
// All randomness (fault schedules, backoff jitter) is forked off one
// campaign seed (--seed), which is what makes phase A's double run a
// bitwise assertion rather than a flake.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/chaos_engine.hpp"
#include "chaos/faulty_transport.hpp"
#include "chaos/net_chaos.hpp"
#include "chaos/retry.hpp"
#include "fleet/router.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "serve/wire_binary.hpp"

namespace {

using ep::fleet::FleetOptions;
using ep::fleet::FleetRequest;
using ep::fleet::FleetRouter;
using ep::fleet::FleetShardConfig;
using ep::fleet::RouteDecision;
using ep::serve::Device;
using ep::serve::Status;

int gFailures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++gFailures;
}

double elapsedMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// A 3-shard fleet behind a real net::Server, wired exactly like
// epfleetd (tune batches -> router.submitTuneBatch).
struct WiredFleet {
  std::shared_ptr<ep::serve::EpStudyEngine> engine;
  std::unique_ptr<FleetRouter> router;
  std::unique_ptr<ep::serve::NetService> service;
  std::unique_ptr<ep::net::Server> server;

  ~WiredFleet() {
    if (server) server->stop();
    if (service) service->stop();
  }
};

std::unique_ptr<WiredFleet> wireFleet(
    const ep::net::ServerChaosHooks* chaos) {
  auto wf = std::make_unique<WiredFleet>();
  wf->engine = std::make_shared<ep::serve::EpStudyEngine>();
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "w" + std::to_string(i);
    c.engine = wf->engine;
    c.broker.threads = 2;
    c.broker.queueCapacity = 128;
    cfgs.push_back(std::move(c));
  }
  wf->router = std::make_unique<FleetRouter>(std::move(cfgs), FleetOptions{});

  ep::serve::NetServiceHooks hooks;
  FleetRouter* router = wf->router.get();
  hooks.tuneBatch = [router](std::vector<ep::serve::ServiceTuneItem>&& items) {
    std::vector<FleetRouter::FleetTuneBatchItem> batch;
    batch.reserve(items.size());
    for (auto& item : items) {
      FleetRouter::FleetTuneBatchItem member;
      if (!item.deviceAuto) member.req.device = item.req.device;
      member.req.n = item.req.n;
      member.req.maxDegradation = item.req.maxDegradation;
      member.req.deadlineMs = item.req.deadlineMs;
      member.ctx = item.ctx;
      member.done = std::move(item.done);
      batch.push_back(std::move(member));
    }
    router->submitTuneBatch(std::move(batch));
  };
  hooks.study = [router](const ep::serve::StudyRequest& req) {
    return router->study(req);
  };
  hooks.control = [](const ep::serve::wire::WireRequest&) {
    return std::string("{\"status\":\"ok\"}");
  };
  wf->service = std::make_unique<ep::serve::NetService>(std::move(hooks));

  ep::net::ServerOptions so;
  so.chaos = chaos;
  wf->server =
      std::make_unique<ep::net::Server>(so, wf->service->handler());
  std::string error;
  if (!wf->server->start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return nullptr;
  }
  return wf;
}

std::string tuneFrame(int n) {
  ep::serve::wire_binary::BinaryTuneRequest breq;
  breq.tune.device = Device::P100;
  breq.tune.n = n;
  breq.tune.maxDegradation = 0.11;
  std::string framed;
  ep::net::appendFrame(framed, ep::net::kOpTune,
                       ep::serve::wire_binary::encodeTuneRequest(breq));
  return framed;
}

// One transport-chaos campaign: R requests through a FaultyTransport
// against a fresh wired fleet.  The journal captures every
// deterministic per-request fact; two runs from the same seed must
// produce identical journals and injection tallies.
struct CampaignResult {
  std::string journal;
  ep::chaos::ChaosCounts counts;
  int resolved = 0;
  int errors = 0;
  bool serverUp = false;
};

CampaignResult runCampaign(std::uint64_t seed, int requests) {
  CampaignResult out;
  auto wf = wireFleet(nullptr);
  if (!wf) return out;
  out.serverUp = true;

  ep::chaos::FaultyTransportOptions to;
  to.port = wf->server->port();
  to.binary = true;
  to.maxAttempts = 16;
  to.recvTimeoutMs = 250.0;
  to.chaos = ep::chaos::ChaosOptions::campaign(0.05);
  to.chaos.seed = seed;
  ep::chaos::FaultyTransport transport(to, /*stream=*/1);

  std::ostringstream journal;
  for (int i = 0; i < requests; ++i) {
    const int n = 512 + (i % 24) * 64;
    const auto outcome =
        transport.roundTrip(tuneFrame(n), static_cast<std::uint64_t>(i));
    ++out.resolved;
    journal << i << " n=" << n << " ok=" << outcome.ok
            << " attempts=" << outcome.attempts
            << " faults=" << outcome.faultsInjected;
    bool servedOk = false;
    if (outcome.ok && outcome.opcode == ep::net::kOpTune) {
      std::string error;
      const auto resp = ep::serve::wire_binary::decodeTuneResponse(
          outcome.body, &error);
      if (resp) {
        servedOk = resp->status == Status::Ok;
        journal << " status=" << ep::serve::statusName(resp->status)
                << " stale=" << resp->stale << " hit=" << resp->cacheHit
                << " rec=" << resp->recommended;
      } else {
        journal << " status=undecodable";
      }
    } else if (outcome.ok) {
      // The server answers a corrupted frame with a JSON bad_request.
      journal << " status=proto_error";
    } else {
      journal << " status=transport_failed";
    }
    journal << "\n";
    if (!servedOk) ++out.errors;
  }
  out.journal = journal.str();
  out.counts = transport.counts();
  return out;
}

std::uint64_t gSeed = 0xC4A05EEDULL;

// -- Phase A: transport chaos, bounded errors, bitwise replay --------
void phaseTransportChaos() {
  std::printf("-- phase A: 5%% transport-fault campaign over the wire --\n");
  const int requests = 160;
  const auto run1 = runCampaign(gSeed, requests);
  check(run1.serverUp, "campaign server started");
  if (!run1.serverUp) return;
  check(run1.resolved == requests, "every request resolved (none stuck)");
  check(run1.counts.total() > 0, "faults were injected: " +
                                     run1.counts.summary());
  const double errRate =
      static_cast<double>(run1.errors) / static_cast<double>(requests);
  std::printf("  campaign: %d requests, %d errors (%.1f%%), %llu faults\n",
              requests, run1.errors, 100.0 * errRate,
              static_cast<unsigned long long>(run1.counts.total()));
  check(errRate <= 0.15, "error rate bounded under 5% chaos (<= 15%)");

  const auto run2 = runCampaign(gSeed, requests);
  check(run2.serverUp, "replay server started");
  check(run1.journal == run2.journal,
        "campaign replay is bitwise-identical from the seed");
  check(run1.counts.summary() == run2.counts.summary(),
        "injection tallies identical across replays");

  const auto run3 = runCampaign(gSeed + 1, requests);
  check(run3.serverUp && run3.journal != run1.journal,
        "a different seed produces a different campaign");
}

// -- Phase B: server-side chaos hooks --------------------------------
void phaseServerChaos() {
  std::printf("-- phase B: server-side accept drops + inbound corruption --\n");
  // Server-side faults only, at a rate high enough that any seed
  // injects several; the client transport stays clean and merely
  // replays through the connections the server kills.
  ep::chaos::ChaosOptions co;
  co.enabled = true;
  co.seed = gSeed;
  co.acceptDropRate = 0.1;
  co.inboundCorruptRate = 0.1;
  ep::chaos::NetChaos netChaos(co);
  const auto hooks = netChaos.hooks();
  auto wf = wireFleet(&hooks);
  check(wf != nullptr, "chaotic server started");
  if (!wf) return;

  ep::chaos::FaultyTransportOptions to;
  to.port = wf->server->port();
  to.binary = true;
  to.maxAttempts = 16;
  to.recvTimeoutMs = 250.0;
  ep::chaos::FaultyTransport transport(to, /*stream=*/2);

  int served = 0;
  int errors = 0;
  const int requests = 120;
  for (int i = 0; i < requests; ++i) {
    const auto outcome = transport.roundTrip(
        tuneFrame(512 + (i % 16) * 64), static_cast<std::uint64_t>(i));
    std::string error;
    if (outcome.ok && outcome.opcode == ep::net::kOpTune &&
        ep::serve::wire_binary::decodeTuneResponse(outcome.body, &error)) {
      ++served;
    } else {
      ++errors;
    }
  }
  check(netChaos.counts().total() > 0,
        "server-side faults injected: " + netChaos.counts().summary());
  check(served > requests / 2, "server kept serving through its own chaos");
  check(errors <= requests / 4, "bounded error rate under server chaos");
  check(wf->server->running(), "server still running after the campaign");
}

// -- Phase C: crash -> auto-eject -> stale-serve -> auto-reinstate ---
void phaseSelfHealing() {
  std::printf("-- phase C: shard crash, auto-eject, auto-reinstate --\n");
  auto inner = std::make_shared<ep::serve::EpStudyEngine>();
  // Every shard runs behind its own ChaosEngine sharing one inner
  // engine: tuningHash delegates, so the fleet keeps one cache identity
  // and only the victim's decorator is crashed.
  std::vector<std::shared_ptr<ep::chaos::ChaosEngine>> chaosEngines;
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < 3; ++i) {
    ep::chaos::ChaosEngineOptions ceo;
    ceo.seed = gSeed;
    auto ce = std::make_shared<ep::chaos::ChaosEngine>(inner, ceo);
    chaosEngines.push_back(ce);
    FleetShardConfig c;
    c.id = "h" + std::to_string(i);
    c.engine = ce;
    c.broker.threads = 2;
    c.broker.queueCapacity = 128;
    c.broker.breaker.failureThreshold = 2;
    c.broker.breaker.openMs = 60.0;
    cfgs.push_back(std::move(c));
  }
  FleetOptions fo;
  fo.health.enabled = true;
  fo.health.ejectAfterFailures = 2;
  fo.health.reinstateAfterSuccesses = 2;
  FleetRouter router(std::move(cfgs), fo);
  const auto ids = router.shardIds();

  // Warm a key spread so the victim holds cached + replicated results.
  std::vector<int> keys;
  for (int n = 512; n < 512 + 16 * 64; n += 64) keys.push_back(n);
  bool warmOk = true;
  for (int n : keys) {
    FleetRequest r;
    r.device = Device::P100;
    r.n = n;
    r.maxDegradation = 0.11;
    const auto resp = router.tune(r);
    warmOk = warmOk && resp.status == Status::Ok && !resp.stale;
  }
  check(warmOk, "fleet warmed fresh");

  const std::string victim = router.homeShard(Device::P100, keys.front());
  std::size_t victimIdx = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == victim) victimIdx = i;
  }
  std::printf("  crashing engine of %s (no operator kill issued)\n",
              victim.c_str());
  chaosEngines[victimIdx]->crash();

  // Cold keys homed on the victim: their failing studies are the real
  // traffic that trips the shard breaker — the health monitor's
  // failure detector.
  int failing = 0;
  for (int n = 4096; failing < 4 && n < 4096 + 256 * 64; n += 64) {
    if (router.homeShard(Device::P100, n) != victim) continue;
    FleetRequest r;
    r.device = Device::P100;
    r.n = n;
    r.maxDegradation = 0.11;
    (void)router.tune(r);
    ++failing;
  }
  check(failing >= 2, "drove enough failing traffic to trip the breaker");

  int ticksToEject = -1;
  for (int t = 1; t <= 50; ++t) {
    router.healthTick();
    if (router.shardEjected(victim)) {
      ticksToEject = t;
      break;
    }
  }
  check(ticksToEject > 0, "health probes auto-ejected the crashed shard");
  std::printf("  time-to-eject: %d probe ticks\n", ticksToEject);

  // The ejected shard's warm keys must stale-serve from the ring
  // successor exactly as under fleetcheck's manual kill.
  int staleServed = 0;
  bool staleOk = true;
  for (int n : keys) {
    if (router.homeShard(Device::P100, n) != victim) continue;
    FleetRequest r;
    r.device = Device::P100;
    r.n = n;
    r.maxDegradation = 0.11;
    RouteDecision d;
    const auto resp = router.tune(r, &d);
    staleOk = staleOk && resp.status == Status::Ok && resp.stale &&
              d.staleFallback && d.shardId != victim;
    ++staleServed;
  }
  check(staleServed > 0, "victim was home to warm keys");
  check(staleOk, "ejected shard's keys stale-served by the replica");

  // Recover the engine; once the breaker's open window lapses the
  // probe goes through and consecutive successes reinstate the shard.
  chaosEngines[victimIdx]->recover();
  int ticksToReinstate = -1;
  for (int t = 1; t <= 50; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    router.healthTick();
    if (!router.shardEjected(victim)) {
      ticksToReinstate = t;
      break;
    }
  }
  check(ticksToReinstate > 0,
        "health probes auto-reinstated the recovered shard");
  std::printf("  time-to-reinstate: %d probe ticks\n", ticksToReinstate);

  bool sawEject = false;
  bool sawReinstate = false;
  for (const auto& ev : router.healthEvents()) {
    if (std::strcmp(ev.kind, "shard_ejected") == 0) sawEject = true;
    if (std::strcmp(ev.kind, "shard_reinstated") == 0) sawReinstate = true;
  }
  check(sawEject && sawReinstate,
        "flight recorder holds shard_ejected + shard_reinstated events");
  const auto m = router.metrics();
  check(m.shardsEjected >= 1 && m.shardsReinstated >= 1,
        "fleet_shard_ejected_total / reinstated_total advanced");

  bool freshOk = true;
  for (int n : keys) {
    const auto resp = router.tune([&] {
      FleetRequest r;
      r.device = Device::P100;
      r.n = n;
      r.maxDegradation = 0.11;
      return r;
    }());
    freshOk = freshOk && resp.status == Status::Ok;
  }
  check(freshOk, "all keys served after reinstatement");
  check(router.frontsConsistent(), "cluster fronts consistent after drill");
  router.shutdown();
}

// -- Phase D: 2x overload burst against adaptive admission -----------
void phaseOverload() {
  std::printf("-- phase D: overload burst, adaptive admission --\n");
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  ep::serve::BrokerOptions bo;
  bo.threads = 2;
  bo.queueCapacity = 16;
  bo.admission.enabled = true;
  bo.admission.targetLatencyMs = 5.0;
  bo.admission.initialLimit = 4;
  bo.admission.minLimit = 1;
  bo.admission.maxLimit = 8;
  ep::serve::Broker broker(engine, bo);

  // Offered load far above the admission limit: distinct cold keys so
  // neither the cache nor coalescing absorbs the burst.
  const int burst = 64;
  std::vector<std::future<ep::serve::TuneResponse>> futures;
  futures.reserve(burst);
  for (int i = 0; i < burst; ++i) {
    ep::serve::TuneRequest req;
    req.device = Device::P100;
    req.n = 512 + i * 32;
    req.maxDegradation = 0.11;
    futures.push_back(broker.submitTune(req));
  }
  int ok = 0;
  int overloaded = 0;
  int other = 0;
  int unresolved = 0;
  std::vector<double> okLatency;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
      ++unresolved;
      continue;
    }
    const auto resp = f.get();
    if (resp.status == Status::Ok) {
      ++ok;
      okLatency.push_back(resp.latency.value() * 1e3);
    } else if (resp.status == Status::Overloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  check(unresolved == 0, "no request stuck under the burst");
  check(ok > 0, "admitted requests completed");
  check(overloaded > 0, "overflow fast-failed Overloaded before queueing");
  const auto m = broker.metrics();
  check(m.rejectedOverload == static_cast<std::uint64_t>(overloaded),
        "epserve_rejected_overloaded_total matches observed fast-fails");
  check(m.inFlightStudies == 0 && m.queueDepth == 0,
        "broker drained clean after the burst");
  if (!okLatency.empty()) {
    std::sort(okLatency.begin(), okLatency.end());
    const double p99 =
        okLatency[okLatency.size() * 99 / 100 >= okLatency.size()
                      ? okLatency.size() - 1
                      : okLatency.size() * 99 / 100];
    std::printf(
        "  burst: %d offered, %d ok, %d overloaded, %d other; admitted "
        "p99 %.3f ms (limit settled at %zu)\n",
        burst, ok, overloaded, other, p99, m.admissionLimit);
  }
  broker.shutdown();
}

// -- Phase E: SLO burn raised by chaos, cleared by recovery ----------
void phaseSloBurn() {
  std::printf("-- phase E: SLO burn raised and cleared --\n");
  constexpr std::int64_t kSec = 1000000000;
  auto inner = std::make_shared<ep::serve::EpStudyEngine>();
  ep::chaos::ChaosEngineOptions ceo;
  ceo.seed = gSeed;
  auto chaosEngine = std::make_shared<ep::chaos::ChaosEngine>(inner, ceo);
  ep::serve::BrokerOptions bo;
  bo.threads = 2;
  ep::serve::Broker broker(chaosEngine, bo);

  // Warm keys: the recovery phase serves them from cache well under
  // the latency threshold.
  std::vector<int> warm;
  for (int n = 512; n < 512 + 8 * 64; n += 64) {
    warm.push_back(n);
    ep::serve::TuneRequest req;
    req.device = Device::P100;
    req.n = n;
    req.maxDegradation = 0.11;
    (void)broker.submitTune(req).get();
  }

  ep::obs::Registry r;
  ep::obs::Histogram& hist = r.histogram(
      "chaos_client_latency_ms",
      "Client-observed tune latency under chaos, retries included (ms)",
      {1.0, 10.0});
  ep::obs::TimeSeriesStore store;
  ep::obs::SloSpec spec;
  spec.name = "chaos-latency";
  spec.family = "chaos_client_latency_ms";
  spec.latencyThresholdMs = 1.0;
  spec.objective = 0.9;
  spec.windows = {{10000, 2000, 5.0}};
  ep::obs::SloEngine slo(&store, {spec});

  ep::chaos::RetryPolicy policy;
  policy.maxRetries = 2;
  policy.baseDelayMs = 1.0;
  policy.maxDelayMs = 8.0;
  policy.seed = gSeed;

  // One client-observed request: retries with deterministic backoff on
  // error, so a request against the crashed engine genuinely costs
  // multiple milliseconds of backoff — the latency the SLO burns on.
  std::uint64_t requestIndex = 0;
  auto drive = [&](int n) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t idx = requestIndex++;
    for (int attempt = 0; attempt <= policy.maxRetries; ++attempt) {
      ep::serve::TuneRequest req;
      req.device = Device::P100;
      req.n = n;
      req.maxDegradation = 0.11;
      if (broker.submitTune(req).get().status == Status::Ok) break;
      if (attempt < policy.maxRetries) {
        const double ms = policy.delayMs(/*stream=*/0, idx, attempt + 1);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      }
    }
    hist.observe(elapsedMsSince(t0));
  };

  chaosEngine->crash();
  int raisedAtSec = -1;
  int sec = 0;
  int coldKey = 9000;
  for (; sec < 10; ++sec) {
    for (int i = 0; i < 6; ++i) drive(coldKey += 64);
    store.ingest(r.snapshot(), (sec + 1) * kSec);
    slo.evaluate((sec + 1) * kSec);
    if (raisedAtSec < 0 && slo.status()[0].burning) raisedAtSec = sec + 1;
  }
  check(raisedAtSec > 0, "SLO burn raised while the shard was crashed");

  chaosEngine->recover();
  int clearedAtSec = -1;
  for (; sec < 34; ++sec) {
    for (int i = 0; i < 6; ++i) drive(warm[static_cast<std::size_t>(sec) % warm.size()]);
    store.ingest(r.snapshot(), (sec + 1) * kSec);
    slo.evaluate((sec + 1) * kSec);
    if (raisedAtSec > 0 && clearedAtSec < 0 && !slo.status()[0].burning) {
      clearedAtSec = sec + 1;
    }
  }
  check(clearedAtSec > raisedAtSec, "SLO burn cleared after recovery");
  if (raisedAtSec > 0 && clearedAtSec > 0) {
    std::printf("  burn raised at t=%ds, cleared at t=%ds\n", raisedAtSec,
                clearedAtSec);
  }
  bool sawBurn = false;
  bool sawClear = false;
  for (const auto& ev : slo.events()) {
    if (std::strcmp(ev.kind, "slo_burn") == 0) sawBurn = true;
    if (std::strcmp(ev.kind, "slo_cleared") == 0) sawClear = true;
  }
  check(sawBurn && sawClear, "slo_burn + slo_cleared events recorded");
  broker.shutdown();
}

// -- Phase F: energy-aware routing still dominates round-robin -------
double traceJoules(ep::fleet::PolicyKind policy) {
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "p" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.broker.queueCapacity = 128;
    cfgs.push_back(std::move(c));
  }
  FleetOptions fo;
  fo.policy = policy;
  FleetRouter router(std::move(cfgs), fo);
  // 25 keys over 3 shards: the counts are coprime, so round-robin's
  // rotation cannot accidentally re-land a repeated key on the shard
  // that already cached it.
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 25; ++i) {
      FleetRequest r;
      r.device = Device::P100;
      r.n = 512 + i * 64;
      r.maxDegradation = 0.11;
      (void)router.tune(r);
    }
  }
  const double joules = router.metrics().clusterJoules;
  router.shutdown();
  return joules;
}

void phaseEnergyDominance() {
  std::printf("-- phase F: energy-aware vs round-robin under repeats --\n");
  const double ea = traceJoules(ep::fleet::PolicyKind::EnergyAware);
  const double rr = traceJoules(ep::fleet::PolicyKind::RoundRobin);
  std::printf("  cluster joules: energy-aware %.3f, round-robin %.3f\n", ea,
              rr);
  check(ea < rr, "energy-aware routing spends fewer cluster joules");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      gSeed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: chaoscheck [--seed S]\n");
      return 2;
    }
  }
  std::printf("== chaoscheck: seed 0x%llx ==\n",
              static_cast<unsigned long long>(gSeed));
  phaseTransportChaos();
  phaseServerChaos();
  phaseSelfHealing();
  phaseOverload();
  phaseSloBurn();
  phaseEnergyDominance();
  std::printf("== chaoscheck: %s ==\n",
              gFailures == 0 ? "all checks passed" : "FAILURES");
  return gFailures == 0 ? 0 : 1;
}
