// epsim-report: one-shot driver that runs the complete reproduction and
// prints a compact summary of every headline observation next to the
// paper's value — the "did the reproduction hold?" executive view.
#include <cstdio>

#include "apps/cpu_dgemm_app.hpp"
#include "apps/fft2d_app.hpp"
#include "apps/gpu_matmul_app.hpp"
#include "core/definitions.hpp"
#include "core/metrics.hpp"
#include "core/study.hpp"
#include "energymodel/additivity.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

namespace {

void row(const char* what, const char* paper, const std::string& measured) {
  std::printf("  %-46s %-22s %s\n", what, paper, measured.c_str());
}

std::string pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * x);
  return buf;
}

}  // namespace

int main() {
  std::printf("epsim reproduction report — "
              "On Energy Nonproportionality of CPUs and GPUs (IPPS'22)\n");
  std::printf("%-48s %-22s %s\n", "observation", "paper", "measured");
  std::printf("%s\n", std::string(100, '-').c_str());

  apps::GpuMatMulOptions fast;
  fast.useMeter = false;
  Rng rng(1);

  // Strong EP (Fig 1).
  {
    apps::Fft2dOptions opts;
    opts.useMeter = false;
    const std::vector<int> sizes{256, 512, 1024, 2048, 4096, 8192, 16384};
    const apps::Fft2dApp cpuApp(hw::CpuModel(hw::haswellE52670v3()), opts);
    std::vector<double> w, e;
    for (const auto& p : cpuApp.runSweep(sizes, rng)) {
      w.push_back(p.work);
      e.push_back(p.dynamicEnergy.value());
    }
    const auto r = core::analyzeStrongEp(w, e, 0.05);
    row("strong EP on the CPU (2D FFT)", "violated",
        r.holds ? "HOLDS (!)" : "violated, dev " + pct(r.maxRelativeDeviation));
  }

  // P100 headline (Fig 8).
  {
    const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), fast);
    const core::GpuEpStudy study(app);
    const auto r = study.runWorkload(10240, rng);
    row("P100 N=10240 global front size", "3",
        std::to_string(r.globalFront.size()));
    row("P100 N=10240 savings @ degradation", "50% @ 11%",
        pct(r.globalTradeoff.maxEnergySavings) + " @ " +
            pct(r.globalTradeoff.performanceDegradation));
    const auto r18 = study.runWorkload(18432, rng);
    row("P100 N=18432 front / trade-off (Fig 2)", "2 pts, 12.5% @ 2.5%",
        std::to_string(r18.globalFront.size()) + " pts, " +
            pct(r18.globalTradeoff.maxEnergySavings) + " @ " +
            pct(r18.globalTradeoff.performanceDegradation));
  }

  // K40c headline (Fig 7 / Section V-B).
  {
    const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), fast);
    const core::GpuEpStudy study(app);
    const auto results = study.runSweep(
        {8704, 9728, 10240, 11264, 12288, 13312, 14336}, rng);
    const auto s = core::GpuEpStudy::summarize(results);
    row("K40c global fronts", "always 1 point (BS=32)",
        "avg " + std::to_string(s.avgGlobalFrontSize).substr(0, 4) +
            ", max " + std::to_string(s.maxGlobalFrontSize));
    row("K40c local fronts avg/max", "4 / 5",
        std::to_string(s.avgLocalFrontSize).substr(0, 4) + " / " +
            std::to_string(s.maxLocalFrontSize));
    row("K40c local savings @ degradation", "18% @ 7%",
        pct(s.maxLocalSavings) + " @ " +
            pct(s.degradationAtMaxLocalSavings));
  }

  // Fig 6 additivity.
  {
    const hw::GpuModel p100(hw::nvidiaP100Pcie());
    auto err = [&](int n) {
      const auto e1 = p100.modelMatMul({n, 32, 1, 1}).dynamicEnergy();
      const auto e4 = p100.modelMatMul({n, 32, 4, 1}).dynamicEnergy();
      return model::analyzeEnergyAdditivity(e1.value(), e4.value(), 4)
          .error;
    };
    row("P100 non-additivity at N=5120 (G=4)", "high", pct(err(5120)));
    row("P100 non-additivity at N=16384", "~0 (above threshold)",
        pct(err(16384)));
  }

  // Fig 4 scatter.
  {
    apps::CpuDgemmOptions opts;
    opts.useMeter = false;
    const apps::CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
    const auto points =
        app.runWorkload(17408, hw::BlasVariant::IntelMklLike, rng);
    std::vector<core::PowerSampleU> samples;
    double peak = 0.0;
    for (const auto& p : points) {
      samples.push_back(
          {p.avgUtilizationPct / 100.0, p.dynamicPower.value()});
      peak = std::max(peak, p.gflops);
    }
    const auto scatter = core::analyzeScatter(samples, 10);
    row("CPU performance plateau", "~700 GFLOPs",
        std::to_string(static_cast<int>(peak)) + " GFLOPs");
    row("CPU power-vs-utilization", "non-functional",
        "same-U scatter " + pct(scatter.maxResidual));
  }

  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("full details: bench binaries in build/bench/ and "
              "EXPERIMENTS.md\n");
  return 0;
}
