// epprof — client for the continuous profiler on epserved / epfleetd.
//
// Usage:
//   epprof [--host H] [--port P] [--kind cpu|energy] [--scope cluster]
//          [--top N] [--interval-ms MS] [--once]
//          [--start] [--period-us US] [--energy-only] [--stop] [--clear]
//          [--collapse FILE] [--speedscope FILE]
//          [--check FRAME --min-share X]
//          [--check-total J --tol FRAC]
//
// Default mode is a live "top frames" view (inclusive weight and share
// per frame label), repainted every interval until interrupted; --once
// renders a single frame.  Control flags (--start/--stop/--clear) act
// and exit.  --collapse / --speedscope fetch one snapshot and write the
// flamegraph input file.  The check flags are the scriptable face the
// ci.sh profiler drill uses:
//   --check FRAME --min-share X   exit 2 unless FRAME's inclusive share
//                                 of the profile weight is >= X
//   --check-total J --tol FRAC    exit 2 unless the profile's total
//                                 weight matches J within FRAC
//                                 (|total - J| <= FRAC * max(J, eps))
//
// Exit status: 0 ok / checks passed; 1 transport or server error;
// 2 a check failed.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "serve/wire.hpp"

namespace {

volatile std::sig_atomic_t gStop = 0;
void handleStopSignal(int) { gStop = 1; }

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  std::string kind = "cpu";
  bool cluster = false;
  std::size_t top = 20;
  std::int64_t intervalMs = 1000;
  bool once = false;
  bool start = false;
  std::uint64_t periodUs = 10000;
  bool energyOnly = false;
  bool stop = false;
  bool clear = false;
  std::string collapseFile;
  std::string speedscopeFile;
  std::string checkFrame;
  double minShare = 0.5;
  double checkTotal = -1.0;
  double tol = 0.05;
};

bool parseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      a->host = v;
    } else if (arg == "--port" && (v = next())) {
      a->port = static_cast<std::uint16_t>(std::stoi(v));
    } else if (arg == "--kind" && (v = next())) {
      a->kind = v;
      if (a->kind != "cpu" && a->kind != "energy") return false;
    } else if (arg == "--scope" && (v = next())) {
      if (std::string(v) == "cluster") {
        a->cluster = true;
      } else if (std::string(v) != "process") {
        return false;
      }
    } else if (arg == "--top" && (v = next())) {
      a->top = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--interval-ms" && (v = next())) {
      a->intervalMs = std::stoll(v);
    } else if (arg == "--once") {
      a->once = true;
    } else if (arg == "--start") {
      a->start = true;
    } else if (arg == "--period-us" && (v = next())) {
      a->periodUs = std::stoull(v);
    } else if (arg == "--energy-only") {
      a->energyOnly = true;
    } else if (arg == "--stop") {
      a->stop = true;
    } else if (arg == "--clear") {
      a->clear = true;
    } else if (arg == "--collapse" && (v = next())) {
      a->collapseFile = v;
    } else if (arg == "--speedscope" && (v = next())) {
      a->speedscopeFile = v;
    } else if (arg == "--check" && (v = next())) {
      a->checkFrame = v;
    } else if (arg == "--min-share" && (v = next())) {
      a->minShare = std::stod(v);
    } else if (arg == "--check-total" && (v = next())) {
      a->checkTotal = std::stod(v);
    } else if (arg == "--tol" && (v = next())) {
      a->tol = std::stod(v);
    } else {
      return false;
    }
  }
  return true;
}

class Connection {
 public:
  bool open(const std::string& host, std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  bool roundTrip(const std::string& request, std::string* response) {
    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    std::size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[65536];
      const ssize_t got = recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    *response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

using Object = ep::serve::wire::Object;

bool boolOr(const Object& obj, const std::string& key, bool fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::Bool) {
    return fallback;
  }
  return it->second.boolean;
}

double numberOr(const Object& obj, const std::string& key, double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::Number) {
    return fallback;
  }
  return it->second.number;
}

std::string stringOr(const Object& obj, const std::string& key,
                     const std::string& fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::String) {
    return fallback;
  }
  return it->second.string;
}

std::optional<Object> query(Connection& conn, const std::string& request) {
  std::string response;
  if (!conn.roundTrip(request, &response)) return std::nullopt;
  std::string error;
  return ep::serve::wire::parseObject(response, &error);
}

std::string snapshotRequest(const Args& args, std::size_t topN,
                            const std::string& format) {
  ep::serve::wire::ObjectWriter w;
  w.add("op", "profile")
      .add("action", "snapshot")
      .add("kind", args.kind)
      .add("topN", static_cast<std::uint64_t>(topN))
      .add("format", format);
  if (args.cluster) w.add("scope", "cluster");
  return w.str();
}

const char* weightUnit(const std::string& kind) {
  return kind == "energy" ? "J" : "s";
}

// One live-top frame; false on transport/server failure.
bool renderTop(Connection& conn, const Args& args) {
  const auto snap = query(conn, snapshotRequest(args, args.top, "collapsed"));
  if (!snap || stringOr(*snap, "status", "") != "ok") return false;
  std::printf("epprof @ %s:%u — kind=%s%s samples=%.0f total=%.4g%s "
              "stacks=%.0f dropped=%.0f truncated=%.0f\n\n",
              args.host.c_str(), static_cast<unsigned>(args.port),
              stringOr(*snap, "kind", "?").c_str(),
              args.cluster ? " scope=cluster" : "",
              numberOr(*snap, "samples", 0),
              numberOr(*snap, "totalWeight", 0), weightUnit(args.kind),
              numberOr(*snap, "stacks", 0), numberOr(*snap, "dropped", 0),
              numberOr(*snap, "truncated", 0));
  const auto top = static_cast<std::size_t>(numberOr(*snap, "top", 0));
  std::printf("  %-44s %10s %12s %8s\n", "frame (inclusive)", "samples",
              "weight", "share");
  for (std::size_t i = 0; i < top; ++i) {
    const std::string p = "top." + std::to_string(i);
    std::printf("  %-44s %10.0f %10.4g %s %7.1f%%\n",
                stringOr(*snap, p + ".frame", "?").c_str(),
                numberOr(*snap, p + ".samples", 0),
                numberOr(*snap, p + ".weight", 0), weightUnit(args.kind),
                numberOr(*snap, p + ".share", 0) * 100.0);
  }
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr
        << "usage: epprof [--host H] [--port P] [--kind cpu|energy]"
           " [--scope cluster] [--top N] [--interval-ms MS] [--once]\n"
           "              [--start] [--period-us US] [--energy-only]"
           " [--stop] [--clear]\n"
           "              [--collapse FILE] [--speedscope FILE]\n"
           "              [--check FRAME --min-share X]"
           " [--check-total J --tol FRAC]\n";
    return 2;
  }

  Connection conn;
  if (!conn.open(args.host, args.port)) {
    std::cerr << "epprof: cannot connect to " << args.host << ":" << args.port
              << "\n";
    return 1;
  }

  // Control actions: act, report, exit.
  if (args.start || args.stop || args.clear) {
    int rc = 0;
    auto act = [&](const std::string& request, const char* what) {
      const auto resp = query(conn, request);
      if (!resp || stringOr(*resp, "status", "") != "ok") {
        std::cerr << "epprof: " << what << " failed\n";
        rc = 1;
        return;
      }
      std::printf("%s: running=%s threads=%.0f\n",
                  stringOr(*resp, "action", what).c_str(),
                  boolOr(*resp, "running", false) ? "yes" : "no",
                  numberOr(*resp, "threads", 0));
    };
    if (args.clear) act("{\"op\":\"profile\",\"action\":\"clear\"}", "clear");
    if (args.stop) act("{\"op\":\"profile\",\"action\":\"stop\"}", "stop");
    if (args.start) {
      ep::serve::wire::ObjectWriter w;
      w.add("op", "profile")
          .add("action", "start")
          .add("periodUs", static_cast<std::uint64_t>(args.periodUs));
      if (args.energyOnly) w.add("cpuSampling", false);
      act(w.str(), "start");
    }
    return rc;
  }

  // One-shot export / check modes fetch a single full snapshot.
  const bool exporting =
      !args.collapseFile.empty() || !args.speedscopeFile.empty();
  const bool checking = !args.checkFrame.empty() || args.checkTotal >= 0.0;
  if (exporting || checking) {
    // topN=0 = every frame (the checks must see non-top frames too).
    const auto snap = query(conn, snapshotRequest(args, 0, "collapsed"));
    if (!snap || stringOr(*snap, "status", "") != "ok") {
      std::cerr << "epprof: snapshot failed\n";
      return 1;
    }
    if (!args.collapseFile.empty()) {
      std::ofstream out(args.collapseFile);
      out << stringOr(*snap, "body", "");
      if (!out) {
        std::cerr << "epprof: cannot write " << args.collapseFile << "\n";
        return 1;
      }
      std::printf("wrote %s\n", args.collapseFile.c_str());
    }
    if (!args.speedscopeFile.empty()) {
      const auto ss = query(conn, snapshotRequest(args, 0, "speedscope"));
      if (!ss || stringOr(*ss, "status", "") != "ok") {
        std::cerr << "epprof: speedscope snapshot failed\n";
        return 1;
      }
      std::ofstream out(args.speedscopeFile);
      out << stringOr(*ss, "body", "");
      if (!out) {
        std::cerr << "epprof: cannot write " << args.speedscopeFile << "\n";
        return 1;
      }
      std::printf("wrote %s\n", args.speedscopeFile.c_str());
    }
    int rc = 0;
    if (!args.checkFrame.empty()) {
      const auto n = static_cast<std::size_t>(numberOr(*snap, "top", 0));
      double share = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string p = "top." + std::to_string(i);
        if (stringOr(*snap, p + ".frame", "") == args.checkFrame) {
          share = numberOr(*snap, p + ".share", 0);
          break;
        }
      }
      if (share >= args.minShare) {
        std::printf("check ok: %s share %.3f >= %.3f\n",
                    args.checkFrame.c_str(), share, args.minShare);
      } else {
        std::printf("check FAILED: %s share %.3f < %.3f\n",
                    args.checkFrame.c_str(), std::max(share, 0.0),
                    args.minShare);
        rc = 2;
      }
    }
    if (args.checkTotal >= 0.0) {
      const double total = numberOr(*snap, "totalWeight", 0);
      const double scale = std::max(args.checkTotal, 1e-12);
      const double rel = std::fabs(total - args.checkTotal) / scale;
      if (rel <= args.tol) {
        std::printf("check ok: total %.6g within %.1f%% of %.6g\n", total,
                    args.tol * 100.0, args.checkTotal);
      } else {
        std::printf("check FAILED: total %.6g vs %.6g (rel err %.3f > %.3f)\n",
                    total, args.checkTotal, rel, args.tol);
        rc = 2;
      }
    }
    return rc;
  }

  // Live top.
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  for (;;) {
    if (!args.once) std::printf("\x1b[H\x1b[2J");
    if (!renderTop(conn, args)) {
      std::cerr << "epprof: lost connection to " << args.host << ":"
                << args.port << "\n";
      return 1;
    }
    if (args.once || gStop) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(args.intervalMs));
    if (gStop) break;
  }
  return 0;
}
