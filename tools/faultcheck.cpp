// Scripted fault campaign for the hardened measurement -> study ->
// serve pipeline (the epfault acceptance run, kept in-tree like
// calibrate/epsim_report so it can be re-run after any model or
// robustness change).
//
//   faultcheck [--rate R] [--threads N] [--journal PATH]
//
// With a deterministic fault campaign injected into the simulated
// wall meter (dropped/stuck/spiked/NaN/zero samples, gain drift and
// whole-window timeouts at --rate, default 5 %), the robust
// measurement loop and skip-and-record study must still:
//
//   1. reproduce the paper's K40c Section V shape: every workload's
//      global front collapses to one point at BS=32 — asserted at the
//      measurement protocol's own precision (a 2.5 % CI target cannot
//      certify exact dominance between sub-percent near-ties, so the
//      shape check uses pareto::precisionFront at that epsilon);
//   2. reproduce the Fig 6 additivity thresholds on *measured*
//      energies: strongly non-additive at N=5120, additive at N=16384;
//   3. stay bitwise-deterministic across pool sizes 1/2/8;
//   4. checkpoint-resume to results bitwise-identical to an
//      uninterrupted sweep;
//   5. account for every injected fault in the epobs registry
//      (ep_fault_injected_total and friends in the Prometheus dump).
//
// Exit code 0 iff every check passes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/journal.hpp"
#include "core/study.hpp"
#include "energymodel/additivity.hpp"
#include "hw/gpu_model.hpp"
#include "pareto/front.hpp"
#include "hw/spec.hpp"
#include "obs/metrics.hpp"
#include "stats/ttest.hpp"

using namespace ep;

namespace {

int gFailures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++gFailures;
}

apps::GpuMatMulOptions campaignOptions(double rate) {
  apps::GpuMatMulOptions opts;
  opts.useMeter = true;
  opts.faults = fault::FaultInjectionOptions::campaign(rate);
  // Tiered recovery matched to the campaign's fault rates: per-sample
  // sanitization absorbs the point corruptions (NaN/zero readings and
  // spikes above the node's PSU ceiling) that make *every* long trace
  // dirty, structural validation with tolerant thresholds catches what
  // sanitization cannot repair (4+ consecutive missing samples, long
  // stuck runs), and MAD screening rejects the whole-window energy
  // shifts (gain drift, residual spike pile-ups).
  opts.robustness.sanitizeSamples = true;
  // Simulated nodes peak well under 400 W (idle host + one GPU's TDP);
  // the campaign's 4x spikes land far above any real PSU rating.
  opts.robustness.maxPlausibleWatts = 600.0;
  opts.robustness.validation.enabled = true;
  opts.robustness.validation.maxGapFactor = 5.0;
  opts.robustness.validation.stuckRunLength = 8;
  opts.robustness.rejectOutliers = true;
  // Tight enough to reject the +/-5 % gain-drift windows the PSU
  // ceiling cannot catch; the clean rep-to-rep scatter sits well below
  // this modified z-score.
  opts.robustness.madThreshold = 3.5;
  opts.robustness.remeasureBudget = 64;
  opts.failPolicy = fault::FailPolicy::SkipAndRecord;
  return opts;
}

bool sameResults(const core::WorkloadResult& a, const core::WorkloadResult& b) {
  if (a.n != b.n || a.data.size() != b.data.size() ||
      a.failures.size() != b.failures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    const auto& x = a.data[i];
    const auto& y = b.data[i];
    if (x.config.bs != y.config.bs || x.config.g != y.config.g ||
        x.config.r != y.config.r || x.repetitions != y.repetitions ||
        core::doubleBits(x.time.value()) != core::doubleBits(y.time.value()) ||
        core::doubleBits(x.dynamicEnergy.value()) !=
            core::doubleBits(y.dynamicEnergy.value())) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    if (a.failures[i].error != b.failures[i].error) return false;
  }
  return true;
}

bool sameSweeps(const std::vector<core::WorkloadResult>& a,
                const std::vector<core::WorkloadResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!sameResults(a[i], b[i])) return false;
  }
  return true;
}

int perfOptimalBs(const core::WorkloadResult& r) {
  return r.data[r.globalTradeoff.performanceOptimal.configId].config.bs;
}

// Value of a counter in a Prometheus text exposition; -1 if absent.
double promValue(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  const std::string needle = name + " ";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::atof(text.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  double rate = 0.05;
  std::size_t threads = 8;
  std::string journalPath = "faultcheck.journal";
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (a == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (a == "--journal" && i + 1 < argc) {
      journalPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: faultcheck [--rate R] [--threads N]"
                   " [--journal PATH]\n");
      return 2;
    }
  }
  std::remove(journalPath.c_str());
  ThreadPool pool(threads);
  const std::uint64_t kSeed = 0xFA17C4EC;
  const std::vector<int> sweep{8704, 10240, 12288, 14336};

  std::printf("fault campaign: rate=%.3f (timeouts %.3f, drift %.3f)\n", rate,
              rate / 4.0, rate / 2.0);

  // --- 1. K40c Section V shape survives the campaign. -----------------
  std::printf("\n== K40c paper shape under faults ==\n");
  const apps::GpuMatMulOptions opts = campaignOptions(rate);
  const core::GpuEpStudy k40c(
      apps::GpuMatMulApp(hw::GpuModel(hw::nvidiaK40c()), opts));
  core::SweepOptions sweepOpts;
  sweepOpts.workloadPolicy = fault::FailPolicy::SkipAndRecord;
  Rng rngA(kSeed);
  const auto runA = k40c.runSweepChecked(sweep, rngA, sweepOpts, &pool);
  check(runA.failures.empty(), "no workload lost to the campaign");
  check(runA.results.size() == sweep.size(), "every workload produced");
  std::size_t skipped = 0;
  bool frontsOk = !runA.results.empty();
  bool bsOk = frontsOk;
  // Energies are measured to a 2.5 % CI target, so the shape assertion
  // holds the front to that same resolution: a front member whose only
  // advantage is below the instrument's precision is not a real
  // trade-off point.
  const double kPrecision = stats::MeasurementOptions{}.precision;
  for (const auto& r : runA.results) {
    skipped += r.failures.size();
    const auto meaningful = pareto::precisionFront(r.points, kPrecision);
    std::printf(
        "  N=%d: %zu configs (%zu skipped), global front %zu"
        " (%zu at 2.5%% precision)\n",
        r.n, r.data.size(), r.failures.size(), r.globalFront.size(),
        meaningful.size());
    for (const auto& p : r.globalFront) {
      const auto& d = r.data[p.configId];
      std::printf("    front: BS=%d G=%d R=%d  t=%.6f s  E=%.3f J\n",
                  d.config.bs, d.config.g, d.config.r, p.time.value(),
                  p.energy.value());
    }
    if (meaningful.size() != 1) frontsOk = false;
    if (perfOptimalBs(r) != 32) bsOk = false;
  }
  check(frontsOk,
        "global front = 1 point per workload at measurement precision");
  check(bsOk, "performance-optimal configuration is BS=32");

  // --- 2. Fig 6 additivity thresholds on measured energies. -----------
  std::printf("\n== Fig 6 additivity under faults (P100, BS=32) ==\n");
  const apps::GpuMatMulApp p100(hw::GpuModel(hw::nvidiaP100Pcie()),
                                campaignOptions(rate));
  Rng addRng(kSeed + 1);
  auto measuredError = [&](int n) {
    double e1 = 0.0, e4 = 0.0;
    for (const auto& cfg : p100.additivityConfigs(n, 32, 4)) {
      Rng cfgRng = addRng.fork(apps::GpuMatMulApp::forkSalt(cfg));
      try {
        const auto d = p100.runConfig(cfg, cfgRng);
        if (cfg.g == 1) e1 = d.dynamicEnergy.value();
        if (cfg.g == 4) e4 = d.dynamicEnergy.value();
      } catch (const EpError& e) {
        std::printf("  N=%d G=%d failed: %s\n", n, cfg.g, e.what());
        return -1.0;  // fails both threshold checks
      }
    }
    const auto rec = model::analyzeEnergyAdditivity(e1, e4, 4);
    std::printf("  N=%d: E(1)=%.1f J, E(4)=%.1f J, error=%.1f%%\n", n, e1, e4,
                100.0 * rec.error);
    return rec.error;
  };
  check(measuredError(5120) > 0.10, "N=5120 strongly non-additive (>10%)");
  const double e16 = measuredError(16384);
  check(e16 >= 0.0 && e16 < 0.08, "N=16384 additive (<8%)");

  // --- 3. Bitwise determinism across pool sizes. ----------------------
  std::printf("\n== pool-size determinism under faults ==\n");
  auto runOne = [&](ThreadPool* p) {
    Rng rng(kSeed);
    core::WorkloadResult r = k40c.runWorkload(10240, rng, p);
    return r;
  };
  const auto serial = runOne(nullptr);
  bool poolsOk = true;
  for (std::size_t t : {1u, 2u, 8u}) {
    ThreadPool small(t);
    if (!sameResults(serial, runOne(&small))) poolsOk = false;
  }
  check(poolsOk, "pool sizes 1/2/8 bitwise-identical to serial");

  // --- 4. Checkpoint + resume == uninterrupted. -----------------------
  std::printf("\n== checkpoint / resume ==\n");
  core::SweepOptions ckpt = sweepOpts;
  ckpt.checkpointPath = journalPath;
  {
    // "Interrupted" run: only the first half of the sweep completes.
    const std::vector<int> half(sweep.begin(), sweep.begin() + 2);
    Rng rng(kSeed);
    const auto partial = k40c.runSweepChecked(half, rng, ckpt, &pool);
    check(partial.resumedWorkloads == 0, "cold journal resumes nothing");
  }
  Rng rngB(kSeed);
  const auto resumed = k40c.runSweepChecked(sweep, rngB, ckpt, &pool);
  std::printf("  resumed %zu of %zu workloads from %s\n",
              resumed.resumedWorkloads, sweep.size(), journalPath.c_str());
  check(resumed.resumedWorkloads == 2, "second run resumes the half sweep");
  check(sameSweeps(runA.results, resumed.results),
        "resumed sweep bitwise-identical to uninterrupted run");
  Rng rngC(kSeed);
  const auto replayed = k40c.runSweepChecked(sweep, rngC, ckpt, &pool);
  check(replayed.resumedWorkloads == sweep.size(),
        "third run replays entirely from the journal");
  check(sameSweeps(runA.results, replayed.results),
        "replayed sweep bitwise-identical to uninterrupted run");
  std::remove(journalPath.c_str());

  // --- 5. Every fault is accounted for. -------------------------------
  std::printf("\n== observability ==\n");
  const std::string prom = obs::Registry::global().renderPrometheus();
  const double injected = promValue(prom, "ep_fault_injected_total");
  std::printf("  ep_fault_injected_total          %.0f\n", injected);
  for (const char* name :
       {"ep_measure_timeouts_total", "ep_measure_retries_total",
        "ep_measure_invalid_traces_total", "ep_measure_outliers_rejected_total",
        "ep_measure_budget_exhausted_total",
        "ep_study_config_failures_total"}) {
    std::printf("  %-32s %.0f\n", name, promValue(prom, name));
  }
  check(injected > 0.0, "injected faults visible in Prometheus exposition");
  check(promValue(prom, "ep_measure_retries_total") >= 0.0 &&
            promValue(prom, "ep_measure_timeouts_total") > 0.0,
        "measurement retry counters exported");
  // The registry accumulates over every run above (shape sweep, pool
  // replicas, resume), so the process-wide counter is a superset of the
  // shape sweep's own skip count.
  check(skipped == 0 ||
            promValue(prom, "ep_study_config_failures_total") >=
                static_cast<double>(skipped),
        "skipped configs covered by ep_study_config_failures_total");

  std::printf("\nfaultcheck: %s (%d failing check%s)\n",
              gFailures == 0 ? "ALL CHECKS PASSED" : "FAILED", gFailures,
              gFailures == 1 ? "" : "s");
  return gFailures == 0 ? 0 : 1;
}
