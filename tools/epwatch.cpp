// epwatch — text dashboard over epserved's power-anomaly watchdog.
//
// Usage:
//   epwatch [--host H] [--port P] [--since SEQ] [--check] [--raw]
//           [--fleet]
//
// Fetches {"op":"events"} (the watchdog flight recorder) plus the
// Prometheus exposition, and renders:
//   * the active-alert count and ring totals (recorded / dropped),
//   * every drained event: seq, kind, scope, value vs threshold, the
//     trace id it fired under, and the human message,
//   * the per-device request-attributed energy ledger
//     (ep_request_energy_joules / ep_request_windows_total).
//
// Exit status is script-friendly:
//   0 — connected, and (with --check) no active alerts
//   1 — could not connect / server answered with an error
//   2 — --check and at least one anomaly is raised and not yet cleared
//
// --since SEQ drains only events newer than SEQ (incremental tailing:
// feed the highest seq you have seen back in).  --raw dumps the event
// lines verbatim (one flat JSON object per line) for jq-style piping.
//
// --fleet points the drain at an epfleetd endpoint (default port 7071
// unless --port says otherwise): the fleet daemon merges every shard
// watchdog's recorder plus the SLO engine's burn transitions into one
// stream, each event tagged with the shard it came from — the tag is
// rendered as a [shard] column.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  bool portSet = false;
  std::uint64_t since = 0;
  bool check = false;
  bool raw = false;
  bool fleet = false;
};

bool parseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      a->host = v;
    } else if (arg == "--port" && (v = next())) {
      a->port = static_cast<std::uint16_t>(std::stoi(v));
      a->portSet = true;
    } else if (arg == "--since" && (v = next())) {
      a->since = std::stoull(v);
    } else if (arg == "--check") {
      a->check = true;
    } else if (arg == "--raw") {
      a->raw = true;
    } else if (arg == "--fleet") {
      a->fleet = true;
    } else {
      return false;
    }
  }
  if (a->fleet && !a->portSet) a->port = 7071;  // epfleetd's default
  return true;
}

class Connection {
 public:
  bool open(const std::string& host, std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  bool roundTrip(const std::string& request, std::string* response) {
    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    std::size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t got = recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    *response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double numberOr(const ep::serve::wire::Object& obj, const std::string& key,
                double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::Number) {
    return fallback;
  }
  return it->second.number;
}

std::string stringOr(const ep::serve::wire::Object& obj,
                     const std::string& key, const std::string& fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() ||
      it->second.kind != ep::serve::wire::Value::Kind::String) {
    return fallback;
  }
  return it->second.string;
}

void printEvent(const ep::serve::wire::Object& e, bool fleet) {
  const std::string kind = stringOr(e, "kind", "?");
  const auto seq = static_cast<std::uint64_t>(numberOr(e, "seq", 0.0));
  const std::string scope = stringOr(e, "scope", "");
  const double value = numberOr(e, "value", 0.0);
  const double threshold = numberOr(e, "threshold", 0.0);
  const std::string trace = stringOr(e, "trace", "0");
  const std::string message = stringOr(e, "message", "");
  const std::string shard = stringOr(e, "shard", "-");
  const char* marker =
      (kind == "cleared" || kind == "slo_cleared") ? " ok  " : "ALERT";
  if (fleet) {
    std::printf("  [%s] #%-4llu [%-7s] %-18s %-14s %9.3g / %-9.3g trace=%s\n",
                marker, static_cast<unsigned long long>(seq), shard.c_str(),
                kind.c_str(), scope.c_str(), value, threshold, trace.c_str());
  } else {
    std::printf("  [%s] #%-4llu %-18s %-14s %9.3g / %-9.3g trace=%s\n",
                marker, static_cast<unsigned long long>(seq), kind.c_str(),
                scope.c_str(), value, threshold, trace.c_str());
  }
  if (!message.empty()) std::printf("          %s\n", message.c_str());
}

// Pull the attribution families out of the Prometheus exposition; the
// dashboard shows the ledger without needing a scrape stack.
void printEnergyLedger(const std::string& prometheus) {
  std::istringstream in(prometheus);
  std::string line;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.rfind("ep_request_energy_joules{", 0) == 0 ||
        line.rfind("ep_request_windows_total{", 0) == 0 ||
        line.rfind("ep_watchdog_", 0) == 0) {
      if (!any) std::printf("\nenergy attribution / watchdog metrics:\n");
      any = true;
      std::printf("  %s\n", line.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, &args)) {
    std::cerr << "usage: epwatch [--host H] [--port P] [--since SEQ]"
                 " [--check] [--raw] [--fleet]\n";
    return 2;
  }

  Connection conn;
  if (!conn.open(args.host, args.port)) {
    std::cerr << "epwatch: cannot connect to " << args.host << ":"
              << args.port << "\n";
    return 1;
  }

  ep::serve::wire::ObjectWriter req;
  req.add("op", "events");
  if (args.since > 0) req.add("since", args.since);
  std::string response;
  if (!conn.roundTrip(req.str(), &response)) {
    std::cerr << "epwatch: events request failed\n";
    return 1;
  }
  std::string error;
  const auto obj = ep::serve::wire::parseObject(response, &error);
  if (!obj) {
    std::cerr << "epwatch: bad response: " << error << "\n";
    return 1;
  }
  if (stringOr(*obj, "status", "") != "ok") {
    std::cerr << "epwatch: server error: "
              << stringOr(*obj, "error", "unknown") << "\n";
    return 1;
  }

  const auto alerts = static_cast<std::uint64_t>(numberOr(*obj, "alerts", 0));
  const auto recorded =
      static_cast<std::uint64_t>(numberOr(*obj, "recorded", 0));
  const auto dropped = static_cast<std::uint64_t>(numberOr(*obj, "dropped", 0));
  const std::string body = stringOr(*obj, "body", "");

  if (args.raw) {
    std::cout << body;
  } else {
    std::printf("epwatch @ %s:%u — %llu active alert(s), %llu event(s)"
                " recorded, %llu dropped\n",
                args.host.c_str(), static_cast<unsigned>(args.port),
                static_cast<unsigned long long>(alerts),
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(dropped));
    std::istringstream lines(body);
    std::string line;
    bool any = false;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      const auto e = ep::serve::wire::parseObject(line, &error);
      if (!e) continue;
      any = true;
      printEvent(*e, args.fleet);
    }
    if (!any) std::printf("  (no events%s)\n",
                          args.since > 0 ? " past --since" : "");

    std::string metricsResp;
    if (conn.roundTrip("{\"op\":\"metrics\",\"format\":\"prometheus\"}",
                       &metricsResp)) {
      if (const auto m = ep::serve::wire::parseObject(metricsResp, &error)) {
        printEnergyLedger(stringOr(*m, "body", ""));
      }
    }
  }

  if (args.check && alerts > 0) return 2;
  return 0;
}
