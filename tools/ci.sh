#!/usr/bin/env bash
# CI entry point: tier-1 verify plus sanitizer checks of the concurrent
# and fault-handling components — a ThreadSanitizer race pass (epserve
# broker, epcommon thread pool, epobs metrics/tracing) and an
# AddressSanitizer+UBSan pass over the fault-injection and serve paths
# (the code that deliberately corrupts traces and parses hostile
# frames).
#
#   tools/ci.sh          # full: tier-1 build + ctest, TSan, ASan+UBSan
#   tools/ci.sh --fast   # skip the sanitizer configurations
#
# The primary build already compiles everything with -Wall -Wextra via
# the epsim_warnings interface target; the sanitizer configurations add
# -Werror on top so new warnings fail CI without polluting the cached
# options of the default build directory.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Profiler smoke drill, parameterised on the build flavour.  Arms the
# always-on profiler over the wire on a *metered* daemon, pushes a
# cold tune spread (every request executes a metered study sweep — the
# repetition loop under the kernel frame is the dominant CPU cost),
# and requires that (a) the CPU profile finds the dgemm kernel frame
# dominant, (b) so does the energy flamegraph, and (c) the energy
# profile's total weight reconciles with the request ledger's summed
# attributed joules within 5%.  Running it against the sanitizer builds
# puts the SIGPROF handler, the per-thread sample rings, and the
# energy-sample fold under TSan and ASan+UBSan on a live daemon.
profiler_drill() {
  local BUILD_DIR="$1"
  echo "== epprof drill (${BUILD_DIR}): kernel-dominant profile vs ledger =="
  local DRILL_LOG
  DRILL_LOG="$(mktemp)"
  "./${BUILD_DIR}/tools/epserved" --port 0 --threads 2 --meter \
    >"${DRILL_LOG}" 2>&1 &
  SERVED_PID=$!
  trap 'kill "${SERVED_PID}" 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    grep -q "listening on" "${DRILL_LOG}" && break
    sleep 0.1
  done
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${DRILL_LOG}")"
  [[ -n "${PORT}" ]] || { echo "epserved (epprof drill) did not start"; cat "${DRILL_LOG}"; exit 1; }
  # 1 kHz so even a fast metered sweep yields a solid CPU sample set.
  "./${BUILD_DIR}/tools/epprof" --port "${PORT}" --start --period-us 1000
  REPORT="$("./${BUILD_DIR}/tools/epserve_client" --port "${PORT}" \
    --requests 4 --device k40c --n 256,320,384,448 --report)"
  echo "${REPORT}" | grep "attributed energy"
  JOULES="$(echo "${REPORT}" \
    | sed -n 's/^attributed energy: \([0-9.eE+-]*\) J over.*/\1/p')"
  [[ -n "${JOULES}" ]] || { echo "no attributed-energy line in client report"; exit 1; }
  "./${BUILD_DIR}/tools/epprof" --port "${PORT}" --kind cpu \
    --check kernel/dgemm --min-share 0.5
  "./${BUILD_DIR}/tools/epprof" --port "${PORT}" --kind energy \
    --check kernel/dgemm --min-share 0.9
  "./${BUILD_DIR}/tools/epprof" --port "${PORT}" --kind energy \
    --check-total "${JOULES}" --tol 0.05
  "./${BUILD_DIR}/tools/epprof" --port "${PORT}" --stop
  kill "${SERVED_PID}" 2>/dev/null || true
  wait "${SERVED_PID}" 2>/dev/null || true
  trap - EXIT
  rm -f "${DRILL_LOG}"
}

echo "== tier-1: configure + build (-Wall -Wextra) + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== epwatch smoke: watchdog catches an injected 58 W offset =="
# Anomalous server: a constant +58 W meter offset (the Fig 6 signature)
# that sample sanitization cannot see.  One metered request later the
# watchdog must hold an active constant_component alert, which epwatch
# --check reports as exit 2.
SMOKE_LOG="$(mktemp)"
./build/tools/epserved --port 0 --threads 2 --watchdog --fault-offset 58 \
  >"${SMOKE_LOG}" 2>&1 &
SERVED_PID=$!
trap 'kill "${SERVED_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "${SMOKE_LOG}" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${SMOKE_LOG}")"
[[ -n "${PORT}" ]] || { echo "epserved (anomalous) did not start"; cat "${SMOKE_LOG}"; exit 1; }
./build/tools/epserve_client --port "${PORT}" --requests 1 --n 256 \
  --trace-id cafe01 --report
set +e
./build/tools/epwatch --port "${PORT}" --check
WATCH_RC=$?
set -e
[[ "${WATCH_RC}" == "2" ]] || { echo "epwatch --check: expected exit 2 (active alert), got ${WATCH_RC}"; exit 1; }
kill "${SERVED_PID}" 2>/dev/null || true
wait "${SERVED_PID}" 2>/dev/null || true

# Healthy server: same pipeline without the fault, no alerts, exit 0.
./build/tools/epserved --port 0 --threads 2 --watchdog >"${SMOKE_LOG}" 2>&1 &
SERVED_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "${SMOKE_LOG}" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${SMOKE_LOG}")"
[[ -n "${PORT}" ]] || { echo "epserved (healthy) did not start"; cat "${SMOKE_LOG}"; exit 1; }
./build/tools/epserve_client --port "${PORT}" --requests 1 --n 256 >/dev/null
./build/tools/epwatch --port "${PORT}" --check
kill "${SERVED_PID}" 2>/dev/null || true
wait "${SERVED_PID}" 2>/dev/null || true
trap - EXIT

echo "== net smoke: epoll event loop serves line-JSON and EPB1 binary =="
# The same daemon, two wire protocols negotiated per connection by the
# first byte: a plain line-JSON client (the pre-event-loop wire format,
# unchanged) and an EPB1 binary client with batched pipelining.  Both
# must complete with zero errors against a multi-threaded event loop.
./build/tools/epserved --port 0 --threads 2 --event-threads 2 \
  >"${SMOKE_LOG}" 2>&1 &
SERVED_PID=$!
trap 'kill "${SERVED_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "${SMOKE_LOG}" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${SMOKE_LOG}")"
[[ -n "${PORT}" ]] || { echo "epserved (net smoke) did not start"; cat "${SMOKE_LOG}"; exit 1; }
./build/tools/epserve_client --port "${PORT}" --requests 64 --n 256 \
  --connections 2 >/dev/null
./build/tools/epserve_client --port "${PORT}" --requests 512 --n 256 \
  --binary --pipeline 32 --connections 2
kill "${SERVED_PID}" 2>/dev/null || true
wait "${SERVED_PID}" 2>/dev/null || true
trap - EXIT

echo "== epfleetd smoke: shard kill -> stale serve -> clean recovery =="
# Three in-process shards behind the energy-aware router.  Warm a key
# spread, kill one shard, and require at least one wire response served
# from the replica (flagged "stale":true); after revival fleetcheck
# --check must see every shard alive and the cluster fronts consistent.
./build/tools/fleetcheck
# --health-probe-ms arms the background health monitor; the manual
# kill below must stay killed (the monitor never resurrects an
# operator decision) and the final fleetcheck --check must still see
# every shard alive after the explicit revive.
./build/tools/epfleetd --port 0 --shards 3 --health-probe-ms 25 \
  >"${SMOKE_LOG}" 2>&1 &
FLEETD_PID=$!
trap 'kill "${FLEETD_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "${SMOKE_LOG}" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${SMOKE_LOG}")"
[[ -n "${PORT}" ]] || { echo "epfleetd did not start"; cat "${SMOKE_LOG}"; exit 1; }
FLEET_NS="256 320 384 448 512 576 640 704"
for N in ${FLEET_NS}; do
  ./build/tools/epserve_client --port "${PORT}" \
    --raw "{\"op\":\"tune\",\"device\":\"p100\",\"n\":${N},\"maxDegradation\":0.11}" \
    >/dev/null
done
./build/tools/epserve_client --port "${PORT}" \
  --raw '{"op":"fleet","action":"kill","shard":"s1"}' >/dev/null
STALE=0
for N in ${FLEET_NS}; do
  ./build/tools/epserve_client --port "${PORT}" \
    --raw "{\"op\":\"tune\",\"device\":\"p100\",\"n\":${N},\"maxDegradation\":0.11}" \
    | grep -q '"stale":true' && STALE=$((STALE + 1))
done
[[ "${STALE}" -ge 1 ]] || { echo "expected stale-served responses after shard kill, got ${STALE}"; exit 1; }
echo "stale-served responses after kill: ${STALE}"
./build/tools/epserve_client --port "${PORT}" \
  --raw '{"op":"fleet","action":"revive","shard":"s1"}' >/dev/null
# Binary pipelined traffic through the router: the EPB1 path must route
# and batch across shards without breaking the line-JSON fleet checks.
./build/tools/epserve_client --port "${PORT}" --requests 256 --n 256 \
  --binary --pipeline 16 >/dev/null
./build/tools/fleetcheck --port "${PORT}" --check
kill "${FLEETD_PID}" 2>/dev/null || true
wait "${FLEETD_PID}" 2>/dev/null || true
trap - EXIT

echo "== chaoscheck drill: fault campaign -> self-heal -> overload =="
# The epchaos end-to-end drill: a seeded 5% transport-fault campaign
# (resets, torn frames, corrupt varints, stalls) against a live fleet,
# server-side accept/inbound chaos, whole-shard crash with auto-eject
# and auto-reinstate, a 2x overload burst shed by adaptive admission,
# an SLO burn raised and cleared, and the energy-aware-beats-round-
# robin routing check.  Every phase is bitwise-reproducible from the
# seed; any assertion failure exits non-zero.
./build/tools/chaoscheck

echo "== eptop drill: healthy fleet -> shard kill -> latency SLO burn =="
# Fleet with the observability plane armed: 100 ms scrapes and a
# latency SLO (90% of requests within 2 ms, second-scale burn windows
# so the drill converges fast).  Single tunes — cold or cached — stay
# well under 2 ms, so after the warm-up ages out of the 3 s window
# eptop --check must report no burning SLO (exit 0).  Killing a shard
# and pushing uncached 16-workload study sweeps makes every in-window
# request blow the threshold, so the burn rate crosses 2x in both
# windows and eptop --check must exit 2, with the slow requests' trace
# ids attached as exemplars to the burning cluster buckets.
./build/tools/epfleetd --port 0 --shards 3 --watchdog --scrape-ms 100 \
  --slo latency:2:0.9 --slo-window 3000:1000:2 >"${SMOKE_LOG}" 2>&1 &
FLEETD_PID=$!
trap 'kill "${FLEETD_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "${SMOKE_LOG}" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${SMOKE_LOG}")"
[[ -n "${PORT}" ]] || { echo "epfleetd (slo) did not start"; cat "${SMOKE_LOG}"; exit 1; }
for N in ${FLEET_NS}; do
  ./build/tools/epserve_client --port "${PORT}" \
    --raw "{\"op\":\"tune\",\"device\":\"p100\",\"n\":${N},\"maxDegradation\":0.11}" \
    >/dev/null
done
sleep 4  # age the cold-study warm-up out of the 3 s long window
for N in 256 320; do
  ./build/tools/epserve_client --port "${PORT}" \
    --raw "{\"op\":\"tune\",\"device\":\"p100\",\"n\":${N},\"maxDegradation\":0.11}" \
    >/dev/null
done
./build/tools/eptop --port "${PORT}" --once --check >/dev/null \
  || { echo "eptop --check: healthy fleet should exit 0"; exit 1; }

./build/tools/epserve_client --port "${PORT}" \
  --raw '{"op":"fleet","action":"kill","shard":"s1"}' >/dev/null
BURN_RC=0
COLD_N=1024
for ROUND in $(seq 1 10); do
  for _ in 1 2 3 4; do
    # Sweeps routed to the killed shard are rejected -- that is the
    # point of the drill; the survivors still carry the burn load.
    ./build/tools/epserve_client --port "${PORT}" \
      --raw "{\"op\":\"study\",\"device\":\"p100\",\"nBegin\":${COLD_N},\"nEnd\":$((COLD_N + 3840)),\"nStep\":256,\"trace_id\":\"b0b${ROUND}\"}" \
      >/dev/null 2>&1 || true
    COLD_N=$((COLD_N + 4096))
  done
  set +e
  ./build/tools/eptop --port "${PORT}" --once --check >/dev/null
  BURN_RC=$?
  set -e
  [[ "${BURN_RC}" == "2" ]] && break
  sleep 0.2
done
[[ "${BURN_RC}" == "2" ]] || { echo "eptop --check: expected exit 2 (burning latency SLO), got ${BURN_RC}"; exit 1; }
echo "latency SLO burn caught by eptop --check (round ${ROUND})"
# The burning cluster histogram must link back to a request: an
# exemplar trace id on a latency bucket of the OpenMetrics exposition.
./build/tools/epserve_client --port "${PORT}" \
  --raw '{"op":"metrics","scope":"cluster","format":"openmetrics"}' \
  | grep -qE 'ep_serve_request_latency_ms_bucket\{[^}]*\} [0-9]+ # \{trace_id=' \
  || { echo "no exemplar trace id on the cluster latency buckets"; exit 1; }
echo "exemplar trace id present on cluster latency buckets"
kill "${FLEETD_PID}" 2>/dev/null || true
wait "${FLEETD_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${SMOKE_LOG}"

profiler_drill build

if [[ "${FAST}" == "1" ]]; then
  echo "== skipping sanitizer configurations (--fast) =="
  exit 0
fi

echo "== ThreadSanitizer: broker + thread pool + obs race check =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEPSIM_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target test_serve test_common test_obs \
  test_apps test_fleet test_net test_chaos epserved epserve_client epprof
# halt_on_error: any reported race fails the run, not just the exit
# status of the last test.  test_apps covers the parallel study engine
# (pool-backed runWorkload/runSweep, nested parallelFor); test_serve
# covers study jobs that re-enter the broker's own pool; test_fleet the
# router's lock-free scoring path under concurrent admin churn.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_common
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_apps
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_fleet
# test_net runs the epoll event loop end to end: event threads racing
# the broker pool on respond(), eviction racing writes, stop() racing
# in-flight connections.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_net
# test_chaos hammers the retry budget from coalesced callers and runs
# the faulty transport against a live server (reconnects racing the
# event loop's eviction path).
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_chaos
# Live-daemon profiler drill under TSan: the SIGPROF handler racing the
# aggregator thread and the broker pool is exactly what TSan is for.
export TSAN_OPTIONS="halt_on_error=1"
profiler_drill build-tsan
unset TSAN_OPTIONS

echo "== ASan+UBSan: fault injection + robust measurement + wire parser =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEPSIM_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "${JOBS}" --target test_fault test_power \
  test_serve test_core test_obs test_fleet test_net test_chaos \
  epserved epserve_client epprof
# detect_leaks flushes out meter/journal ownership bugs; the fault tests
# exercise every injected-corruption branch, the serve tests the
# malformed-frame corpus, test_core the checkpoint journal I/O, test_obs
# the byte-copied flight-recorder ring and the trace/metrics encoders,
# test_fleet the ring copy-on-write swaps and stale-replica ownership.
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_fault
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_power
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_serve
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_core
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_obs
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_fleet
# test_net feeds the frame decoder truncated varints, oversize lengths,
# and mid-frame closes -- the hostile-input half of the wire parser.
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_net
# test_chaos injects the corruption the parser must survive on purpose:
# flipped varint bytes, truncated frames, and mid-stream disconnects.
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_chaos
# Live-daemon profiler drill under ASan+UBSan: sample-ring indexing,
# stack-copy bounds, and the export encoders on a real serve workload.
export ASAN_OPTIONS="detect_leaks=1"
profiler_drill build-asan
unset ASAN_OPTIONS

echo "== ci.sh: all green =="
