#!/usr/bin/env bash
# CI entry point: tier-1 verify plus sanitizer checks of the concurrent
# and fault-handling components — a ThreadSanitizer race pass (epserve
# broker, epcommon thread pool, epobs metrics/tracing) and an
# AddressSanitizer+UBSan pass over the fault-injection and serve paths
# (the code that deliberately corrupts traces and parses hostile
# frames).
#
#   tools/ci.sh          # full: tier-1 build + ctest, TSan, ASan+UBSan
#   tools/ci.sh --fast   # skip the sanitizer configurations
#
# The primary build already compiles everything with -Wall -Wextra via
# the epsim_warnings interface target; the sanitizer configurations add
# -Werror on top so new warnings fail CI without polluting the cached
# options of the default build directory.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build (-Wall -Wextra) + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${FAST}" == "1" ]]; then
  echo "== skipping sanitizer configurations (--fast) =="
  exit 0
fi

echo "== ThreadSanitizer: broker + thread pool + obs race check =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEPSIM_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target test_serve test_common test_obs \
  test_apps
# halt_on_error: any reported race fails the run, not just the exit
# status of the last test.  test_apps covers the parallel study engine
# (pool-backed runWorkload/runSweep, nested parallelFor); test_serve
# covers study jobs that re-enter the broker's own pool.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_common
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_apps

echo "== ASan+UBSan: fault injection + robust measurement + wire parser =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEPSIM_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "${JOBS}" --target test_fault test_power \
  test_serve test_core
# detect_leaks flushes out meter/journal ownership bugs; the fault tests
# exercise every injected-corruption branch, the serve tests the
# malformed-frame corpus, test_core the checkpoint journal I/O.
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_fault
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_power
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_serve
ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/test_core

echo "== ci.sh: all green =="
