// Ablation: switch each architecture-response mechanism of the GPU model
// off in turn and report how the P100's N=10240 front structure and
// headline trade-off change.  Documents which mechanism carries which
// part of the paper's observations (DESIGN.md Section 5).
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

namespace {

struct Ablation {
  const char* name;
  hw::GpuTuning tuning;
  hw::GpuSpec spec;
};

void report(const Ablation& a) {
  apps::GpuMatMulOptions opts;
  opts.useMeter = false;
  const apps::GpuMatMulApp app(hw::GpuModel(a.spec, a.tuning), opts);
  const core::GpuEpStudy study(app);
  Rng rng(12);
  const auto r = study.runWorkload(10240, rng);
  std::printf(
      "%-32s global front %zu pts, savings %5.1f%% @ %5.1f%% "
      "degradation, perf-opt %s\n",
      a.name, r.globalFront.size(),
      100.0 * r.globalTradeoff.maxEnergySavings,
      100.0 * r.globalTradeoff.performanceDegradation,
      r.globalTradeoff.performanceOptimal.label.c_str());
}

}  // namespace

int main() {
  bench::printHeader(
      "Ablation: mechanism contributions to the P100 N=10240 structure",
      "baseline: 3-point front, 50% savings at 11% degradation");

  const hw::GpuSpec spec = hw::nvidiaP100Pcie();
  const hw::GpuTuning base = hw::GpuModel(spec).tuning();

  report({"baseline (all mechanisms)", base, spec});

  {
    // No clock-bin differentiation: every config runs at full boost.
    hw::GpuTuning t = base;
    t.midBinBoostFraction = 1.0;
    report({"no clock bins (all at boost)", t, spec});
  }
  {
    // No boost power response: boosting is energy-free.
    hw::GpuTuning t = base;
    t.boostPowerExponent = 1.0;
    report({"no boost power cost (P ~ f^1)", t, spec});
  }
  {
    // No uncore component.
    hw::GpuSpec s = spec;
    s.uncorePower = Watts{0.0};
    report({"no 58 W uncore component", base, s});
  }
  {
    // No residency power: energy purely work-proportional.
    hw::GpuTuning t = base;
    t.residencyPower = 0.0;
    report({"no residency power", t, spec});
  }
  {
    // No icache/warm-up decision-variable effects.
    hw::GpuTuning t = base;
    t.icachePenaltyPerLevel = 0.0;
    t.gLinearPenalty = 0.0;
    t.fetchPowerPerLevel = 0.0;
    t.runWarmupFraction = 0.0;
    report({"no G/R microarchitectural effects", t, spec});
  }
  {
    // Fixed clocks: what the P100 would look like with the K40c's
    // clock management.
    hw::GpuSpec s = spec;
    s.hasAutoBoost = false;
    report({"autoboost disabled entirely", base, s});
  }

  std::printf(
      "\nreading: the uncore component + clock bins carry the 50%% "
      "savings; residency power differentiates same-bin block sizes; "
      "G/R effects provide the off-front scatter.\n");
  return 0;
}
