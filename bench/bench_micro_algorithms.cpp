// google-benchmark microbenchmarks for the library's core algorithms:
// Pareto fronts, FFTs, DGEMM, the statistics stack and the meter
// simulation.  Guards against performance regressions in the pieces the
// experiment harnesses iterate millions of times.
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/dgemm.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "hw/gpu_model.hpp"
#include "pareto/front.hpp"
#include "power/meter.hpp"
#include "stats/distributions.hpp"
#include "stats/ttest.hpp"

namespace {

using namespace ep;

std::vector<pareto::BiPoint> randomPoints(std::size_t n, Rng& rng) {
  std::vector<pareto::BiPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pareto::BiPoint p;
    p.time = Seconds{rng.uniform(1.0, 10.0)};
    p.energy = Joules{rng.uniform(1.0, 10.0)};
    p.configId = i;
    pts.push_back(p);
  }
  return pts;
}

void BM_ParetoFront(benchmark::State& state) {
  Rng rng(1);
  const auto pts = randomPoints(static_cast<std::size_t>(state.range(0)),
                                rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::paretoFront(pts));
  }
}
BENCHMARK(BM_ParetoFront)->Arg(128)->Arg(1024)->Arg(8192);

void BM_NonDominatedSort(benchmark::State& state) {
  Rng rng(2);
  const auto pts = randomPoints(static_cast<std::size_t>(state.range(0)),
                                rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::nonDominatedSort(pts));
  }
}
BENCHMARK(BM_NonDominatedSort)->Arg(128)->Arg(1024)->Arg(8192);

void BM_LocalFront(benchmark::State& state) {
  Rng rng(2);
  const auto pts = randomPoints(static_cast<std::size_t>(state.range(0)),
                                rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::localFront(pts, 2));
  }
}
BENCHMARK(BM_LocalFront)->Arg(128)->Arg(1024)->Arg(8192);

void BM_FftRadix2(benchmark::State& state) {
  Rng rng(3);
  std::vector<fft::Complex> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    fft::fftRadix2(data, false);
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftRadix2)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_FftBluestein(benchmark::State& state) {
  Rng rng(4);
  std::vector<fft::Complex> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    fft::fftBluestein(data, false);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(10007);

void BM_DgemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  for (auto _ : state) {
    blas::dgemmBlocked(n, 1.0, a, b, 0.0, c, 64);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(2 * n * n * n));
}
BENCHMARK(BM_DgemmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_ThreadgroupDgemm(benchmark::State& state) {
  const std::size_t n = 256;
  Rng rng(6);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  blas::ThreadgroupConfig cfg;
  cfg.threadgroups = static_cast<std::size_t>(state.range(0));
  cfg.threadsPerGroup = 2;
  const blas::ThreadgroupDgemm dgemm(cfg);
  for (auto _ : state) {
    dgemm.run(n, 1.0, a, b, 0.0, c);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ThreadgroupDgemm)->Arg(1)->Arg(2)->Arg(4);

void BM_StudentTCritical(benchmark::State& state) {
  double dof = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::studentTCritical(0.95, dof));
    dof = dof < 200.0 ? dof + 1.0 : 4.0;
  }
}
BENCHMARK(BM_StudentTCritical);

void BM_MeasurementProtocol(benchmark::State& state) {
  Rng rng(7);
  const stats::MeasurementProtocol protocol;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocol.run([&] { return rng.normal(100.0, 0.5); }));
  }
}
BENCHMARK(BM_MeasurementProtocol);

void BM_MeterRecord(benchmark::State& state) {
  power::ProfilePowerSource profile(Watts{100.0});
  profile.addSegment({Seconds{0.0}, Seconds{60.0}, Watts{80.0}});
  const power::WattsUpMeter meter;
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.record(profile, Seconds{60.0}, rng));
  }
}
BENCHMARK(BM_MeterRecord);

void BM_GpuModelMatMul(benchmark::State& state) {
  const hw::GpuModel model(hw::nvidiaP100Pcie());
  int bs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.modelMatMul({10240, bs, 2, 4}));
    bs = bs % 32 + 1;
  }
}
BENCHMARK(BM_GpuModelMatMul);

}  // namespace

BENCHMARK_MAIN();
