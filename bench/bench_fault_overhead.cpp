// Microbenchmarks for the epfault robustness tiers.
//
// The acceptance bar (EXPERIMENTS.md): with every robustness knob off
// the measurement path must be bit-identical to — and cost the same as
// — the pre-robustness measurer, and the full robust stack (sanitize +
// validate + MAD) on *clean* traces must stay within a few percent of
// the baseline, so campaigns can leave hardening on unconditionally.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fault/faulty_meter.hpp"
#include "power/measurer.hpp"
#include "power/meter.hpp"
#include "power/profile.hpp"

namespace {

using ep::Rng;
using ep::Seconds;
using ep::Watts;
using ep::literals::operator""_s;
using ep::literals::operator""_W;

ep::power::MeterOptions meterOptions() {
  ep::power::MeterOptions m;
  m.sampleInterval = Seconds{0.25};
  m.randomPhase = false;
  return m;
}

ep::power::ProfilePowerSource benchProfile() {
  ep::power::ProfilePowerSource p(90.0_W);
  p.addSegment({0.0_s, 5.0_s, 80.0_W});  // 400 J dynamic
  return p;
}

ep::power::RobustnessOptions fullRobustness() {
  ep::power::RobustnessOptions r;
  r.validation.enabled = true;
  r.sanitizeSamples = true;
  r.maxPlausibleWatts = 600.0;
  r.rejectOutliers = true;
  return r;
}

// Baseline: the full CI measurement protocol with robustness off.
void BM_MeasureRobustnessOff(benchmark::State& state) {
  const ep::power::EnergyMeasurer measurer(
      ep::power::WattsUpMeter(meterOptions()), 90.0_W);
  const auto profile = benchProfile();
  Rng rng(0xBE7C4);
  for (auto _ : state) {
    const auto m = measurer.measure(profile, 5.0_s, rng, 1.0_s);
    benchmark::DoNotOptimize(m.mean.dynamicEnergy.value());
  }
}
BENCHMARK(BM_MeasureRobustnessOff);

// Every recovery tier armed, fed clean traces: the price of leaving
// hardening on when nothing is wrong.
void BM_MeasureRobustnessOnCleanMeter(benchmark::State& state) {
  const ep::power::EnergyMeasurer measurer(
      ep::power::WattsUpMeter(meterOptions()), 90.0_W);
  const auto profile = benchProfile();
  const auto robustness = fullRobustness();
  Rng rng(0xBE7C4);
  for (auto _ : state) {
    const auto m = measurer.measure(profile, 5.0_s, rng, 1.0_s, {},
                                    robustness);
    benchmark::DoNotOptimize(m.faults.recoveries());
  }
}
BENCHMARK(BM_MeasureRobustnessOnCleanMeter);

// Recording one window through the raw instrument...
void BM_RecordRawMeter(benchmark::State& state) {
  const ep::power::WattsUpMeter meter(meterOptions());
  const auto profile = benchProfile();
  Rng rng(0xBE7C4);
  ep::power::PowerTrace trace;
  for (auto _ : state) {
    meter.recordInto(profile, 6.0_s, rng, trace);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_RecordRawMeter);

// ...versus through a disabled FaultyMeter: the decorator must be a
// pass-through (one branch) when no campaign is configured.
void BM_RecordFaultyMeterDisabled(benchmark::State& state) {
  const ep::fault::FaultyMeter meter(ep::power::WattsUpMeter(meterOptions()),
                                     ep::fault::FaultInjectionOptions{});
  const auto profile = benchProfile();
  Rng rng(0xBE7C4);
  ep::power::PowerTrace trace;
  for (auto _ : state) {
    meter.recordInto(profile, 6.0_s, rng, trace);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_RecordFaultyMeterDisabled);

// ...and with a live campaign, for context (forks a fault stream and
// walks every sample; timed-out windows are part of the cost).
void BM_RecordFaultyMeterCampaign(benchmark::State& state) {
  const ep::fault::FaultyMeter meter(
      ep::power::WattsUpMeter(meterOptions()),
      ep::fault::FaultInjectionOptions::campaign(0.05));
  const auto profile = benchProfile();
  Rng rng(0xBE7C4);
  ep::power::PowerTrace trace;
  for (auto _ : state) {
    try {
      meter.recordInto(profile, 6.0_s, rng, trace);
    } catch (const ep::power::MeterTimeoutError&) {
      // ~1.25 % of windows: the campaign's whole-window timeout.
    }
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_RecordFaultyMeterCampaign);

// The per-sample tier's fast path: scanning a clean trace must be one
// pass with no copy (the early return).
void BM_SanitizeCleanTrace(benchmark::State& state) {
  const ep::power::WattsUpMeter meter(meterOptions());
  const auto profile = benchProfile();
  Rng rng(0xBE7C4);
  ep::power::PowerTrace trace;
  meter.recordInto(profile, 6.0_s, rng, trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ep::power::sanitizeTrace(trace, 600.0));
  }
}
BENCHMARK(BM_SanitizeCleanTrace);

}  // namespace
