// Microbenchmarks for the epobs hot paths.
//
// The acceptance bar (EXPERIMENTS.md): a disabled Span and a Counter
// increment must each cost < 20 ns, so instrumentation can stay
// compiled into the study pipeline and thread pool unconditionally.
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using ep::obs::Counter;
using ep::obs::Gauge;
using ep::obs::Histogram;
using ep::obs::Registry;
using ep::obs::Span;
using ep::obs::Tracer;

// The compiled-in-but-disabled fast path: one relaxed atomic load.
void BM_SpanDisabled(benchmark::State& state) {
  Tracer& t = Tracer::global();
  t.setEnabled(false);
  for (auto _ : state) {
    Span span("bench/disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// Enabled span: two clock reads plus a ring-buffer push.
void BM_SpanEnabled(benchmark::State& state) {
  Tracer& t = Tracer::global();
  t.setEnabled(true);
  t.clear();
  for (auto _ : state) {
    Span span("bench/enabled");
    benchmark::DoNotOptimize(&span);
  }
  t.setEnabled(false);
  t.clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterInc(benchmark::State& state) {
  Registry registry;
  Counter& c = registry.counter("bench_counter_total", "bench");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  Registry registry;
  Gauge& g = registry.gauge("bench_gauge", "bench");
  std::int64_t v = 0;
  for (auto _ : state) {
    g.set(++v);
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  Registry registry;
  Histogram& h = registry.histogram("bench_latency_ms", "bench",
                                    {0.1, 1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    v += 0.7;
    if (v > 2000.0) v = 0.0;
    h.observe(v);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

// The cold path we avoid at instrumentation sites (they hold a
// function-local static reference instead): name lookup under the
// registry mutex.
void BM_RegistryLookup(benchmark::State& state) {
  Registry registry;
  registry.counter("bench_lookup_total", "bench");
  for (auto _ : state) {
    Counter& c = registry.counter("bench_lookup_total", "bench");
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace
