// Microbenchmarks for the epobs hot paths.
//
// The acceptance bar (EXPERIMENTS.md): a disabled Span and a Counter
// increment must each cost < 20 ns, so instrumentation can stay
// compiled into the study pipeline and thread pool unconditionally.
//
// Custom main: before the google-benchmark suite runs, the four
// load-bearing overheads (disabled span, enabled span, counter inc,
// trace-context install/restore) are timed with a plain steady_clock
// loop and written to BENCH_obs.json, so the instrumentation-cost
// trajectory is tracked across PRs like the scaling benches.
#include <benchmark/benchmark.h>

#include <chrono>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"

namespace {

using ep::obs::Counter;
using ep::obs::Gauge;
using ep::obs::Histogram;
using ep::obs::Registry;
using ep::obs::ScopedTraceContext;
using ep::obs::Span;
using ep::obs::TraceContext;
using ep::obs::Tracer;

// The compiled-in-but-disabled fast path: one relaxed atomic load.
void BM_SpanDisabled(benchmark::State& state) {
  Tracer& t = Tracer::global();
  t.setEnabled(false);
  for (auto _ : state) {
    Span span("bench/disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// Enabled span: two clock reads plus a ring-buffer push.
void BM_SpanEnabled(benchmark::State& state) {
  Tracer& t = Tracer::global();
  t.setEnabled(true);
  t.clear();
  for (auto _ : state) {
    Span span("bench/enabled");
    benchmark::DoNotOptimize(&span);
  }
  t.setEnabled(false);
  t.clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterInc(benchmark::State& state) {
  Registry registry;
  Counter& c = registry.counter("bench_counter_total", "bench");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  Registry registry;
  Gauge& g = registry.gauge("bench_gauge", "bench");
  std::int64_t v = 0;
  for (auto _ : state) {
    g.set(++v);
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  Registry registry;
  Histogram& h = registry.histogram("bench_latency_ms", "bench",
                                    {0.1, 1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    v += 0.7;
    if (v > 2000.0) v = 0.0;
    h.observe(v);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

// The cold path we avoid at instrumentation sites (they hold a
// function-local static reference instead): name lookup under the
// registry mutex.
void BM_RegistryLookup(benchmark::State& state) {
  Registry registry;
  registry.counter("bench_lookup_total", "bench");
  for (auto _ : state) {
    Counter& c = registry.counter("bench_lookup_total", "bench");
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_RegistryLookup);

// What ThreadPool::submit adds per task when a request context rides
// along: one TLS save, one install, one restore.
void BM_ScopedContextInstall(benchmark::State& state) {
  const TraceContext ctx{0xBEEFu, 42u};
  for (auto _ : state) {
    ScopedTraceContext scope(ctx);
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_ScopedContextInstall);

// Exemplar-linked observe: the seqlock claim/publish on top of the
// plain bucket RMW + sum CAS.
void BM_HistogramObserveWithExemplar(benchmark::State& state) {
  Registry registry;
  Histogram& h = registry.histogram("bench_exemplar_ms", "bench",
                                    {0.1, 1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  std::uint64_t trace = 1;
  for (auto _ : state) {
    v += 0.7;
    if (v > 2000.0) v = 0.0;
    h.observe(v, ++trace);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserveWithExemplar);

// A registry with `series` counters plus a few histograms — roughly
// what a whole broker federates at fleet scale.
void populateRegistry(Registry& registry, int series) {
  for (int i = 0; i < series; ++i) {
    registry
        .counter("bench_scrape_total", "bench",
                 {{"worker", std::to_string(i)}})
        .inc(static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 8; ++i) {
    Histogram& h = registry.histogram(
        "bench_scrape_ms", "bench", {0.1, 1.0, 10.0, 100.0, 1000.0},
        {{"worker", std::to_string(i)}});
    for (int j = 0; j < 32; ++j) h.observe(0.3 * j);
  }
}

// One full scrape — snapshot + tsdb ingest — at 1k series.  This is
// the background cost the plane pays per interval, NOT a hot-path tax.
void BM_ScrapeAt1kSeries(benchmark::State& state) {
  Registry registry;
  populateRegistry(registry, 1000);
  ep::obs::TimeSeriesStore store;
  std::int64_t now = 0;
  ep::obs::Scraper::Options opts;
  opts.clock = [&now] { return now += 1'000'000; };
  ep::obs::Scraper scraper(
      &store, [&registry] { return registry.snapshot(); }, opts);
  for (auto _ : state) {
    scraper.scrapeOnce();
  }
  benchmark::DoNotOptimize(store.seriesCount());
}
BENCHMARK(BM_ScrapeAt1kSeries);

// Mutation cost while the background scraper is live on the same
// registry: the hot path must not feel the scrape cadence.
void BM_CounterIncScraperOn(benchmark::State& state) {
  Registry registry;
  populateRegistry(registry, 1000);
  Counter& c = registry.counter("bench_hot_total", "bench");
  ep::obs::TimeSeriesStore store;
  ep::obs::Scraper::Options opts;
  opts.intervalMs = 1;
  ep::obs::Scraper scraper(
      &store, [&registry] { return registry.snapshot(); }, opts);
  scraper.start();
  for (auto _ : state) {
    c.inc();
  }
  scraper.stop();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterIncScraperOn);

// --- BENCH_obs.json: the machine-readable overhead record ---

using BenchClock = std::chrono::steady_clock;

template <typename Fn>
double nsPerOp(std::uint64_t iters, Fn&& fn) {
  for (std::uint64_t i = 0; i < iters / 10; ++i) fn();  // warm up
  const auto t0 = BenchClock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn();
  const auto t1 = BenchClock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(iters);
}

ep::bench::BenchRecord record(const std::string& name, double ns) {
  ep::bench::BenchRecord r;
  r.name = name;
  r.threads = 1;
  r.nsPerOp = ns;
  r.itemsPerSecond = ns > 0.0 ? 1e9 / ns : 0.0;
  return r;
}

void writeOverheadJson() {
  Tracer& t = Tracer::global();
  std::vector<ep::bench::BenchRecord> records;

  t.setEnabled(false);
  records.push_back(record("span/disabled", nsPerOp(20'000'000u, [] {
    Span span("bench/json_disabled");
    benchmark::DoNotOptimize(&span);
  })));

  t.setEnabled(true);
  t.clear();
  records.push_back(record("span/enabled", nsPerOp(2'000'000u, [] {
    Span span("bench/json_enabled");
    benchmark::DoNotOptimize(&span);
  })));
  t.setEnabled(false);
  t.clear();

  Registry registry;
  Counter& c = registry.counter("bench_json_counter_total", "bench");
  records.push_back(record("counter/inc", nsPerOp(20'000'000u, [&c] {
    c.inc();
  })));
  benchmark::DoNotOptimize(c.value());

  const TraceContext ctx{0xBEEFu, 42u};
  records.push_back(
      record("context/install_restore", nsPerOp(20'000'000u, [&ctx] {
        ScopedTraceContext scope(ctx);
        benchmark::DoNotOptimize(&scope);
      })));

  {
    Registry scrapeRegistry;
    populateRegistry(scrapeRegistry, 1000);
    ep::obs::TimeSeriesStore store;
    std::int64_t now = 0;
    ep::obs::Scraper::Options opts;
    opts.clock = [&now] { return now += 1'000'000; };
    ep::obs::Scraper scraper(
        &store, [&scrapeRegistry] { return scrapeRegistry.snapshot(); },
        opts);
    records.push_back(record("scrape/1k_series", nsPerOp(2'000u, [&scraper] {
      scraper.scrapeOnce();
    })));
  }

  {
    Registry hotRegistry;
    populateRegistry(hotRegistry, 1000);
    Counter& hot = hotRegistry.counter("bench_json_hot_total", "bench");
    ep::obs::TimeSeriesStore store;
    ep::obs::Scraper::Options opts;
    opts.intervalMs = 1;
    ep::obs::Scraper scraper(
        &store, [&hotRegistry] { return hotRegistry.snapshot(); }, opts);
    scraper.start();
    records.push_back(
        record("counter/inc_scraper_on", nsPerOp(20'000'000u, [&hot] {
          hot.inc();
        })));
    scraper.stop();
    benchmark::DoNotOptimize(hot.value());
  }

  // --- epprof section (the PR 10 acceptance record) ---
  //
  // Frame-push micro-costs first: disarmed, a ProfileFrame is one
  // relaxed load and a branch (the "profiler-off is free" claim), and
  // armed it adds two relaxed stores.
  ep::obs::Profiler& prof = ep::obs::Profiler::global();
  records.push_back(record("profile_frame/disarmed", nsPerOp(20'000'000u, [] {
    ep::obs::ProfileFrame frame("bench/frame_disarmed");
    benchmark::DoNotOptimize(&frame);
  })));
  {
    ep::obs::ProfilerOptions popts;
    popts.cpuSampling = false;  // arm the gate without SIGPROF noise
    prof.start(popts);
    records.push_back(record("profile_frame/armed", nsPerOp(20'000'000u, [] {
      ep::obs::ProfileFrame frame("bench/frame_armed");
      benchmark::DoNotOptimize(&frame);
    })));
    prof.stop();
    prof.clear();
  }

  // The gated end-to-end number: warm-hit serve throughput with the
  // profiler off, then armed at the default always-on rate (10 ms CPU
  // per sample, 100 Hz per busy thread).  The armed tax must stay
  // within 5 % for "always-on" to be an honest default.
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  ep::serve::BrokerOptions bopts;
  bopts.threads = 4;
  constexpr int kRequests = 4000;
  bopts.queueCapacity = kRequests + 16;
  ep::serve::Broker broker(engine, bopts);
  const std::vector<int> sizes = {8192, 9216, 10240, 11264};
  {
    ep::serve::TuneRequest treq;
    treq.device = ep::serve::Device::P100;
    treq.maxDegradation = 0.11;
    for (int n : sizes) {  // warm the front cache: steady serving state
      treq.n = n;
      (void)broker.tune(treq);
    }
  }
  const auto warmHitNsPerReq = [&broker, &sizes] {
    ep::serve::TuneRequest treq;
    treq.device = ep::serve::Device::P100;
    treq.maxDegradation = 0.11;
    std::vector<std::future<ep::serve::TuneResponse>> futures;
    futures.reserve(kRequests);
    const auto t0 = BenchClock::now();
    for (int i = 0; i < kRequests; ++i) {
      treq.n = sizes[static_cast<std::size_t>(i) % sizes.size()];
      futures.push_back(broker.submitTune(treq));
    }
    for (auto& f : futures) (void)f.get();
    const auto t1 = BenchClock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(kRequests);
  };
  // Same broker, same warm cache, one discarded pass per mode: the
  // delta prices the profiler alone, not allocator or cache warm-up.
  const auto bestOfThree = [&warmHitNsPerReq] {
    (void)warmHitNsPerReq();
    double best = warmHitNsPerReq();
    for (int i = 0; i < 2; ++i) {
      const double ns = warmHitNsPerReq();
      if (ns < best) best = ns;
    }
    return best;
  };
  const double offNs = bestOfThree();
  prof.start(ep::obs::ProfilerOptions{});
  const double onNs = bestOfThree();
  prof.stop();
  prof.clear();
  const double overheadPct = offNs > 0.0 ? (onNs - offNs) / offNs * 100.0
                                         : 0.0;
  records.push_back(record("serve/warm_hit_profiler_off", offNs));
  records.push_back(record("serve/warm_hit_profiler_on", onNs));
  ep::bench::BenchRecord gate;
  gate.name = "profiler/warm_hit_overhead_pct";
  gate.threads = 4;
  gate.nsPerOp = overheadPct;  // percent, not ns: the gated ratio
  gate.itemsPerSecond = 0.0;
  records.push_back(gate);

  ep::bench::writeBenchJson("BENCH_obs.json", "obs_overhead", records);
  for (const auto& r : records) {
    std::printf("%-32s %10.2f ns/op\n", r.name.c_str(), r.nsPerOp);
  }
  std::printf("profiler warm-hit overhead: %.2f%% %s\n", overheadPct,
              overheadPct <= 5.0 ? "(PASS <= 5%)" : "(FAIL > 5%)");
}

}  // namespace

int main(int argc, char** argv) {
  writeOverheadJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
