// Serving-path benchmark: requests/sec through the epserve broker —
// in-process, then over real loopback TCP through the net::Server
// event loop in all three wire modes (JSON round-trip, JSON pipelined,
// EPB1 binary pipelined) at 1/4/16/64 connections.
//
// The interesting in-process ratio is cold vs hit: a cold TuneRequest
// pays the full configuration-space study (every launchable (BS, G, R)
// through the GPU model), while a hit replays the cached front through
// the budget-specific tuner.  The acceptance bar is hit latency at
// least 10x better than cold.
//
// The TCP section is the PR 8 acceptance record: binary pipelined
// throughput must be >= 3x the thread-per-connection baseline
// (44.7k req/s); every row lands in BENCH_serve.json.
//
// The chaos-off overhead section is the PR 9 acceptance record: with
// admission disabled the broker must run the pre-epchaos hot path at
// full speed, and even an enabled-but-never-shedding admission gate
// must cost <= 10% on warm hits.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "serve/wire_binary.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ep::serve::Broker;
using ep::serve::BrokerOptions;
using ep::serve::Device;
using ep::serve::TuneRequest;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

TuneRequest req(Device d, int n) {
  TuneRequest r;
  r.device = d;
  r.n = n;
  r.maxDegradation = 0.11;
  return r;
}

struct LatencySplit {
  double coldMs = 0.0;  // mean over cold keys
  double hitMs = 0.0;   // mean over cache-hit repeats
};

LatencySplit measureLatencies(const std::vector<int>& sizes,
                              std::size_t threads) {
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  BrokerOptions opts;
  opts.threads = threads;
  opts.queueCapacity = 1024;
  Broker broker(engine, opts);

  LatencySplit out;
  for (int n : sizes) {
    const auto t0 = Clock::now();
    const auto resp = broker.tune(req(Device::P100, n));
    if (resp.status != ep::serve::Status::Ok) {
      std::fprintf(stderr, "cold tune failed: %s\n", resp.error.c_str());
      continue;
    }
    out.coldMs += msSince(t0);
  }
  out.coldMs /= static_cast<double>(sizes.size());

  constexpr int kHitRepeats = 200;
  const auto t0 = Clock::now();
  for (int i = 0; i < kHitRepeats; ++i) {
    (void)broker.tune(req(Device::P100, sizes[static_cast<std::size_t>(i) %
                                              sizes.size()]));
  }
  out.hitMs = msSince(t0) / kHitRepeats;
  return out;
}

double measureThroughput(const std::vector<int>& sizes, std::size_t threads,
                         int requests, bool admission = false) {
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  BrokerOptions opts;
  opts.threads = threads;
  opts.queueCapacity = static_cast<std::size_t>(requests) + 16;
  if (admission) {
    // Generous AIMD limit: the point is to price the admission branch
    // itself, not to shed load.
    opts.admission.enabled = true;
    opts.admission.initialLimit = 1 << 16;
    opts.admission.maxLimit = 1 << 16;
    opts.admission.targetLatencyMs = 1e9;
  }
  Broker broker(engine, opts);

  // Warm the cache so the measured mix is the steady serving state
  // (hits + coalescing), not a cold-start artifact.
  for (int n : sizes) (void)broker.tune(req(Device::P100, n));

  std::vector<std::future<ep::serve::TuneResponse>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  const auto t0 = Clock::now();
  for (int i = 0; i < requests; ++i) {
    futures.push_back(broker.submitTune(
        req(Device::P100, sizes[static_cast<std::size_t>(i) % sizes.size()])));
  }
  for (auto& f : futures) (void)f.get();
  const double s = msSince(t0) / 1e3;
  return static_cast<double>(requests) / s;
}

// ---------------------------------------------------------------------
// TCP section: the same broker mounted on the net::Server event loop,
// driven by loopback client threads (one connection each, epserve_client
// style sliding window with batched writes).

struct TcpWorkerOut {
  std::vector<double> latenciesMs;
  int ok = 0;
  int errors = 0;
};

void runTcpWorker(std::uint16_t port, int requests,
                  const std::vector<int>& sizes, bool binary, int pipeline,
                  TcpWorkerOut* out) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    out->errors = requests;
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    out->errors = requests;
    return;
  }
  out->latenciesMs.reserve(static_cast<std::size_t>(requests));

  std::string outBuf;
  if (binary) outBuf.append(ep::net::kMagic, sizeof ep::net::kMagic);
  std::string inBuf;
  std::deque<Clock::time_point> starts;
  int queued = 0;
  int received = 0;

  ep::serve::wire_binary::BinaryTuneRequest breq;
  breq.tune.maxDegradation = 0.11;

  while (received < requests) {
    while (queued < requests && queued - received < pipeline) {
      const int n = sizes[static_cast<std::size_t>(queued) % sizes.size()];
      starts.push_back(Clock::now());
      if (binary) {
        breq.tune.n = n;
        ep::net::appendFrame(outBuf, ep::net::kOpTune,
                             ep::serve::wire_binary::encodeTuneRequest(breq));
      } else {
        ep::serve::wire::ObjectWriter w;
        w.add("op", "tune").add("device", "p100").add("n", n).add(
            "maxDegradation", 0.11);
        outBuf += w.str();
        outBuf += '\n';
      }
      ++queued;
    }
    std::size_t sent = 0;
    while (sent < outBuf.size()) {
      const ssize_t k = send(fd, outBuf.data() + sent, outBuf.size() - sent, 0);
      if (k <= 0) {
        out->errors += requests - received;
        close(fd);
        return;
      }
      sent += static_cast<std::size_t>(k);
    }
    outBuf.clear();

    bool madeProgress = false;
    while (!madeProgress || received < queued) {
      if (binary) {
        std::uint64_t len = 0;
        const int used = ep::net::readVarint(inBuf.data(), inBuf.size(), &len);
        if (used < 0 || (used > 0 && len == 0)) {
          out->errors += requests - received;
          close(fd);
          return;
        }
        if (used > 0 && inBuf.size() >= static_cast<std::size_t>(used) + len) {
          const std::string payload =
              inBuf.substr(static_cast<std::size_t>(used) + 1,
                           static_cast<std::size_t>(len) - 1);
          inBuf.erase(0, static_cast<std::size_t>(used) +
                             static_cast<std::size_t>(len));
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - starts.front())
                                .count();
          starts.pop_front();
          std::string err;
          const auto resp =
              ep::serve::wire_binary::decodeTuneResponse(payload, &err);
          if (resp && resp->status == ep::serve::Status::Ok) {
            ++out->ok;
            out->latenciesMs.push_back(ms);
          } else {
            ++out->errors;
          }
          ++received;
          madeProgress = true;
          continue;
        }
      } else {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - starts.front())
                                .count();
          starts.pop_front();
          // Cheap status check: every OK tune response leads with it.
          static constexpr char kOkPrefix[] = "{\"status\":\"ok\"";
          if (nl >= sizeof kOkPrefix - 1 &&
              std::memcmp(inBuf.data(), kOkPrefix, sizeof kOkPrefix - 1) ==
                  0) {
            ++out->ok;
            out->latenciesMs.push_back(ms);
          } else {
            ++out->errors;
          }
          inBuf.erase(0, nl + 1);
          ++received;
          madeProgress = true;
          continue;
        }
      }
      if (madeProgress) break;  // buffer drained; go refill the window
      char chunk[65536];
      const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) {
        out->errors += requests - received;
        close(fd);
        return;
      }
      inBuf.append(chunk, static_cast<std::size_t>(got));
    }
  }
  close(fd);
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
}

struct TcpResult {
  double rps = 0.0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  int ok = 0;
  int errors = 0;
};

TcpResult measureTcp(std::uint16_t port, int connections, int totalRequests,
                     const std::vector<int>& sizes, bool binary,
                     int pipeline) {
  std::vector<TcpWorkerOut> outs(static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  const int perConn = totalRequests / connections;
  const auto t0 = Clock::now();
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back(runTcpWorker, port, perConn, std::cref(sizes), binary,
                         pipeline, &outs[static_cast<std::size_t>(c)]);
  }
  for (auto& t : workers) t.join();
  const double s = msSince(t0) / 1e3;

  TcpResult r;
  std::vector<double> all;
  for (auto& o : outs) {
    r.ok += o.ok;
    r.errors += o.errors;
    all.insert(all.end(), o.latenciesMs.begin(), o.latenciesMs.end());
  }
  r.rps = s > 0.0 ? static_cast<double>(r.ok + r.errors) / s : 0.0;
  r.p50Ms = percentile(all, 0.50);
  r.p99Ms = percentile(all, 0.99);
  return r;
}

}  // namespace

int main() {
  const std::vector<int> sizes = {4096, 5120, 6144, 7168, 8192, 9216,
                                  10240, 12288};
  constexpr int kRequests = 20000;

  std::printf("== epserve broker throughput ==\n");
  std::printf("workloads: %zu P100 sizes, budget 11%%, cache warm\n\n",
              sizes.size());

  const LatencySplit split = measureLatencies(sizes, 4);
  std::printf("latency (4 worker threads):\n");
  std::printf("  cold study : %10.3f ms/request\n", split.coldMs);
  std::printf("  cache hit  : %10.3f ms/request\n", split.hitMs);
  const double ratio = split.hitMs > 0.0 ? split.coldMs / split.hitMs : 0.0;
  std::printf("  cold/hit   : %10.1fx  %s\n\n", ratio,
              ratio >= 10.0 ? "(PASS >= 10x)" : "(FAIL < 10x)");

  // Machine-readable record, tracked across PRs like BENCH_obs /
  // BENCH_study: ns_per_op is per request, configs_per_s is req/s.
  std::vector<ep::bench::BenchRecord> records;
  records.push_back({"latency/cold_study", 4, split.coldMs * 1e6,
                     split.coldMs > 0.0 ? 1e3 / split.coldMs : 0.0});
  records.push_back({"latency/cache_hit", 4, split.hitMs * 1e6,
                     split.hitMs > 0.0 ? 1e3 / split.hitMs : 0.0});

  std::printf("throughput (%d requests, warm cache, in-process):\n",
              kRequests);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps = measureThroughput(sizes, threads, kRequests);
    std::printf("  threads=%zu : %12.0f req/s\n", threads, rps);
    records.push_back({"inprocess/warm", static_cast<int>(threads),
                       rps > 0.0 ? 1e9 / rps : 0.0, rps});
  }

  // epchaos acceptance gate: with chaos fully off the broker takes the
  // exact pre-epchaos hot path (one disabled-admission bool test), so
  // warm throughput must stay within noise of the admission-on run
  // with a never-shedding limit.  Best-of-3 each to damp CI jitter.
  {
    double rpsOff = 0.0;
    double rpsOn = 0.0;
    for (int i = 0; i < 3; ++i) {
      rpsOff = std::max(rpsOff, measureThroughput(sizes, 4, kRequests, false));
      rpsOn = std::max(rpsOn, measureThroughput(sizes, 4, kRequests, true));
    }
    const double deltaPct =
        rpsOff > 0.0 ? (rpsOff - rpsOn) / rpsOff * 100.0 : 0.0;
    std::printf("\nchaos-off overhead (warm hot path, threads=4):\n");
    std::printf("  admission off : %12.0f req/s\n", rpsOff);
    std::printf("  admission on  : %12.0f req/s\n", rpsOn);
    std::printf("  delta         : %11.1f%%  %s\n", deltaPct,
                deltaPct <= 10.0 ? "(PASS <= 10% overhead)"
                                 : "(FAIL > 10% overhead)");
    records.push_back({"chaos/admission_off", 4,
                       rpsOff > 0.0 ? 1e9 / rpsOff : 0.0, rpsOff});
    records.push_back({"chaos/admission_on", 4,
                       rpsOn > 0.0 ? 1e9 / rpsOn : 0.0, rpsOn});
  }

  // TCP serving path: one broker behind the net::Server event loop,
  // loaded over loopback in all three wire modes.  The `threads`
  // column of these records is the client connection count.
  {
    auto engine = std::make_shared<ep::serve::EpStudyEngine>();
    BrokerOptions opts;
    opts.threads = 2;
    opts.queueCapacity = 8192;
    Broker broker(engine, opts);
    for (int n : sizes) (void)broker.tune(req(Device::P100, n));

    ep::serve::NetServiceHooks hooks;
    hooks.tuneBatch =
        [&broker](std::vector<ep::serve::ServiceTuneItem>&& items) {
          std::vector<Broker::TuneBatchItem> batch;
          batch.reserve(items.size());
          for (auto& item : items) {
            Broker::TuneBatchItem member;
            member.req = item.req;
            member.ctx = item.ctx;
            member.done = std::move(item.done);
            batch.push_back(std::move(member));
          }
          broker.submitTuneBatch(std::move(batch));
        };
    hooks.study = [&broker](const ep::serve::StudyRequest& r) {
      return broker.study(r);
    };
    hooks.control = [](const ep::serve::wire::WireRequest&) {
      return ep::serve::wire::encodeError("unsupported op");
    };
    ep::serve::NetService service(std::move(hooks));
    ep::net::ServerOptions netOpts;
    netOpts.port = 0;
    ep::net::Server server(netOpts, service.handler());
    std::string netError;
    if (!server.start(&netError)) {
      std::fprintf(stderr, "net server: %s\n", netError.c_str());
      return 1;
    }

    struct Mode {
      const char* name;
      bool binary;
      int pipeline;
    };
    constexpr Mode kModes[] = {{"tcp_json_roundtrip", false, 1},
                               {"tcp_json_pipelined", false, 32},
                               {"tcp_binary_pipelined", true, 32}};
    std::printf(
        "\ntcp serving path (event-loop server, loopback, warm cache):\n");
    for (const Mode& mode : kModes) {
      for (int conns : {1, 4, 16, 64}) {
        const TcpResult r =
            measureTcp(server.port(), conns, kRequests, sizes, mode.binary,
                       mode.pipeline);
        std::printf(
            "  %-20s conns=%2d : %9.0f req/s  p50=%7.3f ms  p99=%7.3f ms%s\n",
            mode.name, conns, r.rps, r.p50Ms, r.p99Ms,
            r.errors > 0 ? "  (ERRORS)" : "");
        records.push_back({std::string("tcp/") + mode.name, conns,
                           r.rps > 0.0 ? 1e9 / r.rps : 0.0, r.rps});
      }
    }
    server.stop();
    service.stop();
    broker.shutdown();
  }

  ep::bench::writeBenchJson("BENCH_serve.json", "serve_throughput", records);
  std::printf("\nwrote BENCH_serve.json (%zu records)\n", records.size());
  return 0;
}
