// Serving-path benchmark: requests/sec through the epserve broker and
// the cache-hit vs cold-study latency split, across thread counts.
//
// The interesting ratio is cold vs hit: a cold TuneRequest pays the
// full configuration-space study (every launchable (BS, G, R) through
// the GPU model), while a hit replays the cached front through the
// budget-specific tuner.  The acceptance bar is hit latency at least
// 10x better than cold.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ep::serve::Broker;
using ep::serve::BrokerOptions;
using ep::serve::Device;
using ep::serve::TuneRequest;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

TuneRequest req(Device d, int n) {
  TuneRequest r;
  r.device = d;
  r.n = n;
  r.maxDegradation = 0.11;
  return r;
}

struct LatencySplit {
  double coldMs = 0.0;  // mean over cold keys
  double hitMs = 0.0;   // mean over cache-hit repeats
};

LatencySplit measureLatencies(const std::vector<int>& sizes,
                              std::size_t threads) {
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  BrokerOptions opts;
  opts.threads = threads;
  opts.queueCapacity = 1024;
  Broker broker(engine, opts);

  LatencySplit out;
  for (int n : sizes) {
    const auto t0 = Clock::now();
    const auto resp = broker.tune(req(Device::P100, n));
    if (resp.status != ep::serve::Status::Ok) {
      std::fprintf(stderr, "cold tune failed: %s\n", resp.error.c_str());
      continue;
    }
    out.coldMs += msSince(t0);
  }
  out.coldMs /= static_cast<double>(sizes.size());

  constexpr int kHitRepeats = 200;
  const auto t0 = Clock::now();
  for (int i = 0; i < kHitRepeats; ++i) {
    (void)broker.tune(req(Device::P100, sizes[static_cast<std::size_t>(i) %
                                              sizes.size()]));
  }
  out.hitMs = msSince(t0) / kHitRepeats;
  return out;
}

double measureThroughput(const std::vector<int>& sizes, std::size_t threads,
                         int requests) {
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  BrokerOptions opts;
  opts.threads = threads;
  opts.queueCapacity = static_cast<std::size_t>(requests) + 16;
  Broker broker(engine, opts);

  // Warm the cache so the measured mix is the steady serving state
  // (hits + coalescing), not a cold-start artifact.
  for (int n : sizes) (void)broker.tune(req(Device::P100, n));

  std::vector<std::future<ep::serve::TuneResponse>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  const auto t0 = Clock::now();
  for (int i = 0; i < requests; ++i) {
    futures.push_back(broker.submitTune(
        req(Device::P100, sizes[static_cast<std::size_t>(i) % sizes.size()])));
  }
  for (auto& f : futures) (void)f.get();
  const double s = msSince(t0) / 1e3;
  return static_cast<double>(requests) / s;
}

}  // namespace

int main() {
  const std::vector<int> sizes = {4096, 5120, 6144, 7168, 8192, 9216,
                                  10240, 12288};
  constexpr int kRequests = 20000;

  std::printf("== epserve broker throughput ==\n");
  std::printf("workloads: %zu P100 sizes, budget 11%%, cache warm\n\n",
              sizes.size());

  const LatencySplit split = measureLatencies(sizes, 4);
  std::printf("latency (4 worker threads):\n");
  std::printf("  cold study : %10.3f ms/request\n", split.coldMs);
  std::printf("  cache hit  : %10.3f ms/request\n", split.hitMs);
  const double ratio = split.hitMs > 0.0 ? split.coldMs / split.hitMs : 0.0;
  std::printf("  cold/hit   : %10.1fx  %s\n\n", ratio,
              ratio >= 10.0 ? "(PASS >= 10x)" : "(FAIL < 10x)");

  // Machine-readable record, tracked across PRs like BENCH_obs /
  // BENCH_study: ns_per_op is per request, configs_per_s is req/s.
  std::vector<ep::bench::BenchRecord> records;
  records.push_back({"latency/cold_study", 4, split.coldMs * 1e6,
                     split.coldMs > 0.0 ? 1e3 / split.coldMs : 0.0});
  records.push_back({"latency/cache_hit", 4, split.hitMs * 1e6,
                     split.hitMs > 0.0 ? 1e3 / split.hitMs : 0.0});

  std::printf("throughput (%d requests, warm cache):\n", kRequests);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps = measureThroughput(sizes, threads, kRequests);
    std::printf("  threads=%zu : %12.0f req/s\n", threads, rps);
    records.push_back({"throughput/warm", static_cast<int>(threads),
                       rps > 0.0 ? 1e9 / rps : 0.0, rps});
  }
  ep::bench::writeBenchJson("BENCH_serve.json", "serve_throughput", records);
  std::printf("\nwrote BENCH_serve.json (%zu records)\n", records.size());
  return 0;
}
