// Study-engine scaling: the metered Fig-7 workload (full K40c
// configuration space through the wall-meter + CI measurement protocol)
// evaluated serially and on a shared thread pool at 1..N threads.
//
// Two invariants are checked on every parallel run:
//   * results are bitwise-identical to the serial baseline (per-config
//     forked RNG streams + per-index output slots), and
//   * a nested shape — runSweep over sizes, each workload itself
//     parallel on the same pool — completes and matches too.
//
// Emits BENCH_study.json (ns/op, configs/s, thread count) so the perf
// trajectory is tracked across PRs.
//
// Run as:  bench_study_scaling [maxThreads]   (default 8)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace ep;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool bitwiseEqual(const std::vector<apps::GpuDataPoint>& a,
                  const std::vector<apps::GpuDataPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time.value() != b[i].time.value() ||
        a[i].dynamicEnergy.value() != b[i].dynamicEnergy.value() ||
        a[i].repetitions != b[i].repetitions) {
      return false;
    }
  }
  return true;
}

bool sweepEqual(const std::vector<core::WorkloadResult>& a,
                const std::vector<core::WorkloadResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].n != b[i].n || !bitwiseEqual(a[i].data, b[i].data)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int maxThreads = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = 10240;  // Fig 7's larger K40c workload
  const std::vector<int> sweepSizes{8704, 10240};

  bench::printHeader(
      "Study-engine scaling: metered K40c N=" + std::to_string(n) +
          " across pool sizes",
      "n/a (performance harness; paper's Fig 7 study parallelized)");

  apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), {});  // metered
  core::GpuEpStudy study(app);
  Rng rng(7);

  // Serial baseline (best of 3 to shed scheduler noise).
  double serialS = 1e300;
  core::WorkloadResult serial;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    serial = study.runWorkload(n, rng);
    serialS = std::min(serialS, secondsSince(t0));
  }
  const auto configs = static_cast<double>(serial.data.size());
  std::printf("serial: %zu configs in %.3f s (%.0f ns/config)\n\n",
              serial.data.size(), serialS, 1e9 * serialS / configs);

  std::vector<bench::BenchRecord> records;
  records.push_back({"runWorkload/metered", 1, 1e9 * serialS / configs,
                     configs / serialS});

  Table t({"threads", "wall [s]", "speedup", "configs/s", "bitwise"});
  t.setTitle("parallel runWorkload vs serial");
  bool allIdentical = true;
  std::vector<std::size_t> threadCounts;
  for (std::size_t c = 1; c <= static_cast<std::size_t>(maxThreads); c *= 2) {
    threadCounts.push_back(c);
  }
  for (std::size_t threads : threadCounts) {
    ThreadPool pool(threads);
    double bestS = 1e300;
    core::WorkloadResult parallel;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      parallel = study.runWorkload(n, rng, &pool);
      bestS = std::min(bestS, secondsSince(t0));
    }
    const bool same = bitwiseEqual(parallel.data, serial.data);
    allIdentical = allIdentical && same;
    t.addRow({std::to_string(threads), formatDouble(bestS, 3),
              formatDouble(serialS / bestS, 2),
              formatDouble(configs / bestS, 0), same ? "yes" : "NO"});
    records.push_back({"runWorkload/metered/pool",
                       static_cast<int>(threads), 1e9 * bestS / configs,
                       configs / bestS});
  }
  t.print(std::cout);

  // Nested shape: parallel sweep over sizes, each workload parallel on
  // the same pool (what a serve-broker study job exercises).
  Rng sweepRng(7);
  const auto sweepT0 = Clock::now();
  const auto sweepSerial = study.runSweep(sweepSizes, sweepRng);
  const double sweepSerialS = secondsSince(sweepT0);
  ThreadPool pool(static_cast<std::size_t>(maxThreads));
  const auto sweepT1 = Clock::now();
  const auto sweepParallel = study.runSweep(sweepSizes, sweepRng, &pool);
  const double sweepParallelS = secondsSince(sweepT1);
  const bool sweepSame = sweepEqual(sweepParallel, sweepSerial);
  allIdentical = allIdentical && sweepSame;
  std::printf(
      "\nnested sweep (%zu sizes): serial %.3f s, %d-thread %.3f s "
      "(%.2fx), bitwise %s\n",
      sweepSizes.size(), sweepSerialS, maxThreads, sweepParallelS,
      sweepSerialS / sweepParallelS, sweepSame ? "yes" : "NO");

  if (!bench::writeBenchJson("BENCH_study.json", "study_scaling", records)) {
    return 1;
  }
  std::printf("wrote BENCH_study.json (%zu records)\n", records.size());

  if (!allIdentical) {
    std::fprintf(stderr,
                 "FAIL: parallel results are not bitwise-identical to "
                 "serial\n");
    return 1;
  }
  return 0;
}
