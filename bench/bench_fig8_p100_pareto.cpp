// Fig 8: energy nonproportionality of the Nvidia P100 PCIe for N=10240
// and N=14336 — configuration scatter, global Pareto fronts, and the
// headline (50 %, 11 %) trade-off at N=10240.
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Fig 8: P100 PCIe energy nonproportionality and global Pareto "
      "fronts",
      "N=10240: three points in the global front; 11% performance "
      "degradation buys 50% dynamic energy savings");

  apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), {});
  core::GpuEpStudy study(app);
  Rng rng(8);

  for (int n : {10240, 14336}) {
    const auto r = study.runWorkload(n, rng);

    Table t({"config", "time [s]", "E_d [J]", "clock bin", "uncore"});
    t.setTitle("P100 N=" + std::to_string(n) + ": all configurations");
    for (const auto& d : r.data) {
      t.addRow({d.label(), formatDouble(d.time.value(), 3),
                formatDouble(d.dynamicEnergy.value(), 1),
                formatDouble(d.model.boostRatio, 3),
                d.model.uncoreActive ? "on" : "off"});
    }
    t.print(std::cout);

    bench::printFront("global Pareto front", r.globalFront);
    bench::printTradeoff("global trade-off", r.globalTradeoff);
    std::printf("\n");
  }
  return 0;
}
