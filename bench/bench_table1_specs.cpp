// Table I: specifications of the Intel Haswell multicore CPU, the
// Nvidia K40c, and the Nvidia P100 PCIe GPU — regenerated from the ephw
// catalog the whole simulation is parameterized by.
#include <iostream>

#include "bench_util.hpp"
#include "hw/spec.hpp"

using namespace ep;

int main() {
  bench::printHeader("Table I: platform specifications",
                     "Haswell E5-2670v3 / Nvidia K40c / Nvidia P100 PCIe");

  const hw::CpuSpec cpu = hw::haswellE52670v3();
  Table cpuTable({"Intel Haswell E5-2670 v3", "value"});
  cpuTable.addRow({"No. of cores per socket",
                   std::to_string(cpu.coresPerSocket)});
  cpuTable.addRow({"Socket(s)", std::to_string(cpu.sockets)});
  cpuTable.addRow({"SMT ways per core (hyperthreading)",
                   std::to_string(cpu.smtWaysPerCore)});
  cpuTable.addRow({"L1d cache, L1i cache",
                   std::to_string(cpu.l1dKB) + " KB, " +
                       std::to_string(cpu.l1iKB) + " KB"});
  cpuTable.addRow({"L2 cache, L3 cache",
                   std::to_string(cpu.l2KB) + " KB, " +
                       std::to_string(cpu.l3KB) + " KB"});
  cpuTable.addRow({"Total main memory",
                   std::to_string(cpu.memoryGB) + " GB DDR4"});
  cpuTable.addRow({"Node peak FP64",
                   formatDouble(cpu.peakGflops, 0) + " GFLOP/s"});
  cpuTable.addRow({"Node memory bandwidth",
                   formatDouble(cpu.memBandwidthGBs, 0) + " GB/s"});
  cpuTable.print(std::cout);

  for (const hw::GpuSpec& gpu : {hw::nvidiaK40c(), hw::nvidiaP100Pcie()}) {
    Table t({gpu.name, "value"});
    t.addRow({"No. of CUDA cores (Base clock)",
              std::to_string(gpu.cudaCores) + " (" +
                  formatDouble(gpu.baseClockMHz, 0) + " MHz)"});
    t.addRow({"Boost clock", formatDouble(gpu.boostClockMHz, 0) + " MHz"});
    t.addRow({"SM count", std::to_string(gpu.smCount)});
    t.addRow({"Total board memory", std::to_string(gpu.memoryGB) + " GB"});
    t.addRow({"L2 cache size", std::to_string(gpu.l2KB) + " KB"});
    t.addRow({"Thermal design power (TDP)",
              formatDouble(gpu.tdp.value(), 0) + " W"});
    t.addRow({"FP64 peak",
              formatDouble(gpu.peakGflopsDouble, 0) + " GFLOP/s"});
    t.addRow({"Memory bandwidth",
              formatDouble(gpu.memBandwidthGBs, 0) + " GB/s"});
    t.addRow({"Autoboost", gpu.hasAutoBoost ? "yes" : "no"});
    t.addRow({"Uncore component (Fig 6)",
              formatDouble(gpu.uncorePower.value(), 0) +
                  " W, active N <= " +
                  std::to_string(gpu.additivityThresholdN)});
    t.print(std::cout);
  }
  return 0;
}
