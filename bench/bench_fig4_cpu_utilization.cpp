// Fig 4: dynamic power versus average CPU utilization and performance
// versus average CPU utilization for the Intel-MKL-like and
// OpenBLAS-like DGEMM applications at N=17408 on the dual-socket
// Haswell node.  Also reproduces the paper's annotations: points A/B
// (small utilization change, power jump) and lines C/D (same average
// utilization, different power), plus the non-functionality metrics.
#include <algorithm>
#include <iostream>

#include "apps/cpu_dgemm_app.hpp"
#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "hw/cpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Fig 4: CPU dynamic power / performance vs average utilization, "
      "DGEMM N=17408",
      "performance linear to ~700 GFLOPs then plateaus; dynamic power "
      "is NON-functional in utilization (same U, different P)");

  apps::CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), {});
  Rng rng(17408);

  for (const auto variant :
       {hw::BlasVariant::IntelMklLike, hw::BlasVariant::OpenBlasLike}) {
    const char* name =
        variant == hw::BlasVariant::IntelMklLike ? "Intel MKL" : "OpenBLAS";
    const auto points = app.runWorkload(17408, variant, rng);

    Table t({"config", "avg util [%]", "dyn power [W]", "perf [GFLOPs]",
             "time [s]"});
    t.setTitle(std::string(name) + " DGEMM configurations");
    double peak = 0.0;
    std::vector<core::PowerSampleU> samples;
    for (const auto& p : points) {
      peak = std::max(peak, p.gflops);
      samples.push_back(
          {p.avgUtilizationPct / 100.0, p.dynamicPower.value()});
      t.addRow({p.label(), formatDouble(p.avgUtilizationPct, 2),
                formatDouble(p.dynamicPower.value(), 1),
                formatDouble(p.gflops, 1),
                formatDouble(p.time.value(), 2)});
    }
    t.print(std::cout);
    std::printf("%s peak performance: %.0f GFLOPs (paper: ~700)\n", name,
                peak);

    const auto scatter = core::analyzeScatter(samples, 10);
    std::printf(
        "%s power-vs-utilization scatter: max residual %.1f%%, rms "
        "%.1f%% of the per-bin mean => the relationship is %s\n",
        name, 100.0 * scatter.maxResidual, 100.0 * scatter.rmsResidual,
        scatter.maxResidual > 0.05 ? "NON-FUNCTIONAL (weak EP violated)"
                                   : "functional");
    const double ep = core::ryckboschEpMetric(samples);
    std::printf("%s Ryckbosch EP metric: %.3f (1.0 = ideal)\n\n", name, ep);
  }

  // Points A/B: a configuration change that raises utilization of some
  // cores without improving performance increases dynamic energy (the
  // Section III equation-2 case).
  {
    hw::CpuModel model(hw::haswellE52670v3());
    hw::CpuDgemmConfig a;
    a.n = 17408;
    a.threadgroups = 1;
    a.threadsPerGroup = 24;
    hw::CpuDgemmConfig b = a;
    b.threadgroups = 12;
    b.threadsPerGroup = 2;
    const auto ra = model.modelDgemm(a);
    const auto rb = model.modelDgemm(b);
    std::printf(
        "points A/B: p=1,t=24 vs p=12,t=2: utilization %.1f%% vs %.1f%%, "
        "dynamic power %.1f W vs %.1f W, performance %.0f vs %.0f GFLOPs\n",
        100.0 * ra.avgUtilization, 100.0 * rb.avgUtilization,
        ra.dynamicPower.value(), rb.dynamicPower.value(), ra.gflops,
        rb.gflops);
    std::printf(
        "=> same workload and (nearly) same utilization, +%.1f%% dynamic "
        "power: the lines C/D phenomenon\n",
        100.0 * (rb.dynamicPower.value() / ra.dynamicPower.value() - 1.0));
  }
  return 0;
}
