// Baseline: the system-level (DVFS) bi-objective knob of the related
// work ([16]-[21]) versus the paper's application-level decision
// variables, on the Haswell node running DGEMM.
//
// Prints (a) the DVFS Pareto front over P-states for compute- and
// memory-bound workloads, (b) the constraint-based optimizers, and
// (c) a comparison: energy savings available from frequency alone vs
// from the application configuration space at fixed frequency.
#include <algorithm>
#include <iostream>

#include "apps/cpu_dgemm_app.hpp"
#include "bench_util.hpp"
#include "dvfs/optimize.hpp"
#include "dvfs/processor.hpp"
#include "hw/cpu_model.hpp"
#include "pareto/tradeoff.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Baseline: DVFS (system-level) vs application-level decision "
      "variables",
      "related work optimizes via frequency; the paper optimizes via "
      "application configuration at fixed frequency");

  const dvfs::DvfsProcessor proc =
      dvfs::DvfsProcessor::fromCpuSpec(hw::haswellE52670v3());

  for (const auto& [label, mb] :
       std::vector<std::pair<const char*, double>>{
           {"compute-bound (DGEMM-like, blocked)", 0.15},
           {"memory-bound (streaming)", 0.85}}) {
    const dvfs::Workload w{2.0 * 17408.0 * 17408.0 * 17408.0 / 1e9, mb};
    const auto front = dvfs::dvfsParetoFront(proc, w);
    bench::printFront(std::string("DVFS Pareto front, ") + label, front);
    const auto tr = pareto::analyzeTradeoff(dvfs::dvfsPoints(proc, w));
    bench::printTradeoff("DVFS-only trade-off", tr);

    const auto fastest = proc.run(w, proc.table().highest());
    const auto deadline = dvfs::minimizeEnergyUnderDeadline(
        proc, w, Seconds{1.1 * fastest.time.value()});
    if (deadline) {
      std::printf(
          "energy-min under 10%% deadline slack: f=%.0f MHz, saves "
          "%.1f%% energy\n\n",
          deadline->state.freqMHz,
          100.0 * (1.0 - deadline->dynamicEnergy.value() /
                             fastest.dynamicEnergy.value()));
    }
  }

  // Application-level savings at fixed frequency, for comparison.
  {
    apps::CpuDgemmOptions opts;
    opts.useMeter = false;
    const apps::CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
    Rng rng(5);
    const auto points =
        app.runWorkload(17408, hw::BlasVariant::IntelMklLike, rng);
    const auto biPoints = apps::CpuDgemmApp::toPoints(points);
    const auto tr = pareto::analyzeTradeoff(biPoints);
    double eMin = biPoints.front().energy.value(), eMax = eMin;
    for (const auto& p : biPoints) {
      eMin = std::min(eMin, p.energy.value());
      eMax = std::max(eMax, p.energy.value());
    }
    std::printf(
        "application-level configuration space at fixed frequency: "
        "%.1f%% front savings at %.1f%% degradation; picking a bad "
        "configuration wastes up to %.0f%% dynamic energy (weak-EP "
        "spread) at the same workload\n",
        100.0 * tr.maxEnergySavings, 100.0 * tr.performanceDegradation,
        100.0 * (eMax / eMin - 1.0));
  }
  std::printf(
      "\nreading: the two knobs are complementary — DVFS trades clock "
      "for voltage-squared savings, while the paper's application-level "
      "variables exploit the nonproportional shared-resource activity "
      "that DVFS cannot reach.\n");
  return 0;
}
