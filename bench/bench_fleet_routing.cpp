// Fleet routing-policy comparison under skewed traffic: round-robin vs
// queue-depth vs energy-aware, same shards, same request sequence.
//
// The mechanism under test is cache affinity as an energy decision.
// A key's cold study is the expensive part (the full configuration-
// space sweep); the energy-aware policy concentrates each key on its
// ring home so the cluster pays that study once, while round-robin
// scatters the key across every shard's private cache and pays it N
// times.  Queue-depth balances load but is blind to placement energy.
// The acceptance bar: energy-aware strictly dominates round-robin on
// (cluster energy, p99 latency) — no worse on both, better on one.
//
// Writes BENCH_fleet.json with per-policy cluster joules, executed
// studies, and client latency percentiles.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fleet/router.hpp"
#include "serve/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ep::fleet::FleetOptions;
using ep::fleet::FleetRequest;
using ep::fleet::FleetRouter;
using ep::fleet::FleetShardConfig;
using ep::fleet::PolicyKind;
using ep::serve::Device;

constexpr int kShards = 3;
constexpr int kClientThreads = 4;
constexpr int kRequestsPerThread = 60;

// Deterministic skewed mix: 80% of traffic on 4 hot keys, the rest on
// a 16-key cold tail, both devices interleaved.
FleetRequest requestAt(int i) {
  static const std::vector<int> hot = {4096, 5120, 6144, 7168};
  static const std::vector<int> cold = {8192, 8320, 8448, 8576, 8704, 8832,
                                        8960, 9088, 9216, 9344, 9472, 9600,
                                        9728, 9856, 9984, 10112};
  FleetRequest r;
  r.device = i % 2 == 0 ? Device::P100 : Device::K40c;
  r.n = i % 5 < 4 ? hot[static_cast<std::size_t>(i / 5) % hot.size()]
                  : cold[static_cast<std::size_t>(i / 5) % cold.size()];
  r.maxDegradation = 0.11;
  return r;
}

struct PolicyResult {
  std::string name;
  double clusterJoules = 0.0;
  std::uint64_t studiesExecuted = 0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  int errors = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
}

PolicyResult runPolicy(PolicyKind policy) {
  // Fresh shards per policy: every run starts with cold caches and a
  // zeroed ledger, so the comparison is exactly the routing decision.
  auto engine = std::make_shared<ep::serve::EpStudyEngine>();
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < kShards; ++i) {
    FleetShardConfig c;
    c.id = "s" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.broker.queueCapacity = 256;
    cfgs.push_back(std::move(c));
  }
  FleetOptions opts;
  opts.policy = policy;
  FleetRouter router(std::move(cfgs), opts);

  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<int> errors(kClientThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      latencies[static_cast<std::size_t>(t)].reserve(kRequestsPerThread);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const auto start = Clock::now();
        const auto resp =
            router.tune(requestAt(t * kRequestsPerThread + i));
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (resp.status == ep::serve::Status::Ok) {
          latencies[static_cast<std::size_t>(t)].push_back(ms);
        } else {
          ++errors[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  PolicyResult out;
  out.name = ep::fleet::policyName(policy);
  const auto m = router.metrics();
  out.clusterJoules = m.clusterJoules;
  for (const auto& s : m.shards) out.studiesExecuted += s.studiesExecuted;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  for (int e : errors) out.errors += e;
  out.p50Ms = percentile(all, 0.50);
  out.p99Ms = percentile(all, 0.99);
  return out;
}

}  // namespace

int main() {
  std::printf("== fleet routing policies under skewed traffic ==\n");
  std::printf(
      "%d shards x 2 workers, %d clients x %d requests, 80%%/20%% "
      "hot/cold key mix over both devices\n\n",
      kShards, kClientThreads, kRequestsPerThread);

  std::vector<PolicyResult> results;
  for (PolicyKind k : {PolicyKind::RoundRobin, PolicyKind::QueueDepth,
                       PolicyKind::EnergyAware}) {
    results.push_back(runPolicy(k));
  }

  std::printf("%-14s %14s %10s %10s %10s %7s\n", "policy", "cluster J",
              "studies", "p50 ms", "p99 ms", "errors");
  for (const auto& r : results) {
    std::printf("%-14s %14.1f %10llu %10.3f %10.3f %7d\n", r.name.c_str(),
                r.clusterJoules,
                static_cast<unsigned long long>(r.studiesExecuted), r.p50Ms,
                r.p99Ms, r.errors);
  }

  std::vector<ep::bench::BenchValue> values;
  for (const auto& r : results) {
    values.push_back({r.name + "/clusterJoules", r.clusterJoules});
    values.push_back({r.name + "/studiesExecuted",
                      static_cast<double>(r.studiesExecuted)});
    values.push_back({r.name + "/p50Ms", r.p50Ms});
    values.push_back({r.name + "/p99Ms", r.p99Ms});
  }
  ep::bench::writeBenchValuesJson("BENCH_fleet.json", "fleet_routing",
                                  values);
  std::printf("\nwrote BENCH_fleet.json (%zu values)\n", values.size());

  const PolicyResult& rr = results[0];
  const PolicyResult& energy = results[2];
  const bool dominates = energy.clusterJoules < rr.clusterJoules &&
                         energy.p99Ms <= rr.p99Ms;
  std::printf(
      "energy-aware vs round-robin: %.1f%% cluster energy, %.1f%% p99 — "
      "%s\n",
      100.0 * energy.clusterJoules / rr.clusterJoules,
      rr.p99Ms > 0.0 ? 100.0 * energy.p99Ms / rr.p99Ms : 0.0,
      dominates ? "STRICTLY DOMINATES (PASS)" : "does not dominate (FAIL)");
  return dominates && energy.errors == 0 ? 0 : 1;
}
