// Fig 2: EP plots for the Nvidia P100 PCIe executing every (BS, G, R)
// configuration of the matrix-multiplication application at N=18432.
// Regenerates all four panels as tables/series:
//   (a) all configurations (the full scatter),
//   (b) the monotone region BS in [1, 20],
//   (c) the nonproportionality region BS in [21, 32],
//   (d) the global Pareto front + trade-off, including the paper's
//       BS <= 30 sub-region analysis.
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Fig 2: P100 PCIe weak EP, matrix multiplication, N=18432",
      "front of 2 points: 12.5% savings for 2.5% degradation; "
      "BS<=30 region: 24% savings for 8% degradation");

  apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), {});
  core::GpuEpStudy study(app);
  Rng rng(18432);
  const auto r = study.runWorkload(18432, rng);

  // Panel (a): the full scatter.
  Table all({"config", "time [s]", "E_d [J]", "occupancy", "clock bin"});
  all.setTitle("all configurations (BS, G, R) with G*R = 8");
  for (const auto& d : r.data) {
    all.addRow({d.label(), formatDouble(d.time.value(), 3),
                formatDouble(d.dynamicEnergy.value(), 1),
                formatDouble(d.model.occupancy.fraction, 3),
                formatDouble(d.model.boostRatio, 3)});
  }
  all.print(std::cout);

  // Panels (b)/(c): region split at BS = 20/21.
  std::vector<pareto::BiPoint> low, high, le30;
  for (std::size_t i = 0; i < r.data.size(); ++i) {
    const auto pt = r.data[i].toPoint(i);
    if (r.data[i].config.bs <= 20) {
      low.push_back(pt);
    } else {
      high.push_back(pt);
    }
    if (r.data[i].config.bs <= 30) le30.push_back(pt);
  }
  const auto trLow = pareto::analyzeTradeoff(low);
  bench::printTradeoff(
      "region BS in [1,20] (monotone: performance-opt ~ energy-opt)",
      trLow);
  const auto trHigh = pareto::analyzeTradeoff(high);
  bench::printTradeoff("region BS in [21,32] (bi-objective opportunity)",
                       trHigh);

  // Panel (d): global front.
  bench::printFront("global Pareto front", r.globalFront);
  bench::printTradeoff("global trade-off (paper: 12.5% @ 2.5%)",
                       r.globalTradeoff);

  const auto tr30 = pareto::analyzeTradeoff(le30);
  bench::printTradeoff("BS <= 30 sub-region (paper: 24% @ 8%)", tr30);
  return 0;
}
