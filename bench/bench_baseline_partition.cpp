// Baseline: bi-objective workload distribution across the heterogeneous
// platform (Haswell CPU + K40c + P100), in the style of the paper's
// companion methods [25], [12].  Profiles each processor's time/energy
// as a function of the number of matrix products assigned, computes the
// exact Pareto-optimal distributions, and compares them against the
// naive balanced split.
#include <iostream>

#include "bench_util.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"
#include "partition/partitioner.hpp"

using namespace ep;

namespace {

partition::DiscreteProfile gpuProfile(const hw::GpuSpec& spec, int n,
                                      std::size_t maxUnits) {
  const hw::GpuModel model(spec);
  return partition::DiscreteProfile::sample(
      spec.name, maxUnits,
      [&model, n](std::size_t k) {
        return model.modelMatMul({n, 32, 1, static_cast<int>(k)}).time;
      },
      [&model, n](std::size_t k) {
        return model
            .modelMatMul({n, 32, 1, static_cast<int>(k)})
            .dynamicEnergy();
      });
}

partition::DiscreteProfile cpuProfile(int n, std::size_t maxUnits) {
  const hw::CpuModel model(hw::haswellE52670v3());
  hw::CpuDgemmConfig cfg;
  cfg.n = n;
  cfg.threadgroups = 1;
  cfg.threadsPerGroup = 24;
  const auto one = model.modelDgemm(cfg);
  return partition::DiscreteProfile::sample(
      "Haswell CPU", maxUnits,
      [&one](std::size_t k) {
        return one.time * static_cast<double>(k);
      },
      [&one](std::size_t k) {
        return one.dynamicEnergy() * static_cast<double>(k);
      });
}

}  // namespace

int main() {
  bench::printHeader(
      "Baseline: bi-objective workload distribution (CPU + K40c + P100)",
      "exact Pareto-optimal distributions vs the balanced split "
      "([25]/[12]-style application-level method)");

  const int n = 8192;               // per-product matrix size
  const std::size_t totalUnits = 24;  // matrix products to distribute
  const std::vector<partition::DiscreteProfile> profiles{
      cpuProfile(n, totalUnits), gpuProfile(hw::nvidiaK40c(), n, totalUnits),
      gpuProfile(hw::nvidiaP100Pcie(), n, totalUnits)};
  const partition::WorkloadPartitioner part(profiles);

  const auto front = part.paretoDistributions(totalUnits);
  Table t({"distribution (units per processor)", "time [s]",
           "dynamic energy [J]"});
  t.setTitle("Pareto-optimal distributions of " +
             std::to_string(totalUnits) + " products of " +
             std::to_string(n) + "^2 matrices");
  for (const auto& d : front) {
    t.addRow({d.describe(profiles), formatDouble(d.time.value(), 2),
              formatDouble(d.energy.value(), 0)});
  }
  t.print(std::cout);

  const auto balanced = part.balanced(totalUnits);
  std::printf("balanced split  %-28s time %8.2f s, energy %8.0f J\n",
              balanced.describe(profiles).c_str(), balanced.time.value(),
              balanced.energy.value());
  const auto fastest = part.fastest(totalUnits);
  const auto efficient = part.mostEfficient(totalUnits);
  std::printf(
      "bi-objective optimum: fastest is %.1fx faster than balanced; "
      "most-efficient saves %.1f%% energy vs fastest for %.1fx time\n",
      balanced.time.value() / fastest.time.value(),
      100.0 * (1.0 - efficient.energy.value() / fastest.energy.value()),
      efficient.time.value() / fastest.time.value());
  return 0;
}
