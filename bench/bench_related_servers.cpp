// Related-work reproduction: the Ryckbosch/Polfliet/Eeckhout server
// survey [5] — EP metrics over a synthetic fleet of ~210 servers with
// vendor-like parameter spreads, SPECpower-style load ladders, and the
// per-level proportionality of Wong-Annavaram [6].
#include <iostream>

#include "bench_util.hpp"
#include "core/serverpark.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Related work: server-fleet EP survey ([5], [6])",
      "~210 servers from ~20 vendors; EP varies widely and only some "
      "servers exhibit a linear power-utilization relationship");

  Rng rng(210);
  const auto fleet = core::generateFleet(210, rng);
  const auto survey = core::surveyFleet(fleet);

  std::printf("fleet of %zu simulated servers:\n", survey.servers);
  std::printf("  Ryckbosch EP metric: mean %.3f, min %.3f, max %.3f\n",
              survey.meanEpMetric, survey.minEpMetric, survey.maxEpMetric);
  std::printf("  nearly proportional (max deviation < 10%%): %zu of %zu\n",
              survey.nearlyProportionalCount, survey.servers);

  // Show three representative ladders: best, median-ish, worst EP.
  const core::ServerPowerCurve* best = &fleet.front();
  const core::ServerPowerCurve* worst = &fleet.front();
  for (const auto& s : fleet) {
    if (core::ryckboschEpMetric(core::specPowerLadder(s)) >
        core::ryckboschEpMetric(core::specPowerLadder(*best))) {
      best = &s;
    }
    if (core::ryckboschEpMetric(core::specPowerLadder(s)) <
        core::ryckboschEpMetric(core::specPowerLadder(*worst))) {
      worst = &s;
    }
  }
  for (const auto* s : {best, worst}) {
    Table t({"load", "power [W]", "per-level proportionality"});
    t.setTitle(s->name + (s == best ? " (best EP)" : " (worst EP)") +
               ": idle fraction " + formatDouble(s->idleFraction, 2) +
               ", curvature " + formatDouble(s->curvature, 2));
    const auto ladder = core::specPowerLadder(*s);
    const auto levels = core::perLevelProportionality(ladder, 10);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      const double u = ladder[i].utilization;
      // Find the closest per-level entry.
      double prop = 0.0;
      double bestDist = 1e300;
      for (const auto& lp : levels) {
        const double dist = std::abs(lp.utilization - u);
        if (dist < bestDist) {
          bestDist = dist;
          prop = lp.proportionality;
        }
      }
      t.addRow({formatDouble(100.0 * u, 0) + "%",
                formatDouble(ladder[i].powerW, 1),
                formatDouble(prop, 3)});
    }
    t.print(std::cout);
  }
  std::printf(
      "reading: the fleet reproduces [5]'s spread — EP metrics from "
      "%.2f to %.2f with only a minority of servers near-proportional — "
      "and [6]'s observation that proportionality is worst at low "
      "utilization levels.\n",
      survey.minEpMetric, survey.maxEpMetric);
  return 0;
}
