// Section III theory: equations (1)-(3) for the two homogeneous cores
// under the simple EP model, swept over the perturbation dU, plus the
// n-core generalization with concave power models (the paper's stated
// future work).
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/ncore.hpp"
#include "core/twocore.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Section III: theoretical analysis of weak-EP violation",
      "E3 > E2 > E1 for every utilization imbalance dU > 0");

  const core::SimpleEpModel model{1.0, 1.0};
  Table t({"U", "dU", "E1 = 2ab", "E2 (eq. 2)", "E3 (eq. 3)",
           "E2/E1", "E3/E1", "t3/t1"});
  t.setTitle("two-core dynamic energy, a = b = 1");
  for (double u : {0.3, 0.5, 0.7}) {
    for (double du : {0.05, 0.10, 0.20, 0.25}) {
      if (du >= u || u + du > 1.0) continue;
      const auto s = core::paperScenarios(model, u, du);
      t.addRow({formatDouble(u, 2), formatDouble(du, 2),
                formatDouble(s.e1.total, 4), formatDouble(s.e2.total, 4),
                formatDouble(s.e3.total, 4),
                formatDouble(s.e2.total / s.e1.total, 4),
                formatDouble(s.e3.total / s.e1.total, 4),
                formatDouble(s.e3.time / s.e1.time, 4)});
    }
  }
  t.print(std::cout);
  std::printf(
      "every row satisfies E3 > E2 > E1: utilization imbalance always "
      "increases dynamic energy, and the opposite perturbation (eq. 3) "
      "also degrades performance.\n\n");

  // n-core generalization with concave power models P = a U^gamma.
  Table nt({"cores", "gamma", "max imbalance penalty",
            "mean imbalance penalty"});
  nt.setTitle(
      "n-core generalization: energy penalty of random imbalanced "
      "utilization vectors vs uniform (same average)");
  Rng rng(3);
  for (std::size_t cores : {2u, 4u, 8u, 24u, 48u}) {
    for (double gamma : {1.0, 0.7, 0.5}) {
      const core::NCoreModel m{1.0, 1.0, gamma};
      double maxPen = 0.0, sumPen = 0.0;
      constexpr int kTrials = 500;
      for (int trial = 0; trial < kTrials; ++trial) {
        std::vector<double> us(cores);
        for (auto& u : us) u = rng.uniform(0.1, 1.0);
        const double pen = core::imbalancePenalty(m, us);
        maxPen = std::max(maxPen, pen);
        sumPen += pen;
      }
      nt.addRow({std::to_string(cores), formatDouble(gamma, 1),
                 formatDouble(100.0 * maxPen, 1) + "%",
                 formatDouble(100.0 * sumPen / kTrials, 1) + "%"});
    }
  }
  nt.print(std::cout);
  std::printf(
      "the penalty is non-negative for every sampled vector: the "
      "two-core theorem generalizes to n cores and concave P(U).\n");
  return 0;
}
