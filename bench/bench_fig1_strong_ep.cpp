// Fig 1: dynamic energy E_d versus work W = 5 N^2 log2 N for the 2D-FFT
// application on the Haswell CPU, the K40c and the P100 PCIe — the
// strong-EP study.  Prints the (N, W, E_d) series per processor plus the
// proportional-fit diagnostics showing E_d is NOT linear in W.
#include <iostream>

#include "apps/fft2d_app.hpp"
#include "bench_util.hpp"
#include "core/definitions.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Fig 1: strong energy proportionality (2D FFT, E_d vs W)",
      "E_d is a complex non-linear function of W on all three "
      "processors; strong EP does not hold");

  // Paper sweeps N in [125, 44000]; board memory (16 N^2 bytes plus
  // workspace) and statistics budget cap our sweep at 20480, which
  // already spans all cache/TLB regimes.
  const std::vector<int> sizes{125,  250,  500,   750,   1000, 1500, 2000,
                               3000, 4000, 5120,  6144,  8192, 10240,
                               12288, 14336, 16384, 18432, 20480};

  apps::Fft2dOptions opts;  // full wall-meter + CI protocol
  Rng rng(2022);

  const std::vector<apps::Fft2dApp> apps_ = {
      apps::Fft2dApp(hw::CpuModel(hw::haswellE52670v3()), opts),
      apps::Fft2dApp(hw::GpuModel(hw::nvidiaK40c()), opts),
      apps::Fft2dApp(hw::GpuModel(hw::nvidiaP100Pcie()), opts)};

  for (const auto& app : apps_) {
    Rng procRng = rng.fork(std::hash<std::string>{}(app.processorName()));
    const auto points = app.runSweep(sizes, procRng);

    Table t({"N", "W (= 5 N^2 log2 N)", "time [s]", "E_d [J]",
             "E_d / W [nJ/unit]"});
    t.setTitle(app.processorName());
    std::vector<double> work, energy;
    for (const auto& p : points) {
      work.push_back(p.work);
      energy.push_back(p.dynamicEnergy.value());
      t.addRow({std::to_string(p.n), formatDouble(p.work, 3),
                formatDouble(p.time.value(), 4),
                formatDouble(p.dynamicEnergy.value(), 2),
                formatDouble(1e9 * p.dynamicEnergy.value() / p.work, 3)});
    }
    t.print(std::cout);

    const auto r = core::analyzeStrongEp(work, energy, 0.05);
    std::printf(
        "strong EP check: best proportional fit E_d = %.3g * W has "
        "R^2 = %.4f, max relative deviation %.1f%% => strong EP %s\n\n",
        r.proportionalFit.slope, r.proportionalFit.r2,
        100.0 * r.maxRelativeDeviation, r.holds ? "HOLDS" : "VIOLATED");
  }
  return 0;
}
