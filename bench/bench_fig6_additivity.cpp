// Fig 6: energy-expensive activity shown by non-additivity of dynamic
// energy as G grows from 1 to 4, for both GPUs over a matrix-size
// sweep.  Also demonstrates the paper's resolution: reclassifying the
// constant 58 W component as static power makes dynamic energy additive.
#include <cmath>
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "energymodel/additivity.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

namespace {

void runGpu(const hw::GpuSpec& spec) {
  apps::GpuMatMulOptions opts;  // full meter + CI protocol
  const apps::GpuMatMulApp app(hw::GpuModel(spec), opts);
  Rng rng(6);

  Table t({"N", "t(G=1) [s]", "E(G=1) [J]", "E(G=2) [J]", "2*E(G=1) [J]",
           "err(G=2)", "E(G=4) [J]", "4*E(G=1) [J]", "err(G=4)",
           "uncore"});
  t.setTitle(spec.name + ": dynamic-energy additivity vs G (BS=32, R=1)");

  for (int n : {5120, 6144, 8192, 10240, 12288, 14336, 15360, 16384,
                18432}) {
    if (!app.model().isLaunchable({n, 32, 1, 1})) continue;
    std::array<apps::GpuDataPoint, 3> pts;  // G = 1, 2, 4
    const int gs[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      Rng r = rng.fork(static_cast<std::uint64_t>(n) * 10 + gs[i]);
      pts[i] = app.runConfig({n, 32, gs[i], 1}, r);
    }
    const auto a2 = model::analyzeEnergyAdditivity(
        pts[0].dynamicEnergy.value(), pts[1].dynamicEnergy.value(), 2);
    const auto a4 = model::analyzeEnergyAdditivity(
        pts[0].dynamicEnergy.value(), pts[2].dynamicEnergy.value(), 4);
    t.addRow({std::to_string(n), formatDouble(pts[0].time.value(), 3),
              formatDouble(a2.baseEnergy, 1),
              formatDouble(a2.compoundEnergy, 1),
              formatDouble(a2.additiveEnergy, 1),
              formatDouble(100.0 * a2.error, 1) + "%",
              formatDouble(a4.compoundEnergy, 1),
              formatDouble(a4.additiveEnergy, 1),
              formatDouble(100.0 * a4.error, 1) + "%",
              pts[0].model.uncoreActive ? "on" : "off"});
  }
  t.print(std::cout);

  // Reclassification check at a strongly non-additive size.
  const hw::GpuModel& model = app.model();
  auto coreOnly = [&](int g) {
    const auto k = model.modelMatMul({5120, 32, g, 1});
    double e = k.dynamicEnergy().value();
    if (k.uncoreActive) {
      e -= k.uncorePower.value() * (k.time.value() + k.uncoreTail.value());
    }
    return e;
  };
  const double e1 = coreOnly(1);
  const double e4 = coreOnly(4);
  std::printf(
      "N=5120 with the %.0f W component reclassified as static power: "
      "E(G=4) / (4 E(G=1)) = %.3f (paper: becomes additive)\n\n",
      spec.uncorePower.value(), e4 / (4.0 * e1));

  // Execution-time additivity (paper: times ARE additive).
  const double t1 = model.modelMatMul({5120, 32, 1, 1}).time.value();
  const double t4 = model.modelMatMul({5120, 32, 4, 1}).time.value();
  std::printf("execution-time additivity at N=5120: t(G=4)/(4 t(G=1)) = "
              "%.3f\n\n",
              t4 / (4.0 * t1));
}

}  // namespace

int main() {
  bench::printHeader(
      "Fig 6: non-additivity of dynamic energy as G increases",
      "highly non-additive at N=5120; additive above N=15360 (P100) / "
      "N=10240 (K40c); caused by a constant 58 W component");
  runGpu(hw::nvidiaP100Pcie());
  runGpu(hw::nvidiaK40c());
  return 0;
}
