// Section V-B front statistics over a wide range of workloads: average
// and maximum points in global/local Pareto fronts and the maximum
// savings/degradation trade-offs, for both GPUs — the numbers the
// paper's abstract reports.
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

namespace {

void runGpu(const hw::GpuSpec& spec, const std::vector<int>& sizes,
            const char* paperLine) {
  apps::GpuMatMulOptions opts;
  opts.useMeter = false;  // statistics over many workloads: model path
  const apps::GpuMatMulApp app(hw::GpuModel(spec), opts);
  const core::GpuEpStudy study(app);
  Rng rng(11);
  const auto results = study.runSweep(sizes, rng);

  Table t({"N", "configs", "global front", "local front",
           "global savings", "global degr.", "local savings",
           "local degr."});
  t.setTitle(spec.name + " front statistics per workload");
  for (const auto& r : results) {
    t.addRow(
        {std::to_string(r.n), std::to_string(r.points.size()),
         std::to_string(r.globalFront.size()),
         std::to_string(r.localFront.size()),
         formatDouble(100.0 * r.globalTradeoff.maxEnergySavings, 1) + "%",
         formatDouble(100.0 * r.globalTradeoff.performanceDegradation, 1) +
             "%",
         r.localTradeoff
             ? formatDouble(100.0 * r.localTradeoff->maxEnergySavings, 1) +
                   "%"
             : "-",
         r.localTradeoff
             ? formatDouble(
                   100.0 * r.localTradeoff->performanceDegradation, 1) +
                   "%"
             : "-"});
  }
  t.print(std::cout);

  const auto s = core::GpuEpStudy::summarize(results);
  std::printf(
      "%s summary: global fronts avg %.1f / max %zu; local fronts avg "
      "%.1f / max %zu\n",
      spec.name.c_str(), s.avgGlobalFrontSize, s.maxGlobalFrontSize,
      s.avgLocalFrontSize, s.maxLocalFrontSize);
  std::printf(
      "  max global savings %.1f%% @ %.1f%% degradation; max local "
      "savings %.1f%% @ %.1f%% degradation\n",
      100.0 * s.maxGlobalSavings, 100.0 * s.degradationAtMaxGlobalSavings,
      100.0 * s.maxLocalSavings, 100.0 * s.degradationAtMaxLocalSavings);
  std::printf("  paper: %s\n\n", paperLine);
}

}  // namespace

int main() {
  bench::printHeader(
      "Section V-B: Pareto front statistics over a range of workloads",
      "K40c: local fronts avg 4 / max 5, (18%, 7%); P100: global fronts "
      "avg 2 / max 3, (50%, 11%)");
  runGpu(hw::nvidiaK40c(),
         {8704, 9216, 9728, 10240, 11264, 12288, 13312, 14336},
         "local fronts avg 4 / max 5; up to 18% savings at 7% degradation");
  runGpu(hw::nvidiaP100Pcie(),
         {10240, 11264, 12288, 13312, 14336, 15360, 16384, 17408, 18432},
         "global fronts avg 2 / max 3; up to 50% savings at 11% "
         "degradation");
  return 0;
}
