// The CPU-side weak-EP study referenced throughout Section III (the [8]
// result the paper's theory explains): dynamic energy vs execution time
// for every DGEMM configuration solving the same workload on the
// dual-socket Haswell, with the weak-EP verdict and the energy cost of
// choosing the wrong configuration.
#include <iostream>

#include "apps/cpu_dgemm_app.hpp"
#include "bench_util.hpp"
#include "core/cpu_study.hpp"
#include "hw/cpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "CPU weak EP: dynamic energy across DGEMM configurations ([8])",
      "optimizing for performance alone may significantly increase "
      "dynamic energy; weak EP does not hold for multicore CPUs");

  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const core::CpuEpStudy study(
      apps::CpuDgemmApp(hw::CpuModel(hw::haswellE52670v3()), opts));
  Rng rng(3);

  for (const auto variant :
       {hw::BlasVariant::IntelMklLike, hw::BlasVariant::OpenBlasLike}) {
    const char* name =
        variant == hw::BlasVariant::IntelMklLike ? "MKL-like"
                                                 : "OpenBLAS-like";
    for (int n : {8192, 17408}) {
      const auto r = study.runWorkload(n, variant, rng);

      std::printf("%s N=%d: %zu configurations\n", name, n,
                  r.points.size());
      std::printf(
          "  weak EP: %s (energy spread %.0f%% from %.0f J to %.0f J)\n",
          r.weakEp.holds ? "holds" : "VIOLATED", 100.0 * r.weakEp.spread,
          r.weakEp.minEnergyJ, r.weakEp.maxEnergyJ);
      std::printf("  peak performance %.0f GFLOPs; Ryckbosch EP metric "
                  "%.3f; same-utilization power scatter %.0f%%\n",
                  r.peakGflops, r.ryckboschMetric,
                  100.0 * r.powerScatter.maxResidual);
      bench::printTradeoff("  front trade-off", r.tradeoff);
      bench::printFront("global Pareto front", r.globalFront);
    }
  }
  std::printf(
      "reading: on the CPU the Pareto front is shallow (performance and "
      "energy optima nearly coincide) but the configuration space is "
      "wildly energy-nonproportional — a bad (partitioning, p, t) choice "
      "wastes a large fraction of dynamic energy at the same workload, "
      "which is exactly the Section III theory's prediction for "
      "imbalanced shared-resource utilization.\n");
  return 0;
}
