// Fig 7: energy nonproportionality of the Nvidia K40c for N=8704 and
// N=10240 — full configuration scatter, the single-point global front,
// and the local Pareto fronts with their trade-offs.
#include <iostream>

#include "apps/gpu_matmul_app.hpp"
#include "bench_util.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"

using namespace ep;

int main() {
  bench::printHeader(
      "Fig 7: K40c energy nonproportionality and local Pareto fronts",
      "global front = 1 point (BS=32, performance-opt == energy-opt); "
      "local fronts avg 4 / max 5 points; up to 18% savings at 7% "
      "degradation");

  apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), {});
  core::GpuEpStudy study(app);
  Rng rng(7);

  for (int n : {8704, 10240}) {
    const auto r = study.runWorkload(n, rng);

    Table t({"config", "time [s]", "E_d [J]"});
    t.setTitle("K40c N=" + std::to_string(n) + ": all configurations");
    for (const auto& d : r.data) {
      t.addRow({d.label(), formatDouble(d.time.value(), 3),
                formatDouble(d.dynamicEnergy.value(), 1)});
    }
    t.print(std::cout);

    bench::printFront("global Pareto front (paper: a single point, BS=32)",
                      r.globalFront);
    bench::printFront("local Pareto front (level-2)", r.localFront);
    bench::printTradeoff("global trade-off", r.globalTradeoff);
    if (r.localTradeoff) {
      bench::printTradeoff("local-front trade-off", *r.localTradeoff);
    }
    std::printf("\n");
  }
  return 0;
}
