// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "pareto/point.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::bench {

inline void printHeader(const std::string& what, const std::string& paper) {
  std::printf("================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("paper reports: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

inline void printFront(const std::string& title,
                       const std::vector<pareto::BiPoint>& front) {
  Table t({"config", "time [s]", "dynamic energy [J]"});
  t.setTitle(title);
  for (const auto& p : front) {
    t.addRow({p.label, formatDouble(p.time.value(), 3),
              formatDouble(p.energy.value(), 1)});
  }
  t.print(std::cout);
}

// One measured operating point of a scaling bench, in machine-readable
// form so the perf trajectory can be tracked across PRs.
struct BenchRecord {
  std::string name;         // e.g. "runWorkload/metered"
  int threads = 1;          // pool threads (1 = serial baseline)
  double nsPerOp = 0.0;     // wall nanoseconds per item (config)
  double itemsPerSecond = 0.0;  // configs/s
};

// Write records as `{"bench": ..., "records": [...]}` JSON.  Returns
// false (with a note on stderr) if the file cannot be written.
inline bool writeBenchJson(const std::string& path, const std::string& bench,
                           const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
               bench.c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %d, "
                 "\"ns_per_op\": %.17g, \"configs_per_s\": %.17g}%s\n",
                 r.name.c_str(), r.threads, r.nsPerOp, r.itemsPerSecond,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

// One named scalar of a comparison bench (e.g. per-policy cluster
// energy / p99), for benches whose results are not per-op rates.
struct BenchValue {
  std::string name;  // e.g. "energy/clusterJoules"
  double value = 0.0;
};

// Write values as `{"bench": ..., "values": [...]}` JSON.  Returns
// false (with a note on stderr) if the file cannot be written.
inline bool writeBenchValuesJson(const std::string& path,
                                 const std::string& bench,
                                 const std::vector<BenchValue>& values) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"values\": [\n", bench.c_str());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.17g}%s\n",
                 values[i].name.c_str(), values[i].value,
                 i + 1 < values.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

inline void printTradeoff(const std::string& title,
                          const pareto::Tradeoff& tr) {
  std::printf(
      "%s: perf-opt %s (%.3f s, %.1f J) -> energy-opt %s (%.3f s, %.1f J): "
      "savings %.1f%% at %.1f%% degradation\n",
      title.c_str(), tr.performanceOptimal.label.c_str(),
      tr.performanceOptimal.time.value(),
      tr.performanceOptimal.energy.value(), tr.energyOptimal.label.c_str(),
      tr.energyOptimal.time.value(), tr.energyOptimal.energy.value(),
      100.0 * tr.maxEnergySavings, 100.0 * tr.performanceDegradation);
}

}  // namespace ep::bench
