// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "pareto/point.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::bench {

inline void printHeader(const std::string& what, const std::string& paper) {
  std::printf("================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("paper reports: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

inline void printFront(const std::string& title,
                       const std::vector<pareto::BiPoint>& front) {
  Table t({"config", "time [s]", "dynamic energy [J]"});
  t.setTitle(title);
  for (const auto& p : front) {
    t.addRow({p.label, formatDouble(p.time.value(), 3),
              formatDouble(p.energy.value(), 1)});
  }
  t.print(std::cout);
}

inline void printTradeoff(const std::string& title,
                          const pareto::Tradeoff& tr) {
  std::printf(
      "%s: perf-opt %s (%.3f s, %.1f J) -> energy-opt %s (%.3f s, %.1f J): "
      "savings %.1f%% at %.1f%% degradation\n",
      title.c_str(), tr.performanceOptimal.label.c_str(),
      tr.performanceOptimal.time.value(),
      tr.performanceOptimal.energy.value(), tr.energyOptimal.label.c_str(),
      tr.energyOptimal.time.value(), tr.energyOptimal.energy.value(),
      100.0 * tr.maxEnergySavings, 100.0 * tr.performanceDegradation);
}

}  // namespace ep::bench
