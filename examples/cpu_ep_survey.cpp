// Survey of the multicore CPU's energy proportionality: runs the Fig 3
// threadgroup DGEMM application (really computing, for a small matrix,
// via epblas) and then sweeps the Section III configuration space on the
// simulated Haswell node, reporting the EP metrics of the related-work
// section and the weak-EP verdict.
#include <cstdio>
#include <vector>

#include "apps/cpu_dgemm_app.hpp"
#include "blas/dgemm.hpp"
#include "common/rng.hpp"
#include "core/definitions.hpp"
#include "core/metrics.hpp"
#include "hw/cpu_model.hpp"
#include "hw/spec.hpp"

int main() {
  using namespace ep;

  // 1. The real compute substrate: the Fig 3 decomposition actually
  //    multiplying matrices on host threads.
  {
    const std::size_t n = 512;
    Rng rng(1);
    std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
    for (auto& x : a) x = rng.uniform(-1.0, 1.0);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);
    blas::ThreadgroupConfig cfg;
    cfg.threadgroups = 2;
    cfg.threadsPerGroup = 2;
    blas::ThreadgroupDgemm(cfg).run(n, 1.0, a, b, 0.0, c);
    std::printf("computed a real %zux%zu DGEMM with %zu threadgroups x "
                "%zu threads (Fig 3 decomposition)\n\n",
                n, n, cfg.threadgroups, cfg.threadsPerGroup);
  }

  // 2. The energy study on the simulated dual-socket Haswell.
  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const apps::CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(2);

  for (const auto variant :
       {hw::BlasVariant::IntelMklLike, hw::BlasVariant::OpenBlasLike}) {
    const char* name =
        variant == hw::BlasVariant::IntelMklLike ? "MKL-like" : "OpenBLAS-like";
    const auto points = app.runWorkload(17408, variant, rng);

    std::vector<core::PowerSampleU> samples;
    std::vector<pareto::BiPoint> biPoints;
    for (std::size_t i = 0; i < points.size(); ++i) {
      samples.push_back({points[i].avgUtilizationPct / 100.0,
                         points[i].dynamicPower.value()});
      biPoints.push_back(points[i].toPoint(i));
    }

    const auto weak = core::analyzeWeakEp(biPoints, 0.05);
    const auto scatter = core::analyzeScatter(samples, 10);
    const double ep = core::ryckboschEpMetric(samples);

    std::printf("%s DGEMM, N=17408, %zu configurations:\n", name,
                points.size());
    std::printf("  dynamic energy spread across configs: %.0f%% "
                "(weak EP %s)\n",
                100.0 * weak.spread, weak.holds ? "holds" : "VIOLATED");
    std::printf("  power-vs-utilization: max scatter %.0f%% of bin mean "
                "(non-functional)\n",
                100.0 * scatter.maxResidual);
    std::printf("  Ryckbosch EP metric: %.3f (1.0 = energy proportional)\n\n",
                ep);
  }
  std::printf(
      "conclusion (paper, Section III): the multicore CPU is not energy "
      "proportional — configuration choice changes dynamic energy at "
      "constant workload.\n");
  return 0;
}
