// Bi-objective auto-tuning across workload sizes: for each matrix size,
// find the configuration a user should run under different performance
// budgets — the practical payoff the paper's abstract points to.
//
// Usage: gpu_autotune [k40c|p100]
#include <cstdio>
#include <string>

#include "apps/gpu_matmul_app.hpp"
#include "core/study.hpp"
#include "core/tuner.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

int main(int argc, char** argv) {
  using namespace ep;
  const std::string which = argc > 1 ? argv[1] : "p100";
  const hw::GpuSpec spec =
      which == "k40c" ? hw::nvidiaK40c() : hw::nvidiaP100Pcie();

  apps::GpuMatMulOptions opts;
  opts.useMeter = false;  // tuner sweeps many workloads: model path
  apps::GpuMatMulApp app(hw::GpuModel(spec), opts);
  core::GpuEpStudy study(app);
  Rng rng(7);

  std::printf("auto-tuning %s across workloads\n", spec.name.c_str());
  std::printf("%6s | %-16s | %-26s | %-26s\n", "N", "fastest",
              "best under 5% budget", "best under 11% budget");
  std::printf("-------+------------------+----------------------------+--"
              "--------------------------\n");
  for (int n : {8704, 10240, 12288, 14336, 16384, 18432}) {
    if (!app.model().isLaunchable({n, 32, 1, 1})) continue;
    Rng nRng = rng.fork(static_cast<std::uint64_t>(n));
    const auto data = app.runWorkload(n, nRng);
    const auto points = apps::GpuMatMulApp::toPoints(data);

    const auto fast = core::BiObjectiveTuner(0.0).recommend(points);
    auto describe = [&](double budget) {
      const auto rec = core::BiObjectiveTuner(budget).recommend(points);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s (-%.0f%% E)",
                    rec.recommended.label.c_str(),
                    100.0 * rec.energySavings);
      return std::string(buf);
    };
    std::printf("%6d | %-16s | %-26s | %-26s\n", n,
                fast.performanceOptimal.label.c_str(),
                describe(0.05).c_str(), describe(0.11).c_str());
  }
  std::printf(
      "\nreading: on the %s, tolerating a modest slowdown can cut "
      "dynamic energy dramatically for small/medium workloads — the "
      "bi-objective opportunity of the paper.\n",
      spec.name.c_str());
  return 0;
}
