// Additivity audit: applies the theory of energy predictive models [33]
// to the simulated GPU — runs two base kernels and their compound
// through the functional simulator, audits CUPTI counter additivity
// (including the paper's 32-bit overflow failure mode), and builds a
// linear dynamic-energy model from the surviving counters.
#include <cstdio>
#include <vector>

#include "apps/matmul_kernel.hpp"
#include "common/rng.hpp"
#include "cudasim/device.hpp"
#include "cudasim/executor.hpp"
#include "energymodel/additivity.hpp"
#include "energymodel/linear_model.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

int main() {
  using namespace ep;

  // --- counter additivity on the functional simulator (small N) ---
  cusim::Device device(hw::nvidiaP100Pcie());
  cusim::Executor exec;
  const std::size_t n = 64;
  Rng rng(1);
  std::vector<double> a(n * n), b(n * n);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);

  auto runAndCount = [&](int g, int r) {
    cusim::CuptiCounters counters;
    std::vector<double> c(n * n, 0.0);
    apps::runMatMulKernel(device, exec, {n, 16, g, r}, a, b, c, &counters);
    return counters;
  };
  const auto base1 = runAndCount(1, 1);
  const auto base2 = runAndCount(2, 1);
  const auto compound = runAndCount(3, 1);  // serial: base1 then base2

  std::printf("CUPTI counter additivity audit (N=%zu, functional run):\n",
              n);
  const auto records =
      model::analyzeCounterAdditivity(base1, base2, compound);
  for (const auto& rec : records) {
    std::printf("  %-18s base1=%12llu base2=%12llu compound=%12llu "
                "error=%.2f%%\n",
                rec.event.c_str(),
                static_cast<unsigned long long>(rec.base1),
                static_cast<unsigned long long>(rec.base2),
                static_cast<unsigned long long>(rec.compound),
                100.0 * rec.error);
  }
  const auto additive = model::selectAdditiveEvents(records, 0.01);
  std::printf("additive events (error <= 1%%): %zu of %zu\n\n",
              additive.size(), records.size());

  // --- the paper's CUPTI failure mode for large N ---
  {
    cusim::CuptiCounters big;
    const hw::GpuModel model(hw::nvidiaP100Pcie());
    const auto k = model.modelMatMul({4096, 32, 1, 1});
    big.add(cusim::CuptiEvent::kFlopCountDp, k.flopCount);
    std::printf("at N=4096 the flop_count_dp hardware counter %s "
                "(reported %llu, true %llu)\n\n",
                big.overflowed(cusim::CuptiEvent::kFlopCountDp)
                    ? "OVERFLOWS — the paper's Section V-C observation"
                    : "is exact",
                static_cast<unsigned long long>(
                    big.read(cusim::CuptiEvent::kFlopCountDp)),
                static_cast<unsigned long long>(
                    big.trueValue(cusim::CuptiEvent::kFlopCountDp)));
  }

  // --- linear energy model from (additive) model counters ---
  const hw::GpuModel model(hw::nvidiaK40c());
  model::EnergyPredictiveModel energyModel({"flop_count_dp", "dram_bytes"});
  for (int size : {2048, 3072, 4096, 5120, 6144, 7168, 8192}) {
    for (int bs : {8, 16, 24, 32}) {
      const auto k = model.modelMatMul({size, bs, 1, 1});
      energyModel.addObservation(
          {{static_cast<double>(k.flopCount),
            static_cast<double>(k.dramBytes)},
           k.corePower.value() * k.time.value()});
    }
  }
  const auto report = energyModel.fit();
  std::printf("linear dynamic-energy model on %s (core energy):\n",
              model.spec().name.c_str());
  for (std::size_t i = 0; i < report.variables.size(); ++i) {
    std::printf("  E += %.3e J per %s (corr. with energy: %.2f)\n",
                report.coefficients[i], report.variables[i].c_str(),
                report.correlations[i]);
  }
  std::printf("  R^2 = %.4f\n", report.r2);
  std::printf(
      "\nthe residual unexplained by work-proportional counters is the "
      "energy-nonproportional activity the paper attributes to the "
      "constant-power uncore component.\n");
  return 0;
}
