// Quickstart: measure a few GPU kernel configurations through the
// simulated wall-meter stack, compute the Pareto front of (execution
// time, dynamic energy), and pick a configuration under a performance
// budget.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "apps/gpu_matmul_app.hpp"
#include "core/tuner.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

int main() {
  using namespace ep;

  // 1. Pick a simulated platform from the Table I catalog.
  const hw::GpuModel p100(hw::nvidiaP100Pcie());
  std::printf("platform: %s (%d CUDA cores, %.0f W TDP)\n",
              p100.spec().name.c_str(), p100.spec().cudaCores,
              p100.spec().tdp.value());

  // 2. The Section IV application: G*R matrix products of N x N
  //    matrices, decision variables (BS, G, R).
  apps::GpuMatMulApp app(p100, {});
  Rng rng(42);  // every stochastic element is seeded: runs reproduce

  const int n = 10240;
  std::printf("\nmeasuring all configurations for N=%d "
              "(WattsUp-style meter + 95%% CI protocol)...\n", n);
  const auto data = app.runWorkload(n, rng);
  std::printf("measured %zu configurations\n", data.size());

  // 3. Bi-objective analysis: how much dynamic energy can we save if we
  //    accept at most 12 % slowdown versus the fastest configuration?
  const auto points = apps::GpuMatMulApp::toPoints(data);
  const core::BiObjectiveTuner tuner(0.12);
  const auto rec = tuner.recommend(points);

  std::printf("\nglobal Pareto front (%zu points):\n",
              rec.globalFront.size());
  for (const auto& p : rec.globalFront) {
    std::printf("  %-16s %8.3f s  %9.1f J\n", p.label.c_str(),
                p.time.value(), p.energy.value());
  }
  std::printf("\nperformance-optimal: %s\n",
              rec.performanceOptimal.label.c_str());
  std::printf("recommended under a 12%% budget: %s\n",
              rec.recommended.label.c_str());
  std::printf("  -> saves %.1f%% dynamic energy for %.1f%% slowdown\n",
              100.0 * rec.energySavings,
              100.0 * rec.performanceDegradation);
  return 0;
}
