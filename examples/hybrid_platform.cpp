// Hybrid-platform workload distribution: combine the CPU and both GPU
// models into one heterogeneous platform and use the bi-objective
// partitioner to decide how many matrix products each device should
// get — the [12]-style optimization the paper positions its
// application-level study within.
#include <cstdio>

#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"
#include "partition/partitioner.hpp"

int main() {
  using namespace ep;

  const int n = 8192;               // matrix size per product
  const std::size_t products = 24;  // total workload

  // Profile each device: time/energy as a function of assigned products.
  const hw::GpuModel k40(hw::nvidiaK40c());
  const hw::GpuModel p100(hw::nvidiaP100Pcie());
  const hw::CpuModel cpu(hw::haswellE52670v3());
  hw::CpuDgemmConfig cpuCfg;
  cpuCfg.n = n;
  cpuCfg.threadgroups = 1;
  cpuCfg.threadsPerGroup = 24;
  const auto cpuOne = cpu.modelDgemm(cpuCfg);

  auto gpuProfile = [&](const hw::GpuModel& gpu) {
    return partition::DiscreteProfile::sample(
        gpu.spec().name, products,
        [&](std::size_t k) {
          return gpu.modelMatMul({n, 32, 1, static_cast<int>(k)}).time;
        },
        [&](std::size_t k) {
          return gpu.modelMatMul({n, 32, 1, static_cast<int>(k)})
              .dynamicEnergy();
        });
  };
  const std::vector<partition::DiscreteProfile> profiles{
      partition::DiscreteProfile::sample(
          "CPU", products,
          [&](std::size_t k) {
            return cpuOne.time * static_cast<double>(k);
          },
          [&](std::size_t k) {
            return cpuOne.dynamicEnergy() * static_cast<double>(k);
          }),
      gpuProfile(k40), gpuProfile(p100)};

  const partition::WorkloadPartitioner partitioner(profiles);
  const auto front = partitioner.paretoDistributions(products);

  std::printf("Pareto-optimal distributions of %zu DGEMM products "
              "(N=%d) over CPU + K40c + P100:\n\n",
              products, n);
  std::printf("  %-44s %10s %12s\n", "distribution", "time [s]",
              "energy [J]");
  for (const auto& d : front) {
    std::printf("  %-44s %10.2f %12.0f\n",
                d.describe(profiles).c_str(), d.time.value(),
                d.energy.value());
  }

  const auto balanced = partitioner.balanced(products);
  std::printf("\nnaive balanced split: %s -> %.2f s, %.0f J\n",
              balanced.describe(profiles).c_str(), balanced.time.value(),
              balanced.energy.value());
  const auto fastest = partitioner.fastest(products);
  std::printf("heterogeneity-aware fastest: %s -> %.2f s (%.1fx faster)\n",
              fastest.describe(profiles).c_str(), fastest.time.value(),
              balanced.time.value() / fastest.time.value());
  return 0;
}
