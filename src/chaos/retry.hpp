// Client retry with deterministic exponential backoff + jitter, and the
// retry budget that keeps a retrying client from amplifying an outage.
//
// RetryPolicy is stateless: the delay for (stream, request, attempt) is
// a pure function of the seed, drawn from its own forked Rng stream.
// Two workers replaying the same (request, attempt) pairs therefore
// produce bitwise-identical schedules whether they run serially or in
// parallel — the property test_chaos pins, and what makes a chaoscheck
// campaign reproducible end to end.
//
// RetryBudget is the classic token bucket from SRE practice: every
// first attempt earns `ratio` tokens, every retry spends one.  Under a
// full outage a client retries at most ratio * offered-load — it can
// never multiply traffic into a struggling fleet, no matter how many
// coalesced callers share a key.
#pragma once

#include <atomic>
#include <cstdint>

namespace ep::chaos {

struct RetryPolicy {
  int maxRetries = 0;        // total attempts = 1 + maxRetries
  double baseDelayMs = 1.0;  // delay before retry k grows as 2^k
  double maxDelayMs = 250.0;
  // Fraction of the exponential delay randomized away: the delay is
  // uniform in [(1 - jitter) * d, d], decorrelating synchronized
  // retry waves without ever exceeding the exponential envelope.
  double jitter = 0.5;
  std::uint64_t seed = 0xC4A05EEDULL;
  std::uint64_t streamSalt = 0x4E7B0FFULL;

  // Backoff before attempt `attempt` (1-based: the first *retry*) of
  // request `requestIndex` on client stream `stream`.  Pure function.
  [[nodiscard]] double delayMs(std::uint64_t stream,
                               std::uint64_t requestIndex,
                               int attempt) const;
};

class RetryBudget {
 public:
  // Every first attempt earns `ratio` tokens (capped at `maxTokens`);
  // a retry spends one whole token.  `initialTokens` lets short runs
  // retry at all before any budget accrues.
  explicit RetryBudget(double ratio = 0.2, double maxTokens = 64.0,
                       double initialTokens = 4.0);

  void onAttempt();           // a first attempt: accrue budget
  [[nodiscard]] bool tryRetry();  // spend one token; false = exhausted

  [[nodiscard]] std::uint64_t granted() const {
    return granted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denied() const {
    return denied_.load(std::memory_order_relaxed);
  }

 private:
  // Token count in fixed-point millitokens so accrual/spend are single
  // atomic RMWs shared safely by every worker thread of a client.
  static constexpr std::int64_t kScale = 1000;
  double ratio_;
  std::int64_t maxScaled_;
  std::atomic<std::int64_t> tokensScaled_;
  std::atomic<std::uint64_t> granted_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace ep::chaos
