#include "chaos/chaos_engine.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ep::chaos {

namespace {

// One decision stream per (salt, device, n): whether a key faults is a
// property of the campaign, not of when the broker evaluates it.
double keyDraw(const ChaosEngineOptions& o, std::uint64_t kindSalt,
               serve::Device device, int n) {
  Rng base(o.seed);
  Rng stream = base.fork(
      mix64(mix64(mix64(o.streamSalt, kindSalt),
                  static_cast<std::uint64_t>(device) + 1),
            static_cast<std::uint64_t>(n)));
  return stream.uniform(0.0, 1.0);
}

constexpr std::uint64_t kFailSalt = 0xF417ULL;
constexpr std::uint64_t kHangSalt = 0x8A46ULL;

}  // namespace

ChaosEngine::ChaosEngine(std::shared_ptr<const serve::TuningEngine> inner,
                         ChaosEngineOptions options)
    : inner_(std::move(inner)), options_(options) {}

std::uint64_t ChaosEngine::tuningHash(serve::Device device) const {
  return inner_->tuningHash(device);
}

core::WorkloadResult ChaosEngine::evaluate(serve::Device device, int n,
                                           ThreadPool* pool) const {
  if (crashed_.load(std::memory_order_acquire)) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw EpError("chaos: shard crashed");
  }
  if (options_.failRate > 0.0 &&
      keyDraw(options_, kFailSalt, device, n) < options_.failRate) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw EpError("chaos: injected evaluate failure");
  }
  if (options_.hangRate > 0.0 &&
      keyDraw(options_, kHangSalt, device, n) < options_.hangRate) {
    hangs_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.hangMs));
  }
  return inner_->evaluate(device, n, pool);
}

}  // namespace ep::chaos
