// Server-side chaos: deterministic decisions bound into the
// net::ServerChaosHooks seam.
//
// Every decision is drawn from an Rng stream forked per (connection,
// event index), so with a single event thread and a deterministic
// client schedule, which connections are dropped and which inbound
// chunks are corrupted is a pure function of the campaign seed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chaos/chaos.hpp"
#include "net/server.hpp"

namespace ep::chaos {

class NetChaos {
 public:
  explicit NetChaos(ChaosOptions options);

  // The hooks bind `this`; the NetChaos must outlive the server.
  [[nodiscard]] net::ServerChaosHooks hooks();

  [[nodiscard]] ChaosCounts counts() const;

 private:
  bool decideAccept(std::uint64_t conn);
  bool decideInbound(std::uint64_t conn, std::string& bytes);

  ChaosOptions options_;
  mutable std::mutex mu_;
  // Per-connection inbound chunk index: the stream key for chunk k of
  // connection c never depends on what other connections are doing.
  std::unordered_map<std::uint64_t, std::uint64_t> chunkIndex_;
  ChaosCounts counts_;
};

}  // namespace ep::chaos
