#include "chaos/net_chaos.hpp"

#include "common/rng.hpp"

namespace ep::chaos {

namespace {
constexpr std::uint64_t kAcceptSalt = 0xACCE97ULL;
constexpr std::uint64_t kInboundSalt = 0x14B0D4ULL;
}  // namespace

NetChaos::NetChaos(ChaosOptions options) : options_(options) {}

net::ServerChaosHooks NetChaos::hooks() {
  net::ServerChaosHooks h;
  if (!options_.enabled) return h;  // empty hooks: server skips them
  if (options_.acceptDropRate > 0.0) {
    h.dropOnAccept = [this](std::uint64_t conn) {
      return decideAccept(conn);
    };
  }
  if (options_.inboundCorruptRate > 0.0) {
    h.onInbound = [this](std::uint64_t conn, std::string& bytes) {
      return decideInbound(conn, bytes);
    };
  }
  return h;
}

ChaosCounts NetChaos::counts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_;
}

bool NetChaos::decideAccept(std::uint64_t conn) {
  Rng stream = Rng(options_.seed).fork(
      mix64(mix64(options_.streamSalt, kAcceptSalt), conn));
  if (stream.uniform(0.0, 1.0) >= options_.acceptDropRate) return false;
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_.acceptDrops;
  return true;
}

bool NetChaos::decideInbound(std::uint64_t conn, std::string& bytes) {
  std::uint64_t k = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    k = chunkIndex_[conn]++;
  }
  Rng stream = Rng(options_.seed).fork(
      mix64(mix64(mix64(options_.streamSalt, kInboundSalt), conn), k));
  if (stream.uniform(0.0, 1.0) >= options_.inboundCorruptRate) return false;
  if (!bytes.empty()) {
    const std::uint64_t at =
        stream.uniformInt(0, static_cast<std::uint64_t>(bytes.size()) - 1);
    bytes[static_cast<std::size_t>(at)] =
        static_cast<char>(bytes[static_cast<std::size_t>(at)] ^ 0x5A);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.inboundCorruptions;
  }
  return true;
}

}  // namespace ep::chaos
