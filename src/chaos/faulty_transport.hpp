// Client-side transport chaos: a blocking request/response socket that
// injects connection resets, torn frames, corrupted EPB1 varints and
// send stalls between a real client and a real net::Server — then
// transparently reconnects and replays, so a campaign exercises the
// server's disconnect/protocol-error paths without ever wedging the
// client.
//
// Fault decisions are drawn per (stream, request, attempt) from forked
// Rng streams: N workers each owning one FaultyTransport produce the
// same fault schedule whether they run serially or concurrently, which
// is what makes a chaoscheck campaign bitwise-reproducible.
//
// Injected faults are replayed internally (they are *transport* faults;
// the request was never served).  Served error responses — including
// the server's bad_request answer to a corrupted frame — are returned
// to the caller, whose RetryPolicy/RetryBudget decides what to do next.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/chaos.hpp"

namespace ep::chaos {

struct FaultyTransportOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // EPB1 framing: the transport sends the magic on every (re)connect
  // and parses varint-framed responses; otherwise line JSON.
  bool binary = false;
  // Replay ceiling for injected/consequential transport faults; hitting
  // it returns ok=false (never hangs, never loops forever).
  int maxAttempts = 16;
  // Socket receive timeout; a server that never answers is a transport
  // fault, not a hang.
  double recvTimeoutMs = 5000.0;
  ChaosOptions chaos{};
};

class FaultyTransport {
 public:
  // `stream` decorrelates fault schedules of concurrent clients.
  FaultyTransport(FaultyTransportOptions options, std::uint64_t stream);
  ~FaultyTransport();

  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  struct Outcome {
    bool ok = false;          // a complete response arrived
    std::string body;         // JSON text (no '\n') / frame body sans opcode
    std::uint8_t opcode = 0;  // binary mode: response opcode
    int attempts = 0;         // transport attempts consumed
    int faultsInjected = 0;   // faults injected across those attempts
  };

  // One framed request (JSON line incl. '\n', or one EPB1 frame without
  // the connection magic) -> one response.
  [[nodiscard]] Outcome roundTrip(const std::string& framed,
                                  std::uint64_t requestIndex);

  [[nodiscard]] const ChaosCounts& counts() const { return counts_; }

 private:
  enum class Fault { None, Reset, Torn, Corrupt, Stall };

  Fault decide(std::uint64_t requestIndex, int attempt);
  bool ensureConnected();
  void closeSock();
  bool sendAll(const char* p, std::size_t n);
  bool readLine(std::string* line);
  bool readFrame(std::string* payload);

  FaultyTransportOptions options_;
  std::uint64_t stream_;
  int fd_ = -1;
  std::string rbuf_;
  ChaosCounts counts_;
};

}  // namespace ep::chaos
