#include "chaos/chaos.hpp"

#include <sstream>

namespace ep::chaos {

ChaosOptions ChaosOptions::campaign(double rate) {
  ChaosOptions o;
  o.enabled = rate > 0.0;
  o.connectResetRate = rate * 0.40;
  o.tornFrameRate = rate * 0.25;
  o.corruptFrameRate = rate * 0.20;
  o.stallRate = rate * 0.15;
  o.stallMs = 1.0;
  o.acceptDropRate = rate * 0.30;
  o.inboundCorruptRate = rate * 0.20;
  return o;
}

ChaosCounts& ChaosCounts::operator+=(const ChaosCounts& o) {
  connectResets += o.connectResets;
  tornFrames += o.tornFrames;
  corruptedFrames += o.corruptedFrames;
  stalls += o.stalls;
  acceptDrops += o.acceptDrops;
  inboundCorruptions += o.inboundCorruptions;
  engineFailures += o.engineFailures;
  engineHangs += o.engineHangs;
  return *this;
}

std::string ChaosCounts::summary() const {
  std::ostringstream os;
  os << "resets=" << connectResets << " torn=" << tornFrames
     << " corrupted=" << corruptedFrames << " stalls=" << stalls
     << " accept_drops=" << acceptDrops
     << " inbound_corruptions=" << inboundCorruptions
     << " engine_failures=" << engineFailures
     << " engine_hangs=" << engineHangs << " total=" << total();
  return os.str();
}

}  // namespace ep::chaos
