#include "chaos/retry.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ep::chaos {

double RetryPolicy::delayMs(std::uint64_t stream, std::uint64_t requestIndex,
                            int attempt) const {
  if (attempt <= 0) return 0.0;
  double envelope = baseDelayMs;
  for (int k = 1; k < attempt; ++k) {
    envelope *= 2.0;
    if (envelope >= maxDelayMs) break;
  }
  envelope = std::min(envelope, maxDelayMs);
  // One fork per (stream, request, attempt): the draw depends on the
  // identity of the retry, never on scheduling order.
  Rng rng(seed);
  Rng stream_rng = rng.fork(
      mix64(mix64(mix64(streamSalt, stream), requestIndex),
            static_cast<std::uint64_t>(attempt)));
  const double u = stream_rng.uniform(0.0, 1.0);
  return envelope * (1.0 - jitter * u);
}

RetryBudget::RetryBudget(double ratio, double maxTokens, double initialTokens)
    : ratio_(ratio),
      maxScaled_(static_cast<std::int64_t>(maxTokens * kScale)),
      tokensScaled_(static_cast<std::int64_t>(
          std::min(initialTokens, maxTokens) * kScale)) {}

void RetryBudget::onAttempt() {
  const auto earn = static_cast<std::int64_t>(ratio_ * kScale);
  std::int64_t cur = tokensScaled_.load(std::memory_order_relaxed);
  while (true) {
    const std::int64_t next = std::min(cur + earn, maxScaled_);
    if (tokensScaled_.compare_exchange_weak(cur, next,
                                            std::memory_order_relaxed)) {
      return;
    }
  }
}

bool RetryBudget::tryRetry() {
  std::int64_t cur = tokensScaled_.load(std::memory_order_relaxed);
  while (cur >= kScale) {
    if (tokensScaled_.compare_exchange_weak(cur, cur - kScale,
                                            std::memory_order_relaxed)) {
      granted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  denied_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace ep::chaos
