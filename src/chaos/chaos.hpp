// epchaos — deterministic fault injection for the serving fleet.
//
// PR 4's epfault hardened the *measurement* pipeline against faulty
// meters; this library applies the same design to the net/fleet path:
// connection resets, torn frames, corrupted EPB1 varints, stalled
// sockets, and whole-shard crash/hang, every decision drawn from an
// ep::Rng stream forked off a campaign seed.  A campaign with a fixed
// seed is bit-for-bit reproducible at any thread count, which is what
// lets chaoscheck assert "degrades predictably" instead of "usually
// survives".
//
// The pieces (each in its own header):
//   FaultyTransport  client-side socket wrapper injecting transport
//                    faults between a real client and a real server.
//   NetChaos         server-side decision engine bound into the
//                    net::ServerChaosHooks test seam.
//   ChaosEngine      TuningEngine decorator injecting evaluate()
//                    failures, hangs and whole-shard crashes.
//   RetryPolicy      seeded exponential-backoff-with-jitter schedules
//                    plus client retry budgets (retry.hpp).
#pragma once

#include <cstdint>
#include <string>

namespace ep::chaos {

struct ChaosOptions {
  bool enabled = false;

  // Campaign seed; every injection stream is forked off this.
  std::uint64_t seed = 0xC4A05EEDULL;

  // Client-transport faults (FaultyTransport), decided per attempt:
  double connectResetRate = 0.0;  // close instead of sending (peer: reset)
  double tornFrameRate = 0.0;     // send a strict prefix, then close
  double corruptFrameRate = 0.0;  // flip a byte in the EPB1 length varint
  double stallRate = 0.0;         // delay before sending (stalled socket)
  double stallMs = 2.0;

  // Server-side faults (NetChaos -> net::ServerChaosHooks):
  double acceptDropRate = 0.0;     // close a connection right after accept
  double inboundCorruptRate = 0.0; // flip a byte in one inbound chunk

  // Salt of the injection streams; distinct consumers over the same
  // seed stay decorrelated with distinct salts.
  std::uint64_t streamSalt = 0xC4405A17ULL;

  // The scripted campaign shape used by tools/chaoscheck and the tests:
  // `rate` is the total per-request transport-fault probability, split
  // across the fault kinds; server-side faults run at half that rate so
  // a campaign exercises both seams without doubling the error budget.
  [[nodiscard]] static ChaosOptions campaign(double rate);
};

// Injection tally of one chaos component (transport, server hook, or
// engine decorator); aggregated by chaoscheck for the campaign report.
struct ChaosCounts {
  std::uint64_t connectResets = 0;
  std::uint64_t tornFrames = 0;
  std::uint64_t corruptedFrames = 0;
  std::uint64_t stalls = 0;
  std::uint64_t acceptDrops = 0;
  std::uint64_t inboundCorruptions = 0;
  std::uint64_t engineFailures = 0;
  std::uint64_t engineHangs = 0;

  [[nodiscard]] std::uint64_t total() const {
    return connectResets + tornFrames + corruptedFrames + stalls +
           acceptDrops + inboundCorruptions + engineFailures + engineHangs;
  }
  ChaosCounts& operator+=(const ChaosCounts& o);
  [[nodiscard]] std::string summary() const;
};

}  // namespace ep::chaos
