#include "chaos/faulty_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "net/frame.hpp"

namespace ep::chaos {

namespace {
constexpr std::uint64_t kTransportSalt = 0x7A4590ULL;
}  // namespace

FaultyTransport::FaultyTransport(FaultyTransportOptions options,
                                 std::uint64_t stream)
    : options_(std::move(options)), stream_(stream) {}

FaultyTransport::~FaultyTransport() { closeSock(); }

FaultyTransport::Fault FaultyTransport::decide(std::uint64_t requestIndex,
                                               int attempt) {
  const ChaosOptions& c = options_.chaos;
  if (!c.enabled) return Fault::None;
  Rng stream = Rng(c.seed).fork(
      mix64(mix64(mix64(mix64(c.streamSalt, kTransportSalt), stream_),
                  requestIndex),
            static_cast<std::uint64_t>(attempt)));
  double u = stream.uniform(0.0, 1.0);
  if (u < c.connectResetRate) return Fault::Reset;
  u -= c.connectResetRate;
  if (u < c.tornFrameRate) return Fault::Torn;
  u -= c.tornFrameRate;
  if (u < c.corruptFrameRate) return Fault::Corrupt;
  u -= c.corruptFrameRate;
  if (u < c.stallRate) return Fault::Stall;
  return Fault::None;
}

bool FaultyTransport::ensureConnected() {
  if (fd_ >= 0) return true;
  rbuf_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (options_.recvTimeoutMs > 0.0) {
    timeval tv{};
    const auto totalUs = static_cast<long>(options_.recvTimeoutMs * 1000.0);
    tv.tv_sec = totalUs / 1000000;
    tv.tv_usec = totalUs % 1000000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  fd_ = fd;
  if (options_.binary) {
    if (!sendAll(net::kMagic, sizeof net::kMagic)) {
      closeSock();
      return false;
    }
  }
  return true;
}

void FaultyTransport::closeSock() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool FaultyTransport::sendAll(const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool FaultyTransport::readLine(std::string* line) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      *line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF, reset, or receive timeout
    }
    rbuf_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool FaultyTransport::readFrame(std::string* payload) {
  for (;;) {
    std::uint64_t len = 0;
    const int used = net::readVarint(rbuf_.data(), rbuf_.size(), &len);
    if (used < 0) return false;  // the server never sends malformed frames
    if (used > 0 && rbuf_.size() >= static_cast<std::size_t>(used) + len) {
      *payload = rbuf_.substr(static_cast<std::size_t>(used),
                              static_cast<std::size_t>(len));
      rbuf_.erase(0, static_cast<std::size_t>(used) + len);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;
    }
    rbuf_.append(chunk, static_cast<std::size_t>(got));
  }
}

FaultyTransport::Outcome FaultyTransport::roundTrip(
    const std::string& framed, std::uint64_t requestIndex) {
  Outcome out;
  for (int attempt = 0; attempt < options_.maxAttempts; ++attempt) {
    ++out.attempts;
    const Fault fault = decide(requestIndex, attempt);
    if (!ensureConnected()) {
      // Connect refused/failed: nothing to replay against; brief pause
      // so a restarting server gets a chance.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (fault == Fault::Reset) {
      ++counts_.connectResets;
      ++out.faultsInjected;
      closeSock();
      continue;
    }
    if (fault == Fault::Stall) {
      ++counts_.stalls;
      ++out.faultsInjected;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options_.chaos.stallMs));
    }
    if (fault == Fault::Torn) {
      ++counts_.tornFrames;
      ++out.faultsInjected;
      const std::size_t half = framed.size() > 1 ? framed.size() / 2 : 0;
      if (half > 0) (void)sendAll(framed.data(), half);
      closeSock();  // the server discards the partial frame on EOF
      continue;
    }
    std::string wire = framed;
    bool corrupted = false;
    if (fault == Fault::Corrupt && !wire.empty()) {
      ++counts_.corruptedFrames;
      ++out.faultsInjected;
      corrupted = true;
      if (options_.binary) {
        // A length varint that never terminates: eleven continuation
        // bytes exceed the ten-byte varint ceiling, so the decoder
        // rejects it immediately (no ambiguity, no buffering a bogus
        // declared length) and the server answers bad_request + close.
        wire.assign(11, static_cast<char>(0x80));
        wire += framed;
      } else {
        // Break the line's first byte so the JSON parser rejects it.
        wire[0] = static_cast<char>(wire[0] ^ 0x80);
      }
    }
    if (!sendAll(wire.data(), wire.size())) {
      closeSock();
      continue;  // connection died under us: replay
    }
    std::string body;
    if (options_.binary) {
      std::string payload;
      if (!readFrame(&payload) || payload.empty()) {
        closeSock();
        continue;
      }
      out.opcode = static_cast<std::uint8_t>(payload[0]);
      body = payload.substr(1);
    } else {
      if (!readLine(&body)) {
        closeSock();
        continue;
      }
    }
    if (corrupted) {
      // The response answers our own injected corruption, not the
      // request; the server also closes a broken-framing connection.
      closeSock();
      continue;
    }
    out.ok = true;
    out.body = std::move(body);
    return out;
  }
  return out;
}

}  // namespace ep::chaos
