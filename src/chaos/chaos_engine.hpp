// TuningEngine decorator injecting compute-side faults: sporadic
// evaluate() failures, slow evaluations (hangs), and whole-shard
// crash/hang toggled at runtime — the shard-level analogue of PR 4's
// FaultyMeter.
//
// tuningHash() delegates to the inner engine on purpose: a chaotic
// engine computes the *same* results as a clean one when it does not
// fault, so shards sharing the inner engine keep one cache identity and
// replica stale-serving across shards stays exercised under chaos.
//
// Sporadic decisions are drawn per (device, n) from forked Rng streams,
// so which keys fault is a pure function of the campaign seed — not of
// request interleaving — keeping campaigns reproducible at any thread
// count.  crash() flips an atomic consulted by every evaluate(): the
// drill path for "shard dies, breaker opens, health probes eject it,
// recovery reinstates it".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/engine.hpp"

namespace ep::chaos {

struct ChaosEngineOptions {
  // Probability that a given (device, n) study key always fails.
  double failRate = 0.0;
  // Probability that a given (device, n) study key is slow, sleeping
  // hangMs before delegating (models a hung kernel, not a crash).
  double hangRate = 0.0;
  double hangMs = 50.0;
  std::uint64_t seed = 0xC4A05EEDULL;
  std::uint64_t streamSalt = 0x5AADE9ULL;
};

class ChaosEngine : public serve::TuningEngine {
 public:
  explicit ChaosEngine(std::shared_ptr<const serve::TuningEngine> inner,
                       ChaosEngineOptions options = {});

  [[nodiscard]] std::uint64_t tuningHash(serve::Device device) const override;
  [[nodiscard]] core::WorkloadResult evaluate(
      serve::Device device, int n, ThreadPool* pool = nullptr) const override;

  // Whole-shard crash: every evaluate() throws until recover().
  void crash() { crashed_.store(true, std::memory_order_release); }
  void recover() { crashed_.store(false, std::memory_order_release); }
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t failuresInjected() const {
    return failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hangsInjected() const {
    return hangs_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const serve::TuningEngine> inner_;
  ChaosEngineOptions options_;
  std::atomic<bool> crashed_{false};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable std::atomic<std::uint64_t> hangs_{0};
};

}  // namespace ep::chaos
