// Pearson's chi-squared goodness-of-fit test against a normal population,
// used by the measurement protocol to validate the t-test assumptions
// (as the paper does).
#pragma once

#include <cstddef>
#include <span>

namespace ep::stats {

struct ChiSquaredResult {
  double statistic = 0.0;
  double dof = 0.0;
  double pValue = 1.0;
  bool rejected = false;  // true if normality rejected at alpha
  std::size_t bins = 0;
};

// Bins the sample into equiprobable cells under N(mean, sd) fitted from
// the data and compares observed vs expected counts.  Needs n >= 8;
// smaller samples return a non-rejecting result with dof == 0 (the test
// has no power there, matching standard practice).
[[nodiscard]] ChiSquaredResult pearsonNormalityTest(std::span<const double> xs,
                                                    double alpha = 0.05);

// Generic Pearson goodness-of-fit: observed counts vs expected counts.
// dofReduction = number of parameters estimated from the data + 1.
[[nodiscard]] ChiSquaredResult pearsonGoodnessOfFit(
    std::span<const double> observed, std::span<const double> expected,
    std::size_t dofReduction, double alpha = 0.05);

}  // namespace ep::stats
