#include "stats/regression.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace ep::stats {

namespace {

double rSquared(std::span<const double> y,
                const std::vector<double>& predictions) {
  const double yMean = mean(y);
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ssRes += (y[i] - predictions[i]) * (y[i] - predictions[i]);
    ssTot += (y[i] - yMean) * (y[i] - yMean);
  }
  if (ssTot == 0.0) return ssRes == 0.0 ? 1.0 : 0.0;
  return 1.0 - ssRes / ssTot;
}

// Solve A x = b in-place, A is n x n row-major, partial pivoting.
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    EP_REQUIRE(std::fabs(a[pivot][col]) > 1e-12,
               "singular system in regression (collinear regressors?)");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

}  // namespace

LinearFit fitLinear(std::span<const double> x, std::span<const double> y) {
  EP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  EP_REQUIRE(x.size() >= 2, "linear fit needs n >= 2");
  const double xm = mean(x);
  const double ym = mean(y);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - xm) * (x[i] - xm);
    sxy += (x[i] - xm) * (y[i] - ym);
  }
  EP_REQUIRE(sxx > 0.0, "x must not be constant");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = ym - f.slope * xm;
  std::vector<double> pred(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) pred[i] = f.predict(x[i]);
  f.r2 = rSquared(y, pred);
  return f;
}

LinearFit fitProportional(std::span<const double> x,
                          std::span<const double> y) {
  EP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  EP_REQUIRE(!x.empty(), "proportional fit needs n >= 1");
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  EP_REQUIRE(sxx > 0.0, "x must not be all zero");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = 0.0;
  std::vector<double> pred(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) pred[i] = f.predict(x[i]);
  f.r2 = rSquared(y, pred);
  return f;
}

double MultiLinearFit::predict(std::span<const double> x) const {
  EP_REQUIRE(x.size() == coefficients.size(),
             "predict: regressor count mismatch");
  double s = intercept;
  for (std::size_t i = 0; i < x.size(); ++i) s += coefficients[i] * x[i];
  return s;
}

MultiLinearFit fitMultiLinear(const std::vector<std::vector<double>>& rows,
                              std::span<const double> y, bool withIntercept) {
  EP_REQUIRE(rows.size() == y.size(), "rows/y size mismatch");
  EP_REQUIRE(!rows.empty(), "regression needs observations");
  const std::size_t k = rows.front().size();
  EP_REQUIRE(k >= 1, "regression needs at least one regressor");
  for (const auto& r : rows) {
    EP_REQUIRE(r.size() == k, "ragged design matrix");
  }
  const std::size_t p = k + (withIntercept ? 1 : 0);
  EP_REQUIRE(rows.size() >= p, "not enough observations for parameters");

  // Build X'X and X'y where columns are [regressors..., 1?].
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  auto colValue = [&](const std::vector<double>& row, std::size_t c) {
    return c < k ? row[c] : 1.0;
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const double va = colValue(rows[i], a);
      xty[a] += va * y[i];
      for (std::size_t b = 0; b < p; ++b) {
        xtx[a][b] += va * colValue(rows[i], b);
      }
    }
  }
  const std::vector<double> beta = solveLinearSystem(std::move(xtx),
                                                     std::move(xty));
  MultiLinearFit f;
  f.coefficients.assign(beta.begin(), beta.begin() + static_cast<long>(k));
  f.intercept = withIntercept ? beta[k] : 0.0;
  std::vector<double> pred(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    pred[i] = f.predict(rows[i]);
  }
  f.r2 = rSquared(y, pred);
  return f;
}

double pearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  EP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  EP_REQUIRE(x.size() >= 2, "correlation needs n >= 2");
  const double xm = mean(x);
  const double ym = mean(y);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - xm) * (x[i] - xm);
    syy += (y[i] - ym) * (y[i] - ym);
    sxy += (x[i] - xm) * (y[i] - ym);
  }
  EP_REQUIRE(sxx > 0.0 && syy > 0.0,
             "correlation undefined for constant series");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ep::stats
