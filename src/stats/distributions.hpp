// Probability distributions needed by the paper's measurement methodology:
// Student's t (confidence intervals), the normal distribution, and the
// chi-squared distribution (Pearson goodness-of-fit).  Implemented from
// the regularized incomplete beta/gamma functions.
#pragma once

namespace ep::stats {

// Regularized incomplete beta function I_x(a, b), x in [0,1], a,b > 0.
[[nodiscard]] double regularizedIncompleteBeta(double a, double b, double x);

// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
[[nodiscard]] double regularizedLowerGamma(double a, double x);

// Standard normal CDF.
[[nodiscard]] double normalCdf(double z);

// Student's t CDF with `dof` degrees of freedom.
[[nodiscard]] double studentTCdf(double t, double dof);

// Two-sided critical value t* such that P(|T| <= t*) = confidence
// (e.g. confidence = 0.95).  dof >= 1.
[[nodiscard]] double studentTCritical(double confidence, double dof);

// Chi-squared CDF with `dof` degrees of freedom.
[[nodiscard]] double chiSquaredCdf(double x, double dof);

// Upper-tail critical value c such that P(X > c) = alpha for chi-squared
// with `dof` degrees of freedom.
[[nodiscard]] double chiSquaredCritical(double alpha, double dof);

}  // namespace ep::stats
