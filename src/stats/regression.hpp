// Least-squares regression and correlation.
//
// Used for: (a) the strong-EP linearity test of Fig 1 (how well does
// E_d = c.W fit?), (b) trend lines in Fig 4, and (c) the linear energy
// predictive models built on CUPTI-sim counters (epmodel).
#pragma once

#include <span>
#include <vector>

namespace ep::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
  [[nodiscard]] double predict(double x) const {
    return intercept + slope * x;
  }
};

// Ordinary least squares y = a + b x.  Needs n >= 2 and non-constant x.
[[nodiscard]] LinearFit fitLinear(std::span<const double> x,
                                  std::span<const double> y);

// OLS through the origin, y = b x (the strong-EP hypothesis E_d = c.W).
[[nodiscard]] LinearFit fitProportional(std::span<const double> x,
                                        std::span<const double> y);

struct MultiLinearFit {
  std::vector<double> coefficients;  // beta[0..k-1], one per regressor
  double intercept = 0.0;
  double r2 = 0.0;
  [[nodiscard]] double predict(std::span<const double> x) const;
};

// Multiple linear regression via normal equations (Gaussian elimination
// with partial pivoting).  rows = observations; each row has k regressors.
// If withIntercept is false the model is forced through the origin —
// required for physically meaningful energy models (zero work => zero
// dynamic energy; see the theory of energy predictive models [33]).
[[nodiscard]] MultiLinearFit fitMultiLinear(
    const std::vector<std::vector<double>>& rows, std::span<const double> y,
    bool withIntercept = true);

// Pearson correlation coefficient.
[[nodiscard]] double pearsonCorrelation(std::span<const double> x,
                                        std::span<const double> y);

}  // namespace ep::stats
