// The paper's measurement methodology:
//
//   "the application is run repeatedly until the sample mean lies in the
//    95% confidence interval and a precision of 0.025 (2.5%) is achieved.
//    For this purpose, Student's t-test is used [...]  The validity of
//    these assumptions is verified using Pearson's chi-squared test."
//
// MeasurementProtocol drives any callable producing one observation per
// repetition through exactly this loop and reports the accepted mean,
// the achieved precision, and the normality-check outcome.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stats/chisq.hpp"

namespace ep::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double halfWidth = 0.0;  // t* . s / sqrt(n)
  [[nodiscard]] double lower() const { return mean - halfWidth; }
  [[nodiscard]] double upper() const { return mean + halfWidth; }
  // Relative precision: halfWidth / |mean| (inf when mean == 0).
  [[nodiscard]] double precision() const;
};

// Two-sided CI for the mean of `xs` at `confidence` using Student's t.
[[nodiscard]] ConfidenceInterval meanConfidenceInterval(
    std::span<const double> xs, double confidence);

struct MeasurementOptions {
  double confidence = 0.95;
  double precision = 0.025;     // paper: 2.5 %
  std::size_t minRepetitions = 5;
  std::size_t maxRepetitions = 1000;
  bool runNormalityCheck = true;
  double normalityAlpha = 0.05;
};

struct MeasurementResult {
  double mean = 0.0;
  ConfidenceInterval interval;
  std::size_t repetitions = 0;
  bool converged = false;
  std::vector<double> samples;
  // Present when options.runNormalityCheck and enough samples were drawn.
  bool normalityChecked = false;
  ChiSquaredResult normality;
};

// Welch's two-sample t-test (unequal variances): is the mean of `a`
// different from the mean of `b`?  Used by the tuner layer to decide
// whether one configuration is *significantly* faster/cheaper than
// another given measurement noise.
struct WelchResult {
  double statistic = 0.0;
  double dof = 0.0;       // Welch-Satterthwaite
  double pValue = 1.0;    // two-sided
  bool significant = false;
  double meanDifference = 0.0;  // mean(a) - mean(b)
};

[[nodiscard]] WelchResult welchTTest(std::span<const double> a,
                                     std::span<const double> b,
                                     double alpha = 0.05);

class MeasurementProtocol {
 public:
  explicit MeasurementProtocol(MeasurementOptions options = {});

  // Repeatedly invokes `observe` until the CI criterion is met.
  // Throws ConvergenceError if maxRepetitions is hit first.
  [[nodiscard]] MeasurementResult run(
      const std::function<double()>& observe) const;

  // Like run(), but returns a non-converged result instead of throwing.
  [[nodiscard]] MeasurementResult runBestEffort(
      const std::function<double()>& observe) const;

  [[nodiscard]] const MeasurementOptions& options() const { return options_; }

 private:
  [[nodiscard]] MeasurementResult loop(const std::function<double()>& observe,
                                       bool throwOnFailure) const;

  MeasurementOptions options_;
};

}  // namespace ep::stats
