#include "stats/distributions.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ep::stats {

namespace {

// glibc's lgamma() writes the global `signgam`, so concurrent calls are
// a data race once config evaluations run on the thread pool.  Every
// call site here passes a strictly positive argument, so the sign is
// always +1 and the reentrant variant (which produces bit-identical
// values and writes the sign to a local) is a drop-in replacement.
double logGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Continued-fraction evaluation for the incomplete beta function
// (Lentz's method, as in Numerical Recipes' betacf).
double betaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  throw ep::ConvergenceError("incomplete beta continued fraction diverged");
}

// Series expansion of P(a, x) for x < a + 1.
double gammaSeries(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 1; n <= kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - logGamma(a));
    }
  }
  throw ep::ConvergenceError("incomplete gamma series diverged");
}

// Continued fraction of Q(a, x) for x >= a + 1.
double gammaContinuedFraction(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      return h * std::exp(-x + a * std::log(x) - logGamma(a));
    }
  }
  throw ep::ConvergenceError("incomplete gamma continued fraction diverged");
}

}  // namespace

double regularizedIncompleteBeta(double a, double b, double x) {
  EP_REQUIRE(a > 0.0 && b > 0.0, "beta parameters must be positive");
  EP_REQUIRE(x >= 0.0 && x <= 1.0, "beta argument must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double lnFront = logGamma(a + b) - logGamma(a) - logGamma(b) +
                         a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(lnFront);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double regularizedLowerGamma(double a, double x) {
  EP_REQUIRE(a > 0.0, "gamma shape must be positive");
  EP_REQUIRE(x >= 0.0, "gamma argument must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gammaSeries(a, x);
  return 1.0 - gammaContinuedFraction(a, x);
}

double normalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double studentTCdf(double t, double dof) {
  EP_REQUIRE(dof > 0.0, "degrees of freedom must be positive");
  if (t == 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * regularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double studentTCritical(double confidence, double dof) {
  EP_REQUIRE(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0,1)");
  EP_REQUIRE(dof >= 1.0, "degrees of freedom must be >= 1");
  // P(|T| <= t*) = confidence  <=>  CDF(t*) = (1 + confidence) / 2.
  const double target = 0.5 * (1.0 + confidence);
  double lo = 0.0;
  double hi = 1.0;
  while (studentTCdf(hi, dof) < target) {
    hi *= 2.0;
    EP_REQUIRE(hi < 1e12, "t critical value out of range");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (studentTCdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double chiSquaredCdf(double x, double dof) {
  EP_REQUIRE(dof > 0.0, "degrees of freedom must be positive");
  if (x <= 0.0) return 0.0;
  return regularizedLowerGamma(dof / 2.0, x / 2.0);
}

double chiSquaredCritical(double alpha, double dof) {
  EP_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const double target = 1.0 - alpha;
  double lo = 0.0;
  double hi = std::max(1.0, dof);
  while (chiSquaredCdf(hi, dof) < target) {
    hi *= 2.0;
    EP_REQUIRE(hi < 1e12, "chi-squared critical value out of range");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chiSquaredCdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace ep::stats
