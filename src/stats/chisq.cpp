#include "stats/chisq.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace ep::stats {

ChiSquaredResult pearsonGoodnessOfFit(std::span<const double> observed,
                                      std::span<const double> expected,
                                      std::size_t dofReduction, double alpha) {
  EP_REQUIRE(observed.size() == expected.size(),
             "observed/expected size mismatch");
  EP_REQUIRE(observed.size() > dofReduction,
             "not enough cells for requested dof reduction");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EP_REQUIRE(expected[i] > 0.0, "expected counts must be positive");
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  ChiSquaredResult r;
  r.statistic = stat;
  r.bins = observed.size();
  r.dof = static_cast<double>(observed.size() - dofReduction);
  r.pValue = 1.0 - chiSquaredCdf(stat, r.dof);
  r.rejected = r.pValue < alpha;
  return r;
}

ChiSquaredResult pearsonNormalityTest(std::span<const double> xs,
                                      double alpha) {
  ChiSquaredResult r;
  if (xs.size() < 8) {
    // Too small for a meaningful goodness-of-fit partition.
    r.bins = 0;
    r.dof = 0.0;
    r.pValue = 1.0;
    r.rejected = false;
    return r;
  }
  const double m = mean(xs);
  const double sd = sampleStddev(xs);
  if (sd == 0.0) {
    // Degenerate (noise-free) sample: nothing to reject.
    r.pValue = 1.0;
    r.rejected = false;
    return r;
  }
  // Equiprobable binning: k ~ max(4, floor(n/5)) cells capped at 12 keeps
  // expected counts >= ~5 for the sample sizes the protocol produces.
  const std::size_t k = std::clamp<std::size_t>(xs.size() / 5, 4, 12);
  std::vector<double> boundaries(k - 1);
  for (std::size_t i = 1; i < k; ++i) {
    // Inverse-normal via bisection on normalCdf.
    const double p = static_cast<double>(i) / static_cast<double>(k);
    double lo = -12.0, hi = 12.0;
    for (int it = 0; it < 100; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (normalCdf(mid) < p) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    boundaries[i - 1] = m + sd * 0.5 * (lo + hi);
  }
  std::vector<double> observed(k, 0.0);
  for (double x : xs) {
    const auto it =
        std::upper_bound(boundaries.begin(), boundaries.end(), x);
    observed[static_cast<std::size_t>(it - boundaries.begin())] += 1.0;
  }
  const double expectedPerBin =
      static_cast<double>(xs.size()) / static_cast<double>(k);
  std::vector<double> expected(k, expectedPerBin);
  // dofReduction = 3: two estimated parameters (mean, sd) plus one for the
  // count constraint.
  return pearsonGoodnessOfFit(observed, expected, 3, alpha);
}

}  // namespace ep::stats
