#include "stats/ttest.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace ep::stats {

double ConfidenceInterval::precision() const {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return halfWidth / std::fabs(mean);
}

ConfidenceInterval meanConfidenceInterval(std::span<const double> xs,
                                          double confidence) {
  EP_REQUIRE(xs.size() >= 2, "confidence interval needs n >= 2");
  ConfidenceInterval ci;
  ci.mean = mean(xs);
  const double sd = sampleStddev(xs);
  const double tcrit =
      studentTCritical(confidence, static_cast<double>(xs.size() - 1));
  ci.halfWidth = tcrit * sd / std::sqrt(static_cast<double>(xs.size()));
  return ci;
}

WelchResult welchTTest(std::span<const double> a, std::span<const double> b,
                       double alpha) {
  EP_REQUIRE(a.size() >= 2 && b.size() >= 2,
             "Welch test needs n >= 2 per sample");
  EP_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const double ma = mean(a);
  const double mb = mean(b);
  const double va = sampleVariance(a) / static_cast<double>(a.size());
  const double vb = sampleVariance(b) / static_cast<double>(b.size());
  WelchResult r;
  r.meanDifference = ma - mb;
  const double se2 = va + vb;
  if (se2 == 0.0) {
    // Identical noise-free samples: significant iff means differ.
    r.statistic = r.meanDifference == 0.0
                      ? 0.0
                      : std::numeric_limits<double>::infinity();
    r.dof = static_cast<double>(a.size() + b.size() - 2);
    r.pValue = r.meanDifference == 0.0 ? 1.0 : 0.0;
    r.significant = r.meanDifference != 0.0;
    return r;
  }
  r.statistic = r.meanDifference / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double na1 = static_cast<double>(a.size()) - 1.0;
  const double nb1 = static_cast<double>(b.size()) - 1.0;
  r.dof = se2 * se2 / (va * va / na1 + vb * vb / nb1);
  r.pValue = 2.0 * (1.0 - studentTCdf(std::fabs(r.statistic), r.dof));
  r.significant = r.pValue < alpha;
  return r;
}

MeasurementProtocol::MeasurementProtocol(MeasurementOptions options)
    : options_(options) {
  EP_REQUIRE(options_.minRepetitions >= 2, "need at least 2 repetitions");
  EP_REQUIRE(options_.maxRepetitions >= options_.minRepetitions,
             "maxRepetitions < minRepetitions");
  EP_REQUIRE(options_.precision > 0.0, "precision must be positive");
}

MeasurementResult MeasurementProtocol::loop(
    const std::function<double()>& observe, bool throwOnFailure) const {
  MeasurementResult res;
  res.samples.reserve(options_.minRepetitions);
  RunningStats rs;
  while (res.samples.size() < options_.maxRepetitions) {
    const double x = observe();
    res.samples.push_back(x);
    rs.add(x);
    if (res.samples.size() < options_.minRepetitions) continue;
    const ConfidenceInterval ci =
        meanConfidenceInterval(res.samples, options_.confidence);
    if (ci.precision() <= options_.precision) {
      res.mean = ci.mean;
      res.interval = ci;
      res.repetitions = res.samples.size();
      res.converged = true;
      break;
    }
  }
  if (!res.converged) {
    if (throwOnFailure) {
      throw ep::ConvergenceError(
          "measurement did not reach requested precision within " +
          std::to_string(options_.maxRepetitions) + " repetitions");
    }
    res.interval = meanConfidenceInterval(res.samples, options_.confidence);
    res.mean = res.interval.mean;
    res.repetitions = res.samples.size();
  }
  if (options_.runNormalityCheck && res.samples.size() >= 8) {
    res.normality =
        pearsonNormalityTest(res.samples, options_.normalityAlpha);
    res.normalityChecked = true;
  }
  return res;
}

MeasurementResult MeasurementProtocol::run(
    const std::function<double()>& observe) const {
  return loop(observe, /*throwOnFailure=*/true);
}

MeasurementResult MeasurementProtocol::runBestEffort(
    const std::function<double()>& observe) const {
  return loop(observe, /*throwOnFailure=*/false);
}

}  // namespace ep::stats
