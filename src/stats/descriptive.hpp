// Descriptive statistics.
//
// RunningStats implements Welford's online algorithm so the measurement
// loop can update mean/variance per repetition without storing history
// (though samples are also kept for the normality check).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ep::stats {

class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double sampleVariance(std::span<const double> xs);
[[nodiscard]] double sampleStddev(std::span<const double> xs);
// Median of a copy (input not modified).
[[nodiscard]] double median(std::span<const double> xs);
// p in [0,1]; linear interpolation between order statistics.
[[nodiscard]] double quantile(std::span<const double> xs, double p);

}  // namespace ep::stats
