#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  EP_REQUIRE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sampleVariance(std::span<const double> xs) {
  EP_REQUIRE(xs.size() >= 2, "sample variance needs n >= 2");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double sampleStddev(std::span<const double> xs) {
  return std::sqrt(sampleVariance(xs));
}

double quantile(std::span<const double> xs, double p) {
  EP_REQUIRE(!xs.empty(), "quantile of empty sample");
  EP_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace ep::stats
