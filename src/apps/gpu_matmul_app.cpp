#include "apps/gpu_matmul_app.hpp"

#include <memory>
#include <string>
#include <utility>

#include "apps/detail.hpp"
#include "common/error.hpp"
#include "fault/faulty_meter.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "power/observer.hpp"

namespace ep::apps {
namespace detail {

std::shared_ptr<const power::Meter> makeMeter(
    const power::MeterOptions& meter, const fault::FaultInjectionOptions& faults) {
  if (faults.enabled) {
    return std::make_shared<const fault::FaultyMeter>(
        power::WattsUpMeter(meter), faults);
  }
  return std::make_shared<const power::WattsUpMeter>(meter);
}

obs::Counter& configFailureCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "ep_study_config_failures_total",
      "Configurations skipped by SkipAndRecord after a measurement failure");
  return c;
}

}  // namespace detail
}  // namespace ep::apps

namespace ep::apps {

pareto::BiPoint GpuDataPoint::toPoint(std::uint64_t id) const {
  pareto::BiPoint p;
  p.time = time;
  p.energy = dynamicEnergy;
  p.configId = id;
  p.label = label();
  return p;
}

std::string GpuDataPoint::label() const {
  return "BS=" + std::to_string(config.bs) + " G=" + std::to_string(config.g) +
         " R=" + std::to_string(config.r);
}

GpuMatMulApp::GpuMatMulApp(hw::GpuModel model, GpuMatMulOptions options)
    : model_(std::move(model)), options_(options) {
  EP_REQUIRE(options_.totalProducts >= 1, "workload needs >= 1 product");
  EP_REQUIRE(options_.bsMin >= 1 && options_.bsMax >= options_.bsMin,
             "invalid BS range");
}

Watts GpuMatMulApp::nodeIdlePower() const {
  return options_.hostIdlePower + model_.spec().boardIdlePower;
}

std::vector<hw::MatMulConfig> GpuMatMulApp::enumerateConfigs(int n) const {
  std::vector<hw::MatMulConfig> out;
  for (int bs = options_.bsMin; bs <= options_.bsMax; ++bs) {
    for (int g = 1; g <= options_.gMax; ++g) {
      if (options_.totalProducts % g != 0) continue;
      hw::MatMulConfig cfg;
      cfg.n = n;
      cfg.bs = bs;
      cfg.g = g;
      cfg.r = options_.totalProducts / g;
      if (model_.isLaunchable(cfg)) out.push_back(cfg);
    }
  }
  return out;
}

std::vector<hw::MatMulConfig> GpuMatMulApp::additivityConfigs(int n, int bs,
                                                              int gMax,
                                                              int r) const {
  std::vector<hw::MatMulConfig> out;
  for (int g = 1; g <= gMax; ++g) {
    hw::MatMulConfig cfg;
    cfg.n = n;
    cfg.bs = bs;
    cfg.g = g;
    cfg.r = r;
    if (model_.isLaunchable(cfg)) out.push_back(cfg);
  }
  return out;
}

GpuDataPoint GpuMatMulApp::runConfig(const hw::MatMulConfig& cfg,
                                     Rng& rng) const {
  GpuDataPoint out;
  out.config = cfg;
  out.model = model_.modelMatMul(cfg);

  if (!options_.useMeter) {
    out.time = out.model.time;
    out.dynamicEnergy = out.model.dynamicEnergy();
    out.repetitions = 1;
    // epprof energy profile, model-direct mode: the ledger attributes
    // these model joules per config, so the flamegraph folds the same
    // quantity under the kernel frame to stay reconcilable.
    if (obs::profilerArmed()) {
      obs::ProfileFrame kernelFrame("kernel/dgemm");
      obs::Profiler::global().recordEnergySample(
          out.dynamicEnergy.value(), obs::currentContext().traceId);
    }
    return out;
  }

  // Build the node's ground-truth power profile for one execution.
  obs::Span span("power/measure_window");
  // epprof kernel frame: CPU and energy samples taken during this
  // config's measurement attribute to the DGEMM kernel.
  obs::ProfileFrame kernelFrame("kernel/dgemm");
  // Attribution scope for the anomaly watchdog: windows measured here
  // belong to this device model.
  power::MeasureScopeLabel scopeLabel(model_.spec().name.c_str());
  power::ProfilePowerSource profile(nodeIdlePower());
  profile.addSegment({Seconds{0.0}, out.model.time, out.model.corePower});
  Seconds tail{0.0};
  if (out.model.uncoreActive) {
    tail = out.model.uncoreTail;
    profile.addSegment(
        {Seconds{0.0}, out.model.time + tail, out.model.uncorePower});
  }
  const power::EnergyMeasurer measurer(
      detail::makeMeter(options_.meter, options_.faults), nodeIdlePower());
  const power::MeasuredEnergy measured =
      measurer.measure(profile, out.model.time, rng, tail,
                       options_.measurement, options_.robustness);
  out.time = measured.mean.executionTime;
  out.dynamicEnergy = measured.mean.dynamicEnergy;
  out.repetitions = measured.dynamicEnergyStats.repetitions;
  out.remeasures = measured.faults.recoveries();
  return out;
}

std::uint64_t GpuMatMulApp::forkSalt(const hw::MatMulConfig& cfg) {
  std::uint64_t h = mix64(0, static_cast<std::uint64_t>(cfg.n));
  h = mix64(h, static_cast<std::uint64_t>(cfg.bs));
  h = mix64(h, static_cast<std::uint64_t>(cfg.g));
  h = mix64(h, static_cast<std::uint64_t>(cfg.r));
  return h;
}

std::vector<GpuDataPoint> GpuMatMulApp::runWorkload(
    int n, Rng& rng, ThreadPool* pool,
    std::vector<GpuConfigFailure>* failures) const {
  const std::vector<hw::MatMulConfig> configs = enumerateConfigs(n);
  std::vector<GpuDataPoint> out(configs.size());
  const bool skip = options_.failPolicy == fault::FailPolicy::SkipAndRecord;
  std::vector<std::string> errs(configs.size());
  std::vector<char> failed(configs.size(), 0);
  // Each slot is owned by exactly one index and each config draws only
  // from its own forked stream (fork() is const and reads just the
  // seed), so execution order cannot affect the result.  Under
  // SkipAndRecord errors are captured per slot (parallelFor never sees
  // an exception) and compacted below in enumeration order, which keeps
  // serial == parallel identity even for a failing campaign.
  const auto evalOne = [&](std::size_t i) {
    Rng configRng = rng.fork(forkSalt(configs[i]));
    if (!skip) {
      out[i] = runConfig(configs[i], configRng);
      return;
    }
    try {
      out[i] = runConfig(configs[i], configRng);
    } catch (const EpError& e) {
      failed[i] = 1;
      errs[i] = e.what();
    }
  };
  if (pool == nullptr || configs.size() < 2) {
    for (std::size_t i = 0; i < configs.size(); ++i) evalOne(i);
  } else {
    // Grain 1: one CI-looped measurement per config dwarfs scheduling
    // overhead, and fine grains load-balance the uneven repetition
    // counts.
    obs::Span span("study/parallel_eval");
    pool->parallelFor(0, configs.size(), evalOne, /*grain=*/1);
  }
  if (skip) {
    std::vector<GpuDataPoint> kept;
    kept.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (failed[i] != 0) {
        detail::configFailureCounter().inc();
        if (failures != nullptr) {
          failures->push_back({configs[i], std::move(errs[i])});
        }
      } else {
        kept.push_back(std::move(out[i]));
      }
    }
    out = std::move(kept);
  }
  return out;
}

std::vector<pareto::BiPoint> GpuMatMulApp::toPoints(
    const std::vector<GpuDataPoint>& data) {
  std::vector<pareto::BiPoint> pts;
  pts.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    pts.push_back(data[i].toPoint(i));
  }
  return pts;
}

}  // namespace ep::apps
