// The Section IV matrix-multiplication application for GPU weak-EP
// analysis, end to end:
//
//   configuration (BS, G, R)  ->  ephw::GpuModel kernel model
//                             ->  eppower profile + WattsUp meter
//                             ->  epstats measurement protocol
//                             ->  (execution time, dynamic energy) point
//
// Configurations solving the same workload hold the total product count
// G x R fixed (the weak-EP "same workload" invariant); enumerateConfigs
// produces every launchable (BS, G, R) combination for it.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "hw/gpu_model.hpp"
#include "pareto/point.hpp"
#include "power/measurer.hpp"
#include "stats/ttest.hpp"

namespace ep::apps {

struct GpuDataPoint {
  hw::MatMulConfig config;
  Seconds time{0.0};
  Joules dynamicEnergy{0.0};
  hw::KernelModel model;  // noise-free ground truth
  std::size_t repetitions = 0;
  // Fault recoveries spent measuring this config (re-recorded windows
  // after validation/outlier rejection); feeds request attribution.
  std::uint64_t remeasures = 0;

  [[nodiscard]] pareto::BiPoint toPoint(std::uint64_t id) const;
  [[nodiscard]] std::string label() const;
};

struct GpuMatMulOptions {
  int totalProducts = 8;  // the fixed G x R workload multiplier
  int bsMin = 1;
  int bsMax = 32;
  int gMax = 8;  // Fig 5 provides dgemmG1..dgemmG8
  // Node hosting the GPU: host idle power feeding the wall meter.
  Watts hostIdlePower{85.0};
  // Use the simulated wall meter + measurement protocol (true) or the
  // noise-free model energies (false; for fast sweeps in tests).
  bool useMeter = true;
  stats::MeasurementOptions measurement{};
  power::MeterOptions meter{};
  // Fault campaign + hardening, all off by default (the clean path is
  // bit-identical to the pre-fault pipeline): the meter is wrapped in
  // an epfault FaultyMeter when faults.enabled, the measurement loop
  // applies `robustness`, and failPolicy decides whether a config whose
  // measurement failed aborts the workload or is skipped and recorded.
  fault::FaultInjectionOptions faults{};
  power::RobustnessOptions robustness{};
  fault::FailPolicy failPolicy = fault::FailPolicy::FailFast;
};

// A configuration whose measurement failed under FailPolicy::SkipAndRecord.
struct GpuConfigFailure {
  hw::MatMulConfig config;
  std::string error;
};

class GpuMatMulApp {
 public:
  explicit GpuMatMulApp(hw::GpuModel model, GpuMatMulOptions options = {});

  [[nodiscard]] const hw::GpuModel& model() const { return model_; }
  [[nodiscard]] const GpuMatMulOptions& options() const { return options_; }
  [[nodiscard]] Watts nodeIdlePower() const;

  // All launchable configurations (bs, g, r) with g*r == totalProducts.
  [[nodiscard]] std::vector<hw::MatMulConfig> enumerateConfigs(int n) const;

  // Configurations for the Fig 6 additivity study: fixed bs, g in
  // [1, gMax], r fixed (defaults 1) — the workload *varies* with g here.
  [[nodiscard]] std::vector<hw::MatMulConfig> additivityConfigs(
      int n, int bs, int gMax = 4, int r = 1) const;

  // Run one configuration through the measurement stack.
  [[nodiscard]] GpuDataPoint runConfig(const hw::MatMulConfig& cfg,
                                       Rng& rng) const;

  // Fork salt for a configuration's private RNG stream: every field is
  // chained through mix64, so distinct (n, bs, g, r) tuples get
  // distinct streams (the old shifted-XOR key collided for large R).
  [[nodiscard]] static std::uint64_t forkSalt(const hw::MatMulConfig& cfg);

  // Run every configuration of a workload; returns points in
  // enumeration order.  With a pool, configurations are evaluated in
  // parallel; each draws from its own forked stream and writes only its
  // own slot, so the result is bitwise-identical to the serial path
  // for any pool size.  Safe to call from inside a task on `pool`.
  //
  // Under FailPolicy::SkipAndRecord a configuration whose measurement
  // throws (budget exhausted, unlaunchable, ...) is dropped from the
  // returned points and appended to `failures` (when non-null) in
  // enumeration order; under FailFast the first error propagates.
  [[nodiscard]] std::vector<GpuDataPoint> runWorkload(
      int n, Rng& rng, ThreadPool* pool = nullptr,
      std::vector<GpuConfigFailure>* failures = nullptr) const;

  // Convert data points to bi-objective points (ids = indices).
  [[nodiscard]] static std::vector<pareto::BiPoint> toPoints(
      const std::vector<GpuDataPoint>& data);

 private:
  hw::GpuModel model_;
  GpuMatMulOptions options_;
};

}  // namespace ep::apps
