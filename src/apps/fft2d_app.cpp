#include "apps/fft2d_app.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fft/fft.hpp"
#include "obs/profile_frames.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace ep::apps {

Fft2dApp::Fft2dApp(hw::CpuModel cpu, Fft2dOptions options)
    : processor_(std::move(cpu)), options_(options) {}

Fft2dApp::Fft2dApp(hw::GpuModel gpu, Fft2dOptions options)
    : processor_(std::move(gpu)), options_(options) {}

std::string Fft2dApp::processorName() const {
  if (const auto* cpu = std::get_if<hw::CpuModel>(&processor_)) {
    return cpu->spec().name;
  }
  return std::get<hw::GpuModel>(processor_).spec().name;
}

Fft2dApp::Run Fft2dApp::modelRun(int n) const {
  Run r;
  if (const auto* cpu = std::get_if<hw::CpuModel>(&processor_)) {
    const hw::CpuRunModel m = cpu->modelFft2d(n);
    r.time = m.time;
    r.corePower = m.dynamicPower;
    r.idlePower = cpu->spec().nodeIdlePower;
    return r;
  }
  const auto& gpu = std::get<hw::GpuModel>(processor_);
  const hw::KernelModel m = gpu.modelFft2d(n);
  r.time = m.time;
  r.corePower = m.corePower;
  r.uncoreActive = m.uncoreActive;
  r.uncorePower = m.uncorePower;
  r.uncoreTail = m.uncoreTail;
  r.idlePower = options_.hostIdlePower + gpu.spec().boardIdlePower;
  return r;
}

FftDataPoint Fft2dApp::runSize(int n, Rng& rng) const {
  EP_REQUIRE(n >= 2, "FFT size must be >= 2");
  const Run run = modelRun(n);
  FftDataPoint out;
  out.n = n;
  out.work = fft::fftWork(static_cast<std::size_t>(n));

  // A wall meter sampling at ~1 Hz cannot resolve a millisecond
  // transform: like HCLWattsUp, the application executes the transform
  // back-to-back until the measurement window is long enough, and
  // reports per-execution values.  The uncore decay tail occurs once
  // per measured window and therefore amortizes over the repeats.
  constexpr double kMinWindowSec = 20.0;
  const auto repeats = static_cast<int>(std::max(
      1.0, std::ceil(kMinWindowSec / std::max(run.time.value(), 1e-9))));
  const Seconds window = run.time * static_cast<double>(repeats);

  if (!options_.useMeter) {
    out.time = run.time;
    Joules e = run.corePower * run.time;
    if (run.uncoreActive) {
      e += run.uncorePower *
           (run.time + run.uncoreTail / static_cast<double>(repeats));
    }
    out.dynamicEnergy = e;
    // epprof energy profile, model-direct mode: fold the same joules
    // the ledger attributes under the kernel frame.
    if (obs::profilerArmed()) {
      obs::ProfileFrame kernelFrame("kernel/fft2d");
      obs::Profiler::global().recordEnergySample(
          out.dynamicEnergy.value(), obs::currentContext().traceId);
    }
    return out;
  }

  // epprof kernel frame: measurement CPU/joules attribute to the FFT.
  obs::ProfileFrame kernelFrame("kernel/fft2d");
  power::ProfilePowerSource profile(run.idlePower);
  profile.addSegment({Seconds{0.0}, window, run.corePower});
  Seconds tail{0.0};
  if (run.uncoreActive) {
    tail = run.uncoreTail;
    profile.addSegment({Seconds{0.0}, window + tail, run.uncorePower});
  }
  const power::WattsUpMeter meter(options_.meter);
  const power::EnergyMeasurer measurer(meter, run.idlePower);
  const power::MeasuredEnergy measured =
      measurer.measure(profile, window, rng, tail, options_.measurement);
  out.time = measured.mean.executionTime / static_cast<double>(repeats);
  out.dynamicEnergy =
      measured.mean.dynamicEnergy / static_cast<double>(repeats);
  return out;
}

std::vector<FftDataPoint> Fft2dApp::runSweep(const std::vector<int>& sizes,
                                             Rng& rng) const {
  std::vector<FftDataPoint> out;
  out.reserve(sizes.size());
  for (int n : sizes) {
    Rng sizeRng = rng.fork(static_cast<std::uint64_t>(n));
    out.push_back(runSize(n, sizeRng));
  }
  return out;
}

}  // namespace ep::apps
