// Internals shared by the measurement apps (not part of the public
// epapps surface).
#pragma once

#include <memory>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "power/meter.hpp"

namespace ep::apps::detail {

// The instrument a configuration measures through: the plain WattsUp
// simulation, or the epfault FaultyMeter decorator when a campaign is
// running.  One instance per configuration — FaultyMeter is stateful
// per measurement stream.
[[nodiscard]] std::shared_ptr<const power::Meter> makeMeter(
    const power::MeterOptions& meter,
    const fault::FaultInjectionOptions& faults);

// Process-wide count of configurations skipped under SkipAndRecord.
[[nodiscard]] obs::Counter& configFailureCounter();

}  // namespace ep::apps::detail
