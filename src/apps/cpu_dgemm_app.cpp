#include "apps/cpu_dgemm_app.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "apps/detail.hpp"
#include "common/error.hpp"
#include "blas/dgemm.hpp"
#include "common/mathutil.hpp"
#include "obs/profile_frames.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace ep::apps {

pareto::BiPoint CpuDataPoint::toPoint(std::uint64_t id) const {
  pareto::BiPoint p;
  p.time = time;
  p.energy = dynamicEnergy;
  p.configId = id;
  p.label = label();
  return p;
}

std::string CpuDataPoint::label() const {
  const char* variant =
      config.variant == hw::BlasVariant::IntelMklLike ? "mkl" : "openblas";
  const char* part =
      config.partition == hw::PartitionScheme::Horizontal ? "hor" : "sq";
  return std::string(variant) + " " + part +
         " p=" + std::to_string(config.threadgroups) +
         " t=" + std::to_string(config.threadsPerGroup);
}

CpuDgemmApp::CpuDgemmApp(hw::CpuModel model, CpuDgemmOptions options)
    : model_(std::move(model)), options_(options) {}

std::vector<hw::CpuDgemmConfig> CpuDgemmApp::enumerateConfigs(
    int n, hw::BlasVariant variant) const {
  std::vector<hw::CpuDgemmConfig> out;
  const auto& spec = model_.spec();
  const auto groupCounts = divisorsOf(spec.physicalCores());
  for (const auto scheme :
       {hw::PartitionScheme::Horizontal, hw::PartitionScheme::Square}) {
    for (const std::uint64_t p : groupCounts) {
      for (int t = 1;
           static_cast<int>(p) * t <= spec.logicalCores(); ++t) {
        hw::CpuDgemmConfig cfg;
        cfg.n = n;
        cfg.variant = variant;
        cfg.partition = scheme;
        cfg.threadgroups = static_cast<int>(p);
        cfg.threadsPerGroup = t;
        if (model_.isRunnable(cfg)) out.push_back(cfg);
      }
    }
  }
  return out;
}

CpuDataPoint CpuDgemmApp::runConfig(const hw::CpuDgemmConfig& cfg,
                                    Rng& rng) const {
  CpuDataPoint out;
  out.config = cfg;
  out.model = model_.modelDgemm(cfg);
  out.gflops = out.model.gflops;

  // Per-run utilization measurement: /proc/stat deltas include OS noise.
  double sumU = 0.0;
  for (double u : out.model.coreUtilization) {
    const double jitter =
        u > 0.0 ? rng.normal(0.0, options_.utilizationJitter) : 0.0;
    sumU += std::clamp(u + jitter, 0.0, 1.0);
  }
  out.avgUtilizationPct =
      100.0 * sumU / static_cast<double>(out.model.coreUtilization.size());

  if (!options_.useMeter) {
    out.time = out.model.time;
    out.dynamicPower = out.model.dynamicPower;
    out.dynamicEnergy = out.model.dynamicEnergy();
    // epprof energy profile, model-direct mode: fold the same joules
    // the ledger attributes under the kernel frame.
    if (obs::profilerArmed()) {
      obs::ProfileFrame kernelFrame("kernel/dgemm");
      obs::Profiler::global().recordEnergySample(
          out.dynamicEnergy.value(), obs::currentContext().traceId);
    }
    return out;
  }

  // epprof kernel frame: measurement CPU/joules attribute to DGEMM.
  obs::ProfileFrame kernelFrame("kernel/dgemm");
  power::ProfilePowerSource profile(model_.spec().nodeIdlePower);
  profile.addSegment({Seconds{0.0}, out.model.time, out.model.dynamicPower});
  const power::EnergyMeasurer measurer(
      detail::makeMeter(options_.meter, options_.faults),
      model_.spec().nodeIdlePower);
  const power::MeasuredEnergy measured =
      measurer.measure(profile, out.model.time, rng, Seconds{0.0},
                       options_.measurement, options_.robustness);
  out.time = measured.mean.executionTime;
  out.dynamicEnergy = measured.mean.dynamicEnergy;
  out.dynamicPower = out.dynamicEnergy / out.time;
  return out;
}

std::uint64_t CpuDgemmApp::forkSalt(const hw::CpuDgemmConfig& cfg) {
  std::uint64_t h = mix64(0, static_cast<std::uint64_t>(cfg.n));
  h = mix64(h, cfg.variant == hw::BlasVariant::IntelMklLike ? 1ULL : 2ULL);
  h = mix64(h, cfg.partition == hw::PartitionScheme::Horizontal ? 1ULL : 2ULL);
  h = mix64(h, static_cast<std::uint64_t>(cfg.threadgroups));
  h = mix64(h, static_cast<std::uint64_t>(cfg.threadsPerGroup));
  return h;
}

std::vector<CpuDataPoint> CpuDgemmApp::runWorkload(
    int n, hw::BlasVariant variant, Rng& rng, ThreadPool* pool,
    std::vector<CpuConfigFailure>* failures) const {
  const std::vector<hw::CpuDgemmConfig> configs = enumerateConfigs(n, variant);
  std::vector<CpuDataPoint> out(configs.size());
  const bool skip = options_.failPolicy == fault::FailPolicy::SkipAndRecord;
  std::vector<std::string> errs(configs.size());
  std::vector<char> failed(configs.size(), 0);
  // Error handling mirrors GpuMatMulApp::runWorkload: capture per slot,
  // compact in enumeration order, so a failing campaign stays bitwise
  // identical between the serial and the parallel path.
  const auto evalOne = [&](std::size_t i) {
    Rng configRng = rng.fork(forkSalt(configs[i]));
    if (!skip) {
      out[i] = runConfig(configs[i], configRng);
      return;
    }
    try {
      out[i] = runConfig(configs[i], configRng);
    } catch (const EpError& e) {
      failed[i] = 1;
      errs[i] = e.what();
    }
  };
  if (pool == nullptr || configs.size() < 2) {
    for (std::size_t i = 0; i < configs.size(); ++i) evalOne(i);
  } else {
    obs::Span span("study/parallel_eval");
    pool->parallelFor(0, configs.size(), evalOne, /*grain=*/1);
  }
  if (skip) {
    std::vector<CpuDataPoint> kept;
    kept.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (failed[i] != 0) {
        detail::configFailureCounter().inc();
        if (failures != nullptr) {
          failures->push_back({configs[i], std::move(errs[i])});
        }
      } else {
        kept.push_back(std::move(out[i]));
      }
    }
    out = std::move(kept);
  }
  return out;
}

double CpuDgemmApp::functionalCheck(const hw::CpuDgemmConfig& cfg,
                                    std::size_t smallN, Rng& rng) {
  EP_REQUIRE(smallN >= 2, "functional check needs a real matrix");
  std::vector<double> a(smallN * smallN), b(smallN * smallN);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  std::vector<double> expected(smallN * smallN, 0.0);
  blas::dgemmNaive(smallN, 1.0, a, b, 0.0, expected);

  blas::ThreadgroupConfig tg;
  tg.threadgroups = static_cast<std::size_t>(cfg.threadgroups);
  tg.threadsPerGroup = static_cast<std::size_t>(cfg.threadsPerGroup);
  std::vector<double> c(smallN * smallN, 0.0);
  blas::ThreadgroupDgemm(tg).run(smallN, 1.0, a, b, 0.0, c);

  double maxErr = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    maxErr = std::max(maxErr, std::fabs(c[i] - expected[i]));
  }
  return maxErr;
}

std::vector<pareto::BiPoint> CpuDgemmApp::toPoints(
    const std::vector<CpuDataPoint>& data) {
  std::vector<pareto::BiPoint> pts;
  pts.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    pts.push_back(data[i].toPoint(i));
  }
  return pts;
}

}  // namespace ep::apps
