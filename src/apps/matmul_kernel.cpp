#include "apps/matmul_kernel.hpp"

#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace ep::apps {

void runMatMulKernel(cusim::Device& device, cusim::Executor& executor,
                     const MatMulLaunch& launch, std::span<const double> a,
                     std::span<const double> b, std::span<double> c,
                     cusim::CuptiCounters* counters) {
  const std::size_t n = launch.n;
  const std::size_t bs = launch.bs;
  EP_REQUIRE(n >= 1 && bs >= 1, "empty launch");
  EP_REQUIRE(launch.groups >= 1 && launch.runs >= 1, "G and R must be >= 1");
  EP_REQUIRE(a.size() == n * n && b.size() == n * n && c.size() == n * n,
             "matrix size mismatch");

  const std::size_t tiles = ceilDiv(n, bs);
  cusim::LaunchConfig cfg;
  cfg.grid = {static_cast<unsigned>(tiles), static_cast<unsigned>(tiles), 1};
  cfg.block = {static_cast<unsigned>(bs), static_cast<unsigned>(bs), 1};
  cfg.sharedBytes = 2 * bs * bs * sizeof(double);

  const int products = launch.groups * launch.runs;

  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> sharedOps{0};
  std::atomic<std::uint64_t> globalBytes{0};

  auto kernel = [&](cusim::BlockContext& ctx) {
    const std::size_t bx = ctx.blockIdx().x;
    const std::size_t by = ctx.blockIdx().y;
    auto as = ctx.shared<double>(bs * bs);
    auto bsh = ctx.shared<double>(bs * bs);
    std::vector<double> csub(bs * bs);
    std::uint64_t blockFlops = 0;
    std::uint64_t blockShared = 0;
    std::uint64_t blockBytes = 0;

    // R runs of a group of G device matmul codes: G*R sequential
    // products, each re-initializing Csub and accumulating into C.
    for (int product = 0; product < products; ++product) {
      ctx.forEachThread([&](cusim::Dim3 t) {
        csub[ctx.flatThread(t)] = 0.0;
      });
      for (std::size_t tile = 0; tile < tiles; ++tile) {
        // Load phase: each thread stages one element of A and of B
        // (zero-padded outside the matrix), then __syncthreads().
        ctx.forEachThread([&](cusim::Dim3 t) {
          const std::size_t row = by * bs + t.y;
          const std::size_t colA = tile * bs + t.x;
          const std::size_t rowB = tile * bs + t.y;
          const std::size_t colB = bx * bs + t.x;
          const std::size_t f = ctx.flatThread(t);
          as[f] = (row < n && colA < n) ? a[row * n + colA] : 0.0;
          bsh[f] = (rowB < n && colB < n) ? b[rowB * n + colB] : 0.0;
          blockShared += 2;
          blockBytes += 16;
        });
        // Compute phase: the unrolled inner product over the staged
        // tiles, then __syncthreads().
        ctx.forEachThread([&](cusim::Dim3 t) {
          double acc = csub[ctx.flatThread(t)];
          for (std::size_t k = 0; k < bs; ++k) {
            acc += as[t.y * bs + k] * bsh[k * bs + t.x];
          }
          csub[ctx.flatThread(t)] = acc;
          blockFlops += 2 * bs;
          blockShared += 2 * bs;
        });
      }
      // Write phase: C[...] += Csub (each thread owns its element).
      ctx.forEachThread([&](cusim::Dim3 t) {
        const std::size_t row = by * bs + t.y;
        const std::size_t col = bx * bs + t.x;
        if (row < n && col < n) {
          c[row * n + col] += csub[ctx.flatThread(t)];
          blockBytes += 16;  // read-modify-write
        }
      });
    }
    flops.fetch_add(blockFlops, std::memory_order_relaxed);
    sharedOps.fetch_add(blockShared, std::memory_order_relaxed);
    globalBytes.fetch_add(blockBytes, std::memory_order_relaxed);
  };

  executor.launch(device, cfg, kernel);

  if (counters != nullptr) {
    counters->add(cusim::CuptiEvent::kFlopCountDp, flops.load());
    counters->add(cusim::CuptiEvent::kSharedLoadStore, sharedOps.load());
    counters->add(cusim::CuptiEvent::kDramBytes, globalBytes.load());
    counters->add(cusim::CuptiEvent::kGldTransactions,
                  globalBytes.load() / 32);
  }
}

}  // namespace ep::apps
