// Functional implementation of the paper's Fig 5 CUDA kernel on the
// cusim substrate.
//
// The kernel computes G x R matrix products C += A * B of dense square
// N x N matrices.  Each block owns one BS x BS tile of C; each thread
// computes one element.  Per tile-step the block stages a BS x BS tile
// of A and of B in shared memory (one element per thread), synchronizes,
// accumulates the partial product from shared memory, and synchronizes
// again — exactly the structure of lines 1-21 of Fig 5.  G products are
// executed back-to-back inside one "group" (the textually repeated
// device code) and the group is run R times.
//
// Unlike the paper's kernel, loads and stores are bounds-checked so BS
// values that do not divide N are legal (partial tiles are zero-padded),
// matching the modeled tile-quantization behaviour.
#pragma once

#include <span>

#include "cudasim/cupti.hpp"
#include "cudasim/device.hpp"
#include "cudasim/executor.hpp"

namespace ep::apps {

struct MatMulLaunch {
  std::size_t n = 0;
  std::size_t bs = 0;
  int groups = 1;  // G
  int runs = 1;    // R
};

// Functionally execute the kernel: c += (G*R) accumulated products.
// Counters (if non-null) receive ground-truth event counts.
void runMatMulKernel(cusim::Device& device, cusim::Executor& executor,
                     const MatMulLaunch& launch, std::span<const double> a,
                     std::span<const double> b, std::span<double> c,
                     cusim::CuptiCounters* counters = nullptr);

}  // namespace ep::apps
