// The Fig 1 strong-EP application: 2D FFT of an N x N complex signal,
// swept over N on the three Table I processors.  Produces (W, E_d)
// series where W = 5 N^2 log2 N, measured through the wall-meter stack.
//
// For small N the application can also run the real epfft transform on
// the host (functional mode) — used by tests to validate that the
// workload definition corresponds to an actual computation.
#pragma once

#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"
#include "power/measurer.hpp"
#include "stats/ttest.hpp"

namespace ep::apps {

struct FftDataPoint {
  int n = 0;
  double work = 0.0;  // W = 5 N^2 log2 N
  Seconds time{0.0};
  Joules dynamicEnergy{0.0};
};

struct Fft2dOptions {
  bool useMeter = true;
  Watts hostIdlePower{85.0};  // for GPU nodes
  stats::MeasurementOptions measurement{};
  power::MeterOptions meter{};
};

class Fft2dApp {
 public:
  // Processor under test: either the CPU model or a GPU model.
  explicit Fft2dApp(hw::CpuModel cpu, Fft2dOptions options = {});
  explicit Fft2dApp(hw::GpuModel gpu, Fft2dOptions options = {});

  [[nodiscard]] std::string processorName() const;

  [[nodiscard]] FftDataPoint runSize(int n, Rng& rng) const;
  [[nodiscard]] std::vector<FftDataPoint> runSweep(
      const std::vector<int>& sizes, Rng& rng) const;

 private:
  struct Run {
    Seconds time{0.0};
    Watts corePower{0.0};
    bool uncoreActive = false;
    Watts uncorePower{0.0};
    Seconds uncoreTail{0.0};
    Watts idlePower{0.0};
  };
  [[nodiscard]] Run modelRun(int n) const;

  std::variant<hw::CpuModel, hw::GpuModel> processor_;
  Fft2dOptions options_;
};

}  // namespace ep::apps
