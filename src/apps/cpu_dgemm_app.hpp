// The Section III parallel DGEMM application on the multicore CPU:
// enumerates the paper's configuration space (type of partitioning,
// number of threadgroups, threads per group) for the MKL-like and
// OpenBLAS-like variants and measures each configuration through the
// wall-meter + statistics stack, producing the Fig 4 data set
// (dynamic power vs average CPU utilization, performance vs utilization).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "hw/cpu_model.hpp"
#include "pareto/point.hpp"
#include "power/measurer.hpp"
#include "stats/ttest.hpp"

namespace ep::apps {

struct CpuDataPoint {
  hw::CpuDgemmConfig config;
  Seconds time{0.0};
  Joules dynamicEnergy{0.0};
  Watts dynamicPower{0.0};
  double avgUtilizationPct = 0.0;  // 0..100, as /proc/stat reports
  double gflops = 0.0;
  hw::CpuRunModel model;  // ground truth

  [[nodiscard]] pareto::BiPoint toPoint(std::uint64_t id) const;
  [[nodiscard]] std::string label() const;
};

struct CpuDgemmOptions {
  bool useMeter = true;
  // Per-repetition utilization jitter (OS noise, interrupts) applied to
  // every core's utilization, in absolute utilization units.
  double utilizationJitter = 0.006;
  stats::MeasurementOptions measurement{};
  power::MeterOptions meter{};
  // Fault campaign + hardening; all off by default (see GpuMatMulOptions).
  fault::FaultInjectionOptions faults{};
  power::RobustnessOptions robustness{};
  fault::FailPolicy failPolicy = fault::FailPolicy::FailFast;
};

// A configuration whose measurement failed under FailPolicy::SkipAndRecord.
struct CpuConfigFailure {
  hw::CpuDgemmConfig config;
  std::string error;
};

class CpuDgemmApp {
 public:
  explicit CpuDgemmApp(hw::CpuModel model, CpuDgemmOptions options = {});

  [[nodiscard]] const hw::CpuModel& model() const { return model_; }

  // The paper's configuration space for one workload/variant: both
  // partition schemes, threadgroup counts dividing the core count, and
  // threads-per-group values such that p*t <= logical cores.
  [[nodiscard]] std::vector<hw::CpuDgemmConfig> enumerateConfigs(
      int n, hw::BlasVariant variant) const;

  [[nodiscard]] CpuDataPoint runConfig(const hw::CpuDgemmConfig& cfg,
                                       Rng& rng) const;

  // mix64-chained fork salt over every distinguishing field (n,
  // variant, partition, threadgroups, threadsPerGroup) — see
  // GpuMatMulApp::forkSalt for why shifted XOR is not good enough.
  [[nodiscard]] static std::uint64_t forkSalt(const hw::CpuDgemmConfig& cfg);

  // With a pool, configurations are measured in parallel and the result
  // is bitwise-identical to the serial path (per-config forked streams,
  // per-index output slots).  Safe to call from inside a task on pool.
  // Failure handling follows GpuMatMulApp::runWorkload: SkipAndRecord
  // drops failing configs into `failures`, FailFast propagates.
  [[nodiscard]] std::vector<CpuDataPoint> runWorkload(
      int n, hw::BlasVariant variant, Rng& rng, ThreadPool* pool = nullptr,
      std::vector<CpuConfigFailure>* failures = nullptr) const;

  [[nodiscard]] static std::vector<pareto::BiPoint> toPoints(
      const std::vector<CpuDataPoint>& data);

  // Functional mode: really execute the Fig 3 decomposition (epblas) for
  // a small matrix with the configuration's threadgroup structure and
  // return the maximum absolute error against the naive reference.
  // Validates that every modeled configuration corresponds to a correct
  // parallel computation.
  [[nodiscard]] static double functionalCheck(const hw::CpuDgemmConfig& cfg,
                                              std::size_t smallN, Rng& rng);

 private:
  hw::CpuModel model_;
  CpuDgemmOptions options_;
};

}  // namespace ep::apps
