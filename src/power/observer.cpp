#include "power/observer.hpp"

namespace ep::power {

namespace {

std::atomic<MeasureObserver*>& observerSlot() {
  static std::atomic<MeasureObserver*> slot{nullptr};
  return slot;
}

const char*& scopeSlot() {
  thread_local const char* scope = "";
  return scope;
}

}  // namespace

void setMeasureObserver(MeasureObserver* observer) {
  observerSlot().store(observer, std::memory_order_release);
}

MeasureObserver* measureObserver() {
  return observerSlot().load(std::memory_order_acquire);
}

MeasureScopeLabel::MeasureScopeLabel(const char* label)
    : prev_(scopeSlot()) {
  scopeSlot() = label == nullptr ? "" : label;
}

MeasureScopeLabel::~MeasureScopeLabel() { scopeSlot() = prev_; }

const char* MeasureScopeLabel::current() { return scopeSlot(); }

}  // namespace ep::power
