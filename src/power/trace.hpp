// Sampled wall-power traces.
//
// A PowerTrace is what a physical WattsUp Pro meter delivers: a sequence
// of (timestamp, watts) samples.  Energy is recovered by trapezoidal
// integration, exactly as wall-meter tooling (HCLWattsUp) does.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace ep::power {

struct PowerSample {
  Seconds time{0.0};
  Watts power{0.0};
};

class PowerTrace {
 public:
  PowerTrace() = default;
  explicit PowerTrace(std::vector<PowerSample> samples);

  void append(PowerSample s);

  // Drop all samples but keep the capacity: lets the measurement loop
  // reuse one trace buffer across CI repetitions instead of allocating
  // a fresh vector per measureOnce.
  void clear() { samples_.clear(); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  [[nodiscard]] Seconds startTime() const;
  [[nodiscard]] Seconds endTime() const;
  [[nodiscard]] Seconds duration() const;

  // Trapezoidal integral of power over the full trace.
  [[nodiscard]] Joules totalEnergy() const;

  // Trapezoidal integral restricted to [t0, t1]; samples are linearly
  // interpolated at the window edges.  Window must lie inside the trace.
  [[nodiscard]] Joules energyBetween(Seconds t0, Seconds t1) const;

  // Mean power over the full trace (total energy / duration).
  [[nodiscard]] Watts meanPower() const;

  // Interpolated power at time t (t inside the trace).
  [[nodiscard]] Watts powerAt(Seconds t) const;

 private:
  std::vector<PowerSample> samples_;  // strictly increasing timestamps
};

}  // namespace ep::power
