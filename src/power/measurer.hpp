// HCLWattsUp-style energy measurement.
//
// Reproduces the methodology of the paper's tooling [34]: the node's
// base (idle) power is calibrated from an idle trace, an execution is
// recorded through the wall meter, and
//
//   total energy   = integral of sampled power over the execution window
//   static energy  = base power x execution time
//   dynamic energy = total energy - static energy
//
// measureOnce() gives a single (noisy) observation; measure() wraps it in
// the paper's Student's-t measurement protocol (epstats) and returns the
// accepted means.
//
// Robust mode (RobustnessOptions) hardens the CI loop against the
// instrument pathologies real campaigns fight (epfault injects them
// deterministically): every recorded trace is validated (sampling gaps,
// NaN readings, stuck runs), accepted observations pass MAD-based
// outlier rejection, and a whole-window meter timeout is retried with
// bounded, deterministic virtual-time exponential backoff.  Rejected
// observations are re-measured from a shared budget; only when the
// budget is exhausted does measure() raise MeasurementError carrying
// the structured fault report.  All knobs default to off, in which case
// the draw sequence is bit-identical to the pre-robustness measurer.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "power/meter.hpp"
#include "power/profile.hpp"
#include "stats/ttest.hpp"

namespace ep::power {

struct EnergyReading {
  Seconds executionTime{0.0};
  Joules totalEnergy{0.0};
  Joules staticEnergy{0.0};
  Joules dynamicEnergy{0.0};
};

// What the robust measurement loop saw and did for one configuration.
struct MeasurementFaultReport {
  std::uint64_t timeouts = 0;         // MeterTimeoutError occurrences
  std::uint64_t retries = 0;          // re-recordings after a timeout
  std::uint64_t invalidTraces = 0;    // trace-validation rejections
  std::uint64_t outliersRejected = 0; // MAD rejections
  std::uint64_t samplesSanitized = 0; // impossible readings dropped
  // Total virtual back-off time the physical campaign would have slept.
  double virtualBackoffS = 0.0;

  [[nodiscard]] std::uint64_t recoveries() const {
    return retries + invalidTraces + outliersRejected;
  }
  [[nodiscard]] std::string summary() const;
};

// The robust loop exhausted its budget: the configuration cannot be
// measured.  Carries the structured report of everything that was
// tried, for the study layer to surface.
class MeasurementError : public EpError {
 public:
  MeasurementError(const std::string& what, MeasurementFaultReport report)
      : EpError(what), report_(report) {}

  [[nodiscard]] const MeasurementFaultReport& report() const {
    return report_;
  }

 private:
  MeasurementFaultReport report_;
};

struct TraceValidation {
  bool enabled = false;
  // A sampling gap larger than maxGapFactor x the trace's median
  // inter-sample interval marks the trace invalid (>= 2 consecutive
  // dropped samples at the default 2.6).
  double maxGapFactor = 2.6;
  // This many identical consecutive readings mark the instrument stuck.
  // Legitimate quantized traces repeat occasionally; five in a row is
  // vanishingly unlikely at the WattsUp noise floor.
  std::size_t stuckRunLength = 5;
};

struct RobustnessOptions {
  TraceValidation validation{};
  // Drop samples no wall meter can legitimately report — non-finite,
  // non-positive, or above the node's plausible peak draw (PSU rating;
  // instrument metadata a real campaign always has) — *before*
  // integrating the trace.  This is the per-sample recovery tier: at
  // realistic fault rates a long trace is almost never entirely clean,
  // so whole-trace rejection alone would burn the re-measure budget on
  // recoverable corruption.  Validation then judges only the structural
  // defects sanitization cannot repair (sampling gaps, stuck runs).
  bool sanitizeSamples = false;
  double maxPlausibleWatts = std::numeric_limits<double>::infinity();
  // MAD (modified z-score) outlier rejection over the accepted
  // dynamic-energy observations; non-finite observations are always
  // rejected when enabled.
  bool rejectOutliers = false;
  double madThreshold = 4.0;
  std::size_t minSamplesForMad = 6;
  // Shared re-measure budget for invalid traces + rejected outliers.
  std::size_t remeasureBudget = 32;
  // Bounded retry on MeterTimeoutError, per observation; the back-off
  // is virtual time (deterministic), doubling from backoffBaseS.
  std::size_t timeoutRetries = 4;
  double backoffBaseS = 0.5;

  [[nodiscard]] bool any() const {
    return validation.enabled || sanitizeSamples || rejectOutliers;
  }
};

// Validate one recorded trace against the instrument fault model; on
// rejection returns false and (if non-null) points *reason at a static
// description.  Exposed for tests and the faultcheck tool.
[[nodiscard]] bool validateTrace(const PowerTrace& trace,
                                 const TraceValidation& options,
                                 const char** reason = nullptr);

// Remove physically impossible samples (non-finite, non-positive, or
// above `maxPlausibleWatts`) from `trace` in place; a corrupted
// bracketing sample is repaired (nearest good reading held) instead of
// dropped so the integration window stays covered.  Returns how many
// samples were corrupted.  A no-op on any trace a fault-free instrument
// can produce.  Exposed for tests and the faultcheck tool.
std::size_t sanitizeTrace(
    PowerTrace& trace,
    double maxPlausibleWatts = std::numeric_limits<double>::infinity());

struct MeasuredEnergy {
  EnergyReading mean;
  stats::MeasurementResult dynamicEnergyStats;
  stats::MeasurementResult executionTimeStats;
  MeasurementFaultReport faults;  // zeroes on a clean run
};

class EnergyMeasurer {
 public:
  // Measure through any instrument (a WattsUpMeter, an epfault
  // FaultyMeter, ...).
  EnergyMeasurer(std::shared_ptr<const Meter> meter,
                 Watts calibratedBasePower);
  // Convenience: wrap a concrete WattsUpMeter by value.
  EnergyMeasurer(WattsUpMeter meter, Watts calibratedBasePower);

  // Calibrate base power by recording an idle source for `duration`.
  [[nodiscard]] static Watts calibrateBasePower(const Meter& meter,
                                                const PowerSource& idle,
                                                Seconds duration, Rng& rng);

  // One noisy observation of an execution described by `profile` whose
  // activity spans [0, executionTime].  The recording window extends past
  // the execution end by `tailWindow` so post-execution power tails
  // (clock-boost hysteresis) are captured, as a wall meter would.
  [[nodiscard]] EnergyReading measureOnce(const ProfilePowerSource& profile,
                                          Seconds executionTime, Rng& rng,
                                          Seconds tailWindow = Seconds{
                                              0.0}) const;

  // Full paper protocol: repeat measureOnce until the dynamic-energy mean
  // satisfies the 95 % CI / 2.5 % precision criterion.  With robustness
  // enabled, each observation is validated/retried as described above;
  // throws MeasurementError once the budget is exhausted.
  [[nodiscard]] MeasuredEnergy measure(
      const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
      Seconds tailWindow = Seconds{0.0},
      const stats::MeasurementOptions& options = {},
      const RobustnessOptions& robustness = {}) const;

  [[nodiscard]] Watts basePower() const { return basePower_; }
  [[nodiscard]] const Meter& meter() const { return *meter_; }

 private:
  // measureOnce with a caller-owned scratch trace so the CI repetition
  // loop reuses one sample buffer instead of allocating per repetition.
  // With sanitize, impossible samples are dropped (and counted into
  // *sanitized) between recording and integration; sanitize=false keeps
  // the draw sequence and arithmetic bit-identical to the clean path.
  [[nodiscard]] EnergyReading measureOnceInto(
      const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
      Seconds tailWindow, PowerTrace& scratch, bool sanitize = false,
      double maxPlausibleWatts = std::numeric_limits<double>::infinity(),
      std::uint64_t* sanitized = nullptr) const;

  std::shared_ptr<const Meter> meter_;
  Watts basePower_;
};

}  // namespace ep::power
