// HCLWattsUp-style energy measurement.
//
// Reproduces the methodology of the paper's tooling [34]: the node's
// base (idle) power is calibrated from an idle trace, an execution is
// recorded through the wall meter, and
//
//   total energy   = integral of sampled power over the execution window
//   static energy  = base power x execution time
//   dynamic energy = total energy - static energy
//
// measureOnce() gives a single (noisy) observation; measure() wraps it in
// the paper's Student's-t measurement protocol (epstats) and returns the
// accepted means.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "power/meter.hpp"
#include "power/profile.hpp"
#include "stats/ttest.hpp"

namespace ep::power {

struct EnergyReading {
  Seconds executionTime{0.0};
  Joules totalEnergy{0.0};
  Joules staticEnergy{0.0};
  Joules dynamicEnergy{0.0};
};

struct MeasuredEnergy {
  EnergyReading mean;
  stats::MeasurementResult dynamicEnergyStats;
  stats::MeasurementResult executionTimeStats;
};

class EnergyMeasurer {
 public:
  EnergyMeasurer(WattsUpMeter meter, Watts calibratedBasePower);

  // Calibrate base power by recording an idle source for `duration`.
  [[nodiscard]] static Watts calibrateBasePower(const WattsUpMeter& meter,
                                                const PowerSource& idle,
                                                Seconds duration, Rng& rng);

  // One noisy observation of an execution described by `profile` whose
  // activity spans [0, executionTime].  The recording window extends past
  // the execution end by `tailWindow` so post-execution power tails
  // (clock-boost hysteresis) are captured, as a wall meter would.
  [[nodiscard]] EnergyReading measureOnce(const ProfilePowerSource& profile,
                                          Seconds executionTime, Rng& rng,
                                          Seconds tailWindow = Seconds{
                                              0.0}) const;

  // Full paper protocol: repeat measureOnce until the dynamic-energy mean
  // satisfies the 95 % CI / 2.5 % precision criterion.
  [[nodiscard]] MeasuredEnergy measure(
      const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
      Seconds tailWindow = Seconds{0.0},
      const stats::MeasurementOptions& options = {}) const;

  [[nodiscard]] Watts basePower() const { return basePower_; }

 private:
  // measureOnce with a caller-owned scratch trace so the CI repetition
  // loop reuses one sample buffer instead of allocating per repetition.
  [[nodiscard]] EnergyReading measureOnceInto(
      const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
      Seconds tailWindow, PowerTrace& scratch) const;

  WattsUpMeter meter_;
  Watts basePower_;
};

}  // namespace ep::power
