#include "power/profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ep::power {

Joules PowerSource::exactEnergy(Seconds t0, Seconds t1) const {
  EP_REQUIRE(t0 <= t1, "inverted window");
  // Generic fallback: fine-grained midpoint rule.
  constexpr int kSteps = 10000;
  const double dt = (t1 - t0).value() / kSteps;
  double e = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const Seconds t{t0.value() + (i + 0.5) * dt};
    e += powerAt(t).value() * dt;
  }
  return Joules{e};
}

ProfilePowerSource::ProfilePowerSource(Watts idlePower) : idle_(idlePower) {
  EP_REQUIRE(idlePower.value() >= 0.0, "idle power must be non-negative");
}

void ProfilePowerSource::addSegment(PowerSegment seg) {
  EP_REQUIRE(seg.start.value() >= 0.0, "segment start must be >= 0");
  EP_REQUIRE(seg.duration.value() >= 0.0, "segment duration must be >= 0");
  EP_REQUIRE(seg.power.value() >= 0.0, "segment power must be >= 0");
  segments_.push_back(seg);
}

Seconds ProfilePowerSource::activityEnd() const {
  Seconds end{0.0};
  for (const auto& s : segments_) {
    end = std::max(end, s.start + s.duration);
  }
  return end;
}

Watts ProfilePowerSource::powerAt(Seconds t) const {
  double p = idle_.value();
  for (const auto& s : segments_) {
    if (t >= s.start && t < s.start + s.duration) p += s.power.value();
  }
  return Watts{p};
}

Joules ProfilePowerSource::exactEnergy(Seconds t0, Seconds t1) const {
  EP_REQUIRE(t0 <= t1, "inverted window");
  double e = idle_.value() * (t1 - t0).value();
  for (const auto& s : segments_) {
    const double lo = std::max(t0.value(), s.start.value());
    const double hi =
        std::min(t1.value(), (s.start + s.duration).value());
    if (hi > lo) e += s.power.value() * (hi - lo);
  }
  return Joules{e};
}

}  // namespace ep::power
