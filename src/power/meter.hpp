// Simulated WattsUp Pro wall-power meter.
//
// The physical instrument sits between the wall outlet and the node's
// PSU and reports node power about once per second with ~1.5 % accuracy
// and 0.1 W display resolution.  The simulation reproduces those
// instrument characteristics: a fixed sampling interval with bounded
// start-phase jitter, multiplicative gain noise, additive noise, and
// quantization.  All randomness comes from an explicit ep::Rng so a
// measurement campaign is reproducible.
#pragma once

#include "common/rng.hpp"
#include "power/profile.hpp"
#include "power/trace.hpp"

namespace ep::power {

struct MeterOptions {
  Seconds sampleInterval{1.0};   // WattsUp Pro: ~1 Hz
  double gainNoiseSigma = 0.005;  // per-sample multiplicative noise
  Watts additiveNoiseSigma{0.3};  // sensor floor noise
  Watts quantization{0.1};        // display resolution
  // The meter's internal sampling is not phase-locked to the application:
  // the first sample lands uniformly inside the first interval.
  bool randomPhase = true;
};

class WattsUpMeter {
 public:
  explicit WattsUpMeter(MeterOptions options = {});

  // Record `source` from t=0 until `duration`, drawing noise from `rng`.
  [[nodiscard]] PowerTrace record(const PowerSource& source,
                                  Seconds duration, Rng& rng) const;

  // Same recording, but into a caller-owned trace (cleared first, its
  // sample buffer reused).  Allocation-free once the buffer has grown
  // to the window size — the CI repetition loop calls this hundreds of
  // times per configuration.
  void recordInto(const PowerSource& source, Seconds duration, Rng& rng,
                  PowerTrace& out) const;

  [[nodiscard]] const MeterOptions& options() const { return options_; }

 private:
  MeterOptions options_;
};

}  // namespace ep::power
