// Simulated WattsUp Pro wall-power meter.
//
// The physical instrument sits between the wall outlet and the node's
// PSU and reports node power about once per second with ~1.5 % accuracy
// and 0.1 W display resolution.  The simulation reproduces those
// instrument characteristics: a fixed sampling interval with bounded
// start-phase jitter, multiplicative gain noise, additive noise, and
// quantization.  All randomness comes from an explicit ep::Rng so a
// measurement campaign is reproducible.
//
// Meter is the instrument seam: everything above the meter (the
// measurer, the apps, the studies) records through the abstract
// interface, so a decorated instrument — epfault's FaultyMeter, or a
// future real-hardware backend — drops in without touching the
// measurement methodology.
#pragma once

#include "common/error.hpp"
#include "common/rng.hpp"
#include "power/profile.hpp"
#include "power/trace.hpp"

namespace ep::power {

// The meter failed to deliver a recording window (the physical
// instrument's serial link stalls, drops its connection, or returns no
// data for a whole window).  Distinct from PreconditionError because it
// is transient: the measurement layer retries with backoff before
// giving up.
class MeterTimeoutError : public EpError {
 public:
  using EpError::EpError;
};

// Abstract instrument: record a power source into a trace.
class Meter {
 public:
  virtual ~Meter() = default;

  // Record `source` from t=0 until `duration` into a caller-owned trace
  // (cleared first, its sample buffer reused).  Allocation-free once
  // the buffer has grown to the window size — the CI repetition loop
  // calls this hundreds of times per configuration.  May throw
  // MeterTimeoutError when the instrument loses a whole window.
  virtual void recordInto(const PowerSource& source, Seconds duration,
                          Rng& rng, PowerTrace& out) const = 0;

  // Convenience: record into a fresh trace.
  [[nodiscard]] PowerTrace record(const PowerSource& source, Seconds duration,
                                  Rng& rng) const {
    PowerTrace trace;
    recordInto(source, duration, rng, trace);
    return trace;
  }
};

struct MeterOptions {
  Seconds sampleInterval{1.0};   // WattsUp Pro: ~1 Hz
  double gainNoiseSigma = 0.005;  // per-sample multiplicative noise
  Watts additiveNoiseSigma{0.3};  // sensor floor noise
  Watts quantization{0.1};        // display resolution
  // The meter's internal sampling is not phase-locked to the application:
  // the first sample lands uniformly inside the first interval.
  bool randomPhase = true;
};

class WattsUpMeter final : public Meter {
 public:
  explicit WattsUpMeter(MeterOptions options = {});

  void recordInto(const PowerSource& source, Seconds duration, Rng& rng,
                  PowerTrace& out) const override;

  [[nodiscard]] const MeterOptions& options() const { return options_; }

 private:
  MeterOptions options_;
};

}  // namespace ep::power
