// Ground-truth node power as a function of time.
//
// Hardware models (ephw) describe an application run as a piecewise-
// constant power profile layered on top of the node's idle (static)
// power.  The simulated wall meter samples a PowerSource; the profile is
// the "physics", the meter is the "instrument".
#pragma once

#include <vector>

#include "common/units.hpp"

namespace ep::power {

// Abstract instantaneous node power.
class PowerSource {
 public:
  virtual ~PowerSource() = default;
  [[nodiscard]] virtual Watts powerAt(Seconds t) const = 0;
  // Exact integral over [t0, t1]; default implementations may override
  // with closed forms.  Used for ground-truth validation in tests.
  [[nodiscard]] virtual Joules exactEnergy(Seconds t0, Seconds t1) const;
};

// One constant-power phase of an execution.
struct PowerSegment {
  Seconds start{0.0};
  Seconds duration{0.0};
  Watts power{0.0};  // additional power above the node's idle power
};

// Idle (base) power plus a set of possibly overlapping constant-power
// segments.  Overlaps add — e.g. an SM-activity segment and the uncore
// clock-boost segment of the Fig 6 analysis coexist.
class ProfilePowerSource final : public PowerSource {
 public:
  explicit ProfilePowerSource(Watts idlePower);

  void addSegment(PowerSegment seg);

  [[nodiscard]] Watts idlePower() const { return idle_; }
  [[nodiscard]] const std::vector<PowerSegment>& segments() const {
    return segments_;
  }
  // End of the last segment (0 if none).
  [[nodiscard]] Seconds activityEnd() const;

  [[nodiscard]] Watts powerAt(Seconds t) const override;
  [[nodiscard]] Joules exactEnergy(Seconds t0, Seconds t1) const override;

 private:
  Watts idle_;
  std::vector<PowerSegment> segments_;
};

}  // namespace ep::power
