#include "power/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ep::power {

PowerTrace::PowerTrace(std::vector<PowerSample> samples)
    : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    EP_REQUIRE(samples_[i - 1].time < samples_[i].time,
               "trace timestamps must be strictly increasing");
  }
}

void PowerTrace::append(PowerSample s) {
  EP_REQUIRE(samples_.empty() || samples_.back().time < s.time,
             "trace timestamps must be strictly increasing");
  samples_.push_back(s);
}

Seconds PowerTrace::startTime() const {
  EP_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.front().time;
}

Seconds PowerTrace::endTime() const {
  EP_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.back().time;
}

Seconds PowerTrace::duration() const { return endTime() - startTime(); }

Joules PowerTrace::totalEnergy() const {
  EP_REQUIRE(!samples_.empty(), "empty trace");
  return energyBetween(startTime(), endTime());
}

Watts PowerTrace::powerAt(Seconds t) const {
  EP_REQUIRE(!samples_.empty(), "empty trace");
  EP_REQUIRE(t >= startTime() && t <= endTime(), "time outside trace");
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const PowerSample& s, Seconds tt) { return s.time < tt; });
  if (it == samples_.begin()) return it->power;
  if (it == samples_.end()) return samples_.back().power;
  const PowerSample& hi = *it;
  const PowerSample& lo = *(it - 1);
  if (hi.time == t) return hi.power;
  const double frac = (t - lo.time) / (hi.time - lo.time);
  return Watts{lo.power.value() +
               frac * (hi.power.value() - lo.power.value())};
}

Joules PowerTrace::energyBetween(Seconds t0, Seconds t1) const {
  EP_REQUIRE(!samples_.empty(), "empty trace");
  EP_REQUIRE(t0 <= t1, "inverted window");
  EP_REQUIRE(t0 >= startTime() && t1 <= endTime(), "window outside trace");
  if (t0 == t1) return Joules{0.0};

  double energy = 0.0;
  Seconds prevT = t0;
  Watts prevP = powerAt(t0);
  for (const auto& s : samples_) {
    if (s.time <= t0) continue;
    if (s.time >= t1) break;
    energy += 0.5 * (prevP.value() + s.power.value()) *
              (s.time - prevT).value();
    prevT = s.time;
    prevP = s.power;
  }
  const Watts endP = powerAt(t1);
  energy += 0.5 * (prevP.value() + endP.value()) * (t1 - prevT).value();
  return Joules{energy};
}

Watts PowerTrace::meanPower() const {
  const Seconds d = duration();
  EP_REQUIRE(d.value() > 0.0, "trace too short for mean power");
  return totalEnergy() / d;
}

}  // namespace ep::power
