#include "power/measurer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ep::power {

EnergyMeasurer::EnergyMeasurer(WattsUpMeter meter, Watts calibratedBasePower)
    : meter_(std::move(meter)), basePower_(calibratedBasePower) {
  EP_REQUIRE(basePower_.value() >= 0.0, "base power must be non-negative");
}

Watts EnergyMeasurer::calibrateBasePower(const WattsUpMeter& meter,
                                         const PowerSource& idle,
                                         Seconds duration, Rng& rng) {
  const PowerTrace trace = meter.record(idle, duration, rng);
  return trace.meanPower();
}

EnergyReading EnergyMeasurer::measureOnce(const ProfilePowerSource& profile,
                                          Seconds executionTime, Rng& rng,
                                          Seconds tailWindow) const {
  PowerTrace scratch;
  return measureOnceInto(profile, executionTime, rng, tailWindow, scratch);
}

EnergyReading EnergyMeasurer::measureOnceInto(const ProfilePowerSource& profile,
                                              Seconds executionTime, Rng& rng,
                                              Seconds tailWindow,
                                              PowerTrace& trace) const {
  EP_REQUIRE(executionTime.value() > 0.0, "execution time must be positive");
  EP_REQUIRE(tailWindow.value() >= 0.0, "tail window must be >= 0");
  // The measurement window covers the execution plus any power tail; the
  // meter keeps recording until node power has returned to base, exactly
  // as HCLWattsUp does when it waits for the meter to settle.
  const Seconds window = executionTime + tailWindow;
  meter_.recordInto(profile, window, rng, trace);
  EnergyReading r;
  // Execution time is timed on-device (cudaEvent-style), not by the
  // meter; model its sub-millisecond jitter.
  const double tJitter = 1.0 + rng.normal(0.0, 5e-4);
  r.executionTime = Seconds{executionTime.value() * tJitter};
  r.totalEnergy = trace.energyBetween(Seconds{0.0}, window);
  r.staticEnergy = basePower_ * window;
  r.dynamicEnergy = r.totalEnergy - r.staticEnergy;
  if (r.dynamicEnergy.value() < 0.0) r.dynamicEnergy = Joules{0.0};
  return r;
}

MeasuredEnergy EnergyMeasurer::measure(
    const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
    Seconds tailWindow, const stats::MeasurementOptions& options) const {
  const stats::MeasurementProtocol protocol(options);
  std::vector<EnergyReading> readings;
  // Typical metered configs converge well before 4x the minimum; the
  // reserve avoids the first few reallocations, and the scratch trace
  // makes the per-repetition recording allocation-free after warm-up.
  readings.reserve(std::min(options.maxRepetitions,
                            options.minRepetitions * 4));
  PowerTrace scratch;
  auto observeEnergy = [&]() {
    readings.push_back(
        measureOnceInto(profile, executionTime, rng, tailWindow, scratch));
    return readings.back().dynamicEnergy.value();
  };
  MeasuredEnergy out;
  {
    // The Student's-t repetition loop: repeats measureOnce until the
    // 95 % CI criterion is met — the dominant cost of a metered study.
    obs::Span ciSpan("stats/ci_loop");
    out.dynamicEnergyStats = protocol.runBestEffort(observeEnergy);
  }
  // Reuse the recorded readings for the time statistics so both series
  // come from the same repetitions, as in the physical methodology.
  std::size_t idx = 0;
  auto observeTime = [&]() {
    return readings[idx++].executionTime.value();
  };
  stats::MeasurementOptions timeOpts = options;
  timeOpts.minRepetitions = std::min(options.minRepetitions, readings.size());
  timeOpts.maxRepetitions = readings.size();
  const stats::MeasurementProtocol timeProtocol(timeOpts);
  out.executionTimeStats = timeProtocol.runBestEffort(observeTime);

  out.mean.dynamicEnergy = Joules{out.dynamicEnergyStats.mean};
  out.mean.executionTime = Seconds{out.executionTimeStats.mean};
  const Seconds window = executionTime + tailWindow;
  out.mean.staticEnergy = basePower_ * window;
  out.mean.totalEnergy = out.mean.dynamicEnergy + out.mean.staticEnergy;
  return out;
}

}  // namespace ep::power
