#include "power/measurer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "power/observer.hpp"

namespace ep::power {

namespace {

struct MeasureCounters {
  obs::Counter& timeouts;
  obs::Counter& retries;
  obs::Counter& invalidTraces;
  obs::Counter& outliersRejected;
  obs::Counter& budgetExhausted;
  obs::Counter& samplesSanitized;
};

// Process-wide recovery accounting; the Prometheus exposition makes the
// campaign's fault handling visible next to the fault-injection counts.
MeasureCounters& measureCounters() {
  static MeasureCounters c{
      obs::Registry::global().counter("ep_measure_timeouts_total",
                                      "Whole-window meter timeouts observed"),
      obs::Registry::global().counter(
          "ep_measure_retries_total",
          "Re-recordings after a meter timeout (with virtual backoff)"),
      obs::Registry::global().counter(
          "ep_measure_invalid_traces_total",
          "Traces rejected by gap/NaN/stuck validation"),
      obs::Registry::global().counter(
          "ep_measure_outliers_rejected_total",
          "Observations rejected by MAD outlier screening"),
      obs::Registry::global().counter(
          "ep_measure_budget_exhausted_total",
          "Measurements abandoned after the re-measure budget ran out"),
      obs::Registry::global().counter(
          "ep_measure_samples_sanitized_total",
          "Impossible readings dropped from traces before integration")};
  return c;
}

// Median of a small scratch vector (mutates it).
double medianOf(std::vector<double>& v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const auto lo = std::max_element(
        v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + *lo);
  }
  return m;
}

// Modified z-score outlier test of `x` against the accepted values.
bool isMadOutlier(const std::vector<double>& accepted, double x,
                  double threshold) {
  std::vector<double> scratch(accepted);
  const double med = medianOf(scratch);
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    scratch[i] = std::fabs(accepted[i] - med);
  }
  const double mad = medianOf(scratch);
  const double dev = std::fabs(x - med);
  if (mad <= 0.0) {
    // Degenerate spread (identical accepted values): fall back to a
    // relative tolerance so a genuinely different reading still trips.
    return dev > 1e-9 * std::max(1.0, std::fabs(med));
  }
  // 0.6745 scales MAD to the sigma of a normal distribution.
  return 0.6745 * dev / mad > threshold;
}

}  // namespace

std::string MeasurementFaultReport::summary() const {
  std::string s = "timeouts=" + std::to_string(timeouts) +
                  " retries=" + std::to_string(retries) +
                  " invalid_traces=" + std::to_string(invalidTraces) +
                  " outliers_rejected=" + std::to_string(outliersRejected) +
                  " samples_sanitized=" + std::to_string(samplesSanitized);
  char buf[48];
  std::snprintf(buf, sizeof buf, " virtual_backoff_s=%.3f", virtualBackoffS);
  return s + buf;
}

bool validateTrace(const PowerTrace& trace, const TraceValidation& options,
                   const char** reason) {
  auto fail = [&](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (trace.empty()) return fail("empty trace");
  const auto& samples = trace.samples();
  for (const auto& s : samples) {
    if (!std::isfinite(s.power.value())) return fail("non-finite reading");
  }
  if (samples.size() >= 3) {
    // Gap check against the trace's own median sampling interval, so
    // the validator needs no knowledge of the instrument's configured
    // rate (and tolerates the bracketing samples at the window edges).
    std::vector<double> gaps;
    gaps.reserve(samples.size() - 1);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      gaps.push_back((samples[i].time - samples[i - 1].time).value());
    }
    std::vector<double> scratch(gaps);
    const double medianGap = medianOf(scratch);
    for (double g : gaps) {
      if (g > options.maxGapFactor * medianGap) {
        return fail("sampling gap");
      }
    }
  }
  if (options.stuckRunLength >= 2) {
    std::size_t run = 1;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      run = (samples[i].power == samples[i - 1].power) ? run + 1 : 1;
      if (run >= options.stuckRunLength) return fail("stuck reading");
    }
  }
  if (reason != nullptr) *reason = "ok";
  return true;
}

std::size_t sanitizeTrace(PowerTrace& trace, double maxPlausibleWatts) {
  const auto good = [maxPlausibleWatts](const PowerSample& s) {
    return std::isfinite(s.power.value()) && s.power.value() > 0.0 &&
           s.power.value() <= maxPlausibleWatts;
  };
  const auto& samples = trace.samples();
  std::size_t bad = 0;
  for (const auto& s : samples) {
    if (!good(s)) ++bad;
  }
  if (bad == 0) return 0;  // the overwhelmingly common case: no copy
  if (bad == samples.size()) {
    trace.clear();  // nothing salvageable; the caller rejects empty traces
    return bad;
  }
  // Interior corruption is dropped (the trapezoid integration bridges
  // the gap); a corrupted *bracketing* sample is repaired by holding the
  // nearest good reading instead, because the energy integral needs the
  // window endpoints to stay covered.
  std::size_t first = 0;
  while (!good(samples[first])) ++first;
  std::size_t last = samples.size() - 1;
  while (!good(samples[last])) --last;
  std::vector<PowerSample> kept;
  kept.reserve(samples.size() - bad + 2);
  if (first > 0) kept.push_back({samples[0].time, samples[first].power});
  for (std::size_t i = first; i <= last; ++i) {
    if (good(samples[i])) kept.push_back(samples[i]);
  }
  if (last + 1 < samples.size()) {
    kept.push_back({samples[samples.size() - 1].time, samples[last].power});
  }
  trace.clear();
  for (const auto& s : kept) trace.append(s);
  return bad;
}

EnergyMeasurer::EnergyMeasurer(std::shared_ptr<const Meter> meter,
                               Watts calibratedBasePower)
    : meter_(std::move(meter)), basePower_(calibratedBasePower) {
  EP_REQUIRE(meter_ != nullptr, "measurer needs a meter");
  EP_REQUIRE(basePower_.value() >= 0.0, "base power must be non-negative");
}

EnergyMeasurer::EnergyMeasurer(WattsUpMeter meter, Watts calibratedBasePower)
    : EnergyMeasurer(std::make_shared<const WattsUpMeter>(std::move(meter)),
                     calibratedBasePower) {}

Watts EnergyMeasurer::calibrateBasePower(const Meter& meter,
                                         const PowerSource& idle,
                                         Seconds duration, Rng& rng) {
  EP_REQUIRE(duration.value() > 0.0,
             "calibration duration must be positive");
  const PowerTrace trace = meter.record(idle, duration, rng);
  EP_REQUIRE(!trace.empty(), "calibration produced an empty trace");
  return trace.meanPower();
}

EnergyReading EnergyMeasurer::measureOnce(const ProfilePowerSource& profile,
                                          Seconds executionTime, Rng& rng,
                                          Seconds tailWindow) const {
  PowerTrace scratch;
  return measureOnceInto(profile, executionTime, rng, tailWindow, scratch);
}

EnergyReading EnergyMeasurer::measureOnceInto(const ProfilePowerSource& profile,
                                              Seconds executionTime, Rng& rng,
                                              Seconds tailWindow,
                                              PowerTrace& trace, bool sanitize,
                                              double maxPlausibleWatts,
                                              std::uint64_t* sanitized) const {
  EP_REQUIRE(executionTime.value() > 0.0, "execution time must be positive");
  EP_REQUIRE(tailWindow.value() >= 0.0, "tail window must be >= 0");
  // The measurement window covers the execution plus any power tail; the
  // meter keeps recording until node power has returned to base, exactly
  // as HCLWattsUp does when it waits for the meter to settle.
  const Seconds window = executionTime + tailWindow;
  meter_->recordInto(profile, window, rng, trace);
  if (sanitize) {
    const std::size_t dropped = sanitizeTrace(trace, maxPlausibleWatts);
    if (dropped > 0) {
      if (sanitized != nullptr) *sanitized += dropped;
      measureCounters().samplesSanitized.inc(dropped);
    }
  }
  EP_REQUIRE(!trace.empty(), "meter delivered an empty trace");
  EnergyReading r;
  // Execution time is timed on-device (cudaEvent-style), not by the
  // meter; model its sub-millisecond jitter.
  const double tJitter = 1.0 + rng.normal(0.0, 5e-4);
  r.executionTime = Seconds{executionTime.value() * tJitter};
  r.totalEnergy = trace.energyBetween(Seconds{0.0}, window);
  r.staticEnergy = basePower_ * window;
  r.dynamicEnergy = r.totalEnergy - r.staticEnergy;
  if (r.dynamicEnergy.value() < 0.0) r.dynamicEnergy = Joules{0.0};
  return r;
}

MeasuredEnergy EnergyMeasurer::measure(
    const ProfilePowerSource& profile, Seconds executionTime, Rng& rng,
    Seconds tailWindow, const stats::MeasurementOptions& options,
    const RobustnessOptions& robustness) const {
  EP_REQUIRE(executionTime.value() > 0.0, "execution time must be positive");
  const stats::MeasurementProtocol protocol(options);
  std::vector<EnergyReading> readings;
  // Typical metered configs converge well before 4x the minimum; the
  // reserve avoids the first few reallocations, and the scratch trace
  // makes the per-repetition recording allocation-free after warm-up.
  readings.reserve(std::min(options.maxRepetitions,
                            options.minRepetitions * 4));
  PowerTrace scratch;
  MeasuredEnergy out;
  // Ground truth for the anomaly watchdog's online decomposition: what
  // the profile says one window should cost (the meter adds noise and,
  // under epfault, injected pathologies on top of this).
  const double windowS = (executionTime + tailWindow).value();
  const double expectedWindowJ =
      profile.exactEnergy(Seconds{0.0}, Seconds{windowS}).value();
  MeasurementFaultReport& report = out.faults;
  std::vector<double> acceptedEnergies;
  std::size_t budgetSpent = 0;

  auto spendBudget = [&](const char* what) {
    if (budgetSpent >= robustness.remeasureBudget) {
      measureCounters().budgetExhausted.inc();
      throw MeasurementError(
          std::string("re-measure budget exhausted after ") + what + " (" +
              report.summary() + ")",
          report);
    }
    ++budgetSpent;
  };

  // One accepted observation: record (with bounded timeout retries),
  // validate the trace, screen the dynamic energy.  Rejections loop
  // back and re-measure from the shared budget.
  auto observeEnergy = [&]() {
    for (;;) {
      EnergyReading reading;
      for (std::size_t attempt = 0;;) {
        try {
          reading =
              measureOnceInto(profile, executionTime, rng, tailWindow,
                              scratch, robustness.sanitizeSamples,
                              robustness.maxPlausibleWatts,
                              &report.samplesSanitized);
          break;
        } catch (const MeterTimeoutError& e) {
          ++report.timeouts;
          measureCounters().timeouts.inc();
          if (attempt >= robustness.timeoutRetries) {
            measureCounters().budgetExhausted.inc();
            throw MeasurementError(
                std::string("meter timeout persisted through ") +
                    std::to_string(robustness.timeoutRetries) +
                    " retries: " + e.what() + " (" + report.summary() + ")",
                report);
          }
          // Deterministic virtual-time exponential backoff: the
          // physical campaign would sleep; the simulation only accounts
          // for the time, keeping the run reproducible and fast.
          report.virtualBackoffS +=
              robustness.backoffBaseS * static_cast<double>(1ULL << attempt);
          ++attempt;
          ++report.retries;
          measureCounters().retries.inc();
        }
      }
      if (robustness.validation.enabled) {
        const char* reason = nullptr;
        if (!validateTrace(scratch, robustness.validation, &reason)) {
          ++report.invalidTraces;
          measureCounters().invalidTraces.inc();
          spendBudget(reason);
          continue;
        }
      }
      const double e = reading.dynamicEnergy.value();
      if (robustness.rejectOutliers) {
        const bool reject =
            !std::isfinite(e) ||
            (acceptedEnergies.size() >= robustness.minSamplesForMad &&
             isMadOutlier(acceptedEnergies, e, robustness.madThreshold));
        if (reject) {
          ++report.outliersRejected;
          measureCounters().outliersRejected.inc();
          spendBudget("outlier rejection");
          continue;
        }
        acceptedEnergies.push_back(e);
      }
      readings.push_back(reading);
      if (MeasureObserver* watcher = measureObserver()) {
        MeasureWindowObservation window;
        window.scope = MeasureScopeLabel::current();
        window.observedJ = reading.totalEnergy.value();
        window.expectedJ = expectedWindowJ;
        window.staticJ = reading.staticEnergy.value();
        window.windowS = windowS;
        window.traceId = obs::currentContext().traceId;
        watcher->onMeasureWindow(window);
      }
      return e;
    }
  };
  {
    // The Student's-t repetition loop: repeats measureOnce until the
    // 95 % CI criterion is met — the dominant cost of a metered study.
    obs::Span ciSpan("stats/ci_loop");
    out.dynamicEnergyStats = protocol.runBestEffort(observeEnergy);
  }
  if (MeasureObserver* watcher = measureObserver()) {
    watcher->onMeasurementResult(MeasureScopeLabel::current(),
                                 out.dynamicEnergyStats.converged,
                                 out.dynamicEnergyStats.interval.precision());
  }
  // Reuse the recorded readings for the time statistics so both series
  // come from the same repetitions, as in the physical methodology.
  std::size_t idx = 0;
  auto observeTime = [&]() {
    return readings[idx++].executionTime.value();
  };
  stats::MeasurementOptions timeOpts = options;
  timeOpts.minRepetitions = std::min(options.minRepetitions, readings.size());
  timeOpts.maxRepetitions = readings.size();
  const stats::MeasurementProtocol timeProtocol(timeOpts);
  out.executionTimeStats = timeProtocol.runBestEffort(observeTime);

  out.mean.dynamicEnergy = Joules{out.dynamicEnergyStats.mean};
  // epprof energy profile: fold this protocol's attributed dynamic
  // joules — the exact quantity the study ledger sums per config — onto
  // the measuring thread's current stack, sliced by the request trace.
  // Once per protocol, so the energy flamegraph total reconciles with
  // RequestReport.attributedJoules.
  if (obs::profilerArmed() && std::isfinite(out.dynamicEnergyStats.mean)) {
    obs::Profiler::global().recordEnergySample(out.dynamicEnergyStats.mean,
                                               obs::currentContext().traceId);
  }
  out.mean.executionTime = Seconds{out.executionTimeStats.mean};
  const Seconds window = executionTime + tailWindow;
  out.mean.staticEnergy = basePower_ * window;
  out.mean.totalEnergy = out.mean.dynamicEnergy + out.mean.staticEnergy;
  return out;
}

}  // namespace ep::power
