#include "power/meter.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ep::power {

WattsUpMeter::WattsUpMeter(MeterOptions options) : options_(options) {
  EP_REQUIRE(options_.sampleInterval.value() > 0.0,
             "sample interval must be positive");
  EP_REQUIRE(options_.quantization.value() >= 0.0,
             "quantization must be non-negative");
}

void WattsUpMeter::recordInto(const PowerSource& source, Seconds duration,
                              Rng& rng, PowerTrace& trace) const {
  EP_REQUIRE(duration.value() > 0.0, "record duration must be positive");
  EP_REQUIRE(std::isfinite(duration.value()), "record duration must be finite");
  const double dt = options_.sampleInterval.value();
  double t = options_.randomPhase ? rng.uniform(0.0, dt) : 0.0;
  trace.clear();
  trace.reserve(static_cast<std::size_t>(duration.value() / dt) + 2);
  // Always bracket the window with a sample at t=0 and t=duration so
  // integration windows inside [0, duration] are well defined.
  auto sampleAt = [&](double time) {
    // The instrument internally averages over its sampling window; we
    // approximate with the midpoint of the trailing interval.
    const double mid = std::max(0.0, time - 0.5 * dt);
    double p = source.powerAt(Seconds{mid}).value();
    p *= 1.0 + rng.normal(0.0, options_.gainNoiseSigma);
    p += rng.normal(0.0, options_.additiveNoiseSigma.value());
    if (options_.quantization.value() > 0.0) {
      const double q = options_.quantization.value();
      p = std::round(p / q) * q;
    }
    trace.append({Seconds{time}, Watts{std::max(0.0, p)}});
  };
  if (t > 0.0) sampleAt(0.0);
  while (t < duration.value()) {
    sampleAt(t);
    t += dt;
  }
  if (trace.empty() || trace.endTime() < duration) sampleAt(duration.value());
}

}  // namespace ep::power
