// Measurement observation seam: a process-global hook that sees every
// accepted measurement window and every finished CI protocol, without
// eppower depending on whoever consumes them (the power-anomaly
// watchdog lives in epcore, which layers above this library).
//
// The hook is a single relaxed atomic pointer — a nullptr check per
// accepted window when no observer is installed, which is noise next
// to recording a trace.  Installation is expected at process setup
// (epserved startup, a test fixture); the observer must outlive every
// measurement that can still call it.
//
// Attribution scope: measurements themselves don't know which device
// or model they serve, so the layer that does (the study app) installs
// a thread-local MeasureScopeLabel around its measurement calls and
// the observation carries it.
#pragma once

#include <atomic>
#include <cstdint>

namespace ep::power {

// One accepted measurement window, after sanitization/validation.
struct MeasureWindowObservation {
  const char* scope = "";      // MeasureScopeLabel in effect ("" = none)
  double observedJ = 0.0;      // integrated total energy of the window
  double expectedJ = 0.0;      // profile ground truth for the window
  double staticJ = 0.0;        // calibrated base power x window
  double windowS = 0.0;        // window length (execution + tail)
  std::uint64_t traceId = 0;   // request in scope when measured
};

class MeasureObserver {
 public:
  virtual ~MeasureObserver() = default;
  // Called once per accepted window, on the measuring thread.  Must be
  // thread-safe; measurements run concurrently on the pool.
  virtual void onMeasureWindow(const MeasureWindowObservation& obs) = 0;
  // Called once per finished CI protocol with the convergence verdict
  // (precision is the achieved relative CI half-width).
  virtual void onMeasurementResult(const char* scope, bool converged,
                                   double precision) = 0;
};

// Install (or clear, with nullptr) the process-global observer.
void setMeasureObserver(MeasureObserver* observer);
[[nodiscard]] MeasureObserver* measureObserver();

// RAII thread-local scope label naming what is being measured (device
// spec name, calibration phase, ...).  Nests; the innermost label wins.
// The pointed-to string must outlive the scope.
class MeasureScopeLabel {
 public:
  explicit MeasureScopeLabel(const char* label);
  ~MeasureScopeLabel();

  MeasureScopeLabel(const MeasureScopeLabel&) = delete;
  MeasureScopeLabel& operator=(const MeasureScopeLabel&) = delete;

  [[nodiscard]] static const char* current();

 private:
  const char* prev_;
};

}  // namespace ep::power
