#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace ep::fft {

namespace {

void bitReversePermute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

void fftRadix2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  EP_REQUIRE(isPowerOfTwo(n), "radix-2 FFT needs a power-of-two size");
  if (n == 1) return;
  bitReversePermute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fftBluestein(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  EP_REQUIRE(n >= 1, "empty FFT");
  if (n == 1) return;
  if (isPowerOfTwo(n)) {
    fftRadix2(data, inverse);
    return;
  }
  // Chirp-z: x_k * a_k convolved with b, where a_k = e^{-i pi k^2 / n}
  // (sign flipped for the inverse transform).
  const std::size_t m = nextPowerOfTwo(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double angle = sign * std::numbers::pi * k2 / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = data[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) {
    b[m - k] = b[k];  // symmetric wrap for circular convolution
  }
  fftRadix2(a, false);
  fftRadix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fftRadix2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * scale * chirp[k];
  }
}

void fft(std::span<Complex> data, bool inverse) {
  if (isPowerOfTwo(data.size())) {
    fftRadix2(data, inverse);
  } else {
    fftBluestein(data, inverse);
  }
}

void ifftNormalized(std::span<Complex> data) {
  fft(data, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= scale;
}

namespace {

void transpose(std::size_t n, std::span<Complex> data) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::swap(data[i * n + j], data[j * n + i]);
    }
  }
}

void fftRows(std::size_t n, std::span<Complex> data, ThreadPool* pool,
             bool inverse) {
  if (pool != nullptr) {
    pool->parallelFor(0, n, [&](std::size_t row) {
      fft(data.subspan(row * n, n), inverse);
    });
  } else {
    for (std::size_t row = 0; row < n; ++row) {
      fft(data.subspan(row * n, n), inverse);
    }
  }
}

}  // namespace

void fft2d(std::size_t n, std::span<Complex> data, ThreadPool* pool,
           bool inverse) {
  EP_REQUIRE(data.size() == n * n, "2D FFT needs an n x n matrix");
  EP_REQUIRE(n >= 1, "empty 2D FFT");
  fftRows(n, data, pool, inverse);
  transpose(n, data);
  fftRows(n, data, pool, inverse);
  transpose(n, data);
}

double fftWork(std::size_t n) {
  EP_REQUIRE(n >= 2, "work metric needs n >= 2");
  const double dn = static_cast<double>(n);
  return 5.0 * dn * dn * std::log2(dn);  // paper: W = 5 N^2 log2 N
}

}  // namespace ep::fft
