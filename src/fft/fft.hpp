// Fast Fourier transforms.
//
// The Fig 1 application computes the 2D discrete Fourier transform of an
// N x N complex signal for arbitrary N (the paper sweeps N from 125 to
// 44000, most of them not powers of two).  We provide:
//   * fftRadix2   — iterative in-place Cooley-Tukey for power-of-two n,
//   * fftBluestein — chirp-z fallback for arbitrary n,
//   * fft/ifft    — dispatch on size,
//   * fft2d       — row-column 2D transform, rows parallelized over a
//                   thread pool (the paper's load-balanced design: rows
//                   split equally, no inter-thread communication).
#pragma once

#include <complex>
#include <span>

#include "common/thread_pool.hpp"

namespace ep::fft {

using Complex = std::complex<double>;

// In-place FFT for power-of-two sizes.  inverse applies the conjugate
// transform WITHOUT the 1/n scale (caller normalizes; matches FFTW/MKL
// convention).
void fftRadix2(std::span<Complex> data, bool inverse);

// Arbitrary-size FFT via Bluestein's chirp-z algorithm (same scaling
// convention).
void fftBluestein(std::span<Complex> data, bool inverse);

// Dispatch: radix-2 when the size is a power of two, Bluestein otherwise.
void fft(std::span<Complex> data, bool inverse = false);
void ifftNormalized(std::span<Complex> data);  // inverse including 1/n

// 2D FFT of an n x n row-major matrix: FFT of every row, transpose,
// FFT of every (former) column, transpose back.  pool == nullptr runs
// sequentially.
void fft2d(std::size_t n, std::span<Complex> data, ThreadPool* pool = nullptr,
           bool inverse = false);

// The paper's work metric for the N x N 2D FFT: W = 5 N^2 log2 N.
[[nodiscard]] double fftWork(std::size_t n);

}  // namespace ep::fft
