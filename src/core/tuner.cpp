#include "core/tuner.hpp"

#include "common/error.hpp"

namespace ep::core {

BiObjectiveTuner::BiObjectiveTuner(double maxDegradation)
    : maxDegradation_(maxDegradation) {
  EP_REQUIRE(maxDegradation_ >= 0.0, "degradation budget must be >= 0");
}

TunerRecommendation BiObjectiveTuner::recommend(
    const std::vector<pareto::BiPoint>& points) const {
  EP_REQUIRE(!points.empty(), "tuner needs measured points");
  TunerRecommendation rec;
  if (points.size() == 1) {
    // A single measured configuration is trivially every optimum; this
    // also sidesteps the positivity requirements of the trade-off
    // analysis, which a lone (possibly zero-valued) point cannot meet.
    const pareto::BiPoint& only = points.front();
    rec.globalFront = {only};
    rec.performanceOptimal = only;
    rec.energyOptimal = only;
    rec.knee = only;
    rec.recommended = only;
    return rec;
  }
  rec.globalFront = pareto::paretoFront(points);
  const pareto::Tradeoff overall = pareto::analyzeTradeoff(points);
  rec.performanceOptimal = overall.performanceOptimal;
  rec.energyOptimal = overall.energyOptimal;
  rec.knee = pareto::kneePoint(rec.globalFront);

  const auto budgeted = pareto::savingsUnderBudget(points, maxDegradation_);
  if (budgeted.has_value()) {
    rec.recommended = budgeted->energyOptimal;
    rec.energySavings = budgeted->maxEnergySavings;
    rec.performanceDegradation = budgeted->performanceDegradation;
  } else {
    rec.recommended = rec.performanceOptimal;
    rec.energySavings = 0.0;
    rec.performanceDegradation = 0.0;
  }
  return rec;
}

}  // namespace ep::core
