// Section III: the paper's theoretical analysis of weak-EP violation for
// the simplest case — two homogeneous cores obeying the simple EP model
//
//   P_i = a * U_i           (dynamic power linear in utilization)
//   t   = b / U             (execution time inversely prop. to utilization)
//
// with a shared completion time max_j(b / U_j) (the slowest core gates
// the parallel application).  Equations (1)-(3) of the paper fall out of
// twoCoreEnergy(); the theorems E3 > E2 > E1 hold for every dU > 0.
#pragma once

namespace ep::core {

struct SimpleEpModel {
  double a = 1.0;  // power-per-utilization constant
  double b = 1.0;  // time constant: t = b / U
};

struct TwoCoreEnergy {
  double core1 = 0.0;   // E_d of core 1
  double core2 = 0.0;   // E_d of core 2
  double total = 0.0;   // E = E_d1 + E_d2
  double time = 0.0;    // application completion time
};

// Dynamic energy of two cores at utilizations u1, u2 executing one
// application whose completion time is gated by the slower core:
//   E_di = a * u_i * max(b/u1, b/u2).
[[nodiscard]] TwoCoreEnergy twoCoreEnergy(const SimpleEpModel& model,
                                          double u1, double u2);

// The paper's three scenarios at base utilization U and perturbation dU:
//   E1: both cores at U            (equation 1; E1 = 2ab)
//   E2: core1 at U+dU, core2 at U  (equation 2; E2 > E1)
//   E3: core1 at U+dU, core2 U-dU  (equation 3; E3 > E2 > E1)
struct PaperScenarios {
  TwoCoreEnergy e1;
  TwoCoreEnergy e2;
  TwoCoreEnergy e3;
};

// Requires 0 < dU < U and U + dU <= 1.
[[nodiscard]] PaperScenarios paperScenarios(const SimpleEpModel& model,
                                            double u, double du);

}  // namespace ep::core
