// Bi-objective application tuner: the practical payoff of the paper.
//
// Given the measured (time, dynamic energy) points of every
// configuration solving a workload, recommend:
//   * the performance-optimal configuration,
//   * the energy-optimal configuration,
//   * the best configuration under a performance-degradation budget
//     ("save as much dynamic energy as possible while staying within
//      x % of the fastest"), and
//   * the knee (balanced) configuration of the global Pareto front.
#pragma once

#include <optional>
#include <vector>

#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::core {

struct TunerRecommendation {
  pareto::BiPoint performanceOptimal;
  pareto::BiPoint energyOptimal;
  pareto::BiPoint knee;
  std::vector<pareto::BiPoint> globalFront;
  // Chosen point under the budget (== performanceOptimal when no point
  // saves energy within it).
  pareto::BiPoint recommended;
  double energySavings = 0.0;           // vs performance optimal
  double performanceDegradation = 0.0;  // vs performance optimal
};

class BiObjectiveTuner {
 public:
  // maxDegradation: allowed slowdown fraction, e.g. 0.07 for 7 %.
  // A budget of exactly 0 is valid: only the performance optimum (or a
  // time-tied cheaper point) can be recommended.
  explicit BiObjectiveTuner(double maxDegradation);

  // Degenerate inputs are well-defined: an empty point set throws
  // PreconditionError; a single point (even with zero-valued
  // objectives) is returned as every optimum with zero savings and
  // degradation; duplicate points never trip the dominance logic.
  [[nodiscard]] TunerRecommendation recommend(
      const std::vector<pareto::BiPoint>& points) const;

  [[nodiscard]] double maxDegradation() const { return maxDegradation_; }

 private:
  double maxDegradation_;
};

}  // namespace ep::core
