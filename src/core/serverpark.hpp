// Server-fleet energy-proportionality survey in the style of Ryckbosch,
// Polfliet and Eeckhout [5], who analyzed SPECpower_ssj2008 curves of
// ~210 servers from ~20 vendors and found that only some exhibit the
// linear (proportional) relationship.
//
// We model each server's power curve with the standard two-parameter
// form P(u) = peak * (idleFraction + (1 - idleFraction) * u^curvature):
// idleFraction is the idle floor relative to peak (the dominant EP
// killer), curvature captures sub-/super-linear dynamic response.  A
// fleet is a seeded random population of such curves; the survey
// computes the SPECpower-style load ladder per server and the EP-metric
// distribution over the fleet.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/metrics.hpp"

namespace ep::core {

struct ServerPowerCurve {
  std::string name;
  double peakWatts = 0.0;
  double idleFraction = 0.0;  // idle power / peak power, in [0, 1)
  double curvature = 1.0;     // exponent of the dynamic response

  // Power at utilization u in [0, 1].
  [[nodiscard]] double powerAt(double u) const;
};

// SPECpower-style ladder: samples at 0 %, 10 %, ..., 100 % load.
[[nodiscard]] std::vector<PowerSampleU> specPowerLadder(
    const ServerPowerCurve& curve);

// Random fleet with vendor-like parameter spreads.
[[nodiscard]] std::vector<ServerPowerCurve> generateFleet(std::size_t count,
                                                          Rng& rng);

struct FleetSurvey {
  std::size_t servers = 0;
  double meanEpMetric = 0.0;
  double minEpMetric = 0.0;
  double maxEpMetric = 0.0;
  // Servers whose max deviation from the ideal line is below 10 %
  // ("some servers exhibit a linear relationship", [5]).
  std::size_t nearlyProportionalCount = 0;
};

[[nodiscard]] FleetSurvey surveyFleet(
    const std::vector<ServerPowerCurve>& fleet);

}  // namespace ep::core
