// Energy-proportionality metrics from the related-work section:
//
//   * Ryckbosch/Polfliet/Eeckhout [5]: EP = 1 - (area between the actual
//     power-vs-utilization curve and the ideal linear curve) / (area
//     under the ideal curve).  EP = 1 for a perfectly proportional
//     server; < 1 when the curve bows above the ideal.
//   * Hsu-Poole-style linear deviation [30]: the maximum relative
//     deviation of measured power from the ideal line.
//   * Wong-Annavaram-style per-level proportionality [6]: proportionality
//     at each utilization level, exposing non-uniform EP improvements.
//
// All operate on (utilization fraction in [0,1], power watts) samples of
// a *functional* power curve.  The paper's point is that modern
// multicores are not even functional (same utilization, different
// power); curveFromScatter fits the best functional approximation and
// reports the residual scatter, quantifying that non-functionality.
#pragma once

#include <span>
#include <vector>

namespace ep::core {

struct PowerSampleU {
  double utilization = 0.0;  // [0, 1]
  double powerW = 0.0;       // dynamic power
};

// Ryckbosch et al. EP metric.  Samples must cover (roughly) the full
// utilization range; the ideal line runs from (0, 0) to (1, P(1)) where
// P(1) is the power of the highest-utilization sample.
[[nodiscard]] double ryckboschEpMetric(std::span<const PowerSampleU> samples);

// Maximum |P(u) - ideal(u)| / ideal(u) over the samples (u > 0).
[[nodiscard]] double maxLinearDeviation(std::span<const PowerSampleU> samples);

struct ScatterAnalysis {
  // Piecewise-mean functional fit: utilization bins -> mean power.
  std::vector<double> binCenters;
  std::vector<double> binMeanPower;
  // Residual scatter: max (P - mean(bin)) / mean(bin) over all samples —
  // zero for a functional relationship, large for the paper's Fig 4.
  double maxResidual = 0.0;
  // RMS of relative residuals.
  double rmsResidual = 0.0;
};

// Quantify how non-functional the power-utilization relationship is.
[[nodiscard]] ScatterAnalysis analyzeScatter(
    std::span<const PowerSampleU> samples, std::size_t bins = 10);

struct LevelProportionality {
  double utilization = 0.0;       // level (bin center)
  double proportionality = 0.0;   // ideal(u) / mean measured P(u)
};

// Wong-Annavaram-style per-level proportionality [6]: EP improvements
// are not uniform across utilization levels; this reports the ratio of
// the ideal linear power to the mean measured power at each level
// (1.0 = proportional at that level, < 1 = over-consuming).
[[nodiscard]] std::vector<LevelProportionality> perLevelProportionality(
    std::span<const PowerSampleU> samples, std::size_t levels = 10);

}  // namespace ep::core
