#include "core/study.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "core/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ep::core {

GpuEpStudy::GpuEpStudy(apps::GpuMatMulApp app) : app_(std::move(app)) {}

void finalizeWorkload(WorkloadResult& r) {
  obs::Span frontSpan("study/front_construction");
  r.points = apps::GpuMatMulApp::toPoints(r.data);
  r.globalFront = pareto::paretoFront(r.points);
  r.localFront = pareto::localFront(r.points, 2);
  r.globalTradeoff = pareto::analyzeTradeoff(r.points);
  if (!r.localFront.empty()) {
    r.localTradeoff = pareto::analyzeTradeoff(r.localFront);
  } else {
    r.localTradeoff.reset();
  }
}

EnergyAttribution attributeEnergy(const WorkloadResult& r) {
  EnergyAttribution a;
  for (const auto& d : r.data) {
    a.joules += d.dynamicEnergy.value();
    a.windows += d.repetitions;
    a.remeasures += d.remeasures;
  }
  a.skippedConfigs = r.failures.size();
  return a;
}

WorkloadResult GpuEpStudy::runWorkload(int n, Rng& rng,
                                       ThreadPool* pool) const {
  static obs::Counter& workloads = obs::Registry::global().counter(
      "ep_study_workloads_total", "Workload studies executed by GpuEpStudy");
  obs::Span span("study/workload");
  workloads.inc();
  WorkloadResult r;
  r.n = n;
  {
    // The expensive phase: every launchable configuration through the
    // model (and, with the meter on, the measurement protocol).
    obs::Span appSpan("study/app_eval");
    r.data = app_.runWorkload(n, rng, pool, &r.failures);
  }
  EP_REQUIRE(!r.data.empty(),
             r.failures.empty()
                 ? std::string("no launchable configurations for workload")
                 : "every configuration failed measurement (" +
                       std::to_string(r.failures.size()) + " failures), e.g. " +
                       r.failures.front().error);
  finalizeWorkload(r);
  return r;
}

std::vector<WorkloadResult> GpuEpStudy::runSweep(const std::vector<int>& sizes,
                                                 Rng& rng,
                                                 ThreadPool* pool) const {
  std::vector<WorkloadResult> out(sizes.size());
  const auto evalOne = [&](std::size_t i) {
    Rng nRng = rng.fork(static_cast<std::uint64_t>(sizes[i]) * 0x9E37ULL);
    out[i] = runWorkload(sizes[i], nRng, pool);
  };
  if (pool == nullptr || sizes.size() < 2) {
    for (std::size_t i = 0; i < sizes.size(); ++i) evalOne(i);
    return out;
  }
  // Each workload nests its own parallelFor over configurations on the
  // same pool; caller work-participation keeps that deadlock-free.
  obs::Span span("study/parallel_eval");
  pool->parallelFor(0, sizes.size(), evalOne, /*grain=*/1);
  return out;
}

std::uint64_t GpuEpStudy::checkpointHash(std::uint64_t seed) const {
  const auto& o = app_.options();
  std::uint64_t h = mix64(0, seed);
  // The device identity matters as much as the options: a P100 journal
  // must not satisfy a K40c resume even with identical tuning knobs.
  for (const char c : app_.model().spec().name) {
    h = mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  h = mix64(h, static_cast<std::uint64_t>(o.totalProducts));
  h = mix64(h, static_cast<std::uint64_t>(o.bsMin));
  h = mix64(h, static_cast<std::uint64_t>(o.bsMax));
  h = mix64(h, static_cast<std::uint64_t>(o.gMax));
  h = mix64(h, o.useMeter ? 1ULL : 0ULL);
  h = mix64(h, doubleBits(o.hostIdlePower.value()));
  h = mix64(h, o.faults.enabled ? 1ULL : 0ULL);
  h = mix64(h, doubleBits(o.faults.sampleFaultRate));
  h = mix64(h, doubleBits(o.faults.timeoutRate));
  h = mix64(h, doubleBits(o.faults.gainDriftRate));
  h = mix64(h, o.faults.streamSalt);
  // Robustness knobs alter the accepted readings (and the draw
  // sequence), so they are part of the journal identity too.
  h = mix64(h, o.robustness.validation.enabled ? 1ULL : 0ULL);
  h = mix64(h, doubleBits(o.robustness.validation.maxGapFactor));
  h = mix64(h, static_cast<std::uint64_t>(o.robustness.validation.stuckRunLength));
  h = mix64(h, o.robustness.sanitizeSamples ? 1ULL : 0ULL);
  h = mix64(h, doubleBits(o.robustness.maxPlausibleWatts));
  h = mix64(h, o.robustness.rejectOutliers ? 1ULL : 0ULL);
  h = mix64(h, doubleBits(o.robustness.madThreshold));
  h = mix64(h, static_cast<std::uint64_t>(o.robustness.minSamplesForMad));
  h = mix64(h, static_cast<std::uint64_t>(o.robustness.remeasureBudget));
  h = mix64(h, static_cast<std::uint64_t>(o.robustness.timeoutRetries));
  h = mix64(h, doubleBits(o.robustness.backoffBaseS));
  h = mix64(h, o.failPolicy == fault::FailPolicy::SkipAndRecord ? 1ULL : 0ULL);
  return h;
}

SweepResult GpuEpStudy::runSweepChecked(const std::vector<int>& sizes,
                                        Rng& rng, const SweepOptions& options,
                                        ThreadPool* pool) const {
  SweepResult out;
  std::map<int, WorkloadResult> resumed;
  std::unique_ptr<StudyJournal> journal;
  if (!options.checkpointPath.empty()) {
    const std::uint64_t hash = checkpointHash(rng.seed());
    resumed = StudyJournal::load(options.checkpointPath, hash, app_);
    journal = std::make_unique<StudyJournal>(options.checkpointPath, hash);
  }
  const bool skip = options.workloadPolicy == fault::FailPolicy::SkipAndRecord;
  std::vector<WorkloadResult> slots(sizes.size());
  std::vector<char> done(sizes.size(), 0);
  std::vector<char> wasResumed(sizes.size(), 0);
  std::vector<std::string> errs(sizes.size());
  // The sweep's parallel/deterministic contract is runSweep's; resumed
  // workloads skip evaluation entirely (their forked stream is never
  // drawn from, which is why resume == uninterrupted bit for bit), and
  // journal appends serialize inside StudyJournal.
  const auto evalOne = [&](std::size_t i) {
    const int n = sizes[i];
    if (auto it = resumed.find(n); it != resumed.end()) {
      slots[i] = it->second;
      done[i] = 1;
      wasResumed[i] = 1;
      return;
    }
    Rng nRng = rng.fork(static_cast<std::uint64_t>(n) * 0x9E37ULL);
    if (!skip) {
      slots[i] = runWorkload(n, nRng, pool);
      done[i] = 1;
    } else {
      try {
        slots[i] = runWorkload(n, nRng, pool);
        done[i] = 1;
      } catch (const EpError& e) {
        errs[i] = e.what();
      }
    }
    if (done[i] != 0 && journal != nullptr) journal->append(slots[i]);
  };
  if (pool == nullptr || sizes.size() < 2) {
    for (std::size_t i = 0; i < sizes.size(); ++i) evalOne(i);
  } else {
    obs::Span span("study/parallel_eval");
    pool->parallelFor(0, sizes.size(), evalOne, /*grain=*/1);
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (done[i] != 0) {
      out.resumedWorkloads += static_cast<std::size_t>(wasResumed[i]);
      out.results.push_back(std::move(slots[i]));
    } else {
      out.failures.push_back({sizes[i], std::move(errs[i])});
    }
  }
  return out;
}

FrontStatistics GpuEpStudy::summarize(
    const std::vector<WorkloadResult>& results) {
  EP_REQUIRE(!results.empty(), "no workloads to summarize");
  FrontStatistics s;
  s.workloads = results.size();
  double sumGlobal = 0.0, sumLocal = 0.0;
  for (const auto& r : results) {
    sumGlobal += static_cast<double>(r.globalFront.size());
    sumLocal += static_cast<double>(r.localFront.size());
    s.maxGlobalFrontSize = std::max(s.maxGlobalFrontSize,
                                    r.globalFront.size());
    s.maxLocalFrontSize = std::max(s.maxLocalFrontSize, r.localFront.size());
    if (r.globalTradeoff.maxEnergySavings > s.maxGlobalSavings) {
      s.maxGlobalSavings = r.globalTradeoff.maxEnergySavings;
      s.degradationAtMaxGlobalSavings =
          r.globalTradeoff.performanceDegradation;
    }
    if (r.localTradeoff.has_value() &&
        r.localTradeoff->maxEnergySavings > s.maxLocalSavings) {
      s.maxLocalSavings = r.localTradeoff->maxEnergySavings;
      s.degradationAtMaxLocalSavings =
          r.localTradeoff->performanceDegradation;
    }
  }
  s.avgGlobalFrontSize = sumGlobal / static_cast<double>(results.size());
  s.avgLocalFrontSize = sumLocal / static_cast<double>(results.size());
  return s;
}

}  // namespace ep::core
