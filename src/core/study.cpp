#include "core/study.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ep::core {

GpuEpStudy::GpuEpStudy(apps::GpuMatMulApp app) : app_(std::move(app)) {}

WorkloadResult GpuEpStudy::runWorkload(int n, Rng& rng,
                                       ThreadPool* pool) const {
  static obs::Counter& workloads = obs::Registry::global().counter(
      "ep_study_workloads_total", "Workload studies executed by GpuEpStudy");
  obs::Span span("study/workload");
  workloads.inc();
  WorkloadResult r;
  r.n = n;
  {
    // The expensive phase: every launchable configuration through the
    // model (and, with the meter on, the measurement protocol).
    obs::Span appSpan("study/app_eval");
    r.data = app_.runWorkload(n, rng, pool);
  }
  EP_REQUIRE(!r.data.empty(), "no launchable configurations for workload");
  {
    obs::Span frontSpan("study/front_construction");
    r.points = apps::GpuMatMulApp::toPoints(r.data);
    r.globalFront = pareto::paretoFront(r.points);
    r.localFront = pareto::localFront(r.points, 2);
    r.globalTradeoff = pareto::analyzeTradeoff(r.points);
    if (!r.localFront.empty()) {
      r.localTradeoff = pareto::analyzeTradeoff(r.localFront);
    }
  }
  return r;
}

std::vector<WorkloadResult> GpuEpStudy::runSweep(const std::vector<int>& sizes,
                                                 Rng& rng,
                                                 ThreadPool* pool) const {
  std::vector<WorkloadResult> out(sizes.size());
  const auto evalOne = [&](std::size_t i) {
    Rng nRng = rng.fork(static_cast<std::uint64_t>(sizes[i]) * 0x9E37ULL);
    out[i] = runWorkload(sizes[i], nRng, pool);
  };
  if (pool == nullptr || sizes.size() < 2) {
    for (std::size_t i = 0; i < sizes.size(); ++i) evalOne(i);
    return out;
  }
  // Each workload nests its own parallelFor over configurations on the
  // same pool; caller work-participation keeps that deadlock-free.
  obs::Span span("study/parallel_eval");
  pool->parallelFor(0, sizes.size(), evalOne, /*grain=*/1);
  return out;
}

FrontStatistics GpuEpStudy::summarize(
    const std::vector<WorkloadResult>& results) {
  EP_REQUIRE(!results.empty(), "no workloads to summarize");
  FrontStatistics s;
  s.workloads = results.size();
  double sumGlobal = 0.0, sumLocal = 0.0;
  for (const auto& r : results) {
    sumGlobal += static_cast<double>(r.globalFront.size());
    sumLocal += static_cast<double>(r.localFront.size());
    s.maxGlobalFrontSize = std::max(s.maxGlobalFrontSize,
                                    r.globalFront.size());
    s.maxLocalFrontSize = std::max(s.maxLocalFrontSize, r.localFront.size());
    if (r.globalTradeoff.maxEnergySavings > s.maxGlobalSavings) {
      s.maxGlobalSavings = r.globalTradeoff.maxEnergySavings;
      s.degradationAtMaxGlobalSavings =
          r.globalTradeoff.performanceDegradation;
    }
    if (r.localTradeoff.has_value() &&
        r.localTradeoff->maxEnergySavings > s.maxLocalSavings) {
      s.maxLocalSavings = r.localTradeoff->maxEnergySavings;
      s.degradationAtMaxLocalSavings =
          r.localTradeoff->performanceDegradation;
    }
  }
  s.avgGlobalFrontSize = sumGlobal / static_cast<double>(results.size());
  s.avgLocalFrontSize = sumLocal / static_cast<double>(results.size());
  return s;
}

}  // namespace ep::core
