// Generalization of the Section III two-core analysis to n homogeneous
// cores and to non-linear (concave polynomial) per-core power models —
// the investigation the paper lists as future work.
//
// Each of the n cores obeys P_i = a * U_i^gamma (gamma = 1 is the simple
// EP model; gamma < 1 the concave responses reported by [6], [30]).
// Per-core time is b / U_i and the load-balanced application completes
// when the slowest core finishes, so every core consumes its dynamic
// power for T = b / min_i(U_i).
#pragma once

#include <span>

namespace ep::core {

struct NCoreModel {
  double a = 1.0;      // power scale
  double b = 1.0;      // time scale
  double gamma = 1.0;  // power-vs-utilization exponent, in (0, 1]
};

struct NCoreEnergy {
  double total = 0.0;  // sum of per-core dynamic energies
  double time = 0.0;   // completion time b / min(U)
};

// Dynamic energy of the utilization vector `us` (all in (0, 1]).
[[nodiscard]] NCoreEnergy nCoreEnergy(const NCoreModel& model,
                                      std::span<const double> us);

// Energy of the uniform configuration with the same average utilization.
[[nodiscard]] NCoreEnergy uniformEnergy(const NCoreModel& model,
                                        std::size_t cores, double avgU);

// Relative energy penalty of `us` vs the uniform configuration at the
// same average utilization: (E(us) - E(uniform)) / E(uniform).  By the
// generalized Section III result this is >= 0, with equality iff the
// utilizations are all equal.
[[nodiscard]] double imbalancePenalty(const NCoreModel& model,
                                      std::span<const double> us);

}  // namespace ep::core
