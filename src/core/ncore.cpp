#include "core/ncore.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace ep::core {

NCoreEnergy nCoreEnergy(const NCoreModel& model, std::span<const double> us) {
  EP_REQUIRE(model.a > 0.0 && model.b > 0.0, "model constants must be > 0");
  EP_REQUIRE(model.gamma > 0.0 && model.gamma <= 1.0,
             "gamma must be in (0, 1]");
  EP_REQUIRE(!us.empty(), "need at least one core");
  double minU = 1.0;
  for (double u : us) {
    EP_REQUIRE(u > 0.0 && u <= 1.0, "utilizations must be in (0,1]");
    minU = std::min(minU, u);
  }
  NCoreEnergy e;
  e.time = model.b / minU;
  double powerSum = 0.0;
  for (double u : us) powerSum += model.a * std::pow(u, model.gamma);
  e.total = powerSum * e.time;
  return e;
}

NCoreEnergy uniformEnergy(const NCoreModel& model, std::size_t cores,
                          double avgU) {
  EP_REQUIRE(cores >= 1, "need at least one core");
  const std::vector<double> us(cores, avgU);
  return nCoreEnergy(model, us);
}

double imbalancePenalty(const NCoreModel& model, std::span<const double> us) {
  EP_REQUIRE(!us.empty(), "need at least one core");
  double sum = 0.0;
  for (double u : us) sum += u;
  const double avg = sum / static_cast<double>(us.size());
  const NCoreEnergy actual = nCoreEnergy(model, us);
  const NCoreEnergy uniform = uniformEnergy(model, us.size(), avg);
  return (actual.total - uniform.total) / uniform.total;
}

}  // namespace ep::core
