// Power-anomaly watchdog: always-on, online detection of the
// pathologies the paper only finds offline.
//
// The key example is Fig 6's constant ~58 W component: total energy of
// a compound workload exceeds the sum of its parts by a constant power
// draw — an energy-expensive component switching on.  Offline, the
// paper detects it by decomposing measured energy against the additive
// model.  This watchdog does the same decomposition per accepted
// measurement window, online: the window's observed energy minus the
// profile's expected energy (base power + workload model) leaves a
// residual; divided by the window length it is the residual *power*
// component.  A rolling median of residual watts per scope that sits
// at or above the threshold raises a ConstantComponent anomaly — a
// single spiked window does not (the median absorbs it), which is
// exactly the step-vs-noise distinction Fig 6 needs.
//
// Two more budget checks ride on the same event stream:
//   * CiDegraded — a measurement protocol finishing non-converged with
//     a precision worse than the configured limit.
//   * ErrorBudget — the serve layer feeds request outcomes; when the
//     error+stale fraction of the rolling request window exceeds the
//     budget, the scope is flagged.
//
// Events land in an obs::FlightRecorder (lock-free ring), drainable
// via epserved's {"op":"events"} and rendered by tools/epwatch.
// Raised anomalies stay "active" until the signal clears (hysteresis),
// so `epwatch --check` can gate deploys/scripts on a calm system.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "power/observer.hpp"

namespace ep::core {

struct WatchdogOptions {
  // ConstantComponent: rolling median of residual watts >= this raises.
  double constantComponentWatts = 25.0;
  std::size_t rollingWindows = 8;  // residuals kept per scope
  std::size_t minWindows = 4;      // needed before judging
  // Hysteresis: an active alert clears when the median falls below
  // threshold * clearFraction.
  double clearFraction = 0.5;
  // CiDegraded: a non-converged protocol with achieved precision worse
  // than this raises.
  double ciPrecisionLimit = 0.10;
  // ErrorBudget: error+stale fraction of the rolling request window.
  double errorBudget = 0.10;
  std::size_t requestWindow = 64;  // outcomes kept per scope
  std::size_t minRequests = 16;    // needed before judging
  std::size_t eventCapacity = 256;  // flight-recorder slots
};

enum class AnomalyKind { ConstantComponent, CiDegraded, ErrorBudget };
[[nodiscard]] const char* anomalyKindName(AnomalyKind k);

class PowerAnomalyWatchdog final : public power::MeasureObserver {
 public:
  explicit PowerAnomalyWatchdog(WatchdogOptions options = {});

  // power::MeasureObserver — called from measuring threads.
  void onMeasureWindow(const power::MeasureWindowObservation& obs) override;
  void onMeasurementResult(const char* scope, bool converged,
                           double precision) override;

  // Serve outcome feed (one call per finished request).  `error` means
  // the request failed outright; `stale` that a stale result was
  // served.  Healthy requests are neither.
  void observeRequestOutcome(const std::string& device, bool error,
                             bool stale);

  // Raised-and-not-yet-cleared anomalies.
  [[nodiscard]] std::size_t activeAlerts() const;
  // Ring drain: events with seq > sinceSeq, oldest first.
  [[nodiscard]] std::vector<obs::FlightEvent> events(
      std::uint64_t sinceSeq = 0) const {
    return recorder_.snapshot(sinceSeq);
  }
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }
  [[nodiscard]] const WatchdogOptions& options() const { return options_; }

 private:
  struct ScopeState {
    std::deque<double> residualW;  // rolling residual power components
    double lastAdditivityError = 0.0;
    bool constantActive = false;
    bool ciActive = false;
    std::deque<unsigned char> outcomes;  // 1 = error/stale, 0 = healthy
    bool budgetActive = false;
  };

  void raise(AnomalyKind kind, const std::string& scope, double value,
             double threshold, std::uint64_t traceId, const char* message);
  void clearAlert(AnomalyKind kind, const std::string& scope, double value);

  WatchdogOptions options_;
  obs::FlightRecorder recorder_;
  mutable std::mutex mu_;
  std::map<std::string, ScopeState> scopes_;
  std::size_t active_ = 0;
  obs::Counter& eventsCounter_;
  obs::Gauge& activeGauge_;
};

}  // namespace ep::core
