#include "core/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "energymodel/additivity.hpp"
#include "obs/trace.hpp"

namespace ep::core {

namespace {

double medianOfDeque(const std::deque<double>& d) {
  std::vector<double> scratch(d.begin(), d.end());
  const std::size_t mid = scratch.size() / 2;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  double m = scratch[mid];
  if (scratch.size() % 2 == 0) {
    const auto lo = std::max_element(
        scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + *lo);
  }
  return m;
}

}  // namespace

const char* anomalyKindName(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::ConstantComponent:
      return "constant_component";
    case AnomalyKind::CiDegraded:
      return "ci_degraded";
    case AnomalyKind::ErrorBudget:
      return "error_budget";
  }
  return "unknown";
}

PowerAnomalyWatchdog::PowerAnomalyWatchdog(WatchdogOptions options)
    : options_(options),
      recorder_(options.eventCapacity),
      eventsCounter_(obs::Registry::global().counter(
          "ep_watchdog_events_total",
          "Anomaly events raised by the power watchdog")),
      activeGauge_(obs::Registry::global().gauge(
          "ep_watchdog_active_alerts",
          "Watchdog anomalies raised and not yet cleared")) {}

void PowerAnomalyWatchdog::raise(AnomalyKind kind, const std::string& scope,
                                 double value, double threshold,
                                 std::uint64_t traceId, const char* message) {
  obs::FlightEvent e;
  e.timeNs = obs::Tracer::global().nowNs();
  e.traceId = traceId;
  e.value = value;
  e.threshold = threshold;
  obs::setFlightField(e.kind, anomalyKindName(kind));
  obs::setFlightField(e.scope, scope.c_str());
  obs::setFlightField(e.message, message);
  recorder_.record(e);
  eventsCounter_.inc();
  ++active_;
  activeGauge_.add(1);
}

void PowerAnomalyWatchdog::clearAlert(AnomalyKind kind,
                                      const std::string& scope,
                                      double value) {
  char msg[96];
  std::snprintf(msg, sizeof msg, "cleared: %s back in budget (%.3g)",
                anomalyKindName(kind), value);
  obs::FlightEvent e;
  e.timeNs = obs::Tracer::global().nowNs();
  e.value = value;
  obs::setFlightField(e.kind, "cleared");
  obs::setFlightField(e.scope, scope.c_str());
  obs::setFlightField(e.message, msg);
  recorder_.record(e);
  if (active_ > 0) --active_;
  activeGauge_.sub(1);
}

void PowerAnomalyWatchdog::onMeasureWindow(
    const power::MeasureWindowObservation& obs) {
  if (!(obs.windowS > 0.0)) return;
  // Online decomposition: observed = base + workload + residual.  The
  // profile already encodes base + workload, so the residual power is
  // what no model term explains — a constant offset shows up here at
  // (almost exactly) its wattage, window after window.
  const double residualW = (obs.observedJ - obs.expectedJ) / obs.windowS;
  std::lock_guard lk(mu_);
  ScopeState& st = scopes_[obs.scope];
  st.residualW.push_back(residualW);
  while (st.residualW.size() > options_.rollingWindows) {
    st.residualW.pop_front();
  }
  st.lastAdditivityError = model::additivityError(
      obs.staticJ, obs.expectedJ - obs.staticJ, obs.observedJ);
  if (st.residualW.size() < options_.minWindows) return;
  const double median = medianOfDeque(st.residualW);
  if (!st.constantActive && median >= options_.constantComponentWatts) {
    st.constantActive = true;
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "constant +%.1f W component (additivity err %.1f%%)",
                  median, 100.0 * st.lastAdditivityError);
    raise(AnomalyKind::ConstantComponent, obs.scope, median,
          options_.constantComponentWatts, obs.traceId, msg);
  } else if (st.constantActive &&
             median <
                 options_.constantComponentWatts * options_.clearFraction) {
    st.constantActive = false;
    clearAlert(AnomalyKind::ConstantComponent, obs.scope, median);
  }
}

void PowerAnomalyWatchdog::onMeasurementResult(const char* scope,
                                               bool converged,
                                               double precision) {
  std::lock_guard lk(mu_);
  ScopeState& st = scopes_[scope];
  if (!converged && precision > options_.ciPrecisionLimit) {
    if (!st.ciActive) {
      st.ciActive = true;
      char msg[96];
      std::snprintf(msg, sizeof msg,
                    "CI did not converge: precision %.3g > limit %.3g",
                    precision, options_.ciPrecisionLimit);
      raise(AnomalyKind::CiDegraded, scope, precision,
            options_.ciPrecisionLimit, obs::currentContext().traceId, msg);
    }
  } else if (converged && st.ciActive) {
    st.ciActive = false;
    clearAlert(AnomalyKind::CiDegraded, scope, precision);
  }
}

void PowerAnomalyWatchdog::observeRequestOutcome(const std::string& device,
                                                 bool error, bool stale) {
  std::lock_guard lk(mu_);
  ScopeState& st = scopes_[device];
  st.outcomes.push_back(error || stale ? 1 : 0);
  while (st.outcomes.size() > options_.requestWindow) st.outcomes.pop_front();
  if (st.outcomes.size() < options_.minRequests) return;
  std::size_t bad = 0;
  for (unsigned char o : st.outcomes) bad += o;
  const double fraction =
      static_cast<double>(bad) / static_cast<double>(st.outcomes.size());
  if (!st.budgetActive && fraction > options_.errorBudget) {
    st.budgetActive = true;
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "error/stale rate %.1f%% burned the %.1f%% budget",
                  100.0 * fraction, 100.0 * options_.errorBudget);
    raise(AnomalyKind::ErrorBudget, device, fraction, options_.errorBudget,
          obs::currentContext().traceId, msg);
  } else if (st.budgetActive &&
             fraction <= options_.errorBudget * options_.clearFraction) {
    st.budgetActive = false;
    clearAlert(AnomalyKind::ErrorBudget, device, fraction);
  }
}

std::size_t PowerAnomalyWatchdog::activeAlerts() const {
  std::lock_guard lk(mu_);
  return active_;
}

}  // namespace ep::core
