#include "core/cpu_study.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ep::core {

CpuEpStudy::CpuEpStudy(apps::CpuDgemmApp app) : app_(std::move(app)) {}

CpuWorkloadResult CpuEpStudy::runWorkload(int n, hw::BlasVariant variant,
                                          Rng& rng, ThreadPool* pool) const {
  obs::Span span("study/cpu_workload");
  CpuWorkloadResult r;
  r.n = n;
  r.variant = variant;
  {
    obs::Span appSpan("study/app_eval");
    r.data = app_.runWorkload(n, variant, rng, pool, &r.failures);
  }
  EP_REQUIRE(!r.data.empty(),
             r.failures.empty()
                 ? std::string("no runnable configurations for workload")
                 : "every configuration failed measurement (" +
                       std::to_string(r.failures.size()) + " failures), e.g. " +
                       r.failures.front().error);
  obs::Span frontSpan("study/front_construction");
  r.points = apps::CpuDgemmApp::toPoints(r.data);
  r.globalFront = pareto::paretoFront(r.points);
  r.tradeoff = pareto::analyzeTradeoff(r.points);
  r.weakEp = analyzeWeakEp(r.points, 0.05);

  std::vector<PowerSampleU> samples;
  samples.reserve(r.data.size());
  for (const auto& d : r.data) {
    r.peakGflops = std::max(r.peakGflops, d.gflops);
    samples.push_back(
        {d.avgUtilizationPct / 100.0, d.dynamicPower.value()});
  }
  r.powerScatter = analyzeScatter(samples, 10);
  r.ryckboschMetric = ryckboschEpMetric(samples);
  return r;
}

}  // namespace ep::core
