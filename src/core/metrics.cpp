#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace ep::core {

namespace {

std::vector<PowerSampleU> sortedByUtilization(
    std::span<const PowerSampleU> samples) {
  std::vector<PowerSampleU> s(samples.begin(), samples.end());
  std::sort(s.begin(), s.end(), [](const auto& a, const auto& b) {
    return a.utilization < b.utilization;
  });
  return s;
}

}  // namespace

double ryckboschEpMetric(std::span<const PowerSampleU> samples) {
  EP_REQUIRE(samples.size() >= 2, "EP metric needs >= 2 samples");
  const auto s = sortedByUtilization(samples);
  const double uMax = s.back().utilization;
  const double pMax = s.back().powerW;
  EP_REQUIRE(uMax > 0.0 && pMax > 0.0, "need positive peak sample");
  // Ideal: P_ideal(u) = pMax * u / uMax.
  // Trapezoidal areas over the sampled range.
  double areaActualMinusIdeal = 0.0;
  double areaIdeal = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double du = s[i].utilization - s[i - 1].utilization;
    if (du <= 0.0) continue;
    const double ideal0 = pMax * s[i - 1].utilization / uMax;
    const double ideal1 = pMax * s[i].utilization / uMax;
    areaActualMinusIdeal +=
        0.5 * (std::fabs(s[i - 1].powerW - ideal0) +
               std::fabs(s[i].powerW - ideal1)) *
        du;
    areaIdeal += 0.5 * (ideal0 + ideal1) * du;
  }
  EP_REQUIRE(areaIdeal > 0.0, "degenerate utilization range");
  return 1.0 - areaActualMinusIdeal / areaIdeal;
}

double maxLinearDeviation(std::span<const PowerSampleU> samples) {
  EP_REQUIRE(samples.size() >= 2, "deviation needs >= 2 samples");
  const auto s = sortedByUtilization(samples);
  const double uMax = s.back().utilization;
  const double pMax = s.back().powerW;
  EP_REQUIRE(uMax > 0.0 && pMax > 0.0, "need positive peak sample");
  double maxDev = 0.0;
  for (const auto& x : s) {
    if (x.utilization <= 0.0) continue;
    const double ideal = pMax * x.utilization / uMax;
    maxDev = std::max(maxDev, std::fabs(x.powerW - ideal) / ideal);
  }
  return maxDev;
}

ScatterAnalysis analyzeScatter(std::span<const PowerSampleU> samples,
                               std::size_t bins) {
  EP_REQUIRE(samples.size() >= 2, "scatter analysis needs >= 2 samples");
  EP_REQUIRE(bins >= 1, "need at least one bin");
  double uLo = samples[0].utilization, uHi = uLo;
  for (const auto& s : samples) {
    uLo = std::min(uLo, s.utilization);
    uHi = std::max(uHi, s.utilization);
  }
  EP_REQUIRE(uHi > uLo, "degenerate utilization range");
  const double width = (uHi - uLo) / static_cast<double>(bins);

  std::vector<double> sum(bins, 0.0);
  std::vector<std::size_t> count(bins, 0);
  auto binOf = [&](double u) {
    auto b = static_cast<std::size_t>((u - uLo) / width);
    return std::min(b, bins - 1);
  };
  for (const auto& s : samples) {
    const std::size_t b = binOf(s.utilization);
    sum[b] += s.powerW;
    count[b] += 1;
  }

  ScatterAnalysis out;
  for (std::size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    out.binCenters.push_back(uLo + (static_cast<double>(b) + 0.5) * width);
    out.binMeanPower.push_back(sum[b] / static_cast<double>(count[b]));
  }
  double sumSq = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    const std::size_t b = binOf(s.utilization);
    if (count[b] == 0) continue;
    const double mean = sum[b] / static_cast<double>(count[b]);
    if (mean <= 0.0) continue;
    const double rel = std::fabs(s.powerW - mean) / mean;
    out.maxResidual = std::max(out.maxResidual, rel);
    sumSq += rel * rel;
    ++n;
  }
  out.rmsResidual = n > 0 ? std::sqrt(sumSq / static_cast<double>(n)) : 0.0;
  return out;
}

std::vector<LevelProportionality> perLevelProportionality(
    std::span<const PowerSampleU> samples, std::size_t levels) {
  EP_REQUIRE(samples.size() >= 2, "per-level analysis needs >= 2 samples");
  EP_REQUIRE(levels >= 1, "need at least one level");
  const auto s = sortedByUtilization(samples);
  const double uMax = s.back().utilization;
  const double pMax = s.back().powerW;
  EP_REQUIRE(uMax > 0.0 && pMax > 0.0, "need positive peak sample");

  std::vector<double> sum(levels, 0.0);
  std::vector<std::size_t> count(levels, 0);
  for (const auto& x : s) {
    auto b = static_cast<std::size_t>(x.utilization / uMax *
                                      static_cast<double>(levels));
    b = std::min(b, levels - 1);
    sum[b] += x.powerW;
    count[b] += 1;
  }
  std::vector<LevelProportionality> out;
  for (std::size_t b = 0; b < levels; ++b) {
    if (count[b] == 0) continue;
    LevelProportionality lp;
    lp.utilization =
        (static_cast<double>(b) + 0.5) / static_cast<double>(levels) * uMax;
    const double ideal = pMax * lp.utilization / uMax;
    const double measured = sum[b] / static_cast<double>(count[b]);
    lp.proportionality = measured > 0.0 ? ideal / measured : 1.0;
    out.push_back(lp);
  }
  return out;
}

}  // namespace ep::core
