#include "core/twocore.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ep::core {

TwoCoreEnergy twoCoreEnergy(const SimpleEpModel& model, double u1,
                            double u2) {
  EP_REQUIRE(model.a > 0.0 && model.b > 0.0, "model constants must be > 0");
  EP_REQUIRE(u1 > 0.0 && u1 <= 1.0, "u1 must be in (0,1]");
  EP_REQUIRE(u2 > 0.0 && u2 <= 1.0, "u2 must be in (0,1]");
  TwoCoreEnergy e;
  e.time = std::max(model.b / u1, model.b / u2);
  e.core1 = model.a * u1 * e.time;
  e.core2 = model.a * u2 * e.time;
  e.total = e.core1 + e.core2;
  return e;
}

PaperScenarios paperScenarios(const SimpleEpModel& model, double u,
                              double du) {
  EP_REQUIRE(du > 0.0 && du < u, "need 0 < dU < U");
  EP_REQUIRE(u + du <= 1.0, "U + dU must not exceed full utilization");
  PaperScenarios s;
  s.e1 = twoCoreEnergy(model, u, u);
  s.e2 = twoCoreEnergy(model, u + du, u);
  s.e3 = twoCoreEnergy(model, u + du, u - du);
  return s;
}

}  // namespace ep::core
