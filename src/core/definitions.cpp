#include "core/definitions.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep::core {

StrongEpResult analyzeStrongEp(std::span<const double> work,
                               std::span<const double> energy,
                               double tolerance) {
  EP_REQUIRE(work.size() == energy.size(), "work/energy size mismatch");
  EP_REQUIRE(work.size() >= 3, "strong-EP analysis needs >= 3 points");
  EP_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  StrongEpResult r;
  r.tolerance = tolerance;
  r.proportionalFit = stats::fitProportional(work, energy);
  r.affineFit = stats::fitLinear(work, energy);
  double maxDev = 0.0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double predicted = r.proportionalFit.predict(work[i]);
    if (predicted > 0.0) {
      maxDev = std::max(maxDev,
                        std::fabs(energy[i] - predicted) / predicted);
    }
  }
  r.maxRelativeDeviation = maxDev;
  r.holds = maxDev <= tolerance;
  return r;
}

WeakEpResult analyzeWeakEp(const std::vector<pareto::BiPoint>& points,
                           double tolerance) {
  EP_REQUIRE(points.size() >= 2, "weak-EP analysis needs >= 2 configs");
  EP_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  WeakEpResult r;
  r.tolerance = tolerance;
  double lo = points.front().energy.value();
  double hi = lo;
  double sum = 0.0;
  for (const auto& p : points) {
    const double e = p.energy.value();
    lo = std::min(lo, e);
    hi = std::max(hi, e);
    sum += e;
  }
  EP_REQUIRE(lo > 0.0, "energies must be positive");
  r.minEnergyJ = lo;
  r.maxEnergyJ = hi;
  r.meanEnergyJ = sum / static_cast<double>(points.size());
  r.spread = (hi - lo) / lo;
  r.holds = r.spread <= tolerance;
  return r;
}

}  // namespace ep::core
