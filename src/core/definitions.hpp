// Formal strong/weak energy-proportionality definitions (Section I) and
// the analyzers that decide whether a measured data set satisfies them.
//
//   Strong EP:  E_d = c * W  — dynamic energy linear (proportional,
//               zero intercept) in the amount of work.
//   Weak EP:    E_d constant across all application configurations
//               solving the same workload (equal per-thread work).
#pragma once

#include <span>
#include <vector>

#include "pareto/point.hpp"
#include "stats/regression.hpp"

namespace ep::core {

struct StrongEpResult {
  stats::LinearFit proportionalFit;  // E = c W (through origin)
  stats::LinearFit affineFit;        // E = a + b W
  // Largest relative deviation of any observation from the
  // proportional fit.
  double maxRelativeDeviation = 0.0;
  // Whether strong EP holds within `tolerance` (all deviations below it).
  bool holds = false;
  double tolerance = 0.0;
};

// Test E_d = c W over a (work, dynamic energy) series.
[[nodiscard]] StrongEpResult analyzeStrongEp(std::span<const double> work,
                                             std::span<const double> energy,
                                             double tolerance = 0.05);

struct WeakEpResult {
  double minEnergyJ = 0.0;
  double maxEnergyJ = 0.0;
  double meanEnergyJ = 0.0;
  // (max - min) / min: 0 for a perfectly weak-EP system.
  double spread = 0.0;
  bool holds = false;
  double tolerance = 0.0;
};

// Test E_d == const across configurations solving the same workload.
[[nodiscard]] WeakEpResult analyzeWeakEp(
    const std::vector<pareto::BiPoint>& points, double tolerance = 0.05);

}  // namespace ep::core
