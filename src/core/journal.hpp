// Crash-safe checkpointing for GPU workload studies.
//
// A StudyJournal is an append-only text file of *completed* workload
// studies: each completed workload is one atomic append (header line,
// the measured data points, the skipped configurations, a terminating
// end marker) flushed before the sweep moves on.  A sweep interrupted
// at any instant therefore leaves either a fully journaled workload or
// a torn tail — and load() restores exactly the complete ones, ignoring
// the tail, so `resume == never interrupted` holds bit for bit.
//
// Only the measured quantities are stored (time / dynamic energy as hex
// double bit patterns, repetition counts); the noise-free kernel models
// and the Pareto fronts are recomputed deterministically on load.  The
// header carries a hash of the study identity (seed + app options), so
// a checkpoint cannot silently be merged into a differently-configured
// study.
//
// Format (line-oriented, space-separated):
//   epsimjournal 1 <hash:16 hex>
//   W <n> <nData> <nFailures>
//   C <bs> <g> <r> <timeBits:16 hex> <energyBits:16 hex> <reps>
//   F <bs> <g> <r> <error text to end of line>
//   E <n>
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "core/study.hpp"

namespace ep::core {

// Bit-exact double <-> integer round-trip used by the journal (and by
// the checkpoint hash): text formatting must not lose a single ulp or
// resumed sweeps stop being bitwise-identical.
[[nodiscard]] inline std::uint64_t doubleBits(double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  return b;
}
[[nodiscard]] inline double bitsToDouble(std::uint64_t b) {
  double d = 0.0;
  std::memcpy(&d, &b, sizeof d);
  return d;
}

class StudyJournal {
 public:
  // Parse the journal at `path` (a missing file yields an empty map).
  // Restores every workload with a terminating E record; a torn tail
  // from a crash mid-append is ignored.  Throws PreconditionError when
  // the header is malformed or its hash differs from `hash`.  Models
  // and fronts are recomputed through `app`.
  [[nodiscard]] static std::map<int, WorkloadResult> load(
      const std::string& path, std::uint64_t hash,
      const apps::GpuMatMulApp& app);

  // Open `path` for appending, writing the header first if the file is
  // new or empty.
  StudyJournal(std::string path, std::uint64_t hash);

  // Append one completed workload atomically (thread-safe, flushed).
  void append(const WorkloadResult& r);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mu_;
};

}  // namespace ep::core
