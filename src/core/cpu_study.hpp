// The Section III experiment runner for the multicore CPU: execute the
// DGEMM configuration space, compute the Fig 4 relationships and the
// weak-EP verdict, and aggregate across workloads — the CPU-side
// counterpart of GpuEpStudy.
#pragma once

#include <vector>

#include "apps/cpu_dgemm_app.hpp"
#include "core/definitions.hpp"
#include "core/metrics.hpp"
#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::core {

struct CpuWorkloadResult {
  int n = 0;
  hw::BlasVariant variant = hw::BlasVariant::IntelMklLike;
  std::vector<apps::CpuDataPoint> data;
  std::vector<pareto::BiPoint> points;
  std::vector<pareto::BiPoint> globalFront;
  pareto::Tradeoff tradeoff;
  WeakEpResult weakEp;
  // Fig 4 analyses.
  double peakGflops = 0.0;
  ScatterAnalysis powerScatter;
  double ryckboschMetric = 0.0;
  // Configurations skipped under FailPolicy::SkipAndRecord; every
  // analysis above is built from the surviving points only.
  std::vector<apps::CpuConfigFailure> failures;
};

class CpuEpStudy {
 public:
  explicit CpuEpStudy(apps::CpuDgemmApp app);

  [[nodiscard]] const apps::CpuDgemmApp& app() const { return app_; }

  // With a pool, the configuration space is measured in parallel with
  // bitwise-identical results (see CpuDgemmApp::runWorkload).
  [[nodiscard]] CpuWorkloadResult runWorkload(int n,
                                              hw::BlasVariant variant,
                                              Rng& rng,
                                              ThreadPool* pool = nullptr) const;

 private:
  apps::CpuDgemmApp app_;
};

}  // namespace ep::core
