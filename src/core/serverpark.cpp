#include "core/serverpark.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep::core {

double ServerPowerCurve::powerAt(double u) const {
  EP_REQUIRE(u >= 0.0 && u <= 1.0, "utilization must be in [0,1]");
  return peakWatts *
         (idleFraction + (1.0 - idleFraction) * std::pow(u, curvature));
}

std::vector<PowerSampleU> specPowerLadder(const ServerPowerCurve& curve) {
  EP_REQUIRE(curve.peakWatts > 0.0, "peak power must be positive");
  EP_REQUIRE(curve.idleFraction >= 0.0 && curve.idleFraction < 1.0,
             "idle fraction must be in [0,1)");
  EP_REQUIRE(curve.curvature > 0.0, "curvature must be positive");
  std::vector<PowerSampleU> ladder;
  ladder.reserve(11);
  for (int step = 0; step <= 10; ++step) {
    const double u = static_cast<double>(step) / 10.0;
    ladder.push_back({u, curve.powerAt(u)});
  }
  return ladder;
}

std::vector<ServerPowerCurve> generateFleet(std::size_t count, Rng& rng) {
  EP_REQUIRE(count >= 1, "fleet needs at least one server");
  std::vector<ServerPowerCurve> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ServerPowerCurve s;
    s.name = "server-" + std::to_string(i);
    s.peakWatts = rng.uniform(180.0, 650.0);
    // Vendor spread observed in SPECpower submissions: idle floors from
    // excellent (~15 %) to poor (~65 %) of peak.
    s.idleFraction = rng.uniform(0.15, 0.65);
    s.curvature = rng.uniform(0.7, 1.8);
    fleet.push_back(std::move(s));
  }
  return fleet;
}

FleetSurvey surveyFleet(const std::vector<ServerPowerCurve>& fleet) {
  EP_REQUIRE(!fleet.empty(), "empty fleet");
  FleetSurvey survey;
  survey.servers = fleet.size();
  survey.minEpMetric = 1e300;
  survey.maxEpMetric = -1e300;
  double sum = 0.0;
  for (const auto& s : fleet) {
    const auto ladder = specPowerLadder(s);
    const double ep = ryckboschEpMetric(ladder);
    sum += ep;
    survey.minEpMetric = std::min(survey.minEpMetric, ep);
    survey.maxEpMetric = std::max(survey.maxEpMetric, ep);
    // "Linear relationship" in [5]'s sense concerns the DYNAMIC power
    // curve (above idle): subtract the idle floor before checking.
    std::vector<PowerSampleU> dynamic;
    for (const auto& x : ladder) {
      if (x.utilization > 0.0) {
        dynamic.push_back({x.utilization, x.powerW - ladder[0].powerW});
      }
    }
    if (maxLinearDeviation(dynamic) < 0.10) {
      ++survey.nearlyProportionalCount;
    }
  }
  survey.meanEpMetric = sum / static_cast<double>(fleet.size());
  return survey;
}

}  // namespace ep::core
