#include "core/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace ep::core {

namespace {

constexpr const char* kMagic = "epsimjournal";
constexpr int kVersion = 2;  // v2: C records carry the remeasure count

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parseHex16(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

// One line of error text: newlines would tear the record format.
std::string sanitized(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::map<int, WorkloadResult> StudyJournal::load(
    const std::string& path, std::uint64_t hash,
    const apps::GpuMatMulApp& app) {
  std::map<int, WorkloadResult> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;

  std::string line;
  if (!std::getline(in, line)) return out;  // empty file: nothing done yet
  {
    std::istringstream header(line);
    std::string magic, hashText;
    int version = 0;
    header >> magic >> version >> hashText;
    EP_REQUIRE(magic == kMagic && version == kVersion,
               "not an epsim study journal: " + path);
    std::uint64_t fileHash = 0;
    EP_REQUIRE(parseHex16(hashText, fileHash),
               "corrupt journal header hash: " + path);
    EP_REQUIRE(fileHash == hash,
               "journal " + path +
                   " was recorded by a differently-configured study "
                   "(seed or options changed); refusing to resume");
  }

  // Accumulate the workload in progress; commit only on its E record.
  // Any malformed or truncated line ends parsing — everything after a
  // torn append is unreachable by construction (appends are ordered).
  bool open = false;
  WorkloadResult pending;
  std::size_t wantData = 0, wantFailures = 0;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) break;
    if (tag == "W") {
      int n = 0;
      if (open || !(ls >> n >> wantData >> wantFailures)) break;
      pending = WorkloadResult{};
      pending.n = n;
      pending.data.reserve(wantData);
      pending.failures.reserve(wantFailures);
      open = true;
    } else if (tag == "C") {
      apps::GpuDataPoint d;
      std::string timeText, energyText;
      std::uint64_t timeBits = 0, energyBits = 0;
      if (!open ||
          !(ls >> d.config.bs >> d.config.g >> d.config.r >> timeText >>
            energyText >> d.repetitions >> d.remeasures) ||
          !parseHex16(timeText, timeBits) ||
          !parseHex16(energyText, energyBits)) {
        break;
      }
      d.config.n = pending.n;
      d.time = Seconds{bitsToDouble(timeBits)};
      d.dynamicEnergy = Joules{bitsToDouble(energyBits)};
      d.model = app.model().modelMatMul(d.config);
      pending.data.push_back(std::move(d));
    } else if (tag == "F") {
      apps::GpuConfigFailure f;
      if (!open ||
          !(ls >> f.config.bs >> f.config.g >> f.config.r)) {
        break;
      }
      f.config.n = pending.n;
      std::getline(ls, f.error);
      if (!f.error.empty() && f.error.front() == ' ') f.error.erase(0, 1);
      pending.failures.push_back(std::move(f));
    } else if (tag == "E") {
      int n = 0;
      if (!open || !(ls >> n) || n != pending.n ||
          pending.data.size() != wantData ||
          pending.failures.size() != wantFailures) {
        break;
      }
      finalizeWorkload(pending);
      out[pending.n] = std::move(pending);
      open = false;
    } else {
      break;
    }
  }
  return out;
}

StudyJournal::StudyJournal(std::string path, std::uint64_t hash)
    : path_(std::move(path)) {
  bool needHeader = true;
  {
    std::ifstream probe(path_);
    std::string first;
    if (probe.is_open() && std::getline(probe, first) && !first.empty()) {
      needHeader = false;
    }
  }
  if (needHeader) {
    std::ofstream out(path_, std::ios::app);
    EP_REQUIRE(out.is_open(), "cannot open journal for writing: " + path_);
    out << kMagic << ' ' << kVersion << ' ' << hex16(hash) << '\n';
    out.flush();
    EP_REQUIRE(out.good(), "journal header write failed: " + path_);
  }
}

void StudyJournal::append(const WorkloadResult& r) {
  std::ostringstream rec;
  rec << "W " << r.n << ' ' << r.data.size() << ' ' << r.failures.size()
      << '\n';
  for (const auto& d : r.data) {
    rec << "C " << d.config.bs << ' ' << d.config.g << ' ' << d.config.r
        << ' ' << hex16(doubleBits(d.time.value())) << ' '
        << hex16(doubleBits(d.dynamicEnergy.value())) << ' '
        << d.repetitions << ' ' << d.remeasures << '\n';
  }
  for (const auto& f : r.failures) {
    rec << "F " << f.config.bs << ' ' << f.config.g << ' ' << f.config.r
        << ' ' << sanitized(f.error) << '\n';
  }
  rec << "E " << r.n << '\n';
  // One locked append + flush per workload: concurrent sweeps interleave
  // at record granularity only, and a crash can tear at most the tail.
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::app);
  EP_REQUIRE(out.is_open(), "cannot open journal for writing: " + path_);
  out << rec.str();
  out.flush();
  EP_REQUIRE(out.good(), "journal append failed: " + path_);
}

}  // namespace ep::core
