// The Section V experiment runner: execute the GPU matrix-multiplication
// application over a range of workloads, compute global and local Pareto
// fronts per workload, and aggregate the front statistics the paper
// reports ("the observed average and maximum points in the local Pareto
// fronts are 4 and 5 for the K40c", "(50 %, 11 %) for the P100", ...).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::core {

struct WorkloadResult {
  int n = 0;
  std::vector<apps::GpuDataPoint> data;
  std::vector<pareto::BiPoint> points;
  std::vector<pareto::BiPoint> globalFront;
  std::vector<pareto::BiPoint> localFront;  // level-2 front
  // Trade-off over all points (energy-optimal vs performance-optimal).
  pareto::Tradeoff globalTradeoff;
  // Trade-off within the local front (the paper's K40c analysis, where
  // the global front collapses to one point); absent if the local front
  // is empty.
  std::optional<pareto::Tradeoff> localTradeoff;
  // Configurations skipped under FailPolicy::SkipAndRecord; the fronts
  // above are built from the surviving points only.
  std::vector<apps::GpuConfigFailure> failures;
};

// Rebuild points/fronts/trade-offs of `r` from r.data (deterministic,
// measurement-free).  Used by runWorkload and by journal resume.
void finalizeWorkload(WorkloadResult& r);

// What one completed study cost to measure, summed over its surviving
// configurations.  This is the ledger entry the serve layer attributes
// to the request that actually executed the study (cache hits and
// coalesced joins attribute zero new joules).
struct EnergyAttribution {
  double joules = 0.0;             // sum of measured dynamic energy
  std::uint64_t windows = 0;       // accepted measurement windows
  std::uint64_t remeasures = 0;    // fault recoveries along the way
  std::uint64_t skippedConfigs = 0;
};

[[nodiscard]] EnergyAttribution attributeEnergy(const WorkloadResult& r);

// A whole workload that failed under SweepOptions with SkipAndRecord
// (e.g. every configuration's measurement budget was exhausted).
struct SweepFailure {
  int n = 0;
  std::string error;
};

struct SweepOptions {
  // How runSweepChecked treats a workload whose study threw: FailFast
  // propagates (the historical behaviour), SkipAndRecord drops the
  // workload into SweepResult::failures and carries on.
  fault::FailPolicy workloadPolicy = fault::FailPolicy::FailFast;
  // Non-empty: crash-safe append-only journal.  Workloads already
  // completed in the journal are restored instead of re-measured, and
  // every newly completed workload is appended, so an interrupted sweep
  // resumes where it stopped and ends bitwise-identical to an
  // uninterrupted run.
  std::string checkpointPath;
};

struct SweepResult {
  std::vector<WorkloadResult> results;  // completed workloads, sweep order
  std::vector<SweepFailure> failures;   // skipped workloads (SkipAndRecord)
  std::size_t resumedWorkloads = 0;     // restored from the journal
};

struct FrontStatistics {
  std::size_t workloads = 0;
  double avgGlobalFrontSize = 0.0;
  std::size_t maxGlobalFrontSize = 0;
  double avgLocalFrontSize = 0.0;
  std::size_t maxLocalFrontSize = 0;
  // Largest global-front trade-off over the workload range.
  double maxGlobalSavings = 0.0;
  double degradationAtMaxGlobalSavings = 0.0;
  // Largest local-front trade-off over the workload range.
  double maxLocalSavings = 0.0;
  double degradationAtMaxLocalSavings = 0.0;
};

class GpuEpStudy {
 public:
  explicit GpuEpStudy(apps::GpuMatMulApp app);

  [[nodiscard]] const apps::GpuMatMulApp& app() const { return app_; }

  // With a pool, the configuration space is evaluated in parallel with
  // results bitwise-identical to serial (see GpuMatMulApp::runWorkload).
  [[nodiscard]] WorkloadResult runWorkload(int n, Rng& rng,
                                           ThreadPool* pool = nullptr) const;

  // With a pool, workload sizes run in parallel AND each workload's
  // configurations run in parallel on the same pool (the nested
  // parallelFor shape); per-size forked streams and per-index result
  // slots keep the output bitwise-identical to the serial path.
  [[nodiscard]] std::vector<WorkloadResult> runSweep(
      const std::vector<int>& sizes, Rng& rng,
      ThreadPool* pool = nullptr) const;

  // runSweep with failure tolerance and optional checkpoint/resume.
  // Parallelism and determinism match runSweep: for a fixed seed the
  // surviving results are bitwise-identical at any pool size, whether
  // or not the sweep was interrupted and resumed.
  [[nodiscard]] SweepResult runSweepChecked(const std::vector<int>& sizes,
                                            Rng& rng,
                                            const SweepOptions& options = {},
                                            ThreadPool* pool = nullptr) const;

  // The journal identity of this study under seed `seed`: resuming a
  // checkpoint recorded with different app options (or a different
  // seed) is an error, not a silently wrong merge.
  [[nodiscard]] std::uint64_t checkpointHash(std::uint64_t seed) const;

  [[nodiscard]] static FrontStatistics summarize(
      const std::vector<WorkloadResult>& results);

 private:
  apps::GpuMatMulApp app_;
};

}  // namespace ep::core
