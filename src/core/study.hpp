// The Section V experiment runner: execute the GPU matrix-multiplication
// application over a range of workloads, compute global and local Pareto
// fronts per workload, and aggregate the front statistics the paper
// reports ("the observed average and maximum points in the local Pareto
// fronts are 4 and 5 for the K40c", "(50 %, 11 %) for the P100", ...).
#pragma once

#include <optional>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::core {

struct WorkloadResult {
  int n = 0;
  std::vector<apps::GpuDataPoint> data;
  std::vector<pareto::BiPoint> points;
  std::vector<pareto::BiPoint> globalFront;
  std::vector<pareto::BiPoint> localFront;  // level-2 front
  // Trade-off over all points (energy-optimal vs performance-optimal).
  pareto::Tradeoff globalTradeoff;
  // Trade-off within the local front (the paper's K40c analysis, where
  // the global front collapses to one point); absent if the local front
  // is empty.
  std::optional<pareto::Tradeoff> localTradeoff;
};

struct FrontStatistics {
  std::size_t workloads = 0;
  double avgGlobalFrontSize = 0.0;
  std::size_t maxGlobalFrontSize = 0;
  double avgLocalFrontSize = 0.0;
  std::size_t maxLocalFrontSize = 0;
  // Largest global-front trade-off over the workload range.
  double maxGlobalSavings = 0.0;
  double degradationAtMaxGlobalSavings = 0.0;
  // Largest local-front trade-off over the workload range.
  double maxLocalSavings = 0.0;
  double degradationAtMaxLocalSavings = 0.0;
};

class GpuEpStudy {
 public:
  explicit GpuEpStudy(apps::GpuMatMulApp app);

  [[nodiscard]] const apps::GpuMatMulApp& app() const { return app_; }

  // With a pool, the configuration space is evaluated in parallel with
  // results bitwise-identical to serial (see GpuMatMulApp::runWorkload).
  [[nodiscard]] WorkloadResult runWorkload(int n, Rng& rng,
                                           ThreadPool* pool = nullptr) const;

  // With a pool, workload sizes run in parallel AND each workload's
  // configurations run in parallel on the same pool (the nested
  // parallelFor shape); per-size forked streams and per-index result
  // slots keep the output bitwise-identical to the serial path.
  [[nodiscard]] std::vector<WorkloadResult> runSweep(
      const std::vector<int>& sizes, Rng& rng,
      ThreadPool* pool = nullptr) const;

  [[nodiscard]] static FrontStatistics summarize(
      const std::vector<WorkloadResult>& results);

 private:
  apps::GpuMatMulApp app_;
};

}  // namespace ep::core
