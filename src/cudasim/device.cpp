#include "cudasim/device.hpp"

namespace ep::cusim {

Device::Device(hw::GpuSpec spec) : spec_(std::move(spec)) {}

std::size_t Device::memoryCapacityBytes() const {
  return static_cast<std::size_t>(spec_.memoryGB) * 1024ULL * 1024ULL *
         1024ULL;
}

void Device::allocate(std::size_t bytes) {
  if (usedBytes_ + bytes > memoryCapacityBytes()) {
    throw ResourceError("device memory exhausted on " + spec_.name + ": " +
                        std::to_string(usedBytes_ + bytes) + " bytes needed");
  }
  usedBytes_ += bytes;
}

void Device::release(std::size_t bytes) {
  EP_REQUIRE(bytes <= usedBytes_, "releasing more memory than allocated");
  usedBytes_ -= bytes;
}

void Device::advanceClock(Seconds dt) {
  EP_REQUIRE(dt.value() >= 0.0, "clock cannot run backwards");
  clock_ += dt;
}

void Device::record(Event& e) {
  e.timestamp_ = clock_;
  e.recorded_ = true;
}

Seconds Device::elapsed(const Event& start, const Event& stop) {
  EP_REQUIRE(start.recorded() && stop.recorded(),
             "both events must be recorded");
  EP_REQUIRE(start.timestamp() <= stop.timestamp(),
             "stop event precedes start event");
  return stop.timestamp() - start.timestamp();
}

}  // namespace ep::cusim
