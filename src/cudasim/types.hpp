// Basic CUDA-like geometry types for the functional simulator.
#pragma once

#include <cstddef>

namespace ep::cusim {

struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(x) * y * z;
  }
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::size_t sharedBytes = 0;
};

}  // namespace ep::cusim
