// A simulated CUDA device: board-memory accounting, a simulation clock,
// and cudaEvent-style timing.
//
// The device owns no execution logic itself; functional kernels run
// through cusim::Executor (executor.hpp) and modeled kernels advance the
// clock by the time predicted by ephw::GpuModel — mirroring how the
// paper times kernels with cudaEventRecord/cudaEventElapsedTime around
// launches.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "hw/spec.hpp"

namespace ep::cusim {

class Device;

// RAII device allocation of `count` elements of T.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer(Device& device, std::size_t count);
  ~DeviceBuffer();

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&&) = delete;

  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }
  [[nodiscard]] std::size_t size() const { return storage_.size(); }
  [[nodiscard]] std::size_t bytes() const { return storage_.size() * sizeof(T); }

  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }

 private:
  Device* device_;
  std::vector<T> storage_;
};

// cudaEvent-like timestamp on the device's simulation clock.
class Event {
 public:
  [[nodiscard]] bool recorded() const { return recorded_; }
  [[nodiscard]] Seconds timestamp() const {
    EP_REQUIRE(recorded_, "event was never recorded");
    return timestamp_;
  }

 private:
  friend class Device;
  Seconds timestamp_{0.0};
  bool recorded_ = false;
};

class Device {
 public:
  explicit Device(hw::GpuSpec spec);

  [[nodiscard]] const hw::GpuSpec& spec() const { return spec_; }

  [[nodiscard]] std::size_t memoryCapacityBytes() const;
  [[nodiscard]] std::size_t memoryUsedBytes() const { return usedBytes_; }

  // Simulation clock — advanced by kernel launches.
  [[nodiscard]] Seconds now() const { return clock_; }
  void advanceClock(Seconds dt);

  // cudaEventRecord equivalent.
  void record(Event& e);
  // cudaEventElapsedTime equivalent (start must precede stop).
  [[nodiscard]] static Seconds elapsed(const Event& start, const Event& stop);

 private:
  template <typename T>
  friend class DeviceBuffer;

  void allocate(std::size_t bytes);
  void release(std::size_t bytes);

  hw::GpuSpec spec_;
  std::size_t usedBytes_ = 0;
  Seconds clock_{0.0};
};

template <typename T>
DeviceBuffer<T>::DeviceBuffer(Device& device, std::size_t count)
    : device_(&device) {
  device_->allocate(count * sizeof(T));
  storage_.resize(count);
}

template <typename T>
DeviceBuffer<T>::~DeviceBuffer() {
  if (device_ != nullptr) device_->release(storage_.size() * sizeof(T));
}

template <typename T>
DeviceBuffer<T>::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_), storage_(std::move(other.storage_)) {
  other.device_ = nullptr;
  other.storage_.clear();
}

}  // namespace ep::cusim
