// Functional execution of CUDA-style kernels on host threads.
//
// The simulator's programming model maps CUDA's onto phases:
//
//   * a kernel is a callable invoked once per block with a BlockContext;
//   * inside it, ctx.forEachThread(fn) runs fn for every thread of the
//     block; RETURNING from forEachThread is the __syncthreads() barrier
//     (all threads have finished the phase before the next one starts);
//   * shared memory is an arena on the context, sized by the launch
//     configuration and persistent across phases of the same block.
//
// Per-thread registers that live across barriers (e.g. the Csub
// accumulator of the Fig 5 kernel) are plain host arrays indexed by the
// flattened thread id.  Blocks are independent (as in CUDA) and are
// executed in parallel over a thread pool.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "cudasim/device.hpp"
#include "cudasim/types.hpp"

namespace ep::cusim {

class BlockContext {
 public:
  BlockContext(Dim3 blockIdx, const LaunchConfig& cfg);

  [[nodiscard]] Dim3 blockIdx() const { return blockIdx_; }
  [[nodiscard]] Dim3 blockDim() const { return cfg_.block; }
  [[nodiscard]] Dim3 gridDim() const { return cfg_.grid; }
  [[nodiscard]] std::size_t threadsPerBlock() const {
    return cfg_.block.count();
  }

  // Allocate `count` Ts from the block's shared-memory arena.  Contents
  // persist across phases; allocation beyond the launch configuration's
  // sharedBytes throws ResourceError.
  template <typename T>
  [[nodiscard]] std::span<T> shared(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    void* p = allocateShared(bytes, alignof(T));
    return {static_cast<T*>(p), count};
  }

  // Flattened thread index (x fastest), for per-thread register arrays.
  [[nodiscard]] std::size_t flatThread(Dim3 t) const {
    return (static_cast<std::size_t>(t.z) * cfg_.block.y + t.y) *
               cfg_.block.x +
           t.x;
  }

  // One execution phase: fn runs for every thread of the block; the
  // return acts as __syncthreads().
  void forEachThread(const std::function<void(Dim3)>& fn);

 private:
  void* allocateShared(std::size_t bytes, std::size_t align);

  Dim3 blockIdx_;
  const LaunchConfig& cfg_;
  std::vector<unsigned char> arena_;
  std::size_t arenaUsed_ = 0;
};

using Kernel = std::function<void(BlockContext&)>;

class Executor {
 public:
  // pool == nullptr executes blocks sequentially.
  explicit Executor(ThreadPool* pool = nullptr) : pool_(pool) {}

  // Functionally execute `kernel` over the whole grid.  Validates the
  // launch configuration against the device's CUDA limits.
  void launch(Device& device, const LaunchConfig& cfg,
              const Kernel& kernel) const;

 private:
  ThreadPool* pool_;
};

}  // namespace ep::cusim
