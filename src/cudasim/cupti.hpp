// CUPTI-like performance event counters.
//
// The paper's Section V-C observes that "many key events and metrics
// overflow for large matrix sizes (N > 2048) and reported inaccurate
// counts", making CUPTI inadequate for analyzing GPU energy
// nonproportionality.  The simulation reproduces that instrument
// limitation: hardware-backed events are 32-bit and wrap, while the
// model's ground truth stays 64-bit (trueValue) for validation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ep::cusim {

enum class CuptiEvent {
  kFlopCountDp = 0,
  kDramBytes,
  kSharedLoadStore,
  kGldTransactions,
  kElapsedCycles,
};

inline constexpr std::size_t kCuptiEventCount = 5;

[[nodiscard]] std::string cuptiEventName(CuptiEvent e);

// Which events sit on 32-bit hardware counters (and therefore wrap).
[[nodiscard]] bool cuptiEventIs32Bit(CuptiEvent e);

class CuptiCounters {
 public:
  void add(CuptiEvent e, std::uint64_t delta);
  void reset();

  // Ground-truth 64-bit value (what the silicon actually did).
  [[nodiscard]] std::uint64_t trueValue(CuptiEvent e) const;

  // What the CUPTI interface reports: wrapped modulo 2^32 for events on
  // 32-bit counters.
  [[nodiscard]] std::uint64_t read(CuptiEvent e) const;

  // True iff read() differs from trueValue() (counter wrapped).
  [[nodiscard]] bool overflowed(CuptiEvent e) const;

  CuptiCounters& operator+=(const CuptiCounters& other);

 private:
  std::array<std::uint64_t, kCuptiEventCount> values_{};
};

}  // namespace ep::cusim
