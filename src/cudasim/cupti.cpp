#include "cudasim/cupti.hpp"

#include "common/error.hpp"

namespace ep::cusim {

namespace {
std::size_t index(CuptiEvent e) {
  const auto i = static_cast<std::size_t>(e);
  EP_REQUIRE(i < kCuptiEventCount, "unknown CUPTI event");
  return i;
}
}  // namespace

std::string cuptiEventName(CuptiEvent e) {
  switch (e) {
    case CuptiEvent::kFlopCountDp:
      return "flop_count_dp";
    case CuptiEvent::kDramBytes:
      return "dram_bytes";
    case CuptiEvent::kSharedLoadStore:
      return "shared_load_store";
    case CuptiEvent::kGldTransactions:
      return "gld_transactions";
    case CuptiEvent::kElapsedCycles:
      return "elapsed_cycles";
  }
  throw PreconditionError("unknown CUPTI event");
}

bool cuptiEventIs32Bit(CuptiEvent e) {
  switch (e) {
    case CuptiEvent::kFlopCountDp:
    case CuptiEvent::kSharedLoadStore:
    case CuptiEvent::kGldTransactions:
      return true;  // per-SM 32-bit hardware counters
    case CuptiEvent::kDramBytes:
    case CuptiEvent::kElapsedCycles:
      return false;  // accumulated in 64-bit by the driver
  }
  throw PreconditionError("unknown CUPTI event");
}

void CuptiCounters::add(CuptiEvent e, std::uint64_t delta) {
  values_[index(e)] += delta;
}

void CuptiCounters::reset() { values_.fill(0); }

std::uint64_t CuptiCounters::trueValue(CuptiEvent e) const {
  return values_[index(e)];
}

std::uint64_t CuptiCounters::read(CuptiEvent e) const {
  const std::uint64_t v = values_[index(e)];
  if (cuptiEventIs32Bit(e)) return v & 0xFFFFFFFFULL;
  return v;
}

bool CuptiCounters::overflowed(CuptiEvent e) const {
  return read(e) != trueValue(e);
}

CuptiCounters& CuptiCounters::operator+=(const CuptiCounters& other) {
  for (std::size_t i = 0; i < kCuptiEventCount; ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

}  // namespace ep::cusim
