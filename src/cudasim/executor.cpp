#include "cudasim/executor.hpp"

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ep::cusim {

BlockContext::BlockContext(Dim3 blockIdx, const LaunchConfig& cfg)
    : blockIdx_(blockIdx), cfg_(cfg), arena_(cfg.sharedBytes) {}

void* BlockContext::allocateShared(std::size_t bytes, std::size_t align) {
  std::size_t offset = (arenaUsed_ + align - 1) / align * align;
  if (offset + bytes > arena_.size()) {
    throw ResourceError(
        "shared-memory arena exhausted: " + std::to_string(offset + bytes) +
        " bytes requested, " + std::to_string(arena_.size()) + " configured");
  }
  arenaUsed_ = offset + bytes;
  return arena_.data() + offset;
}

void BlockContext::forEachThread(const std::function<void(Dim3)>& fn) {
  Dim3 t;
  for (t.z = 0; t.z < cfg_.block.z; ++t.z) {
    for (t.y = 0; t.y < cfg_.block.y; ++t.y) {
      for (t.x = 0; t.x < cfg_.block.x; ++t.x) {
        fn(t);
      }
    }
  }
}

void Executor::launch(Device& device, const LaunchConfig& cfg,
                      const Kernel& kernel) const {
  static obs::Counter& launches = obs::Registry::global().counter(
      "ep_cusim_kernel_launches_total",
      "Kernel grids launched through the cusim executor");
  static obs::Counter& blocks = obs::Registry::global().counter(
      "ep_cusim_blocks_total", "Thread blocks executed by cusim kernels");
  obs::Span span("cusim/launch");
  const auto& spec = device.spec();
  const std::size_t threads = cfg.block.count();
  if (threads == 0 || cfg.grid.count() == 0) {
    throw PreconditionError("empty launch configuration");
  }
  if (threads > static_cast<std::size_t>(spec.maxThreadsPerBlock)) {
    throw ResourceError("block exceeds maxThreadsPerBlock on " + spec.name);
  }
  if (cfg.sharedBytes >
      static_cast<std::size_t>(spec.sharedMemPerBlockKB) * 1024) {
    throw ResourceError("launch exceeds shared memory per block on " +
                        spec.name);
  }

  const std::size_t blockCount = cfg.grid.count();
  launches.inc();
  blocks.inc(blockCount);
  auto runBlock = [&](std::size_t flat) {
    Dim3 b;
    b.x = static_cast<unsigned>(flat % cfg.grid.x);
    b.y = static_cast<unsigned>((flat / cfg.grid.x) % cfg.grid.y);
    b.z = static_cast<unsigned>(flat / (static_cast<std::size_t>(cfg.grid.x) *
                                        cfg.grid.y));
    BlockContext ctx(b, cfg);
    kernel(ctx);
  };
  if (pool_ != nullptr) {
    pool_->parallelFor(0, blockCount, runBlock);
  } else {
    for (std::size_t i = 0; i < blockCount; ++i) runBlock(i);
  }
}

}  // namespace ep::cusim
