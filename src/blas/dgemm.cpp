#include "blas/dgemm.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace ep::blas {

namespace {

void checkShapes(std::size_t n, std::span<const double> a,
                 std::span<const double> b, std::span<double> c) {
  EP_REQUIRE(a.size() == n * n, "A has wrong size");
  EP_REQUIRE(b.size() == n * n, "B has wrong size");
  EP_REQUIRE(c.size() == n * n, "C has wrong size");
}

// Blocked kernel over a row range [row0, row1).
void dgemmRows(std::size_t n, double alpha, std::span<const double> a,
               std::span<const double> b, double beta, std::span<double> c,
               std::size_t row0, std::size_t row1, std::size_t bs) {
  for (std::size_t i = row0; i < row1; ++i) {
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] *= beta;
  }
  for (std::size_t kk = 0; kk < n; kk += bs) {
    const std::size_t kEnd = std::min(n, kk + bs);
    for (std::size_t jj = 0; jj < n; jj += bs) {
      const std::size_t jEnd = std::min(n, jj + bs);
      for (std::size_t i = row0; i < row1; ++i) {
        for (std::size_t k = kk; k < kEnd; ++k) {
          const double aik = alpha * a[i * n + k];
          const double* brow = &b[k * n];
          double* crow = &c[i * n];
          for (std::size_t j = jj; j < jEnd; ++j) {
            crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void dgemmNaive(std::size_t n, double alpha, std::span<const double> a,
                std::span<const double> b, double beta, std::span<double> c) {
  checkShapes(n, a, b, c);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = alpha * s + beta * c[i * n + j];
    }
  }
}

void dgemmBlocked(std::size_t n, double alpha, std::span<const double> a,
                  std::span<const double> b, double beta, std::span<double> c,
                  std::size_t blockSize) {
  checkShapes(n, a, b, c);
  EP_REQUIRE(blockSize >= 1, "block size must be >= 1");
  dgemmRows(n, alpha, a, b, beta, c, 0, n, blockSize);
}

ThreadgroupDgemm::ThreadgroupDgemm(ThreadgroupConfig cfg) : cfg_(cfg) {
  EP_REQUIRE(cfg_.threadgroups >= 1, "need at least one threadgroup");
  EP_REQUIRE(cfg_.threadsPerGroup >= 1, "need at least one thread per group");
  EP_REQUIRE(cfg_.blockSize >= 1, "block size must be >= 1");
}

std::pair<std::size_t, std::size_t> ThreadgroupDgemm::rowsForThread(
    std::size_t n, std::size_t thread) const {
  const std::size_t total = cfg_.totalThreads();
  EP_REQUIRE(thread < total, "thread index out of range");
  // Equal distribution with the remainder spread one row per leading
  // thread: |rows_i - rows_j| <= 1 for all i, j (load balance).
  const std::size_t base = n / total;
  const std::size_t rem = n % total;
  const std::size_t begin =
      thread * base + std::min<std::size_t>(thread, rem);
  const std::size_t len = base + (thread < rem ? 1 : 0);
  return {begin, begin + len};
}

void ThreadgroupDgemm::run(std::size_t n, double alpha,
                           std::span<const double> a,
                           std::span<const double> b, double beta,
                           std::span<double> c) const {
  checkShapes(n, a, b, c);
  const std::size_t total = cfg_.totalThreads();
  if (total == 1) {
    dgemmRows(n, alpha, a, b, beta, c, 0, n, cfg_.blockSize);
    return;
  }
  // One OS thread per application thread, as the paper's applications
  // bind one thread per core.  Row ranges are disjoint, so no
  // synchronization is needed beyond join — by design (Section I-B).
  std::vector<std::thread> workers;
  workers.reserve(total);
  for (std::size_t tIdx = 0; tIdx < total; ++tIdx) {
    const auto [r0, r1] = rowsForThread(n, tIdx);
    if (r0 == r1) continue;
    workers.emplace_back([=, this] {
      dgemmRows(n, alpha, a, b, beta, c, r0, r1, cfg_.blockSize);
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace ep::blas
