// Double-precision matrix multiplication substrates.
//
// Three implementations of C = alpha * A * B + beta * C on dense square
// row-major matrices:
//   * dgemmNaive    — reference triple loop (test oracle),
//   * dgemmBlocked  — cache-blocked single-thread kernel,
//   * ThreadgroupDgemm — the paper's Fig 3 decomposition: p threadgroups
//     of t threads each; A and C are split into horizontal panels per
//     group, B is shared; within a group rows are split per thread.
//     Load balanced with no inter-thread communication, the property the
//     weak-EP definition requires of test applications.
#pragma once

#include <cstddef>
#include <span>

#include "common/thread_pool.hpp"

namespace ep::blas {

// All matrices are n x n, row-major, A/B inputs and C in/out.
void dgemmNaive(std::size_t n, double alpha, std::span<const double> a,
                std::span<const double> b, double beta, std::span<double> c);

// Cache-blocked kernel; blockSize is the square tile edge (>= 1).
void dgemmBlocked(std::size_t n, double alpha, std::span<const double> a,
                  std::span<const double> b, double beta, std::span<double> c,
                  std::size_t blockSize = 64);

struct ThreadgroupConfig {
  std::size_t threadgroups = 1;     // p
  std::size_t threadsPerGroup = 1;  // t
  std::size_t blockSize = 64;
  [[nodiscard]] std::size_t totalThreads() const {
    return threadgroups * threadsPerGroup;
  }
};

class ThreadgroupDgemm {
 public:
  explicit ThreadgroupDgemm(ThreadgroupConfig cfg);

  // Compute C = alpha A B + beta C with the Fig 3 decomposition.  Rows
  // need not divide evenly; remainders are distributed one per leading
  // thread so the imbalance is at most one row.
  void run(std::size_t n, double alpha, std::span<const double> a,
           std::span<const double> b, double beta,
           std::span<double> c) const;

  [[nodiscard]] const ThreadgroupConfig& config() const { return cfg_; }

  // Row range [begin, end) owned by global thread index `thread`
  // (group-major ordering), exposed for tests of the decomposition.
  [[nodiscard]] std::pair<std::size_t, std::size_t> rowsForThread(
      std::size_t n, std::size_t thread) const;

 private:
  ThreadgroupConfig cfg_;
};

}  // namespace ep::blas
