// Bi-objective points for the (execution time, dynamic energy) plane.
//
// Every experiment in the paper reduces application configurations to
// points in this plane and asks which ones are Pareto-optimal when both
// objectives are minimized.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace ep::pareto {

struct BiPoint {
  Seconds time{0.0};
  Joules energy{0.0};
  // Opaque configuration identifier (index into the experiment's config
  // list) and a human-readable label like "BS=24 G=2 R=4".
  std::uint64_t configId = 0;
  std::string label;
};

// Strict Pareto dominance for minimization in both objectives:
// a dominates b iff a is <= in both and < in at least one.
[[nodiscard]] inline bool dominates(const BiPoint& a, const BiPoint& b) {
  const bool leq = a.time <= b.time && a.energy <= b.energy;
  const bool lt = a.time < b.time || a.energy < b.energy;
  return leq && lt;
}

}  // namespace ep::pareto
