#include "pareto/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep::pareto {

namespace {

const BiPoint& minTimePoint(const std::vector<BiPoint>& points) {
  return *std::min_element(
      points.begin(), points.end(), [](const BiPoint& a, const BiPoint& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.energy < b.energy;
      });
}

const BiPoint& minEnergyPoint(const std::vector<BiPoint>& points) {
  return *std::min_element(
      points.begin(), points.end(), [](const BiPoint& a, const BiPoint& b) {
        if (a.energy != b.energy) return a.energy < b.energy;
        return a.time < b.time;
      });
}

}  // namespace

Tradeoff analyzeTradeoff(const std::vector<BiPoint>& points) {
  EP_REQUIRE(!points.empty(), "trade-off analysis needs points");
  Tradeoff t;
  t.performanceOptimal = minTimePoint(points);
  t.energyOptimal = minEnergyPoint(points);
  const double e0 = t.performanceOptimal.energy.value();
  const double t0 = t.performanceOptimal.time.value();
  EP_REQUIRE(e0 > 0.0 && t0 > 0.0, "objectives must be positive");
  t.maxEnergySavings = (e0 - t.energyOptimal.energy.value()) / e0;
  t.performanceDegradation = (t.energyOptimal.time.value() - t0) / t0;
  return t;
}

std::optional<Tradeoff> savingsUnderBudget(const std::vector<BiPoint>& points,
                                           double maxDegradation) {
  EP_REQUIRE(!points.empty(), "trade-off analysis needs points");
  EP_REQUIRE(maxDegradation >= 0.0, "degradation budget must be >= 0");
  const BiPoint perfOpt = minTimePoint(points);
  const double tLimit = perfOpt.time.value() * (1.0 + maxDegradation);
  std::vector<BiPoint> admissible;
  for (const auto& p : points) {
    if (p.time.value() <= tLimit) admissible.push_back(p);
  }
  const BiPoint best = minEnergyPoint(admissible);
  if (best.energy >= perfOpt.energy) return std::nullopt;
  Tradeoff t;
  t.performanceOptimal = perfOpt;
  t.energyOptimal = best;
  t.maxEnergySavings =
      (perfOpt.energy.value() - best.energy.value()) / perfOpt.energy.value();
  t.performanceDegradation =
      (best.time.value() - perfOpt.time.value()) / perfOpt.time.value();
  return t;
}

BiPoint kneePoint(const std::vector<BiPoint>& front) {
  EP_REQUIRE(!front.empty(), "knee of empty front");
  if (front.size() == 1) return front.front();
  double tMin = front.front().time.value(), tMax = tMin;
  double eMin = front.front().energy.value(), eMax = eMin;
  for (const auto& p : front) {
    tMin = std::min(tMin, p.time.value());
    tMax = std::max(tMax, p.time.value());
    eMin = std::min(eMin, p.energy.value());
    eMax = std::max(eMax, p.energy.value());
  }
  const double tSpan = std::max(tMax - tMin, 1e-300);
  const double eSpan = std::max(eMax - eMin, 1e-300);
  const BiPoint* best = &front.front();
  double bestScore = -1.0;
  for (const auto& p : front) {
    // Normalized distance from the worst corner in each objective.
    const double gt = (tMax - p.time.value()) / tSpan;
    const double ge = (eMax - p.energy.value()) / eSpan;
    const double score = gt * ge;
    if (score > bestScore ||
        (score == bestScore && p.time < best->time)) {
      bestScore = score;
      best = &p;
    }
  }
  return *best;
}

}  // namespace ep::pareto
