#include "pareto/front.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ep::pareto {

namespace {

// Sort by time ascending; ties broken by energy ascending, then configId
// for determinism.
void sortByTime(std::vector<BiPoint>& pts) {
  std::sort(pts.begin(), pts.end(), [](const BiPoint& a, const BiPoint& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.energy != b.energy) return a.energy < b.energy;
    return a.configId < b.configId;
  });
}

}  // namespace

std::vector<BiPoint> paretoFront(const std::vector<BiPoint>& points) {
  std::vector<BiPoint> sorted = points;
  sortByTime(sorted);
  std::vector<BiPoint> front;
  double bestEnergy = 0.0;
  bool haveBest = false;
  for (const auto& p : sorted) {
    if (!haveBest || p.energy.value() < bestEnergy) {
      front.push_back(p);
      bestEnergy = p.energy.value();
      haveBest = true;
    } else if (p.energy.value() == bestEnergy) {
      // Equal energy: non-dominated only if time also ties the last
      // front member (sorted order guarantees time >= last).
      if (p.time == front.back().time) front.push_back(p);
    }
  }
  return front;
}

namespace {

// Sort-based front peeling (Jensen's 2-D sweep), O(n log n) total and
// O(n log k) when capped at maxLevels fronts.
//
// After sortByTime, every already-placed point precedes the current
// point p in (time, energy, configId) order, so whether a front
// dominates p is decided by that front's TAIL (its last appended
// member, which has the front's max time and min energy):
//   tail dominates p  <=>  tail.energy < p.energy
//                          || (tail.energy == p.energy
//                              && tail.time < p.time)
// (equal time and equal energy are mutually non-dominating, which is
// how duplicate-objective points all land on the same front).  The
// predicate is monotone over front levels — if front f's tail does not
// dominate p, no deeper front's tail does — so the target front is
// found by binary search, and p is appended to the first front whose
// tail does not dominate it.
//
// Capping at maxLevels is exact for the kept fronts: a point deeper
// than maxLevels can never become the tail of a tracked front, so
// discarding it cannot change how later points are placed.
std::vector<std::vector<BiPoint>> peelFronts(std::vector<BiPoint> points,
                                             std::size_t maxLevels) {
  sortByTime(points);
  std::vector<std::vector<BiPoint>> fronts;
  for (auto& p : points) {
    std::size_t lo = 0;
    std::size_t hi = fronts.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const BiPoint& tail = fronts[mid].back();
      const bool tailDominates =
          tail.energy < p.energy ||
          (tail.energy == p.energy && tail.time < p.time);
      if (tailDominates) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == fronts.size()) {
      if (fronts.size() == maxLevels) continue;  // deeper than we track
      fronts.emplace_back();
    }
    fronts[lo].push_back(std::move(p));
  }
  return fronts;
}

}  // namespace

std::vector<std::vector<BiPoint>> nonDominatedSort(std::vector<BiPoint> points) {
  return peelFronts(std::move(points),
                    std::numeric_limits<std::size_t>::max());
}

std::vector<BiPoint> localFront(const std::vector<BiPoint>& points,
                                std::size_t k) {
  EP_REQUIRE(k >= 1, "front levels are 1-based");
  auto fronts = peelFronts(points, k);
  if (k > fronts.size()) return {};
  return std::move(fronts[k - 1]);
}

bool isValidFront(const std::vector<BiPoint>& front,
                  const std::vector<BiPoint>& points) {
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (dominates(a, b)) return false;
    }
  }
  for (const auto& p : points) {
    for (const auto& f : front) {
      if (dominates(p, f)) return false;
    }
  }
  return true;
}

double hypervolume(const std::vector<BiPoint>& front,
                   const BiPoint& reference) {
  if (front.empty()) return 0.0;
  std::vector<BiPoint> sorted = front;
  sortByTime(sorted);
  for (const auto& p : sorted) {
    EP_REQUIRE(p.time <= reference.time && p.energy <= reference.energy,
               "reference point must be weakly dominated by the front");
  }
  double area = 0.0;
  double prevEnergy = reference.energy.value();
  for (const auto& p : sorted) {
    // Only strictly improving energies contribute (the front may contain
    // duplicate-objective points).
    if (p.energy.value() < prevEnergy) {
      area += (reference.time.value() - p.time.value()) *
              (prevEnergy - p.energy.value());
      prevEnergy = p.energy.value();
    }
  }
  return area;
}

std::vector<double> crowdingDistance(const std::vector<BiPoint>& front) {
  const std::size_t n = front.size();
  std::vector<double> d(n, 0.0);
  if (n <= 2) {
    std::fill(d.begin(), d.end(),
              std::numeric_limits<double>::infinity());
    return d;
  }
  // Front is expected time-sorted (paretoFront output); on a 2-D front
  // sorting by one objective orders the other inversely, so a single
  // pass covers both objectives.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return front[a].time < front[b].time;
  });
  const double tSpan = std::max(front[order.back()].time.value() -
                                    front[order.front()].time.value(),
                                1e-300);
  const double eSpan = std::max(front[order.front()].energy.value() -
                                    front[order.back()].energy.value(),
                                1e-300);
  d[order.front()] = std::numeric_limits<double>::infinity();
  d[order.back()] = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const auto& prev = front[order[i - 1]];
    const auto& next = front[order[i + 1]];
    d[order[i]] = (next.time.value() - prev.time.value()) / tSpan +
                  (prev.energy.value() - next.energy.value()) / eSpan;
  }
  return d;
}

std::vector<BiPoint> epsilonFront(const std::vector<BiPoint>& points,
                                  double epsilon) {
  EP_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
  const std::vector<BiPoint> front = paretoFront(points);
  std::vector<BiPoint> thin;
  for (const auto& p : front) {
    const bool nearKept = std::any_of(
        thin.begin(), thin.end(), [&](const BiPoint& k) {
          const auto close = [epsilon](double a, double b) {
            const double scale = std::max(std::abs(a), std::abs(b));
            return scale == 0.0 || std::abs(a - b) <= epsilon * scale;
          };
          return close(k.time.value(), p.time.value()) &&
                 close(k.energy.value(), p.energy.value());
        });
    if (!nearKept) thin.push_back(p);
  }
  return thin;
}

std::vector<BiPoint> precisionFront(const std::vector<BiPoint>& points,
                                    double epsilon) {
  EP_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
  const std::vector<BiPoint> front = paretoFront(points);
  // a matches b's objective to within the measurement uncertainty.
  const auto within = [epsilon](double a, double b) {
    return a <= (1.0 + epsilon) * b;
  };
  // a beats b's objective by more than the measurement uncertainty.
  const auto beats = [epsilon](double a, double b) {
    return a < (1.0 - epsilon) * b;
  };
  std::vector<BiPoint> kept;
  for (const auto& b : front) {
    const bool redundant = std::any_of(
        front.begin(), front.end(), [&](const BiPoint& a) {
          return within(a.time.value(), b.time.value()) &&
                 within(a.energy.value(), b.energy.value()) &&
                 (beats(a.time.value(), b.time.value()) ||
                  beats(a.energy.value(), b.energy.value()));
        });
    if (!redundant) kept.push_back(b);
  }
  return kept;
}

}  // namespace ep::pareto
