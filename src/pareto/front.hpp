// Pareto front computation: the global front and the level-k ("local")
// fronts the paper uses for the K40c, where the global front degenerates
// to a single point but inner fronts still expose energy/performance
// trade-offs (Section V-B).
#pragma once

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace ep::pareto {

// The non-dominated subset of `points`, sorted by ascending time.
// Duplicate-objective points are all kept (they are mutually
// non-dominating), so fronts are set-stable.
[[nodiscard]] std::vector<BiPoint> paretoFront(
    const std::vector<BiPoint>& points);

// Non-dominated sorting: fronts[0] is the global front, fronts[1] the
// front of what remains after removing fronts[0], and so on.  Every input
// point appears in exactly one front, each front sorted by ascending
// time (energy, configId tie-breaks).  O(n log n) sort-based sweep.
[[nodiscard]] std::vector<std::vector<BiPoint>> nonDominatedSort(
    std::vector<BiPoint> points);

// Level-k local front (k >= 1): nonDominatedSort(points)[k-1]; empty
// vector if fewer than k fronts exist.  Peels only the first k levels
// (O(n log k)) instead of sorting the whole cloud.
[[nodiscard]] std::vector<BiPoint> localFront(
    const std::vector<BiPoint>& points, std::size_t k);

// True iff `front` is mutually non-dominating and no point of `points`
// dominates any member.  Used by property tests.
[[nodiscard]] bool isValidFront(const std::vector<BiPoint>& front,
                                const std::vector<BiPoint>& points);

// 2-D hypervolume (area dominated between the front and a reference
// point that must be weakly dominated by every front member).
[[nodiscard]] double hypervolume(const std::vector<BiPoint>& front,
                                 const BiPoint& reference);

// NSGA-II-style crowding distance per front member (aligned with the
// time-sorted front order); boundary points get +infinity.  Used to
// pick well-spread representative configurations from large fronts.
[[nodiscard]] std::vector<double> crowdingDistance(
    const std::vector<BiPoint>& front);

// Epsilon-front: a thinned Pareto front where a point is kept only if
// no already-kept point is within a relative `epsilon` in BOTH
// objectives — collapses measurement-noise-level near-duplicates.
[[nodiscard]] std::vector<BiPoint> epsilonFront(
    const std::vector<BiPoint>& points, double epsilon);

// Precision-aware front: the members of the exact Pareto front that
// remain meaningful when both objectives carry a relative measurement
// uncertainty of `epsilon` (e.g. the CI half-width the measurement
// protocol targets).  A front member b is dropped when some other
// member a matches both of b's objectives to within (1 + epsilon)
// *and* improves at least one of them by more than epsilon — b's
// advantage over a is then below the resolution of the instrument that
// produced it.  Mutual meaningful epsilon-domination is impossible on
// a 2-D front (the strict improvement in one direction contradicts the
// within-epsilon closeness in the other), so the result is
// order-independent.  With epsilon = 0 this is exactly paretoFront.
[[nodiscard]] std::vector<BiPoint> precisionFront(
    const std::vector<BiPoint>& points, double epsilon);

}  // namespace ep::pareto
