#include "pareto/streaming_front.hpp"

namespace ep::pareto {

bool StreamingFront::insert(const BiPoint& p) {
  // Position p would occupy in (time, energy, configId) order.  The
  // front invariant (strictly increasing time, strictly decreasing
  // energy outside duplicate groups) makes every domination question
  // answerable from the immediate neighbours of that position.
  auto it = members_.lower_bound(p);

  if (it != members_.begin()) {
    const auto prev = std::prev(it);
    if (prev->time == p.time) {
      // All members sharing p's time share one energy (otherwise they
      // would dominate each other), and prev sorts <= p, so
      // prev->energy <= p.energy.
      if (prev->energy < p.energy) return false;  // dominated in place
      members_.insert(it, p);  // duplicate-objective member: keep
      return true;
    }
    // prev->time < p.time: equal-or-better energy at strictly better
    // time dominates p.
    if (prev->energy <= p.energy) return false;
  }

  // p survives.  Erase the members it dominates: everything at p's time
  // with worse energy, then everything at later time with energy >=
  // p's (the front's decreasing-energy order makes them contiguous).
  while (it != members_.end()) {
    if (it->time == p.time) {
      if (it->energy == p.energy) {
        ++it;  // duplicate-objective member, mutually non-dominating
        continue;
      }
      it = members_.erase(it);  // same time, worse energy
    } else if (it->energy >= p.energy) {
      it = members_.erase(it);  // later time, no energy advantage
    } else {
      break;
    }
  }
  members_.insert(p);
  return true;
}

std::vector<BiPoint> StreamingFront::snapshot() const {
  return std::vector<BiPoint>(members_.begin(), members_.end());
}

}  // namespace ep::pareto
