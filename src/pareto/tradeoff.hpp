// Trade-off analysis over a set of bi-objective points.
//
// The paper's headline numbers — "18 % dynamic energy savings while
// tolerating a performance degradation of 7 % (K40c)" and "(50 %, 11 %)
// (P100)" — are exactly the quantities computed here: energy savings are
// relative to the energy of the performance-optimal configuration, and
// performance degradation is relative to its execution time.
#pragma once

#include <optional>
#include <vector>

#include "pareto/point.hpp"

namespace ep::pareto {

struct Tradeoff {
  BiPoint performanceOptimal;
  BiPoint energyOptimal;
  // Fraction of dynamic energy saved by moving from the performance-
  // optimal point to the energy-optimal point (0 when they coincide).
  double maxEnergySavings = 0.0;
  // Execution-time increase of the energy-optimal point relative to the
  // performance-optimal point.
  double performanceDegradation = 0.0;
};

// Analyze a non-empty point set.  Works on raw point clouds or fronts.
[[nodiscard]] Tradeoff analyzeTradeoff(const std::vector<BiPoint>& points);

// Best energy savings achievable while keeping execution time within
// (1 + maxDegradation) of the performance optimum; nullopt if no point
// beats the performance optimum's energy under that budget.
[[nodiscard]] std::optional<Tradeoff> savingsUnderBudget(
    const std::vector<BiPoint>& points, double maxDegradation);

// Knee point: front member maximizing the product of normalized gains
// (a balanced compromise); ties resolved toward lower time.
[[nodiscard]] BiPoint kneePoint(const std::vector<BiPoint>& front);

}  // namespace ep::pareto
