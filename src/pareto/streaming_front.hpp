// Incremental (streaming) Pareto-front maintenance: O(log n) insert
// instead of re-peeling the whole cloud on every update.
//
// The fleet router keeps a live cluster-level front under continuous
// traffic; re-running paretoFront() per completed request would be
// O(n log n) each time.  StreamingFront maintains exactly the set (and
// order) that paretoFront() would produce over every point ever
// inserted:
//
//   * members are ordered by (time, energy, configId) — the same
//     comparator batch sorting uses, so snapshot() is bitwise-equal to
//     paretoFront(allInsertedPoints);
//   * duplicate-objective points are all kept (mutually
//     non-dominating), matching the batch front's set-stability;
//   * an insert either rejects a dominated point (O(log n)) or admits
//     it and erases the members it dominates — each erased member was
//     admitted by an earlier insert, so the amortized cost stays
//     O(log n) per insert.
//
// Not internally synchronized: callers (the fleet router's completion
// path) guard it with their own mutex, off the routing hot path.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "pareto/point.hpp"

namespace ep::pareto {

class StreamingFront {
 public:
  // Offer one point.  Returns true if the point joined the front
  // (including as a duplicate-objective member), false if an existing
  // member dominates it.
  bool insert(const BiPoint& p);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  void clear() { members_.clear(); }

  // The current front, sorted by ascending time (energy, configId
  // tie-breaks) — the exact order paretoFront() returns.
  [[nodiscard]] std::vector<BiPoint> snapshot() const;

 private:
  // Batch sort order: time, then energy, then configId.  On a valid
  // front, time strictly increases and energy strictly decreases except
  // within duplicate-objective groups (equal time AND equal energy).
  struct Cmp {
    bool operator()(const BiPoint& a, const BiPoint& b) const {
      if (a.time != b.time) return a.time < b.time;
      if (a.energy != b.energy) return a.energy < b.energy;
      return a.configId < b.configId;
    }
  };

  std::multiset<BiPoint, Cmp> members_;
};

}  // namespace ep::pareto
