#include "partition/partitioner.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ep::partition {

namespace {

struct Candidate {
  Seconds time{0.0};
  Joules energy{0.0};
  std::vector<std::size_t> parts;
};

// Keep only Pareto-optimal candidates (minimize time and energy).
// Candidates with identical objectives collapse to one representative,
// keeping state sizes bounded.
std::vector<Candidate> prune(std::vector<Candidate> cands) {
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.energy < b.energy;
            });
  std::vector<Candidate> front;
  for (auto& c : cands) {
    if (!front.empty() && front.back().time == c.time &&
        front.back().energy == c.energy) {
      continue;  // exact duplicate objectives
    }
    if (front.empty() || c.energy < front.back().energy) {
      front.push_back(std::move(c));
    }
  }
  return front;
}

}  // namespace

std::string Distribution::describe(
    const std::vector<DiscreteProfile>& profiles) const {
  EP_REQUIRE(parts.size() == profiles.size(), "parts/profiles mismatch");
  std::string s;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) s += " + ";
    s += profiles[i].name() + ":" + std::to_string(parts[i]);
  }
  return s;
}

WorkloadPartitioner::WorkloadPartitioner(
    std::vector<DiscreteProfile> profiles)
    : profiles_(std::move(profiles)) {
  EP_REQUIRE(!profiles_.empty(), "need at least one processor profile");
}

std::vector<Distribution> WorkloadPartitioner::paretoDistributions(
    std::size_t totalUnits) const {
  std::size_t capacity = 0;
  for (const auto& p : profiles_) capacity += p.maxUnits();
  EP_REQUIRE(totalUnits >= 1, "workload must be positive");
  EP_REQUIRE(totalUnits <= capacity,
             "workload exceeds the combined profile capacity");

  // DP over processors: state[u] = Pareto set of ways to place u units
  // on the processors handled so far.
  std::vector<std::vector<Candidate>> state(totalUnits + 1);
  state[0].push_back(Candidate{});

  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    const auto& prof = profiles_[p];
    std::vector<std::vector<Candidate>> next(totalUnits + 1);
    for (std::size_t placed = 0; placed <= totalUnits; ++placed) {
      if (state[placed].empty()) continue;
      const std::size_t maxHere =
          std::min(prof.maxUnits(), totalUnits - placed);
      for (std::size_t x = 0; x <= maxHere; ++x) {
        const Seconds tx = prof.timeFor(x);
        const Joules ex = prof.energyFor(x);
        for (const auto& c : state[placed]) {
          Candidate n;
          n.time = std::max(c.time, tx);
          n.energy = c.energy + ex;
          n.parts = c.parts;
          n.parts.push_back(x);
          next[placed + x].push_back(std::move(n));
        }
      }
    }
    for (auto& cell : next) cell = prune(std::move(cell));
    state = std::move(next);
  }

  std::vector<Distribution> out;
  out.reserve(state[totalUnits].size());
  for (auto& c : state[totalUnits]) {
    Distribution d;
    d.parts = std::move(c.parts);
    d.time = c.time;
    d.energy = c.energy;
    out.push_back(std::move(d));
  }
  // prune() already sorted by ascending time with descending energy.
  return out;
}

Distribution WorkloadPartitioner::fastest(std::size_t totalUnits) const {
  const auto front = paretoDistributions(totalUnits);
  EP_REQUIRE(!front.empty(), "no feasible distribution");
  return front.front();
}

Distribution WorkloadPartitioner::mostEfficient(
    std::size_t totalUnits) const {
  const auto front = paretoDistributions(totalUnits);
  EP_REQUIRE(!front.empty(), "no feasible distribution");
  return front.back();
}

Distribution WorkloadPartitioner::balanced(std::size_t totalUnits) const {
  std::size_t capacity = 0;
  for (const auto& p : profiles_) capacity += p.maxUnits();
  EP_REQUIRE(totalUnits >= 1 && totalUnits <= capacity,
             "workload out of range");
  // Even split with remainders to the leading processors, clamped to
  // each profile's range; leftover spills to whoever still has room.
  const std::size_t p = profiles_.size();
  std::vector<std::size_t> parts(p, 0);
  std::size_t remaining = totalUnits;
  const std::size_t base = totalUnits / p;
  const std::size_t rem = totalUnits % p;
  for (std::size_t i = 0; i < p; ++i) {
    parts[i] = std::min(profiles_[i].maxUnits(),
                        base + (i < rem ? 1 : 0));
    remaining -= parts[i];
  }
  for (std::size_t i = 0; i < p && remaining > 0; ++i) {
    const std::size_t room = profiles_[i].maxUnits() - parts[i];
    const std::size_t take = std::min(room, remaining);
    parts[i] += take;
    remaining -= take;
  }
  EP_REQUIRE(remaining == 0, "could not place the full workload");

  Distribution d;
  d.parts = parts;
  for (std::size_t i = 0; i < p; ++i) {
    d.time = std::max(d.time, profiles_[i].timeFor(parts[i]));
    d.energy += profiles_[i].energyFor(parts[i]);
  }
  return d;
}

}  // namespace ep::partition
