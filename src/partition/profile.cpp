#include "partition/profile.hpp"

#include "common/error.hpp"

namespace ep::partition {

DiscreteProfile::DiscreteProfile(std::string name,
                                 std::vector<Seconds> times,
                                 std::vector<Joules> energies)
    : name_(std::move(name)),
      times_(std::move(times)),
      energies_(std::move(energies)) {
  EP_REQUIRE(times_.size() == energies_.size(),
             "time/energy tables must align");
  EP_REQUIRE(times_.size() >= 2, "profile needs at least one work unit");
  EP_REQUIRE(times_[0].value() == 0.0 && energies_[0].value() == 0.0,
             "zero work must cost zero time and energy");
  for (std::size_t k = 1; k < times_.size(); ++k) {
    EP_REQUIRE(times_[k].value() > 0.0, "positive work needs positive time");
    EP_REQUIRE(energies_[k].value() >= 0.0, "energy must be non-negative");
  }
}

DiscreteProfile DiscreteProfile::sample(
    std::string name, std::size_t maxUnits,
    const std::function<Seconds(std::size_t)>& timeOf,
    const std::function<Joules(std::size_t)>& energyOf) {
  EP_REQUIRE(maxUnits >= 1, "profile needs at least one work unit");
  std::vector<Seconds> times;
  std::vector<Joules> energies;
  times.reserve(maxUnits + 1);
  energies.reserve(maxUnits + 1);
  times.push_back(Seconds{0.0});
  energies.push_back(Joules{0.0});
  for (std::size_t k = 1; k <= maxUnits; ++k) {
    times.push_back(timeOf(k));
    energies.push_back(energyOf(k));
  }
  return DiscreteProfile(std::move(name), std::move(times),
                         std::move(energies));
}

Seconds DiscreteProfile::timeFor(std::size_t units) const {
  EP_REQUIRE(units < times_.size(), "workload exceeds profile range");
  return times_[units];
}

Joules DiscreteProfile::energyFor(std::size_t units) const {
  EP_REQUIRE(units < energies_.size(), "workload exceeds profile range");
  return energies_[units];
}

}  // namespace ep::partition
