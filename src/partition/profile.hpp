// Discrete time/energy profiles of a processor as functions of workload
// size — the input representation of the application-level bi-objective
// workload-distribution methods of Reddy et al. [25], [26] and
// Khaleghzadeh et al. [12] that the paper builds on.
//
// A profile tabulates, for k = 0..K work units of granularity `delta`,
// the execution time and dynamic energy the processor needs for k units.
// Profiles are deliberately NOT assumed convex or monotone: the whole
// point of the paper is that real time/energy functions of workload size
// are complex and non-smooth.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace ep::partition {

class DiscreteProfile {
 public:
  // times[k], energies[k] describe k work units; entry 0 must be zero
  // time and zero energy (a processor given no work costs nothing in
  // dynamic terms).
  DiscreteProfile(std::string name, std::vector<Seconds> times,
                  std::vector<Joules> energies);

  // Build a profile by sampling model callables at k = 0..maxUnits.
  static DiscreteProfile sample(
      std::string name, std::size_t maxUnits,
      const std::function<Seconds(std::size_t)>& timeOf,
      const std::function<Joules(std::size_t)>& energyOf);

  [[nodiscard]] const std::string& name() const { return name_; }
  // Largest workload (in units) the profile covers.
  [[nodiscard]] std::size_t maxUnits() const { return times_.size() - 1; }

  [[nodiscard]] Seconds timeFor(std::size_t units) const;
  [[nodiscard]] Joules energyFor(std::size_t units) const;

 private:
  std::string name_;
  std::vector<Seconds> times_;
  std::vector<Joules> energies_;
};

}  // namespace ep::partition
