// Bi-objective workload partitioning across (possibly heterogeneous)
// processors: the exact dynamic-programming solution method in the
// style of Reddy et al. [25], [26] / Khaleghzadeh et al. [12].
//
// Given p discrete profiles and a total workload of W units, enumerate
// the Pareto-optimal distributions (x_1, ..., x_p), sum x_i = W, under
// the parallel objectives
//
//   time(x)   = max_i time_i(x_i)     (processors run concurrently)
//   energy(x) = sum_i energy_i(x_i)   (dynamic energies add)
//
// The solver runs a processor-by-processor DP whose state is the number
// of units already distributed; each state carries the Pareto front of
// (time, energy, parts) tuples, pruned after every step, which keeps
// the computation exact while avoiding the exponential enumeration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "partition/profile.hpp"

namespace ep::partition {

struct Distribution {
  std::vector<std::size_t> parts;  // units per processor
  Seconds time{0.0};               // max over processors
  Joules energy{0.0};              // sum over processors
  [[nodiscard]] std::string describe(
      const std::vector<DiscreteProfile>& profiles) const;
};

class WorkloadPartitioner {
 public:
  explicit WorkloadPartitioner(std::vector<DiscreteProfile> profiles);

  [[nodiscard]] const std::vector<DiscreteProfile>& profiles() const {
    return profiles_;
  }

  // The Pareto-optimal distributions of `totalUnits`, sorted by
  // ascending time.  Throws if the workload cannot be distributed
  // (exceeds the sum of profile ranges).
  [[nodiscard]] std::vector<Distribution> paretoDistributions(
      std::size_t totalUnits) const;

  // Convenience extremes of the front.
  [[nodiscard]] Distribution fastest(std::size_t totalUnits) const;
  [[nodiscard]] Distribution mostEfficient(std::size_t totalUnits) const;

  // Baseline for comparison: the load-balanced distribution that simply
  // splits the work as evenly as profile ranges allow (what a
  // performance-only runtime would do on homogeneous processors).
  [[nodiscard]] Distribution balanced(std::size_t totalUnits) const;

 private:
  std::vector<DiscreteProfile> profiles_;
};

}  // namespace ep::partition
