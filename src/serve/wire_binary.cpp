#include "serve/wire_binary.hpp"

#include <cstring>

#include "net/frame.hpp"

namespace ep::serve::wire_binary {

namespace {

// Cursor over one frame body; every read checks bounds so a hostile
// frame can truncate anywhere without reading past the payload.
struct Reader {
  const char* p;
  std::size_t len;
  std::size_t pos = 0;

  bool u8(std::uint8_t* out) {
    if (pos >= len) return false;
    *out = static_cast<std::uint8_t>(p[pos++]);
    return true;
  }
  bool varint(std::uint64_t* out) {
    const int used = net::readVarint(p + pos, len - pos, out);
    if (used <= 0) return false;
    pos += static_cast<std::size_t>(used);
    return true;
  }
  bool f64(double* out) {
    if (len - pos < sizeof(double)) return false;
    std::memcpy(out, p + pos, sizeof(double));
    pos += sizeof(double);
    return true;
  }
  bool str(std::string* out) {
    std::uint64_t n = 0;
    if (!varint(&n)) return false;
    if (n > len - pos) return false;
    out->assign(p + pos, static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return true;
  }
};

void putF64(std::string& out, double v) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &v, sizeof(double));
  out.append(bytes, sizeof(double));
}

void putString(std::string& out, std::string_view s) {
  net::putVarint(out, s.size());
  out.append(s.data(), s.size());
}

constexpr std::uint8_t kReqReport = 1u << 0;
constexpr std::uint8_t kReqDeviceAuto = 1u << 1;
constexpr std::uint8_t kRespCacheHit = 1u << 0;
constexpr std::uint8_t kRespCoalesced = 1u << 1;
constexpr std::uint8_t kRespStale = 1u << 2;
constexpr std::uint8_t kRespHasReport = 1u << 3;

}  // namespace

std::string encodeTuneRequest(const BinaryTuneRequest& req) {
  std::string out;
  out.reserve(32 + req.traceId.size());
  out += static_cast<char>(req.tune.device == Device::K40c ? 1 : 0);
  std::uint8_t flags = 0;
  if (req.report) flags |= kReqReport;
  if (req.deviceAuto) flags |= kReqDeviceAuto;
  out += static_cast<char>(flags);
  net::putVarint(out, static_cast<std::uint64_t>(
                          req.tune.n < 0 ? 0 : req.tune.n));
  putF64(out, req.tune.maxDegradation);
  putF64(out, req.tune.deadlineMs);
  putString(out, req.traceId);
  return out;
}

std::optional<BinaryTuneRequest> decodeTuneRequest(std::string_view body,
                                                   std::string* error) {
  Reader r{body.data(), body.size()};
  BinaryTuneRequest req;
  std::uint8_t device = 0;
  std::uint8_t flags = 0;
  std::uint64_t n = 0;
  if (!r.u8(&device) || !r.u8(&flags) || !r.varint(&n) ||
      !r.f64(&req.tune.maxDegradation) || !r.f64(&req.tune.deadlineMs) ||
      !r.str(&req.traceId)) {
    if (error != nullptr) *error = "truncated tune request";
    return std::nullopt;
  }
  if (device > 1) {
    if (error != nullptr) *error = "unknown device";
    return std::nullopt;
  }
  if (n > static_cast<std::uint64_t>(1) << 30) {
    if (error != nullptr) *error = "workload out of range";
    return std::nullopt;
  }
  req.tune.device = device == 1 ? Device::K40c : Device::P100;
  req.tune.n = static_cast<int>(n);
  req.report = (flags & kReqReport) != 0;
  req.deviceAuto = (flags & kReqDeviceAuto) != 0;
  return req;
}

std::string encodeTuneResponse(const TuneResponse& resp,
                               const std::string& traceId, bool withReport) {
  std::string out;
  out.reserve(128);
  out += static_cast<char>(static_cast<std::uint8_t>(resp.status));
  std::uint8_t flags = 0;
  if (resp.cacheHit) flags |= kRespCacheHit;
  if (resp.coalesced) flags |= kRespCoalesced;
  if (resp.stale) flags |= kRespStale;
  if (withReport) flags |= kRespHasReport;
  out += static_cast<char>(flags);
  putString(out, resp.error);
  putString(out, traceId);
  putF64(out, resp.latency.value() * 1e3);
  if (resp.status == Status::Ok) {
    const auto& rec = resp.recommendation;
    putString(out, rec.recommended.label);
    putF64(out, rec.recommended.time.value());
    putF64(out, rec.recommended.energy.value());
    putF64(out, rec.energySavings);
    putF64(out, rec.performanceDegradation);
    putString(out, rec.performanceOptimal.label);
    putString(out, rec.energyOptimal.label);
    putString(out, rec.knee.label);
    net::putVarint(out, rec.globalFront.size());
  }
  if (withReport) {
    const auto& rep = resp.report;
    putF64(out, rep.attributedJoules);
    net::putVarint(out, rep.measurementWindows);
    net::putVarint(out, rep.remeasures);
    net::putVarint(out, rep.studiesExecuted);
    net::putVarint(out, rep.cacheHits);
    net::putVarint(out, rep.coalesced);
    net::putVarint(out, rep.staleServed);
    net::putVarint(out, rep.skippedConfigs);
  }
  return out;
}

std::optional<BinaryTuneResponse> decodeTuneResponse(std::string_view body,
                                                     std::string* error) {
  Reader r{body.data(), body.size()};
  BinaryTuneResponse resp;
  std::uint8_t status = 0;
  std::uint8_t flags = 0;
  if (!r.u8(&status) || !r.u8(&flags) || !r.str(&resp.error) ||
      !r.str(&resp.traceId) || !r.f64(&resp.latencyMs)) {
    if (error != nullptr) *error = "truncated tune response";
    return std::nullopt;
  }
  if (status > static_cast<std::uint8_t>(Status::Overloaded)) {
    if (error != nullptr) *error = "unknown status";
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  resp.cacheHit = (flags & kRespCacheHit) != 0;
  resp.coalesced = (flags & kRespCoalesced) != 0;
  resp.stale = (flags & kRespStale) != 0;
  resp.hasReport = (flags & kRespHasReport) != 0;
  if (resp.status == Status::Ok) {
    if (!r.str(&resp.recommended) || !r.f64(&resp.recommendedTimeS) ||
        !r.f64(&resp.recommendedEnergyJ) || !r.f64(&resp.energySavings) ||
        !r.f64(&resp.performanceDegradation) ||
        !r.str(&resp.performanceOptimal) || !r.str(&resp.energyOptimal) ||
        !r.str(&resp.knee) || !r.varint(&resp.frontSize)) {
      if (error != nullptr) *error = "truncated tune response";
      return std::nullopt;
    }
  }
  if (resp.hasReport) {
    auto& rep = resp.report;
    if (!r.f64(&rep.attributedJoules) || !r.varint(&rep.measurementWindows) ||
        !r.varint(&rep.remeasures) || !r.varint(&rep.studiesExecuted) ||
        !r.varint(&rep.cacheHits) || !r.varint(&rep.coalesced) ||
        !r.varint(&rep.staleServed) || !r.varint(&rep.skippedConfigs)) {
      if (error != nullptr) *error = "truncated tune response";
      return std::nullopt;
    }
  }
  return resp;
}

}  // namespace ep::serve::wire_binary
