#include "serve/metrics.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ep::serve {

double LatencyHistogram::quantileUpperBoundMs(double q) const {
  EP_REQUIRE(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank && seen > 0) {
      if (i < kUpperBoundsMs.size()) return kUpperBoundsMs[i];
      return kUpperBoundsMs.back() * 10.0;  // overflow bucket sentinel
    }
  }
  return kUpperBoundsMs.back() * 10.0;
}

std::string formatMetrics(const ServeMetrics& m) {
  std::ostringstream os;
  os << "requests: accepted=" << m.accepted
     << " completed=" << m.completed << " failed=" << m.failed << "\n"
     << "rejected: queue_full=" << m.rejectedQueueFull
     << " deadline=" << m.rejectedDeadline
     << " shutdown=" << m.rejectedShutdown
     << " circuit_open=" << m.rejectedCircuitOpen
     << " overloaded=" << m.rejectedOverload
     << " shed_deadline=" << m.shedDeadline << "\n"
     << "sharing:  coalesced=" << m.coalesced
     << " studies_executed=" << m.studiesExecuted << "\n"
     << "breaker:  opens=" << m.breakerOpens
     << " stale_served=" << m.staleServed
     << " p100=" << m.breakerStateP100
     << " k40c=" << m.breakerStateK40c << "\n"
     << "cache:    hits=" << m.cacheHits << " misses=" << m.cacheMisses
     << " evictions=" << m.cacheEvictions << " size=" << m.cacheSize << "/"
     << m.cacheCapacity << "\n"
     << "state:    queue_depth=" << m.queueDepth
     << " in_flight_studies=" << m.inFlightStudies
     << " admission_limit=" << m.admissionLimit << "\n"
     << "latency:  completed=" << m.latency.total()
     << " p50<=" << m.latency.quantileUpperBoundMs(0.50) << "ms"
     << " p99<=" << m.latency.quantileUpperBoundMs(0.99) << "ms\n"
     << "latency buckets (ms:count):";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (m.latency.counts[i] == 0) continue;
    os << " ";
    if (i < LatencyHistogram::kUpperBoundsMs.size()) {
      os << "<=" << LatencyHistogram::kUpperBoundsMs[i];
    } else {
      os << ">" << LatencyHistogram::kUpperBoundsMs.back();
    }
    os << ":" << m.latency.counts[i];
  }
  os << "\n";
  return os.str();
}

}  // namespace ep::serve
