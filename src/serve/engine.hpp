// The compute side of the service: everything expensive the broker can
// be asked to do is "evaluate one workload study on one device".
//
// TuningEngine is the seam that keeps the broker testable — the unit
// tests inject a gated counting engine to prove coalescing ("N
// concurrent identical requests, exactly one evaluate() call") without
// touching the real model stack.  EpStudyEngine is the production
// implementation: epcore::GpuEpStudy over the Table I GPU models.
//
// Engines must be usable from several broker workers at once:
// evaluate() is const and every call derives its own Rng stream, so a
// given (device, n) study is deterministic regardless of request
// interleaving — which is what makes its result cacheable.
#pragma once

#include <cstdint>
#include <memory>

#include "core/study.hpp"
#include "fault/fault.hpp"
#include "serve/request.hpp"

namespace ep::serve {

class TuningEngine {
 public:
  virtual ~TuningEngine() = default;

  // Hash of every constant that determines a study's outcome on this
  // device (model tuning constants, measurement options, seed).  Part
  // of the cache key: retuned models must not serve stale results.
  [[nodiscard]] virtual std::uint64_t tuningHash(Device device) const = 0;

  // Run the full configuration-space study for one workload.  Expensive
  // (the service hot path); must be thread-safe and deterministic per
  // (device, n) — including pool == nullptr vs any pool size, so the
  // cache cannot observe how a result was computed.  The broker passes
  // its own pool: evaluate() runs inside a pool task, which is exactly
  // the nested shape ThreadPool::parallelFor is built to survive.
  // Throws ep::EpError on unlaunchable workloads.
  [[nodiscard]] virtual core::WorkloadResult evaluate(
      Device device, int n, ThreadPool* pool = nullptr) const = 0;
};

struct EpStudyEngineOptions {
  std::uint64_t seed = 0xEB5EEDULL;
  // Run the full wall-meter + CI measurement protocol (slower, the
  // paper's methodology) instead of noise-free model energies.
  bool useMeter = false;
  // The fixed G x R workload multiplier of the weak-EP study.
  int totalProducts = 8;
  // Meter-fault campaign (epserved --fault-* flags; requires useMeter).
  // Part of the tuning hash: a faulty engine must not share cached
  // results with a clean one.  When enabled, measurement failures skip
  // the config instead of failing the study.
  fault::FaultInjectionOptions faults{};
};

class EpStudyEngine : public TuningEngine {
 public:
  explicit EpStudyEngine(EpStudyEngineOptions options = {});

  [[nodiscard]] std::uint64_t tuningHash(Device device) const override;
  [[nodiscard]] core::WorkloadResult evaluate(
      Device device, int n, ThreadPool* pool = nullptr) const override;

  [[nodiscard]] const EpStudyEngineOptions& options() const {
    return options_;
  }

 private:
  EpStudyEngineOptions options_;
  std::unique_ptr<core::GpuEpStudy> p100_;
  std::unique_ptr<core::GpuEpStudy> k40c_;
  std::uint64_t p100Hash_ = 0;
  std::uint64_t k40cHash_ = 0;
};

}  // namespace ep::serve
