#include "serve/service.hpp"

#include <utility>

#include "common/error.hpp"
#include "serve/wire_binary.hpp"

namespace ep::serve {

namespace {

obs::TraceContext rootContext(const std::string& traceId) {
  obs::TraceContext ctx;
  ctx.traceId = obs::traceIdFromString(traceId);
  return ctx;
}

}  // namespace

NetService::NetService(NetServiceHooks hooks, NetServiceOptions options)
    : hooks_(std::move(hooks)), options_(options) {
  EP_REQUIRE(hooks_.tuneBatch && hooks_.study && hooks_.control,
             "NetService needs all three hooks");
  if (options_.slowOpThreads == 0) options_.slowOpThreads = 1;
  slowPool_ = std::make_unique<ThreadPool>(options_.slowOpThreads);
}

net::BatchHandler NetService::handler() {
  return [this](net::Server& server, std::vector<net::InboundFrame>&& batch) {
    handleBatch(server, std::move(batch));
  };
}

net::ResponseBuffer NetService::frameJson(const std::string& body,
                                          bool binary) {
  std::string out;
  if (binary) {
    net::appendFrame(out, net::kOpJson, body);
  } else {
    out.reserve(body.size() + 1);
    out = body;
    out += '\n';
  }
  return net::makeBuffer(std::move(out));
}

void NetService::handleBatch(net::Server& server,
                             std::vector<net::InboundFrame>&& batch) {
  // Tune items from every connection in this round accumulate here and
  // go to the backend as one submitTuneBatch call.
  std::vector<ServiceTuneItem> tunes;
  tunes.reserve(batch.size());

  for (net::InboundFrame& frame : batch) {
    const std::uint64_t conn = frame.conn;
    const std::uint64_t seq = frame.seq;
    const bool binary = frame.binary;

    if (frame.opcode == net::kOpTune) {
      // Compact binary tune: decode with the codec, answer in kind.
      std::string error;
      auto decoded = wire_binary::decodeTuneRequest(frame.payload, &error);
      if (!decoded) {
        TuneResponse resp;
        resp.status = Status::Error;
        resp.error = error;
        std::string out;
        net::appendFrame(out, net::kOpTune,
                    wire_binary::encodeTuneResponse(resp, "", false));
        server.respond(conn, seq, net::makeBuffer(std::move(out)));
        continue;
      }
      ServiceTuneItem item;
      item.req = decoded->tune;
      item.deviceAuto = decoded->deviceAuto;
      item.ctx = rootContext(decoded->traceId);
      item.done = [&server, conn, seq, traceId = decoded->traceId,
                   report = decoded->report](TuneResponse&& resp) {
        std::string out;
        net::appendFrame(out, net::kOpTune,
                    wire_binary::encodeTuneResponse(resp, traceId, report));
        server.respond(conn, seq, net::makeBuffer(std::move(out)));
      };
      tunes.push_back(std::move(item));
      continue;
    }

    // JSON vocabulary — either a bare line or tunneled in kOpJson.
    std::string error;
    const auto req = wire::decodeRequest(frame.payload, &error);
    if (!req) {
      server.respond(conn, seq, frameJson(wire::encodeError(error), binary));
      continue;
    }
    switch (req->op) {
      case wire::WireRequest::Op::Tune: {
        ServiceTuneItem item;
        item.req = req->tune;
        item.deviceAuto = req->deviceAuto;
        item.ctx = rootContext(req->traceId);
        item.done = [&server, conn, seq, binary, traceId = req->traceId,
                     report = req->report](TuneResponse&& resp) {
          server.respond(
              conn, seq,
              frameJson(wire::encodeTuneResponse(resp, traceId, report),
                        binary));
        };
        tunes.push_back(std::move(item));
        break;
      }
      case wire::WireRequest::Op::Study: {
        // Multi-second sweeps must not stall the event loop: run the
        // blocking hook on the slow-op pool and respond from there.
        slowPool_->submit([this, &server, conn, seq, binary, r = *req] {
          obs::ScopedTraceContext tctx(rootContext(r.traceId));
          obs::Span span("serve/request");
          StudyResponse resp = hooks_.study(r.study);
          server.respond(
              conn, seq,
              frameJson(wire::encodeStudyResponse(resp, r.traceId, r.report),
                        binary));
        });
        break;
      }
      default:
        // Control-plane renders are cheap: answer inline.
        server.respond(conn, seq, frameJson(hooks_.control(*req), binary));
        break;
    }
  }

  if (!tunes.empty()) hooks_.tuneBatch(std::move(tunes));
}

}  // namespace ep::serve
