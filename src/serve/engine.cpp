#include "serve/engine.hpp"

#include <bit>
#include <initializer_list>

#include "apps/gpu_matmul_app.hpp"
#include "common/rng.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

namespace ep::serve {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ v);
}

std::uint64_t mixDouble(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// Hash every constant that shapes a study outcome.  GpuTuning fields are
// enumerated explicitly: adding a field without extending this list is
// caught by the struct-size guard below.
std::uint64_t hashStudyConstants(const hw::GpuModel& model,
                                 const EpStudyEngineOptions& opts) {
  const hw::GpuTuning& t = model.tuning();
  static_assert(sizeof(hw::GpuTuning) == 15 * sizeof(double),
                "GpuTuning changed: update hashStudyConstants");
  std::uint64_t h = splitmix64(0x5E4EULL);
  for (double v : {t.kernelPeakFraction, t.occScaleCompute, t.occScaleMemory,
                   t.icachePenaltyPerLevel, t.gLinearPenalty,
                   t.runWarmupFraction, t.smEnergyPerGflop, t.memEnergyPerGB,
                   t.residencyPower, t.fetchPowerPerLevel,
                   t.constantActivePower, t.midBinBoostFraction,
                   t.boostPowerExponent, t.bandwidthEfficiency,
                   t.uncoreTailSec}) {
    h = mixDouble(h, v);
  }
  h = mixDouble(h, model.spec().peakGflopsDouble);
  h = mixDouble(h, model.spec().memBandwidthGBs);
  h = mix(h, static_cast<std::uint64_t>(model.spec().smCount));
  h = mix(h, opts.seed);
  h = mix(h, static_cast<std::uint64_t>(opts.totalProducts));
  h = mix(h, opts.useMeter ? 1 : 2);
  // The fault campaign shapes every measured value: hash all of it so a
  // faulty engine never shares cache entries with a clean one.
  const fault::FaultInjectionOptions& f = opts.faults;
  h = mix(h, f.enabled ? 1 : 2);
  for (double v : {f.sampleFaultRate, f.dropWeight, f.stuckWeight,
                   f.spikeWeight, f.nanWeight, f.zeroWeight, f.timeoutRate,
                   f.gainDriftRate, f.gainDriftMax, f.offsetRate,
                   f.offsetWatts, f.spikeFactor}) {
    h = mixDouble(h, v);
  }
  h = mix(h, static_cast<std::uint64_t>(f.stuckRunLength));
  h = mix(h, f.streamSalt);
  return h;
}

core::GpuEpStudy makeStudy(const hw::GpuSpec& spec,
                           const EpStudyEngineOptions& opts) {
  apps::GpuMatMulOptions appOpts;
  appOpts.totalProducts = opts.totalProducts;
  appOpts.useMeter = opts.useMeter;
  appOpts.faults = opts.faults;
  if (opts.faults.enabled) {
    // A fault-injected service should degrade per config, not fail the
    // whole study: skip-and-record + the faultcheck hardening profile
    // keep the serve path answering.  Note the hardened tiers repair
    // spikes/drops/drift but are structurally blind to a constant
    // offset — that one only the watchdog's decomposition catches.
    appOpts.failPolicy = fault::FailPolicy::SkipAndRecord;
    appOpts.robustness.sanitizeSamples = true;
    appOpts.robustness.maxPlausibleWatts = 600.0;
    appOpts.robustness.validation.enabled = true;
    appOpts.robustness.validation.maxGapFactor = 5.0;
    appOpts.robustness.validation.stuckRunLength = 8;
    appOpts.robustness.rejectOutliers = true;
  }
  return core::GpuEpStudy(apps::GpuMatMulApp(hw::GpuModel(spec), appOpts));
}

}  // namespace

EpStudyEngine::EpStudyEngine(EpStudyEngineOptions options)
    : options_(options),
      p100_(std::make_unique<core::GpuEpStudy>(
          makeStudy(hw::nvidiaP100Pcie(), options))),
      k40c_(std::make_unique<core::GpuEpStudy>(
          makeStudy(hw::nvidiaK40c(), options))) {
  p100Hash_ = hashStudyConstants(p100_->app().model(), options_);
  k40cHash_ = hashStudyConstants(k40c_->app().model(), options_);
}

std::uint64_t EpStudyEngine::tuningHash(Device device) const {
  return device == Device::P100 ? p100Hash_ : k40cHash_;
}

core::WorkloadResult EpStudyEngine::evaluate(Device device, int n,
                                             ThreadPool* pool) const {
  const core::GpuEpStudy& study =
      device == Device::P100 ? *p100_ : *k40c_;
  // Per-(device, n) stream: results are independent of request order,
  // which is what makes them cacheable and coalescable.  The parallel
  // path is bitwise-identical to serial, so the pool (or its size)
  // never leaks into the cached result.
  Rng rng = Rng(options_.seed)
                .fork(mix(static_cast<std::uint64_t>(device) + 1,
                          static_cast<std::uint64_t>(n)));
  return study.runWorkload(n, rng, pool);
}

}  // namespace ep::serve
