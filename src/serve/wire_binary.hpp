// Compact binary codec for tune requests/responses — the payload of
// net::kOpTune frames under EPB1 framing.
//
// The line-JSON protocol spends most of a cache-hit request's cycles
// on text: parsing the request object and rendering ~300 bytes of
// response JSON.  This codec replaces both with fixed-width fields and
// LEB128 varints (~30-byte requests, ~100-byte responses) so a tune
// round trip is dominated by the broker, not the serializer.
//
// Layout (all varints LEB128, all f64 little-endian IEEE 754):
//
//   TuneRequest body:
//     u8      device            (0 = P100, 1 = K40c)
//     u8      flags             (bit0 report, bit1 device=auto)
//     varint  n
//     f64     maxDegradation
//     f64     deadlineMs
//     varint  len || bytes      traceId ("" = none)
//
//   TuneResponse body:
//     u8      status            (serve::Status enumerator)
//     u8      flags             (bit0 cacheHit, bit1 coalesced,
//                                bit2 stale, bit3 hasReport)
//     varint  len || bytes      error
//     varint  len || bytes      traceId echo
//     f64     latencyMs
//     if status == Ok:
//       varint len || bytes     recommended label
//       f64     recommendedTimeS
//       f64     recommendedEnergyJ
//       f64     energySavings
//       f64     performanceDegradation
//       varint  len || bytes    performanceOptimal label
//       varint  len || bytes    energyOptimal label
//       varint  len || bytes    knee label
//       varint  frontSize
//     if hasReport:
//       f64     attributedJoules
//       varint  measurementWindows, remeasures, studiesExecuted,
//               cacheHits, coalesced, staleServed, skippedConfigs
//
// Both sides tolerate trailing bytes (forward compatibility) but never
// read past the frame: every decoder returns false on truncation.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/request.hpp"

namespace ep::serve::wire_binary {

struct BinaryTuneRequest {
  TuneRequest tune;
  bool report = false;
  bool deviceAuto = false;
  std::string traceId;
};

// Encode a tune request as a kOpTune frame body (no framing).
[[nodiscard]] std::string encodeTuneRequest(const BinaryTuneRequest& req);

// Decode a kOpTune request body; nullopt (with *error set) on
// truncated or out-of-range input.
[[nodiscard]] std::optional<BinaryTuneRequest> decodeTuneRequest(
    std::string_view body, std::string* error);

// Encode a tune response as a kOpTune frame body.
[[nodiscard]] std::string encodeTuneResponse(const TuneResponse& resp,
                                             const std::string& traceId,
                                             bool withReport);

// Decoded response mirror for clients (labels only, like the JSON).
struct BinaryTuneResponse {
  Status status = Status::Ok;
  std::string error;
  std::string traceId;
  double latencyMs = 0.0;
  std::string recommended;
  double recommendedTimeS = 0.0;
  double recommendedEnergyJ = 0.0;
  double energySavings = 0.0;
  double performanceDegradation = 0.0;
  std::string performanceOptimal;
  std::string energyOptimal;
  std::string knee;
  std::uint64_t frontSize = 0;
  bool cacheHit = false;
  bool coalesced = false;
  bool stale = false;
  bool hasReport = false;
  RequestReport report;
};

[[nodiscard]] std::optional<BinaryTuneResponse> decodeTuneResponse(
    std::string_view body, std::string* error);

}  // namespace ep::serve::wire_binary
