// Adaptive overload control for the broker's admission path.
//
// Two mechanisms, both cheap enough to sit under the admission lock:
//
//   * Adaptive concurrency limit (AIMD): the number of *queued* studies
//     allowed in the service at once adapts to observed completion
//     latency against the SLO target — additive increase while
//     completions land inside the target, multiplicative decrease the
//     moment they do not.  This is the gradient trick of classic
//     congestion control applied to a serving queue: the limit hunts
//     the knee where queueing delay starts to grow, so overload is
//     shed *before* the queue collapses into a wall of
//     deadline-exceeded work.  Rejections are instant and explicit
//     (Status::Overloaded) — a clean fast-fail the client can back off
//     and retry, instead of a slow timeout that burned pool time.
//
//   * Deadline-aware shedding: an uncached request whose remaining
//     deadline budget cannot cover the EWMA cold-study cost is refused
//     at admission.  Running it would spend a whole study's energy to
//     produce an answer nobody can use — the worst possible trade
//     under energy nonproportionality.
//
// Cache hits, coalesced joins and stale serves never consume a slot:
// they cost microseconds and no pool time, so the limit only meters
// the expensive path.  Like CircuitBreaker, this is a leaf class with
// its own mutex, safe to call with the broker lock held.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace ep::serve {

struct AdmissionOptions {
  bool enabled = false;
  // The latency SLO target (ms) the limit adapts against — typically
  // the same target the PR 7 SloEngine burns on.
  double targetLatencyMs = 50.0;
  std::size_t initialLimit = 16;
  std::size_t minLimit = 1;
  std::size_t maxLimit = 256;
  double increase = 1.0;        // slots added per in-target completion
  double decreaseFactor = 0.5;  // limit *= factor on an over-target one
  // EWMA smoothing for the cold-study cost estimate feeding
  // deadline-aware shedding.
  double costAlpha = 0.3;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  [[nodiscard]] bool enabled() const { return options_.enabled; }

  // Claim a concurrency slot for a queued request.  False = shed
  // (caller rejects with Status::Overloaded).  Never blocks.
  [[nodiscard]] bool tryAcquire();

  // Release the slot of a completed/failed queued request.
  // `observedLatencyMs` drives AIMD: in-target completions grow the
  // limit fractionally, over-target ones halve it; pass a negative
  // value to release without a latency observation (rejects, shutdown).
  void release(double observedLatencyMs);

  // Deadline-aware shedding: can a cold study still finish inside
  // `remainingMs`?  Optimistic until the first cost sample lands.
  [[nodiscard]] bool deadlineFeasible(double remainingMs) const;
  void observeColdStudyMs(double ms);

  [[nodiscard]] std::size_t limit() const;
  [[nodiscard]] std::size_t inFlight() const;
  [[nodiscard]] double expectedColdStudyMs() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  double limit_ = 0.0;       // fractional: additive increase accumulates
  std::size_t inFlight_ = 0;
  double ewmaColdMs_ = 0.0;  // 0 = no sample yet
};

}  // namespace ep::serve
