#include "serve/request.hpp"

#include "common/rng.hpp"

namespace ep::serve {

const char* deviceName(Device d) {
  switch (d) {
    case Device::P100:
      return "p100";
    case Device::K40c:
      return "k40c";
  }
  return "unknown";
}

std::optional<Device> parseDevice(std::string_view name) {
  if (name == "p100" || name == "P100") return Device::P100;
  if (name == "k40c" || name == "K40c" || name == "K40C") return Device::K40c;
  return std::nullopt;
}

std::vector<int> StudyRequest::sizes() const {
  std::vector<int> out;
  if (nBegin <= 0 || nEnd < nBegin || nStep <= 0) return out;
  for (int n = nBegin; n <= nEnd; n += nStep) out.push_back(n);
  return out;
}

const char* statusName(Status s) {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::QueueFull:
      return "queue_full";
    case Status::DeadlineExceeded:
      return "deadline_exceeded";
    case Status::ShuttingDown:
      return "shutting_down";
    case Status::Error:
      return "error";
    case Status::CircuitOpen:
      return "circuit_open";
    case Status::Overloaded:
      return "overloaded";
  }
  return "unknown";
}

std::size_t StudyKeyHash::operator()(const StudyKey& k) const noexcept {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(k.device) + 1);
  h = splitmix64(h ^ static_cast<std::uint64_t>(k.n));
  h = splitmix64(h ^ k.tuningHash);
  return static_cast<std::size_t>(h);
}

}  // namespace ep::serve
