// serve::NetService — the glue between net::Server's frame batches and
// the tuning backends (Broker for epserved, FleetRouter for epfleetd).
//
// Responsibilities, per epoll round:
//   * Decode every inbound frame once: EPB1 kOpTune via the binary
//     codec, everything else through wire::decodeRequest.
//   * Partition by cost.  Tune requests across all connections are
//     collected and handed to the backend as ONE batch (the hook calls
//     Broker::submitTuneBatch / FleetRouter::submitTuneBatch, so one
//     admission lock and one pool hop amortize over the whole round).
//     Control ops (metrics, trace, events, tsdb, slo, fleet) render
//     inline on the event thread — they are string renders, microseconds.
//     Study sweeps run on a small slow-op pool so a multi-second sweep
//     never stalls the event loop.
//   * Render each response exactly once into a refcounted buffer, in
//     the framing the request arrived under (JSON line, EPB1/kOpJson,
//     or EPB1/kOpTune), and respond() with the frame's (conn, seq) —
//     net::Server restores pipelined order.
//
// Both daemons mount the same class; the backend differences live in
// the three hooks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/broker.hpp"
#include "serve/wire.hpp"

namespace ep::serve {

// One tune request extracted from a batch, backend-agnostic: the fleet
// hook honors deviceAuto, the single-broker hook rejects it.  `done`
// renders and delivers the response; it must be called exactly once
// and is safe from any thread.
struct ServiceTuneItem {
  TuneRequest req;
  bool deviceAuto = false;
  obs::TraceContext ctx;
  std::function<void(TuneResponse&&)> done;
};

struct NetServiceHooks {
  // Submit the round's tune requests as one batch.  Required.
  std::function<void(std::vector<ServiceTuneItem>&&)> tuneBatch;
  // Blocking study sweep; runs on the slow-op pool.  Required.
  std::function<StudyResponse(const StudyRequest&)> study;
  // Every non-tune, non-study op, rendered to one JSON object (no
  // trailing newline).  Runs inline on the event thread.  Required.
  std::function<std::string(const wire::WireRequest&)> control;
};

struct NetServiceOptions {
  // Workers for blocking study sweeps (>= 1).
  std::size_t slowOpThreads = 1;
};

class NetService {
 public:
  NetService(NetServiceHooks hooks, NetServiceOptions options = {});

  // The callback to construct net::Server with.  The NetService must
  // outlive the server (the daemon owns both; destroy the server
  // first).
  [[nodiscard]] net::BatchHandler handler();

  // Join the slow-op workers (blocks until running sweeps finish).
  // Call AFTER net::Server::stop() — no more batches arrive then — and
  // before the server object is destroyed, so in-flight study
  // responses never touch a dead server.  Idempotent.
  void stop() { slowPool_.reset(); }

  // Frame one already-rendered JSON body for a connection mode.
  [[nodiscard]] static net::ResponseBuffer frameJson(const std::string& body,
                                                     bool binary);

 private:
  void handleBatch(net::Server& server, std::vector<net::InboundFrame>&& batch);

  NetServiceHooks hooks_;
  NetServiceOptions options_;
  std::unique_ptr<ThreadPool> slowPool_;
};

}  // namespace ep::serve
