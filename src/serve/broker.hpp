// The epserve request broker: a transport-agnostic, concurrent front
// door to the bi-objective tuning stack.
//
// Execution model
//   * Requests are validated and admitted under a single mutex, then
//     executed on an ep::ThreadPool.  Admission is O(1); all expensive
//     work happens on workers.
//   * Result cache: completed studies are kept in an LRU keyed by
//     (device, N, tuning-constants hash).  A cache hit is served
//     synchronously at submission — no queue round trip.
//   * Request coalescing: while a study for key K is being computed,
//     further requests for K do not queue; they register as waiters on
//     the in-flight entry and are all fulfilled by the one computing
//     worker (each with its own degradation budget — the tuner step is
//     cheap, only the study is shared).
//   * Backpressure: at most `queueCapacity` admitted-but-not-started
//     jobs; beyond that submissions are rejected with QueueFull.
//   * Deadlines: a request may carry a relative deadline; expired
//     requests are rejected (DeadlineExceeded) instead of served late.
//   * Shutdown: stops admission immediately, then drains every queued
//     and in-flight job before returning — no future is ever abandoned.
//
// Invariant that keeps the blocking paths deadlock-free: an in-flight
// map entry exists only while its owning worker is actively inside
// TuningEngine::evaluate().  Anyone who blocks on an in-flight future
// therefore waits on a *running* computation, never on queued work.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/breaker.hpp"
#include "serve/engine.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace ep::serve {

struct BrokerOptions {
  std::size_t threads = 0;        // 0 = hardware concurrency
  std::size_t queueCapacity = 64; // admitted-but-not-started jobs
  // epprof root frame for this broker's worker threads (empty keeps the
  // pool default "pool/worker"); the fleet router sets "shard/<id>" so
  // cluster CPU/energy profiles partition by shard.
  std::string profileLabel;
  std::size_t cacheCapacity = 128;
  // Applied to requests that carry no deadline; <= 0 keeps them
  // deadline-free.
  double defaultDeadlineMs = 0.0;
  // Per-device circuit breaker over engine evaluations; disabled by
  // default (failureThreshold == 0).
  CircuitBreakerOptions breaker{};
  // Stale-while-error store: every successful study is also remembered
  // here (independently of the LRU result cache), and served — flagged
  // stale — when the engine fails or the breaker is open.  0 disables.
  std::size_t staleCapacity = 128;
  // Optional anomaly watchdog fed one outcome per finished request
  // (error / stale / healthy), for the ErrorBudget detector.  Must
  // outlive the broker.
  core::PowerAnomalyWatchdog* watchdog = nullptr;
  // Adaptive overload control (see serve/admission.hpp); disabled by
  // default — the admission path then skips it entirely.
  AdmissionOptions admission{};
  // Injectable time source for deadlines, breaker windows, latency
  // accounting and admission AIMD; unset = steady clock.  Tests and
  // drills drive overload/recovery scenarios deterministically with a
  // fake clock; production brokers leave it unset.
  std::function<Clock::time_point()> clock;
  // Fleet-integration hooks; both may be empty.  Called from broker
  // worker (or submitter) threads with no broker lock held, so they may
  // call back into any Broker API except shutdown().
  //   onStudyExecuted: fires once per cold engine evaluation that
  //     succeeded — the fleet router replicates the result to the key's
  //     ring successor and streams its front into the cluster fronts.
  //   onTuneComplete: fires for every fulfilled tune promise (success
  //     or rejection) — the router's EWMA J/req price signal and
  //     latency accounting feed off it.
  std::function<void(Device, int,
                     std::shared_ptr<const core::WorkloadResult>)>
      onStudyExecuted;
  std::function<void(const TuneRequest&, const TuneResponse&)>
      onTuneComplete;
};

class Broker {
 public:
  Broker(std::shared_ptr<const TuningEngine> engine, BrokerOptions options = {});
  ~Broker();  // shutdown()

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  [[nodiscard]] std::future<TuneResponse> submitTune(const TuneRequest& req);
  [[nodiscard]] std::future<StudyResponse> submitStudy(const StudyRequest& req);

  // One member of a submitTuneBatch() call.  `done` is invoked exactly
  // once — possibly inline during submission (cache hit, rejection),
  // possibly later from a worker thread — with the item's trace
  // context installed, so batch members' spans never cross-contaminate.
  struct TuneBatchItem {
    TuneRequest req;
    obs::TraceContext ctx;  // completion runs under this context
    std::function<void(TuneResponse&&)> done;
  };

  // Admit a whole batch under ONE mutex acquisition and hand every
  // queued member to the pool as ONE task (the event-loop frontend
  // drains all ready sockets per epoll round and submits here, so lock
  // and pool-hop costs amortize across connections).  Semantics per
  // item are identical to submitTune: same validation, cache-hit,
  // coalescing, breaker, deadline and backpressure behavior — a batch
  // of one is indistinguishable from a lone submitTune.
  void submitTuneBatch(std::vector<TuneBatchItem> items);

  // Blocking conveniences.
  [[nodiscard]] TuneResponse tune(const TuneRequest& req) {
    return submitTune(req).get();
  }
  [[nodiscard]] StudyResponse study(const StudyRequest& req) {
    return submitStudy(req).get();
  }

  // Consistent-enough snapshot of the broker's epobs registry plus the
  // instantaneous cache/queue state.  Counter reads are ordered so the
  // admission identity (completed + failed + rejectedDeadline <=
  // accepted) holds even while requests are in flight.
  [[nodiscard]] ServeMetrics metrics() const;

  // Prometheus text exposition of the same registry (plus gauges for
  // the instantaneous state, synced at render time).
  [[nodiscard]] std::string renderPrometheus() const;

  // Sync the instantaneous gauges and snapshot the broker's registry —
  // the scrape source for eptsdb and for cluster federation.
  [[nodiscard]] obs::RegistrySnapshot snapshotRegistry() const;

  // Cross-shard stale serving: install a result computed on another
  // shard into this broker's stale-while-error store.  Deliberately
  // never touches the primary result cache — a replica must not mask
  // this shard's own cold path or its hit-rate accounting.  No-op when
  // the stale store is disabled.
  void installStaleResult(Device device, int n,
                          std::shared_ptr<const core::WorkloadResult> result);

  // Serve a tune request purely from the stale store: the cheap tuner
  // step over a last-known-good study, flagged stale.  Returns nullopt
  // when no stale result exists for the key (or during shutdown).
  // Never queues, never touches the engine or the breaker.
  [[nodiscard]] std::optional<TuneResponse> tuneFromStale(
      const TuneRequest& req);

  // Stop admitting, drain all queued and in-flight work, return when
  // every outstanding future is fulfilled.  Idempotent.
  void shutdown();

 private:
  using ResultPtr = std::shared_ptr<const core::WorkloadResult>;

  struct TuneJob {
    TuneRequest req;
    Clock::time_point submitted;
    Clock::time_point deadline;  // time_point::max() = none
    // The submitter's trace context, re-installed around completion so
    // coalesced followers (fulfilled on the study owner's worker) stay
    // linked to their own request's span tree, not the owner's.
    obs::TraceContext ctx;
    // Invoked exactly once with the final response — a promise wrapper
    // for submitTune, the caller's callback for submitTuneBatch.
    std::function<void(TuneResponse&&)> deliver;
    // Holds an admission-controller concurrency slot (queued jobs only);
    // released exactly once at completion/rejection.
    bool admitted = false;
  };
  using TuneJobPtr = std::shared_ptr<TuneJob>;

  // Admission verdict for one tune job, decided under mu_; the actions
  // that must run unlocked (completion, rejection) are returned to the
  // caller so a batch can make every decision under one acquisition.
  struct TuneAdmission {
    enum class Act {
      Queued,        // admitted: run runTuneJob on the pool
      Coalesced,     // joined an in-flight study; nothing more to do
      CompleteHit,   // serve `result` as a cache hit (unlocked)
      CompleteStale, // serve `result` stale, breaker open (unlocked)
      Reject,        // reject with `status`/`error` (unlocked)
    };
    Act act = Act::Queued;
    ResultPtr result;
    Status status = Status::Ok;
    const char* error = "";
  };
  [[nodiscard]] TuneAdmission admitTuneLocked(const TuneJobPtr& job);
  // The unlocked half: perform what admitTuneLocked decided (except
  // Queued, whose pool hop the caller owns so batches share one).
  void settleAdmission(const TuneJobPtr& job, const TuneAdmission& a);

  // How a study was resolved: the result plus whether it came from the
  // stale-while-error store (the owner's engine failed but an old good
  // result could answer).  Coalesced waiters see the same outcome —
  // minus the attribution, which belongs to the executing owner only.
  struct StudyOutcome {
    ResultPtr result;
    bool stale = false;
    bool executed = false;  // this caller ran the study cold
    core::EnergyAttribution attr{};
  };

  struct InFlightStudy {
    std::promise<StudyOutcome> promise;
    std::shared_future<StudyOutcome> future;
    std::vector<TuneJobPtr> waiters;
  };

  [[nodiscard]] StudyKey keyFor(Device device, int n) const;
  // The broker's time source (options_.clock or the steady clock).
  [[nodiscard]] Clock::time_point now() const {
    return options_.clock ? options_.clock() : Clock::now();
  }
  [[nodiscard]] Clock::time_point deadlineFor(double deadlineMs,
                                              Clock::time_point now) const;
  [[nodiscard]] CircuitBreaker& breakerFor(Device device);
  [[nodiscard]] const CircuitBreaker& breakerFor(Device device) const;

  // Worker bodies.
  void runTuneJob(const TuneJobPtr& job);
  void runStudyJob(const std::shared_ptr<StudyRequest>& req,
                   Clock::time_point submitted, Clock::time_point deadline,
                   const std::shared_ptr<std::promise<StudyResponse>>& promise);

  // Compute (or join) the study for one key.  Called from worker
  // threads only.  May block on another worker's in-flight computation.
  // Counts hits/coalescing into the metrics; throws on engine failure
  // with no stale fallback, BreakerOpenError when the breaker rejects
  // and nothing stale is available.
  [[nodiscard]] StudyOutcome obtainStudy(Device device, int n, bool* cacheHit,
                                         bool* coalesced);

  // Fulfill a tune job from a completed study (cheap tuner step).
  // `attribution`/`executed` carry the owner's energy ledger entry;
  // cache hits and coalesced joins pass the default (zero) attribution.
  void completeTune(const TuneJobPtr& job, const ResultPtr& result,
                    bool cacheHit, bool coalesced, bool stale = false,
                    const core::EnergyAttribution& attribution = {},
                    bool executed = false);
  void rejectTune(const TuneJobPtr& job, Status status,
                  const std::string& error);

  // Per-device attribution counters + watchdog outcome feed.
  void accountStudyEnergy(Device device, const core::EnergyAttribution& a);
  void feedWatchdog(Device device, bool error, bool stale);

  // Fold cache stats into the registry and mirror the instantaneous
  // state into gauges (shared by renderPrometheus / snapshotRegistry).
  void syncInstantaneous() const;

  void finishJobLocked();  // activeJobs_ bookkeeping + drain signal

  std::shared_ptr<const TuningEngine> engine_;
  BrokerOptions options_;

  // Request accounting lives in a per-broker epobs registry: counter
  // increments are lock-free relaxed atomics (no mu_ on the hot path),
  // and the same registry renders the Prometheus exposition.  The
  // registry must be declared before the references into it.
  obs::Registry registry_;
  obs::Counter& cAccepted_;
  obs::Counter& cCompleted_;
  obs::Counter& cFailed_;
  obs::Counter& cRejectedQueueFull_;
  obs::Counter& cRejectedDeadline_;
  obs::Counter& cRejectedShutdown_;
  obs::Counter& cCoalesced_;
  obs::Counter& cStudiesExecuted_;
  obs::Counter& cCacheHits_;
  obs::Counter& cCacheMisses_;
  obs::Counter& cCacheEvictions_;
  obs::Counter& cRejectedCircuitOpen_;
  obs::Counter& cBreakerOpens_;
  obs::Counter& cStaleServed_;
  obs::Counter& cRejectedOverload_;
  obs::Counter& cShedDeadline_;
  obs::Gauge& gAdmissionLimit_;
  obs::Gauge& gQueueDepth_;
  obs::Gauge& gInFlightStudies_;
  obs::Gauge& gCacheSize_;
  obs::Gauge& gCacheCapacity_;
  obs::Gauge& gBreakerStateP100_;
  obs::Gauge& gBreakerStateK40c_;
  obs::Histogram& hLatencyMs_;
  // Request-attributed energy ledger, one child series per device.
  obs::DoubleCounter& cEnergyJoulesP100_;
  obs::DoubleCounter& cEnergyJoulesK40c_;
  obs::Counter& cWindowsP100_;
  obs::Counter& cWindowsK40c_;
  // Attributed-energy distribution per cold study, exemplar-linked to
  // the paying request's trace id.
  obs::Histogram& hEnergyJoulesP100_;
  obs::Histogram& hEnergyJoulesK40c_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  bool accepting_ = true;
  std::size_t queueDepth_ = 0;   // admitted, not yet started
  std::size_t activeJobs_ = 0;   // started, not yet finished
  LruCache<StudyKey, ResultPtr, StudyKeyHash> cache_;
  // Last-known-good results, kept past cache_ eviction so an engine
  // failure (or an open breaker) can still answer — flagged stale.
  LruCache<StudyKey, ResultPtr, StudyKeyHash> staleStore_;
  std::unordered_map<StudyKey, std::shared_ptr<InFlightStudy>, StudyKeyHash>
      inFlight_;
  // One breaker per device: a broken K40c engine must not open the
  // circuit for P100 traffic.  Own leaf mutex; safe to call under mu_.
  CircuitBreaker breakerP100_;
  CircuitBreaker breakerK40c_;
  // Adaptive concurrency + deadline shedding.  Leaf mutex like the
  // breakers; consulted under mu_ at admission, released unlocked.
  AdmissionController admission_;
  // Cache stats already mirrored into the registry counters (guarded
  // by mu_; renderPrometheus syncs the delta).
  mutable LruCacheStats syncedCache_;

  // Last member: destroyed first, joining workers while the rest of the
  // broker state is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ep::serve
