// Per-engine circuit breaker for the epserve broker.
//
// A broken engine (every evaluation throwing — a miscalibrated model, a
// fault campaign with the meter unplugged) must not keep burning worker
// time and queue slots on requests that are going to fail.  The breaker
// implements the classic three-state machine:
//
//   Closed    — normal operation; consecutive failures are counted and
//               `failureThreshold` of them trip the breaker.
//   Open      — for `openMs` every admission is rejected outright
//               (fail fast; the broker serves stale results instead
//               when it has them).
//   HalfOpen  — after openMs, up to `halfOpenProbes` requests are let
//               through as probes; a probe success closes the breaker,
//               a probe failure re-opens it for another openMs.
//
// Time is passed in (steady-clock time_points), never read internally,
// so tests drive the state machine without sleeping.  The breaker has
// its own leaf mutex: callers may hold broker locks around any call.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/error.hpp"
#include "serve/request.hpp"

namespace ep::serve {

// Thrown by the broker's study path when the breaker rejects admission
// and no stale result is available; mapped to Status::CircuitOpen.
class BreakerOpenError : public EpError {
 public:
  using EpError::EpError;
};

struct CircuitBreakerOptions {
  // Consecutive failures that trip the breaker; 0 disables it (the
  // default — the breaker is opt-in, existing deployments see no
  // behaviour change).
  std::size_t failureThreshold = 0;
  double openMs = 1000.0;          // how long Open rejects outright
  std::size_t halfOpenProbes = 1;  // probes admitted while HalfOpen
};

class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  // Admission decision for a request about to run.  Mutating: while
  // half-open it claims one of the probe slots, so every allow() == true
  // must be balanced by exactly one onSuccess()/onFailure().
  [[nodiscard]] bool allow(Clock::time_point now);

  // Non-mutating preview of allow() for the submission fast path:
  // rejecting before queueing keeps a fail-fast breaker from eating
  // queue capacity.  Never claims a probe slot.
  [[nodiscard]] bool wouldReject(Clock::time_point now) const;

  void onSuccess();
  void onFailure(Clock::time_point now);

  [[nodiscard]] State state(Clock::time_point now) const;
  // Open transitions (including half-open probe failures re-opening).
  [[nodiscard]] std::uint64_t opens() const;

  [[nodiscard]] const CircuitBreakerOptions& options() const {
    return options_;
  }

 private:
  [[nodiscard]] bool enabled() const {
    return options_.failureThreshold > 0;
  }
  [[nodiscard]] bool openElapsed(Clock::time_point now) const;

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  bool open_ = false;
  Clock::time_point openedAt_{};
  std::size_t consecutiveFailures_ = 0;
  std::size_t probes_ = 0;  // half-open probe slots claimed
  std::uint64_t opens_ = 0;
};

[[nodiscard]] const char* breakerStateName(CircuitBreaker::State s);

}  // namespace ep::serve
