#include "serve/broker.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ep::serve {

namespace {

// Elapsed helpers take the broker's current time explicitly: every time
// read in this file goes through Broker::now(), so an injected clock
// governs deadlines, breaker windows, latency and admission uniformly.
Seconds elapsedSince(Clock::time_point start, Clock::time_point now) {
  return Seconds{std::chrono::duration<double>(now - start).count()};
}

double elapsedMsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

std::string describe(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown engine failure";
  }
}

}  // namespace

Broker::Broker(std::shared_ptr<const TuningEngine> engine,
               BrokerOptions options)
    : engine_(std::move(engine)),
      options_(options),
      cAccepted_(registry_.counter("ep_serve_accepted_total",
                                   "Requests admitted into the service")),
      cCompleted_(registry_.counter("ep_serve_completed_total",
                                    "Requests answered with Status::Ok")),
      cFailed_(registry_.counter("ep_serve_failed_total",
                                 "Requests that failed (engine or input)")),
      cRejectedQueueFull_(
          registry_.counter("ep_serve_rejected_queue_full_total",
                            "Submissions rejected by backpressure")),
      cRejectedDeadline_(
          registry_.counter("ep_serve_rejected_deadline_total",
                            "Requests expired before completion")),
      cRejectedShutdown_(
          registry_.counter("ep_serve_rejected_shutdown_total",
                            "Submissions rejected during shutdown")),
      cCoalesced_(registry_.counter(
          "ep_serve_coalesced_total",
          "Requests that joined an in-flight identical study")),
      cStudiesExecuted_(registry_.counter("ep_serve_studies_executed_total",
                                          "Cold engine evaluations")),
      cCacheHits_(registry_.counter("ep_serve_cache_hits_total",
                                    "Result-cache lookups that hit")),
      cCacheMisses_(registry_.counter("ep_serve_cache_misses_total",
                                      "Result-cache lookups that missed")),
      cCacheEvictions_(registry_.counter("ep_serve_cache_evictions_total",
                                         "Result-cache LRU evictions")),
      cRejectedCircuitOpen_(registry_.counter(
          "ep_serve_rejected_circuit_open_total",
          "Requests rejected by an open circuit breaker")),
      cBreakerOpens_(registry_.counter("ep_serve_breaker_opens_total",
                                       "Circuit-breaker open transitions")),
      cStaleServed_(registry_.counter(
          "ep_serve_stale_served_total",
          "Responses served from the stale-while-error store")),
      cRejectedOverload_(registry_.counter(
          "ep_serve_rejected_overload_total",
          "Submissions shed by the adaptive admission limit")),
      cShedDeadline_(registry_.counter(
          "ep_serve_shed_deadline_total",
          "Uncached submissions shed as deadline-infeasible at admission")),
      gAdmissionLimit_(registry_.gauge(
          "ep_serve_admission_limit",
          "Adaptive concurrency limit (0 = admission control disabled)")),
      gQueueDepth_(registry_.gauge("ep_serve_queue_depth",
                                   "Admitted, not yet started jobs")),
      gInFlightStudies_(registry_.gauge("ep_serve_in_flight_studies",
                                        "Engine evaluations running now")),
      gCacheSize_(registry_.gauge("ep_serve_cache_size",
                                  "Result-cache entries resident")),
      gCacheCapacity_(registry_.gauge("ep_serve_cache_capacity",
                                      "Result-cache capacity")),
      gBreakerStateP100_(registry_.gauge(
          "ep_serve_breaker_state_p100",
          "P100 breaker state (0 closed, 1 half-open, 2 open)")),
      gBreakerStateK40c_(registry_.gauge(
          "ep_serve_breaker_state_k40c",
          "K40c breaker state (0 closed, 1 half-open, 2 open)")),
      hLatencyMs_(registry_.histogram(
          "ep_serve_request_latency_ms",
          "Completed-request latency, submit to response (ms)",
          std::vector<double>(LatencyHistogram::kUpperBoundsMs.begin(),
                              LatencyHistogram::kUpperBoundsMs.end()))),
      cEnergyJoulesP100_(registry_.doubleCounter(
          "ep_request_energy_joules",
          "Dynamic energy attributed to the requests that measured it",
          {{"device", "P100"}})),
      cEnergyJoulesK40c_(registry_.doubleCounter(
          "ep_request_energy_joules",
          "Dynamic energy attributed to the requests that measured it",
          {{"device", "K40c"}})),
      cWindowsP100_(registry_.counter(
          "ep_request_windows_total",
          "Accepted measurement windows attributed to requests",
          {{"device", "P100"}})),
      cWindowsK40c_(registry_.counter(
          "ep_request_windows_total",
          "Accepted measurement windows attributed to requests",
          {{"device", "K40c"}})),
      hEnergyJoulesP100_(registry_.histogram(
          "ep_request_energy_hist_joules",
          "Attributed joules per executed cold study",
          {0.1, 1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
           50000.0},
          {{"device", "P100"}})),
      hEnergyJoulesK40c_(registry_.histogram(
          "ep_request_energy_hist_joules",
          "Attributed joules per executed cold study",
          {0.1, 1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
           50000.0},
          {{"device", "K40c"}})),
      cache_(options.cacheCapacity),
      staleStore_(std::max<std::size_t>(1, options.staleCapacity)),
      breakerP100_(options.breaker),
      breakerK40c_(options.breaker),
      admission_(options.admission),
      pool_(std::make_unique<ThreadPool>(options.threads,
                                         options.profileLabel)) {
  EP_REQUIRE(engine_ != nullptr, "broker needs an engine");
  EP_REQUIRE(options_.queueCapacity >= 1, "queue capacity must be >= 1");
  // Every broker exposition (including federated cluster views)
  // carries build identity.
  obs::registerBuildInfo(registry_);
}

Broker::~Broker() { shutdown(); }

StudyKey Broker::keyFor(Device device, int n) const {
  return StudyKey{device, n, engine_->tuningHash(device)};
}

CircuitBreaker& Broker::breakerFor(Device device) {
  return device == Device::K40c ? breakerK40c_ : breakerP100_;
}

const CircuitBreaker& Broker::breakerFor(Device device) const {
  return device == Device::K40c ? breakerK40c_ : breakerP100_;
}

Clock::time_point Broker::deadlineFor(double deadlineMs,
                                      Clock::time_point now) const {
  double ms = deadlineMs;
  if (ms <= 0.0) ms = options_.defaultDeadlineMs;
  if (ms <= 0.0) return Clock::time_point::max();
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(ms));
}

// Everything the admission mutex must witness for one tune job; the
// unlocked consequences are returned for the caller to perform.
Broker::TuneAdmission Broker::admitTuneLocked(const TuneJobPtr& job) {
  TuneAdmission a;
  if (!accepting_) {
    cRejectedShutdown_.inc();
    a.act = TuneAdmission::Act::Reject;
    a.status = Status::ShuttingDown;
    return a;
  }
  const StudyKey key = keyFor(job->req.device, job->req.n);
  if (auto hit = cache_.get(key)) {
    cAccepted_.inc();
    a.act = TuneAdmission::Act::CompleteHit;
    a.result = *hit;
    return a;
  }
  if (auto it = inFlight_.find(key); it != inFlight_.end()) {
    // The futures map: join the in-flight computation instead of
    // queueing a duplicate study.
    cAccepted_.inc();
    cCoalesced_.inc();
    it->second->waiters.push_back(job);
    a.act = TuneAdmission::Act::Coalesced;
    return a;
  }
  if (breakerFor(job->req.device).wouldReject(now())) {
    // Fail fast while the breaker is open: serve a stale result
    // synchronously when one exists, reject otherwise — either way no
    // queue slot or worker time is spent on a broken engine.
    // (wouldReject never claims a half-open probe; probes are admitted
    // here and claimed by the worker's allow().)
    if (options_.staleCapacity > 0) {
      if (auto st = staleStore_.get(key)) {
        cAccepted_.inc();
        cStaleServed_.inc();
        a.act = TuneAdmission::Act::CompleteStale;
        a.result = *st;
        return a;
      }
    }
    a.act = TuneAdmission::Act::Reject;
    a.status = Status::CircuitOpen;
    a.error = "circuit breaker open";
    return a;
  }
  if (admission_.enabled()) {
    // This request needs a cold study (cache, in-flight and breaker
    // paths all returned above).  Shed it now if it cannot finish in
    // time or the adaptive concurrency limit is saturated — a clean
    // fast-fail instead of queue time plus a guaranteed timeout.
    if (job->deadline != Clock::time_point::max()) {
      const double remainingMs =
          std::chrono::duration<double, std::milli>(job->deadline - now())
              .count();
      if (!admission_.deadlineFeasible(remainingMs)) {
        cShedDeadline_.inc();
        a.act = TuneAdmission::Act::Reject;
        a.status = Status::DeadlineExceeded;
        a.error = "deadline cannot cover the expected cold-study cost";
        return a;
      }
    }
    if (!admission_.tryAcquire()) {
      cRejectedOverload_.inc();
      a.act = TuneAdmission::Act::Reject;
      a.status = Status::Overloaded;
      a.error = "adaptive admission limit reached";
      return a;
    }
    job->admitted = true;
  }
  if (queueDepth_ >= options_.queueCapacity) {
    if (job->admitted) {
      admission_.release(-1.0);
      job->admitted = false;
    }
    cRejectedQueueFull_.inc();
    a.act = TuneAdmission::Act::Reject;
    a.status = Status::QueueFull;
    return a;
  }
  cAccepted_.inc();
  ++queueDepth_;
  a.act = TuneAdmission::Act::Queued;
  return a;
}

void Broker::settleAdmission(const TuneJobPtr& job, const TuneAdmission& a) {
  switch (a.act) {
    case TuneAdmission::Act::CompleteHit:
      completeTune(job, a.result, /*cacheHit=*/true, /*coalesced=*/false);
      break;
    case TuneAdmission::Act::CompleteStale:
      completeTune(job, a.result, /*cacheHit=*/false, /*coalesced=*/false,
                   /*stale=*/true);
      break;
    case TuneAdmission::Act::Reject:
      rejectTune(job, a.status, a.error);
      break;
    case TuneAdmission::Act::Queued:
    case TuneAdmission::Act::Coalesced:
      break;  // nothing unlocked to do here
  }
}

namespace {

// Shared by submitTune and submitTuneBatch so a batch of one is
// behaviorally identical to a lone submit.
bool validTune(const TuneRequest& req) {
  return req.n > 0 && req.maxDegradation >= 0.0;
}

TuneResponse invalidTuneResponse(Clock::time_point submitted,
                                 Clock::time_point now) {
  TuneResponse resp;
  resp.status = Status::Error;
  resp.error = "invalid tune request (need n > 0, maxDegradation >= 0)";
  resp.latency = elapsedSince(submitted, now);
  return resp;
}

}  // namespace

std::future<TuneResponse> Broker::submitTune(const TuneRequest& req) {
  auto promise = std::make_shared<std::promise<TuneResponse>>();
  auto future = promise->get_future();
  auto job = std::make_shared<TuneJob>();
  job->req = req;
  job->submitted = now();
  job->deadline = deadlineFor(req.deadlineMs, job->submitted);
  job->ctx = obs::currentContext();
  job->deliver = [promise](TuneResponse&& resp) {
    promise->set_value(std::move(resp));
  };

  if (!validTune(req)) {
    cAccepted_.inc();
    cFailed_.inc();
    job->deliver(invalidTuneResponse(job->submitted, now()));
    return future;
  }

  std::unique_lock lk(mu_);
  const TuneAdmission a = admitTuneLocked(job);
  lk.unlock();
  settleAdmission(job, a);
  if (a.act == TuneAdmission::Act::Queued) {
    pool_->submit([this, job] { runTuneJob(job); });
  }
  return future;
}

void Broker::submitTuneBatch(std::vector<TuneBatchItem> items) {
  if (items.empty()) return;
  const Clock::time_point now = this->now();

  std::vector<TuneJobPtr> jobs;
  jobs.reserve(items.size());
  for (auto& item : items) {
    auto job = std::make_shared<TuneJob>();
    job->req = item.req;
    job->submitted = now;
    job->deadline = deadlineFor(item.req.deadlineMs, now);
    job->ctx = item.ctx;
    job->deliver = std::move(item.done);
    jobs.push_back(std::move(job));
  }

  // Invalid requests never reach the lock — exactly like submitTune,
  // which answers them before locking.
  std::vector<TuneJobPtr> valid;
  valid.reserve(jobs.size());
  for (auto& job : jobs) {
    if (!validTune(job->req)) {
      cAccepted_.inc();
      cFailed_.inc();
      obs::ScopedTraceContext tctx(job->ctx);
      job->deliver(invalidTuneResponse(now, now));
    } else {
      valid.push_back(std::move(job));
    }
  }

  // Phase 1 — everything that needs mu_, for every item, under ONE
  // acquisition.
  std::vector<TuneAdmission> admissions(valid.size());
  std::vector<TuneJobPtr> queued;
  {
    std::lock_guard lk(mu_);
    for (std::size_t i = 0; i < valid.size(); ++i) {
      admissions[i] = admitTuneLocked(valid[i]);
      if (admissions[i].act == TuneAdmission::Act::Queued) {
        queued.push_back(valid[i]);
      }
    }
  }

  // Phase 2 — unlocked consequences: inline completions (cache hits,
  // stale serves) and rejections, each under its own trace context
  // (completeTune/rejectTune install job->ctx themselves).
  for (std::size_t i = 0; i < valid.size(); ++i) {
    settleAdmission(valid[i], admissions[i]);
  }

  // Phase 3 — ONE pool hop for every queued member.  The jobs run
  // sequentially on that worker; a cold study still fans out across
  // the whole pool via the engine's nested parallelFor, and duplicate
  // keys inside the batch resolve to cache hits / coalesced joins
  // exactly as queued siblings always have.
  if (!queued.empty()) {
    pool_->submit([this, queued = std::move(queued)] {
      for (const auto& job : queued) runTuneJob(job);
    });
  }
}

std::future<StudyResponse> Broker::submitStudy(const StudyRequest& req) {
  auto promise = std::make_shared<std::promise<StudyResponse>>();
  auto future = promise->get_future();
  const Clock::time_point submitted = now();
  const Clock::time_point deadline = deadlineFor(req.deadlineMs, submitted);

  auto respondNow = [&](Status status, const std::string& error) {
    StudyResponse resp;
    resp.status = status;
    resp.error = error;
    resp.latency = elapsedSince(submitted, now());
    promise->set_value(std::move(resp));
  };

  if (req.sizes().empty()) {
    cAccepted_.inc();
    cFailed_.inc();
    respondNow(Status::Error,
               "invalid study request (need 0 < nBegin <= nEnd, nStep > 0)");
    return future;
  }

  std::unique_lock lk(mu_);
  if (!accepting_) {
    cRejectedShutdown_.inc();
    lk.unlock();
    respondNow(Status::ShuttingDown, "");
    return future;
  }
  if (queueDepth_ >= options_.queueCapacity) {
    cRejectedQueueFull_.inc();
    lk.unlock();
    respondNow(Status::QueueFull, "");
    return future;
  }
  cAccepted_.inc();
  ++queueDepth_;
  lk.unlock();
  auto reqCopy = std::make_shared<StudyRequest>(req);
  // Carry the caller's request context onto the worker (as TuneJob::ctx
  // does) so the sweep's latency exemplar and energy attribution land
  // on the paying request's trace.
  const obs::TraceContext ctx = obs::currentContext();
  pool_->submit([this, reqCopy, submitted, deadline, promise, ctx] {
    obs::ScopedTraceContext tctx(ctx);
    runStudyJob(reqCopy, submitted, deadline, promise);
  });
  return future;
}

void Broker::runTuneJob(const TuneJobPtr& job) {
  obs::Span span("serve/tune_job");
  std::unique_lock lk(mu_);
  --queueDepth_;
  ++activeJobs_;

  if (now() > job->deadline) {
    lk.unlock();
    rejectTune(job, Status::DeadlineExceeded, "");
    lk.lock();
    finishJobLocked();
    return;
  }
  const StudyKey key = keyFor(job->req.device, job->req.n);
  if (auto hit = cache_.get(key)) {
    // Filled while this job sat in the queue.
    ResultPtr result = *hit;
    lk.unlock();
    completeTune(job, result, /*cacheHit=*/true, /*coalesced=*/false);
    lk.lock();
    finishJobLocked();
    return;
  }
  if (auto it = inFlight_.find(key); it != inFlight_.end()) {
    // A sibling queued before either of us started now owns the study;
    // hand our promise to it rather than blocking this worker.
    cCoalesced_.inc();
    it->second->waiters.push_back(job);
    finishJobLocked();
    return;
  }
  lk.unlock();

  bool cacheHit = false;
  bool coalesced = false;
  try {
    const StudyOutcome outcome =
        obtainStudy(job->req.device, job->req.n, &cacheHit, &coalesced);
    completeTune(job, outcome.result, cacheHit, coalesced, outcome.stale,
                 outcome.attr, outcome.executed);
  } catch (const BreakerOpenError& e) {
    rejectTune(job, Status::CircuitOpen, e.what());
  } catch (...) {
    rejectTune(job, Status::Error, describe(std::current_exception()));
  }
  lk.lock();
  finishJobLocked();
}

void Broker::runStudyJob(
    const std::shared_ptr<StudyRequest>& req, Clock::time_point submitted,
    Clock::time_point deadline,
    const std::shared_ptr<std::promise<StudyResponse>>& promise) {
  obs::Span span("serve/study_job");
  {
    std::lock_guard lk(mu_);
    --queueDepth_;
    ++activeJobs_;
  }

  StudyResponse resp;
  std::vector<core::WorkloadResult> results;
  const std::vector<int> sizes = req->sizes();
  results.reserve(sizes.size());
  for (int n : sizes) {
    if (now() > deadline) {
      resp.status = Status::DeadlineExceeded;
      break;
    }
    bool cacheHit = false;
    bool coalesced = false;
    try {
      const StudyOutcome o = obtainStudy(req->device, n, &cacheHit, &coalesced);
      results.push_back(*o.result);
      if (o.stale) {
        ++resp.staleWorkloads;
        ++resp.report.staleServed;
      }
      if (o.executed) {
        ++resp.report.studiesExecuted;
        resp.report.attributedJoules += o.attr.joules;
        resp.report.measurementWindows += o.attr.windows;
        resp.report.remeasures += o.attr.remeasures;
        resp.report.skippedConfigs += o.attr.skippedConfigs;
      }
    } catch (const BreakerOpenError& e) {
      resp.status = Status::CircuitOpen;
      resp.error = e.what();
      break;
    } catch (...) {
      resp.status = Status::Error;
      resp.error = describe(std::current_exception());
      break;
    }
    if (cacheHit) {
      ++resp.workloadCacheHits;
      ++resp.report.cacheHits;
    }
    if (coalesced) ++resp.report.coalesced;
  }
  if (resp.status == Status::Ok && results.size() == sizes.size()) {
    resp.statistics = core::GpuEpStudy::summarize(results);
  } else if (resp.status == Status::Ok) {
    resp.status = Status::Error;
    resp.error = "study incomplete";
  }
  const Clock::time_point finished = now();
  resp.latency = elapsedSince(submitted, finished);

  switch (resp.status) {
    case Status::Ok:
      hLatencyMs_.observe(elapsedMsSince(submitted, finished),
                          obs::currentContext().traceId);
      cCompleted_.inc();
      break;
    case Status::DeadlineExceeded:
      cRejectedDeadline_.inc();
      break;
    case Status::CircuitOpen:
      cRejectedCircuitOpen_.inc();
      break;
    default:
      cFailed_.inc();
      break;
  }
  feedWatchdog(req->device,
               resp.status == Status::Error ||
                   resp.status == Status::CircuitOpen,
               resp.staleWorkloads > 0);
  {
    std::lock_guard lk(mu_);
    finishJobLocked();
  }
  promise->set_value(std::move(resp));
}

Broker::StudyOutcome Broker::obtainStudy(Device device, int n, bool* cacheHit,
                                         bool* coalesced) {
  const StudyKey key = keyFor(device, n);
  std::unique_lock lk(mu_);
  if (auto hit = cache_.get(key)) {
    *cacheHit = true;
    return {*hit, false};
  }
  if (auto it = inFlight_.find(key); it != inFlight_.end()) {
    // Blocking join: safe because in-flight entries only exist while
    // their owner is actively computing on another worker.
    cCoalesced_.inc();
    *coalesced = true;
    auto future = it->second->future;
    lk.unlock();
    // The shared outcome carries the *owner's* attribution; zero it on
    // this copy so a coalesced join never double-counts the energy.
    StudyOutcome joined = future.get();  // rethrows the owner's failure
    joined.executed = false;
    joined.attr = {};
    return joined;
  }

  // Breaker admission sits right before claiming the computation, so
  // every allow() == true is balanced by exactly one onSuccess()/
  // onFailure() below (cache hits and coalesced joins never consume
  // half-open probes).
  CircuitBreaker& breaker = breakerFor(device);
  if (!breaker.allow(now())) {
    if (options_.staleCapacity > 0) {
      if (auto st = staleStore_.get(key)) {
        cStaleServed_.inc();
        return {*st, true};
      }
    }
    lk.unlock();
    throw BreakerOpenError("circuit breaker open for device " +
                           std::string(deviceName(device)));
  }

  // Claim the computation.
  auto entry = std::make_shared<InFlightStudy>();
  entry->future = entry->promise.get_future().share();
  inFlight_[key] = entry;
  cStudiesExecuted_.inc();
  lk.unlock();

  ResultPtr result;
  std::exception_ptr err;
  // Cold-study wall time feeds the admission controller's deadline
  // shedding; only read the clock when that consumer exists.
  const bool timeStudy = admission_.enabled();
  const Clock::time_point evalStart =
      timeStudy ? now() : Clock::time_point{};
  try {
    obs::Span span("serve/engine_evaluate");
    // This thread is itself a pool worker; handing the pool to the
    // engine lets idle workers help with the study's configuration
    // loop (nested parallelFor — safe since the caller participates).
    result = std::make_shared<const core::WorkloadResult>(
        engine_->evaluate(device, n, pool_.get()));
  } catch (...) {
    err = std::current_exception();
  }
  if (timeStudy && result != nullptr) {
    admission_.observeColdStudyMs(elapsedMsSince(evalStart, now()));
  }

  ResultPtr stale;
  lk.lock();
  inFlight_.erase(key);
  if (result) {
    cache_.put(key, result);
    if (options_.staleCapacity > 0) staleStore_.put(key, result);
  } else if (options_.staleCapacity > 0) {
    if (auto st = staleStore_.get(key)) stale = *st;
  }
  std::vector<TuneJobPtr> waiters = std::move(entry->waiters);
  lk.unlock();

  if (err) {
    const auto opensBefore = breaker.opens();
    breaker.onFailure(now());
    if (breaker.opens() != opensBefore) cBreakerOpens_.inc();
    if (stale) {
      // Stale-while-error: the engine failed but a previously-good
      // result can still answer — flagged, so callers know.
      cStaleServed_.inc();
      entry->promise.set_value({stale, true});
      for (const auto& w : waiters) {
        completeTune(w, stale, /*cacheHit=*/false, /*coalesced=*/true,
                     /*stale=*/true);
      }
      return {stale, true};
    }
    entry->promise.set_exception(err);
    const std::string msg = describe(err);
    for (const auto& w : waiters) rejectTune(w, Status::Error, msg);
    std::rethrow_exception(err);
  }
  breaker.onSuccess();
  // The executing caller owns the study's full energy ledger entry;
  // waiters and future joiners get the result with zero attribution.
  StudyOutcome owned{result, false, /*executed=*/true,
                     core::attributeEnergy(*result)};
  accountStudyEnergy(device, owned.attr);
  if (options_.onStudyExecuted) options_.onStudyExecuted(device, n, result);
  entry->promise.set_value(owned);
  for (const auto& w : waiters) {
    completeTune(w, result, /*cacheHit=*/false, /*coalesced=*/true);
  }
  return owned;
}

void Broker::completeTune(const TuneJobPtr& job, const ResultPtr& result,
                          bool cacheHit, bool coalesced, bool stale,
                          const core::EnergyAttribution& attribution,
                          bool executed) {
  // Completion may run on a foreign thread (the study owner's worker
  // fulfilling coalesced followers): re-install the follower's own
  // context so its completion span joins its trace, not the owner's.
  obs::ScopedTraceContext tctx(job->ctx);
  obs::Span span("serve/complete_tune");
  if (now() > job->deadline) {
    rejectTune(job, Status::DeadlineExceeded, "");
    return;
  }
  TuneResponse resp;
  resp.status = Status::Ok;
  resp.cacheHit = cacheHit;
  resp.coalesced = coalesced;
  resp.stale = stale;
  resp.report.attributedJoules = attribution.joules;
  resp.report.measurementWindows = attribution.windows;
  resp.report.remeasures = attribution.remeasures;
  resp.report.skippedConfigs = attribution.skippedConfigs;
  resp.report.studiesExecuted = executed ? 1 : 0;
  resp.report.cacheHits = cacheHit ? 1 : 0;
  resp.report.coalesced = coalesced ? 1 : 0;
  resp.report.staleServed = stale ? 1 : 0;
  // The study (expensive) is shared/cached; the budget-specific tuner
  // step (cheap) runs per request.  Recommending over the cached global
  // front is equivalent to recommending over all points: the optima and
  // every budget-admissible energy minimum are Pareto-optimal.
  const core::BiObjectiveTuner tuner(job->req.maxDegradation);
  resp.recommendation = tuner.recommend(result->globalFront);
  const Clock::time_point finished = now();
  const double latencyMs = elapsedMsSince(job->submitted, finished);
  resp.latency = elapsedSince(job->submitted, finished);
  hLatencyMs_.observe(latencyMs, obs::currentContext().traceId);
  if (job->admitted) {
    // AIMD feedback: this queued request's full latency against the
    // SLO target grows or shrinks the concurrency limit.
    admission_.release(latencyMs);
    job->admitted = false;
  }
  cCompleted_.inc();
  feedWatchdog(job->req.device, /*error=*/false, stale);
  if (options_.onTuneComplete) options_.onTuneComplete(job->req, resp);
  job->deliver(std::move(resp));
}

void Broker::rejectTune(const TuneJobPtr& job, Status status,
                        const std::string& error) {
  obs::ScopedTraceContext tctx(job->ctx);
  obs::Span span("serve/complete_tune");
  switch (status) {
    case Status::DeadlineExceeded:
      cRejectedDeadline_.inc();
      break;
    case Status::Error:
      cFailed_.inc();
      break;
    case Status::CircuitOpen:
      cRejectedCircuitOpen_.inc();
      break;
    default:
      break;  // QueueFull / ShuttingDown counted at admission
  }
  if (status == Status::Error || status == Status::CircuitOpen) {
    feedWatchdog(job->req.device, /*error=*/true, /*stale=*/false);
  }
  const Clock::time_point finished = now();
  if (job->admitted) {
    // A deadline blown *after* admission is the strongest overload
    // signal there is — feed the elapsed time so AIMD backs off.  Other
    // rejections say nothing about service time: release silently.
    admission_.release(status == Status::DeadlineExceeded
                           ? elapsedMsSince(job->submitted, finished)
                           : -1.0);
    job->admitted = false;
  }
  TuneResponse resp;
  resp.status = status;
  resp.error = error;
  resp.latency = elapsedSince(job->submitted, finished);
  if (options_.onTuneComplete) options_.onTuneComplete(job->req, resp);
  job->deliver(std::move(resp));
}

void Broker::installStaleResult(
    Device device, int n,
    std::shared_ptr<const core::WorkloadResult> result) {
  if (result == nullptr || options_.staleCapacity == 0) return;
  std::lock_guard lk(mu_);
  staleStore_.put(keyFor(device, n), std::move(result));
}

std::optional<TuneResponse> Broker::tuneFromStale(const TuneRequest& req) {
  if (req.n <= 0 || req.maxDegradation < 0.0) return std::nullopt;
  const Clock::time_point submitted = now();
  ResultPtr result;
  {
    std::lock_guard lk(mu_);
    if (!accepting_ || options_.staleCapacity == 0) return std::nullopt;
    if (auto st = staleStore_.get(keyFor(req.device, req.n))) result = *st;
  }
  if (result == nullptr) return std::nullopt;
  obs::Span span("serve/tune_from_stale");
  cAccepted_.inc();
  cStaleServed_.inc();
  TuneResponse resp;
  resp.status = Status::Ok;
  resp.stale = true;
  resp.report.staleServed = 1;
  const core::BiObjectiveTuner tuner(req.maxDegradation);
  resp.recommendation = tuner.recommend(result->globalFront);
  const Clock::time_point finished = now();
  resp.latency = elapsedSince(submitted, finished);
  hLatencyMs_.observe(elapsedMsSince(submitted, finished),
                      obs::currentContext().traceId);
  cCompleted_.inc();
  feedWatchdog(req.device, /*error=*/false, /*stale=*/true);
  if (options_.onTuneComplete) options_.onTuneComplete(req, resp);
  return resp;
}

void Broker::accountStudyEnergy(Device device,
                                const core::EnergyAttribution& a) {
  // Runs on the executing owner's worker, whose trace context is the
  // paying request's — so the energy histogram's exemplar links the
  // bucket straight to that request's span tree.
  const std::uint64_t traceId = obs::currentContext().traceId;
  if (device == Device::K40c) {
    cEnergyJoulesK40c_.add(a.joules);
    cWindowsK40c_.inc(a.windows);
    hEnergyJoulesK40c_.observe(a.joules, traceId);
  } else {
    cEnergyJoulesP100_.add(a.joules);
    cWindowsP100_.inc(a.windows);
    hEnergyJoulesP100_.observe(a.joules, traceId);
  }
}

void Broker::feedWatchdog(Device device, bool error, bool stale) {
  if (options_.watchdog == nullptr) return;
  options_.watchdog->observeRequestOutcome(deviceName(device), error, stale);
}

void Broker::finishJobLocked() {
  --activeJobs_;
  if (queueDepth_ == 0 && activeJobs_ == 0) drained_.notify_all();
}

ServeMetrics Broker::metrics() const {
  ServeMetrics out;
  // Outcome counters are read before `accepted`: a request's accepted
  // increment happens before its outcome increment, so this order
  // keeps completed + failed + rejectedDeadline <= accepted even for
  // snapshots taken mid-flight.
  out.completed = cCompleted_.value();
  out.failed = cFailed_.value();
  out.rejectedDeadline = cRejectedDeadline_.value();
  out.rejectedQueueFull = cRejectedQueueFull_.value();
  out.rejectedShutdown = cRejectedShutdown_.value();
  out.rejectedCircuitOpen = cRejectedCircuitOpen_.value();
  out.coalesced = cCoalesced_.value();
  out.studiesExecuted = cStudiesExecuted_.value();
  out.staleServed = cStaleServed_.value();
  out.rejectedOverload = cRejectedOverload_.value();
  out.shedDeadline = cShedDeadline_.value();
  out.accepted = cAccepted_.value();
  out.breakerOpens = breakerP100_.opens() + breakerK40c_.opens();
  out.admissionLimit = admission_.enabled() ? admission_.limit() : 0;
  const Clock::time_point now = this->now();
  out.breakerStateP100 = breakerStateName(breakerP100_.state(now));
  out.breakerStateK40c = breakerStateName(breakerK40c_.state(now));
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    out.latency.counts[i] = hLatencyMs_.bucketValue(i);
  }
  std::lock_guard lk(mu_);
  const LruCacheStats cs = cache_.stats();
  out.cacheHits = cs.hits;
  out.cacheMisses = cs.misses;
  out.cacheEvictions = cs.evictions;
  out.cacheSize = cs.size;
  out.cacheCapacity = cs.capacity;
  out.queueDepth = queueDepth_;
  out.inFlightStudies = inFlight_.size();
  return out;
}

void Broker::syncInstantaneous() const {
  // Fold the cache's internal stats into the registry as counter
  // deltas, and mirror the instantaneous state into gauges.
  std::lock_guard lk(mu_);
  const LruCacheStats cs = cache_.stats();
  cCacheHits_.inc(cs.hits - syncedCache_.hits);
  cCacheMisses_.inc(cs.misses - syncedCache_.misses);
  cCacheEvictions_.inc(cs.evictions - syncedCache_.evictions);
  syncedCache_ = cs;
  gCacheSize_.set(static_cast<std::int64_t>(cs.size));
  gCacheCapacity_.set(static_cast<std::int64_t>(cs.capacity));
  gQueueDepth_.set(static_cast<std::int64_t>(queueDepth_));
  gInFlightStudies_.set(static_cast<std::int64_t>(inFlight_.size()));
  gAdmissionLimit_.set(admission_.enabled()
                           ? static_cast<std::int64_t>(admission_.limit())
                           : 0);
  const Clock::time_point now = this->now();
  const auto stateValue = [&](const CircuitBreaker& b) -> std::int64_t {
    switch (b.state(now)) {
      case CircuitBreaker::State::Closed:
        return 0;
      case CircuitBreaker::State::HalfOpen:
        return 1;
      case CircuitBreaker::State::Open:
        return 2;
    }
    return 0;
  };
  gBreakerStateP100_.set(stateValue(breakerP100_));
  gBreakerStateK40c_.set(stateValue(breakerK40c_));
}

std::string Broker::renderPrometheus() const {
  syncInstantaneous();
  return registry_.renderPrometheus();
}

obs::RegistrySnapshot Broker::snapshotRegistry() const {
  syncInstantaneous();
  return registry_.snapshot();
}

void Broker::shutdown() {
  std::unique_lock lk(mu_);
  accepting_ = false;
  drained_.wait(lk, [this] { return queueDepth_ == 0 && activeJobs_ == 0; });
}

}  // namespace ep::serve
