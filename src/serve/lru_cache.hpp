// A small LRU map with hit/miss/eviction counters, used by the broker
// as the study-result cache.
//
// Not internally synchronized: the broker accesses it under its own
// mutex, which also keeps the counters consistent with the map state
// (a lock-free cache would decouple them, defeating the metrics
// snapshot guarantee).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ep::serve {

struct LruCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    EP_REQUIRE(capacity >= 1, "cache capacity must be >= 1");
  }

  // Lookup; promotes the entry to most-recent and counts a hit/miss.
  [[nodiscard]] std::optional<Value> get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  // Insert or overwrite; the entry becomes most-recent.  Evicts the
  // least-recently-used entry when full.
  void put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  // Lookup without promotion or counter updates (for tests/inspection).
  [[nodiscard]] bool contains(const Key& key) const {
    return index_.find(key) != index_.end();
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] LruCacheStats stats() const {
    return LruCacheStats{hits_, misses_, evictions_, order_.size(), capacity_};
  }

  // Keys in recency order, most recent first (for eviction-order tests).
  [[nodiscard]] std::vector<Key> keysMostRecentFirst() const {
    std::vector<Key> keys;
    keys.reserve(order_.size());
    for (const auto& [k, v] : order_) keys.push_back(k);
    return keys;
  }

 private:
  std::size_t capacity_;
  // front = most recently used.
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ep::serve
