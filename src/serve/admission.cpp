#include "serve/admission.hpp"

#include <algorithm>

namespace ep::serve {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.minLimit = std::max<std::size_t>(options_.minLimit, 1);
  options_.maxLimit = std::max(options_.maxLimit, options_.minLimit);
  limit_ = static_cast<double>(
      std::clamp(options_.initialLimit, options_.minLimit, options_.maxLimit));
}

bool AdmissionController::tryAcquire() {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lk(mu_);
  if (inFlight_ >= static_cast<std::size_t>(limit_)) return false;
  ++inFlight_;
  return true;
}

void AdmissionController::release(double observedLatencyMs) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (inFlight_ > 0) --inFlight_;
  if (observedLatencyMs < 0.0) return;
  if (observedLatencyMs <= options_.targetLatencyMs) {
    // Additive increase, spread over the current window so the limit
    // grows by ~`increase` slots per limit's-worth of completions.
    limit_ += options_.increase / std::max(limit_, 1.0);
  } else {
    limit_ *= options_.decreaseFactor;
  }
  limit_ = std::clamp(limit_, static_cast<double>(options_.minLimit),
                      static_cast<double>(options_.maxLimit));
}

bool AdmissionController::deadlineFeasible(double remainingMs) const {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lk(mu_);
  if (ewmaColdMs_ <= 0.0) return true;  // optimistic before any sample
  return remainingMs >= ewmaColdMs_;
}

void AdmissionController::observeColdStudyMs(double ms) {
  if (!options_.enabled || ms < 0.0) return;
  std::lock_guard<std::mutex> lk(mu_);
  ewmaColdMs_ = ewmaColdMs_ <= 0.0
                    ? ms
                    : options_.costAlpha * ms +
                          (1.0 - options_.costAlpha) * ewmaColdMs_;
}

std::size_t AdmissionController::limit() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::size_t>(limit_);
}

std::size_t AdmissionController::inFlight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inFlight_;
}

double AdmissionController::expectedColdStudyMs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ewmaColdMs_;
}

}  // namespace ep::serve
