// Request/response vocabulary of the epserve tuning service.
//
// The broker accepts two job kinds, both phrased in terms of the
// existing analysis stack:
//
//   * TuneRequest  — "which (BS, G, R) should device D run for workload
//     N under a performance-degradation budget?"  Answered with the
//     epcore::BiObjectiveTuner recommendation over the workload's
//     measured configuration space.
//   * StudyRequest — "survey a workload range on device D" (the
//     Section V front-statistics sweep), answered with
//     epcore::FrontStatistics.
//
// Responses carry a Status instead of throwing across the service
// boundary: a loaded service degrades by *rejecting* (full queue,
// missed deadline, shutdown) rather than failing.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "core/study.hpp"
#include "core/tuner.hpp"

namespace ep::serve {

// The simulated GPUs the service can study (Table I parts).
enum class Device { P100, K40c };

[[nodiscard]] const char* deviceName(Device d);
[[nodiscard]] std::optional<Device> parseDevice(std::string_view name);

using Clock = std::chrono::steady_clock;

struct TuneRequest {
  Device device = Device::P100;
  int n = 0;                    // workload (matrix dimension)
  double maxDegradation = 0.0;  // allowed slowdown fraction (0.07 = 7 %)
  // Relative deadline from submission; <= 0 means "no deadline".
  double deadlineMs = 0.0;
};

struct StudyRequest {
  Device device = Device::P100;
  int nBegin = 0;
  int nEnd = 0;   // inclusive
  int nStep = 1;
  double deadlineMs = 0.0;

  // The expanded workload list; empty when the range is malformed.
  [[nodiscard]] std::vector<int> sizes() const;
};

enum class Status {
  Ok,
  QueueFull,         // backpressure: pending queue at capacity
  DeadlineExceeded,  // request expired before a worker could serve it
  ShuttingDown,      // broker no longer accepts work
  Error,             // engine failure (e.g. unlaunchable workload)
  CircuitOpen,       // breaker tripped and no stale result to serve
  Overloaded,        // adaptive admission limit reached: retry with backoff
};

[[nodiscard]] const char* statusName(Status s);

// The energy-attribution ledger of one request: what the service spent
// (or saved) answering it.  Joules and windows are attributed to the
// request that *executed* a study; cache hits and coalesced joins ride
// along for free, so summing attributedJoules over any request mix
// equals the energy of the studies actually measured — no double
// counting.
struct RequestReport {
  double attributedJoules = 0.0;        // dynamic energy newly measured
  std::uint64_t measurementWindows = 0; // accepted meter windows executed
  std::uint64_t remeasures = 0;         // fault recoveries along the way
  std::uint64_t studiesExecuted = 0;    // cold engine evaluations owned
  std::uint64_t cacheHits = 0;          // studies served from the cache
  std::uint64_t coalesced = 0;          // studies joined in flight
  std::uint64_t staleServed = 0;        // stale-while-error answers
  std::uint64_t skippedConfigs = 0;     // configs dropped by SkipAndRecord
};

struct TuneResponse {
  Status status = Status::Ok;
  std::string error;  // set when status == Error
  core::TunerRecommendation recommendation;
  bool cacheHit = false;   // served from the result cache
  bool coalesced = false;  // shared another request's in-flight study
  // Served from the stale-while-error store: the engine failed (or the
  // breaker is open) and a previously-good result answered instead.
  bool stale = false;
  RequestReport report;
  Seconds latency{0.0};    // submit -> response
};

struct StudyResponse {
  Status status = Status::Ok;
  std::string error;
  core::FrontStatistics statistics;
  std::size_t workloadCacheHits = 0;  // per-workload cache hits inside the sweep
  std::size_t staleWorkloads = 0;     // workloads served stale-while-error
  RequestReport report;               // aggregated over the sweep
  Seconds latency{0.0};
};

// Result-cache / coalescing key: identical studies are identical
// computations only if the device, the workload *and* the model's
// tuning constants match (retuning the model must invalidate results).
struct StudyKey {
  Device device = Device::P100;
  int n = 0;
  std::uint64_t tuningHash = 0;

  friend bool operator==(const StudyKey&, const StudyKey&) = default;
};

struct StudyKeyHash {
  [[nodiscard]] std::size_t operator()(const StudyKey& k) const noexcept;
};

}  // namespace ep::serve
