// Line-delimited JSON wire format for the epserve TCP frontend.
//
// One request per line, one response line per request.  The vocabulary
// is deliberately flat (string/number/bool fields only) so a dependency
// -free parser suffices; nested JSON is rejected.
//
//   {"op":"tune","device":"p100","n":10240,"maxDegradation":0.11}
//   {"op":"study","device":"k40c","nBegin":8192,"nEnd":10240,"nStep":1024}
//   {"op":"metrics"}
//   {"op":"metrics","format":"prometheus"}
//   {"op":"trace"}
//   {"op":"events","since":0}
//
// The metrics/trace ops answer with {"status":"ok","body":"..."} where
// body is the full Prometheus text exposition / Chrome trace-event JSON
// as one escaped string (multi-line payloads stay one response line).
// The events op drains the watchdog flight recorder: body is one flat
// JSON event per line, plus "alerts"/"recorded"/"dropped" totals.
//
// Tune and study requests may carry two observability fields:
//   * "trace_id" — opaque string naming the caller's trace; the server
//     runs the request under it (spans in {"op":"trace"} carry the id)
//     and echoes it back in the response.
//   * "report":true — the response gains the request's energy-
//     attribution ledger (attributedJoules, measurementWindows, ...).
//
// Responses always carry "status"; tune responses add the recommended
// configuration and trade-off, study responses the front statistics.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "obs/profile_export.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace ep::serve::wire {

// Hard ceiling on one request frame (a single line).  Every legitimate
// request fits in a few hundred bytes; anything larger is a confused —
// or hostile — client, and the server must neither buffer it without
// bound nor hand it to the parser.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

struct Value {
  enum class Kind { Null, Bool, Number, String };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

using Object = std::map<std::string, Value>;

// Parse one flat JSON object; returns nullopt and sets *error on
// malformed input (including nested arrays/objects).
[[nodiscard]] std::optional<Object> parseObject(const std::string& line,
                                                std::string* error);

// Incremental writer for one flat JSON object (escapes strings).
class ObjectWriter {
 public:
  ObjectWriter& add(const std::string& key, const std::string& value);
  ObjectWriter& add(const std::string& key, const char* value);
  ObjectWriter& add(const std::string& key, double value);
  ObjectWriter& add(const std::string& key, std::uint64_t value);
  ObjectWriter& add(const std::string& key, int value);
  ObjectWriter& add(const std::string& key, bool value);
  [[nodiscard]] std::string str() const;

 private:
  void comma();
  std::string out_ = "{";
  bool first_ = true;
};

// {"op":"metrics"} body format.
enum class MetricsFormat { Json, Prometheus, OpenMetrics };

struct WireRequest {
  enum class Op {
    Tune,
    Study,
    Metrics,
    Trace,
    Events,
    Fleet,
    Tsdb,
    Slo,
    Profile
  };
  Op op = Op::Tune;
  // For Op::Metrics: flat JSON snapshot (default), Prometheus 0.0.4
  // text, or OpenMetrics 1.0 text.
  MetricsFormat metricsFormat = MetricsFormat::Json;
  // For Op::Metrics on epfleetd: "scope":"cluster" answers with the
  // federated cluster registry (per-shard registries merged) instead
  // of the daemon's process registry.
  bool clusterScope = false;
  // For Op::Tsdb: the series key (exposition identity) or histogram
  // family, the aggregation, quantile and window.
  std::string tsdbSeries;
  std::string tsdbAgg = "all";  // all|min|max|avg|rate|last|quantile|raw
  double tsdbQ = 0.99;
  double tsdbWindowMs = 60000.0;
  // For Op::Events: drain only events with seq > since.
  std::uint64_t eventsSince = 0;
  // Caller-supplied trace id ("" = none) and whether the response
  // should carry the energy-attribution report.
  std::string traceId;
  bool report = false;
  // For Op::Tune: the request said "device":"auto" — the fleet router
  // picks the device by policy (single-broker servers reject it).
  bool deviceAuto = false;
  // For Op::Fleet: "snapshot" (default), or an admin action
  // ("kill"/"revive"/"remove"/"add") naming a shard.
  std::string fleetAction = "snapshot";
  std::string fleetShard;
  // For Op::Profile: control + read the continuous profiler.
  //   {"op":"profile","action":"start","periodUs":10000}
  //   {"op":"profile","action":"snapshot","kind":"energy","topN":5}
  //   {"op":"profile","action":"snapshot","format":"speedscope"}
  // action: status (default) | start | stop | clear | snapshot.
  // kind cpu|energy and topN/format shape the snapshot; "scope":
  // "cluster" on epfleetd federates shard profiles (clusterScope
  // above).  cpuSampling=false gives an energy-only start.
  std::string profileAction = "status";
  std::string profileKind = "cpu";
  std::string profileFormat = "collapsed";  // collapsed | speedscope
  std::size_t profileTopN = 10;
  std::uint64_t profilePeriodUs = 10000;
  bool profileCpuSampling = true;
  TuneRequest tune;
  StudyRequest study;
};

// Decode a request line; returns nullopt and sets *error on bad input.
[[nodiscard]] std::optional<WireRequest> decodeRequest(
    const std::string& line, std::string* error);

// `traceId` (when non-empty) is echoed back; `withReport` appends the
// RequestReport ledger fields.
[[nodiscard]] std::string encodeTuneResponse(const TuneResponse& resp,
                                             const std::string& traceId = "",
                                             bool withReport = false);
[[nodiscard]] std::string encodeStudyResponse(const StudyResponse& resp,
                                              const std::string& traceId = "",
                                              bool withReport = false);
[[nodiscard]] std::string encodeMetrics(const ServeMetrics& m);
// Wrap a multi-line text payload (Prometheus exposition, Chrome trace
// JSON) as {"status":"ok","body":"..."} — one response line.
[[nodiscard]] std::string encodeTextBody(const std::string& body);
// {"op":"events"} response: totals plus one flat JSON event per body
// line (empty body when nothing new).
[[nodiscard]] std::string encodeEvents(std::uint64_t activeAlerts,
                                       std::uint64_t recorded,
                                       std::uint64_t dropped,
                                       const std::string& body);
// {"op":"tsdb"} response over the store: the requested aggregation of
// req.tsdbSeries across the trailing req.tsdbWindowMs (ending at
// nowNs).  agg "raw" answers with the in-window samples as body lines
// "timeNs value"; "quantile" treats the series as a histogram family.
[[nodiscard]] std::string encodeTsdbResponse(const obs::TimeSeriesStore& store,
                                             const WireRequest& req,
                                             std::int64_t nowNs);
// {"op":"slo"} response: per-SLO burn state under flat keys
// ("slo.<name>.burning", ".worstBurn", ".raised", per-window burns)
// plus the active-alert total.
[[nodiscard]] std::string encodeSloStatus(
    const std::vector<obs::SloEngine::SloStatus>& status);
// {"op":"profile"} responses.  Status/start/stop/clear answer with the
// run state; snapshot answers with totals, the top-N frames by
// INCLUSIVE weight under flat keys ("top.<i>.frame" / ".weight" /
// ".share" / ".samples") and the full profile as "body" (collapsed
// stacks, or a speedscope JSON document when req.profileFormat says
// so).  Weight units: seconds (cpu) / joules (energy).
[[nodiscard]] std::string encodeProfileStatus(bool running,
                                              std::size_t threads,
                                              const char* action);
[[nodiscard]] std::string encodeProfileSnapshot(
    const obs::ProfileSnapshot& snap, const WireRequest& req);
[[nodiscard]] std::string encodeError(const std::string& message);

}  // namespace ep::serve::wire
