#include "serve/breaker.hpp"

#include <chrono>

namespace ep::serve {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  EP_REQUIRE(options_.openMs >= 0.0, "openMs must be >= 0");
  EP_REQUIRE(options_.failureThreshold == 0 || options_.halfOpenProbes >= 1,
             "an enabled breaker needs at least one half-open probe");
}

bool CircuitBreaker::openElapsed(Clock::time_point now) const {
  return std::chrono::duration<double, std::milli>(now - openedAt_).count() >=
         options_.openMs;
}

bool CircuitBreaker::allow(Clock::time_point now) {
  if (!enabled()) return true;
  std::lock_guard lock(mu_);
  if (!open_) return true;
  if (!openElapsed(now)) return false;
  if (probes_ >= options_.halfOpenProbes) return false;
  ++probes_;
  return true;
}

bool CircuitBreaker::wouldReject(Clock::time_point now) const {
  if (!enabled()) return false;
  std::lock_guard lock(mu_);
  if (!open_) return false;
  if (!openElapsed(now)) return true;
  return probes_ >= options_.halfOpenProbes;
}

void CircuitBreaker::onSuccess() {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  consecutiveFailures_ = 0;
  if (open_) {
    // A half-open probe came back healthy (or a request admitted before
    // the trip finished late and well) — resume normal operation.
    open_ = false;
    probes_ = 0;
  }
}

void CircuitBreaker::onFailure(Clock::time_point now) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  if (open_) {
    // A half-open probe failed: re-open for another full window.
    openedAt_ = now;
    probes_ = 0;
    ++opens_;
    return;
  }
  if (++consecutiveFailures_ >= options_.failureThreshold) {
    open_ = true;
    openedAt_ = now;
    probes_ = 0;
    consecutiveFailures_ = 0;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state(Clock::time_point now) const {
  if (!enabled()) return State::Closed;
  std::lock_guard lock(mu_);
  if (!open_) return State::Closed;
  return openElapsed(now) ? State::HalfOpen : State::Open;
}

std::uint64_t CircuitBreaker::opens() const {
  if (!enabled()) return 0;
  std::lock_guard lock(mu_);
  return opens_;
}

const char* breakerStateName(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed:
      return "closed";
    case CircuitBreaker::State::Open:
      return "open";
    case CircuitBreaker::State::HalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace ep::serve
