#include "serve/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ep::serve::wire {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  char buf[32];
  // %.17g round-trips doubles; trim to a compact form.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  std::optional<Object> parse(std::string* error) {
    if (s_.size() > kMaxFrameBytes) return fail(error, "frame too large");
    skipWs();
    if (!consume('{')) return fail(error, "expected '{'");
    Object obj;
    skipWs();
    if (consume('}')) return obj;
    for (;;) {
      skipWs();
      std::string key;
      if (!parseString(&key)) {
        return fail(error, strError_ ? strError_ : "expected string key");
      }
      skipWs();
      if (!consume(':')) return fail(error, "expected ':'");
      skipWs();
      Value v;
      if (!parseValue(&v)) {
        return fail(error, strError_ ? strError_ : "bad value");
      }
      // A key that appears twice is always a client bug (or an attempt
      // to smuggle conflicting parameters past a logging layer that
      // records only one of them) — reject rather than pick a winner.
      if (!obj.emplace(std::move(key), std::move(v)).second) {
        return fail(error, "duplicate key");
      }
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail(error, "expected ',' or '}'");
    }
    skipWs();
    if (pos_ != s_.size()) return fail(error, "trailing characters");
    return obj;
  }

 private:
  std::optional<Object> fail(std::string* error, const char* msg) {
    if (error) *error = msg;
    return std::nullopt;
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseString(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return failString("unterminated string");
        char e = s_[pos_++];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            // Only BMP escapes of ASCII are reproduced; others are
            // replaced with '?' (the protocol never emits them).
            if (pos_ + 4 > s_.size()) return failString("bad string escape");
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return failString("bad string escape");
            *out += (code >= 0x20 && code < 0x7F)
                        ? static_cast<char>(code)
                        : '?';
            break;
          }
          default:
            return failString("bad string escape");
        }
      } else {
        *out += c;
      }
    }
    return failString("unterminated string");
  }

  bool parseValue(Value* v) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '"') {
      v->kind = Value::Kind::String;
      return parseString(&v->string);
    }
    if (c == '{' || c == '[') return false;  // flat objects only
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v->kind = Value::Kind::Bool;
      v->boolean = true;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v->kind = Value::Kind::Bool;
      v->boolean = false;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      v->kind = Value::Kind::Null;
      return true;
    }
    char* end = nullptr;
    const double num = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    v->kind = Value::Kind::Number;
    v->number = num;
    return true;
  }

  bool failString(const char* msg) {
    strError_ = msg;
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  // Set by parseString on a malformed string so parse() can report the
  // specific defect instead of a generic "bad value".
  const char* strError_ = nullptr;
};

std::optional<double> getNumber(const Object& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != Value::Kind::Number) {
    return std::nullopt;
  }
  return it->second.number;
}

std::optional<std::string> getString(const Object& obj,
                                     const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != Value::Kind::String) {
    return std::nullopt;
  }
  return it->second.string;
}

std::optional<bool> getBool(const Object& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != Value::Kind::Bool) {
    return std::nullopt;
  }
  return it->second.boolean;
}

void appendReport(ObjectWriter& w, const RequestReport& r) {
  w.add("attributedJoules", r.attributedJoules)
      .add("measurementWindows", r.measurementWindows)
      .add("remeasures", r.remeasures)
      .add("studiesExecuted", r.studiesExecuted)
      .add("reportCacheHits", r.cacheHits)
      .add("reportCoalesced", r.coalesced)
      .add("reportStaleServed", r.staleServed)
      .add("skippedConfigs", r.skippedConfigs);
}

}  // namespace

std::optional<Object> parseObject(const std::string& line,
                                  std::string* error) {
  return Parser(line).parse(error);
}

void ObjectWriter::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

ObjectWriter& ObjectWriter::add(const std::string& key,
                                const std::string& value) {
  comma();
  appendEscaped(out_, key);
  out_ += ':';
  appendEscaped(out_, value);
  return *this;
}

ObjectWriter& ObjectWriter::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

ObjectWriter& ObjectWriter::add(const std::string& key, double value) {
  comma();
  appendEscaped(out_, key);
  out_ += ':';
  appendNumber(out_, value);
  return *this;
}

ObjectWriter& ObjectWriter::add(const std::string& key, std::uint64_t value) {
  comma();
  appendEscaped(out_, key);
  out_ += ':';
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::add(const std::string& key, int value) {
  comma();
  appendEscaped(out_, key);
  out_ += ':';
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::add(const std::string& key, bool value) {
  comma();
  appendEscaped(out_, key);
  out_ += ':';
  out_ += value ? "true" : "false";
  return *this;
}

std::string ObjectWriter::str() const { return out_ + "}"; }

std::optional<WireRequest> decodeRequest(const std::string& line,
                                         std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<WireRequest> {
    if (error) *error = msg;
    return std::nullopt;
  };
  const auto obj = parseObject(line, error);
  if (!obj) return std::nullopt;
  const auto op = getString(*obj, "op");
  if (!op) return fail("missing \"op\"");

  WireRequest req;
  if (*op == "metrics") {
    req.op = WireRequest::Op::Metrics;
    const auto format = getString(*obj, "format");
    if (format) {
      if (*format == "prometheus") {
        req.metricsFormat = MetricsFormat::Prometheus;
      } else if (*format == "openmetrics") {
        req.metricsFormat = MetricsFormat::OpenMetrics;
      } else if (*format == "json") {
        req.metricsFormat = MetricsFormat::Json;
      } else {
        return fail("unknown metrics \"format\"");
      }
    }
    const auto scope = getString(*obj, "scope");
    if (scope) {
      if (*scope != "cluster" && *scope != "process") {
        return fail("unknown metrics \"scope\"");
      }
      req.clusterScope = (*scope == "cluster");
      // The cluster scope is an exposition of the federated registry;
      // the flat-JSON snapshot stays the plain {"op":"fleet"} answer.
      if (req.clusterScope && req.metricsFormat == MetricsFormat::Json) {
        req.metricsFormat = MetricsFormat::Prometheus;
      }
    }
    return req;
  }
  if (*op == "tsdb") {
    req.op = WireRequest::Op::Tsdb;
    const auto series = getString(*obj, "series");
    if (!series || series->empty()) return fail("tsdb needs \"series\"");
    req.tsdbSeries = *series;
    req.tsdbAgg = getString(*obj, "agg").value_or("all");
    if (req.tsdbAgg != "all" && req.tsdbAgg != "min" && req.tsdbAgg != "max" &&
        req.tsdbAgg != "avg" && req.tsdbAgg != "rate" &&
        req.tsdbAgg != "last" && req.tsdbAgg != "quantile" &&
        req.tsdbAgg != "raw") {
      return fail("unknown tsdb \"agg\"");
    }
    req.tsdbQ = getNumber(*obj, "q").value_or(0.99);
    if (!(req.tsdbQ >= 0.0) || !(req.tsdbQ <= 1.0)) {
      return fail("tsdb \"q\" must be in [0,1]");
    }
    req.tsdbWindowMs = getNumber(*obj, "windowMs").value_or(60000.0);
    if (!(req.tsdbWindowMs > 0.0)) {
      return fail("tsdb \"windowMs\" must be > 0");
    }
    return req;
  }
  if (*op == "slo") {
    req.op = WireRequest::Op::Slo;
    return req;
  }
  if (*op == "trace") {
    req.op = WireRequest::Op::Trace;
    return req;
  }
  if (*op == "events") {
    req.op = WireRequest::Op::Events;
    const double since = getNumber(*obj, "since").value_or(0.0);
    if (since < 0.0) return fail("\"since\" must be >= 0");
    req.eventsSince = static_cast<std::uint64_t>(since);
    return req;
  }

  if (*op == "profile") {
    req.op = WireRequest::Op::Profile;
    req.profileAction = getString(*obj, "action").value_or("status");
    if (req.profileAction != "status" && req.profileAction != "start" &&
        req.profileAction != "stop" && req.profileAction != "clear" &&
        req.profileAction != "snapshot") {
      return fail("unknown profile \"action\"");
    }
    req.profileKind = getString(*obj, "kind").value_or("cpu");
    if (req.profileKind != "cpu" && req.profileKind != "energy") {
      return fail("unknown profile \"kind\"");
    }
    req.profileFormat = getString(*obj, "format").value_or("collapsed");
    if (req.profileFormat != "collapsed" && req.profileFormat != "speedscope") {
      return fail("unknown profile \"format\"");
    }
    const double topN = getNumber(*obj, "topN").value_or(10.0);
    if (topN < 0.0) return fail("profile \"topN\" must be >= 0");
    req.profileTopN = static_cast<std::size_t>(topN);
    const double periodUs = getNumber(*obj, "periodUs").value_or(10000.0);
    if (!(periodUs >= 100.0)) {
      return fail("profile \"periodUs\" must be >= 100");
    }
    req.profilePeriodUs = static_cast<std::uint64_t>(periodUs);
    req.profileCpuSampling = getBool(*obj, "cpuSampling").value_or(true);
    const auto scope = getString(*obj, "scope");
    if (scope) {
      if (*scope != "cluster" && *scope != "process") {
        return fail("unknown profile \"scope\"");
      }
      req.clusterScope = (*scope == "cluster");
    }
    return req;
  }

  if (*op == "fleet") {
    req.op = WireRequest::Op::Fleet;
    req.fleetAction = getString(*obj, "action").value_or("snapshot");
    req.fleetShard = getString(*obj, "shard").value_or("");
    if (req.fleetAction != "snapshot" && req.fleetAction != "kill" &&
        req.fleetAction != "revive" && req.fleetAction != "remove" &&
        req.fleetAction != "add") {
      return fail("unknown fleet \"action\"");
    }
    if (req.fleetAction != "snapshot" && req.fleetShard.empty()) {
      return fail("fleet action needs \"shard\"");
    }
    return req;
  }

  const auto deviceStr = getString(*obj, "device").value_or("p100");
  if (deviceStr == "auto") {
    // Placement left to the fleet router's policy; only meaningful for
    // tune (a study names one device's engine).
    if (*op != "tune") return fail("\"auto\" device is tune-only");
    req.deviceAuto = true;
  }
  const auto device =
      req.deviceAuto ? std::optional<Device>{Device::P100}
                     : parseDevice(deviceStr);
  if (!device) return fail("unknown device");
  req.traceId = getString(*obj, "trace_id").value_or("");
  req.report = getBool(*obj, "report").value_or(false);

  if (*op == "tune") {
    req.op = WireRequest::Op::Tune;
    req.tune.device = *device;
    req.tune.n = static_cast<int>(getNumber(*obj, "n").value_or(0.0));
    req.tune.maxDegradation =
        getNumber(*obj, "maxDegradation").value_or(0.0);
    req.tune.deadlineMs = getNumber(*obj, "deadlineMs").value_or(0.0);
    return req;
  }
  if (*op == "study") {
    req.op = WireRequest::Op::Study;
    req.study.device = *device;
    req.study.nBegin =
        static_cast<int>(getNumber(*obj, "nBegin").value_or(0.0));
    req.study.nEnd = static_cast<int>(getNumber(*obj, "nEnd").value_or(0.0));
    req.study.nStep =
        static_cast<int>(getNumber(*obj, "nStep").value_or(1.0));
    req.study.deadlineMs = getNumber(*obj, "deadlineMs").value_or(0.0);
    return req;
  }
  return fail("unknown \"op\"");
}

std::string encodeTuneResponse(const TuneResponse& resp,
                               const std::string& traceId, bool withReport) {
  ObjectWriter w;
  w.add("status", statusName(resp.status));
  if (!traceId.empty()) w.add("trace_id", traceId);
  if (!resp.error.empty()) w.add("error", resp.error);
  if (resp.status == Status::Ok) {
    const auto& rec = resp.recommendation;
    w.add("recommended", rec.recommended.label)
        .add("recommendedTimeS", rec.recommended.time.value())
        .add("recommendedEnergyJ", rec.recommended.energy.value())
        .add("energySavings", rec.energySavings)
        .add("performanceDegradation", rec.performanceDegradation)
        .add("performanceOptimal", rec.performanceOptimal.label)
        .add("energyOptimal", rec.energyOptimal.label)
        .add("knee", rec.knee.label)
        .add("frontSize", static_cast<std::uint64_t>(rec.globalFront.size()));
  }
  w.add("cacheHit", resp.cacheHit)
      .add("coalesced", resp.coalesced)
      .add("stale", resp.stale);
  if (withReport) appendReport(w, resp.report);
  w.add("latencyMs", resp.latency.value() * 1e3);
  return w.str();
}

std::string encodeStudyResponse(const StudyResponse& resp,
                                const std::string& traceId, bool withReport) {
  ObjectWriter w;
  w.add("status", statusName(resp.status));
  if (!traceId.empty()) w.add("trace_id", traceId);
  if (!resp.error.empty()) w.add("error", resp.error);
  if (resp.status == Status::Ok) {
    const auto& s = resp.statistics;
    w.add("workloads", static_cast<std::uint64_t>(s.workloads))
        .add("avgGlobalFrontSize", s.avgGlobalFrontSize)
        .add("maxGlobalFrontSize",
             static_cast<std::uint64_t>(s.maxGlobalFrontSize))
        .add("avgLocalFrontSize", s.avgLocalFrontSize)
        .add("maxLocalFrontSize",
             static_cast<std::uint64_t>(s.maxLocalFrontSize))
        .add("maxGlobalSavings", s.maxGlobalSavings)
        .add("degradationAtMaxGlobalSavings",
             s.degradationAtMaxGlobalSavings)
        .add("maxLocalSavings", s.maxLocalSavings)
        .add("degradationAtMaxLocalSavings", s.degradationAtMaxLocalSavings);
  }
  w.add("workloadCacheHits",
        static_cast<std::uint64_t>(resp.workloadCacheHits))
      .add("staleWorkloads", static_cast<std::uint64_t>(resp.staleWorkloads));
  if (withReport) appendReport(w, resp.report);
  w.add("latencyMs", resp.latency.value() * 1e3);
  return w.str();
}

std::string encodeMetrics(const ServeMetrics& m) {
  ObjectWriter w;
  w.add("status", "ok")
      .add("accepted", m.accepted)
      .add("completed", m.completed)
      .add("failed", m.failed)
      .add("rejectedQueueFull", m.rejectedQueueFull)
      .add("rejectedDeadline", m.rejectedDeadline)
      .add("rejectedShutdown", m.rejectedShutdown)
      .add("rejectedCircuitOpen", m.rejectedCircuitOpen)
      .add("rejectedOverload", m.rejectedOverload)
      .add("shedDeadline", m.shedDeadline)
      .add("coalesced", m.coalesced)
      .add("studiesExecuted", m.studiesExecuted)
      .add("breakerOpens", m.breakerOpens)
      .add("staleServed", m.staleServed)
      .add("breakerStateP100", m.breakerStateP100)
      .add("breakerStateK40c", m.breakerStateK40c)
      .add("cacheHits", m.cacheHits)
      .add("cacheMisses", m.cacheMisses)
      .add("cacheEvictions", m.cacheEvictions)
      .add("cacheSize", static_cast<std::uint64_t>(m.cacheSize))
      .add("cacheCapacity", static_cast<std::uint64_t>(m.cacheCapacity))
      .add("queueDepth", static_cast<std::uint64_t>(m.queueDepth))
      .add("inFlightStudies", static_cast<std::uint64_t>(m.inFlightStudies))
      .add("admissionLimit", static_cast<std::uint64_t>(m.admissionLimit))
      .add("latencyCount", m.latency.total())
      .add("latencyP50UpperMs", m.latency.quantileUpperBoundMs(0.50))
      .add("latencyP99UpperMs", m.latency.quantileUpperBoundMs(0.99));
  return w.str();
}

std::string encodeTextBody(const std::string& body) {
  return ObjectWriter().add("status", "ok").add("body", body).str();
}

std::string encodeEvents(std::uint64_t activeAlerts, std::uint64_t recorded,
                         std::uint64_t dropped, const std::string& body) {
  return ObjectWriter()
      .add("status", "ok")
      .add("alerts", activeAlerts)
      .add("recorded", recorded)
      .add("dropped", dropped)
      .add("body", body)
      .str();
}

std::string encodeTsdbResponse(const obs::TimeSeriesStore& store,
                               const WireRequest& req, std::int64_t nowNs) {
  const std::int64_t fromNs =
      nowNs - static_cast<std::int64_t>(req.tsdbWindowMs * 1e6);
  ObjectWriter w;
  w.add("status", "ok")
      .add("series", req.tsdbSeries)
      .add("agg", req.tsdbAgg)
      .add("windowMs", req.tsdbWindowMs);
  if (req.tsdbAgg == "quantile") {
    const double v =
        store.histogramQuantile(req.tsdbSeries, req.tsdbQ, fromNs, nowNs);
    // NaN (no data) and +Inf (quantile beyond the last bound) are not
    // JSON numbers; flag them instead.
    w.add("q", req.tsdbQ)
        .add("defined", v == v)
        .add("unbounded", v > 0.0 && v / 2.0 == v)
        .add("value", std::isfinite(v) ? v : -1.0);
    return w.str();
  }
  if (req.tsdbAgg == "raw") {
    std::string body;
    for (const auto& s : store.range(req.tsdbSeries, fromNs, nowNs)) {
      body += std::to_string(s.timeNs);
      body += ' ';
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", s.value);
      body += buf;
      body += '\n';
    }
    w.add("body", body);
    return w.str();
  }
  const obs::SeriesAggregate agg =
      store.aggregate(req.tsdbSeries, fromNs, nowNs);
  w.add("samples", static_cast<std::uint64_t>(agg.samples));
  if (req.tsdbAgg == "all") {
    w.add("min", agg.min)
        .add("max", agg.max)
        .add("avg", agg.avg)
        .add("first", agg.first)
        .add("last", agg.last)
        .add("rate", agg.rate);
  } else if (req.tsdbAgg == "min") {
    w.add("value", agg.min);
  } else if (req.tsdbAgg == "max") {
    w.add("value", agg.max);
  } else if (req.tsdbAgg == "avg") {
    w.add("value", agg.avg);
  } else if (req.tsdbAgg == "rate") {
    w.add("value", agg.rate);
  } else {  // last
    w.add("value", agg.last);
  }
  return w.str();
}

std::string encodeSloStatus(
    const std::vector<obs::SloEngine::SloStatus>& status) {
  ObjectWriter w;
  std::uint64_t burning = 0;
  for (const auto& s : status) burning += s.burning ? 1 : 0;
  w.add("status", "ok")
      .add("slos", static_cast<std::uint64_t>(status.size()))
      .add("burning", burning);
  for (const auto& s : status) {
    const std::string prefix = "slo." + s.name;
    w.add(prefix + ".kind",
          s.kind == obs::SloSpec::Kind::LatencyQuantile ? "latency"
                                                        : "energy")
        .add(prefix + ".burning", s.burning)
        .add(prefix + ".worstBurn", s.worstBurn)
        .add(prefix + ".raised", s.raisedCount);
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      const auto& wb = s.windows[i];
      const std::string wp = prefix + ".w" + std::to_string(i);
      w.add(wp + ".longMs", static_cast<double>(wb.longMs))
          .add(wp + ".shortMs", static_cast<double>(wb.shortMs))
          .add(wp + ".threshold", wb.threshold)
          .add(wp + ".longBurn", wb.longBurn)
          .add(wp + ".shortBurn", wb.shortBurn);
    }
  }
  return w.str();
}

std::string encodeProfileStatus(bool running, std::size_t threads,
                                const char* action) {
  return ObjectWriter()
      .add("status", "ok")
      .add("action", action)
      .add("running", running)
      .add("threads", static_cast<std::uint64_t>(threads))
      .str();
}

std::string encodeProfileSnapshot(const obs::ProfileSnapshot& snap,
                                  const WireRequest& req) {
  ObjectWriter w;
  w.add("status", "ok")
      .add("kind", obs::profileKindName(snap.kind))
      .add("samples", snap.samples)
      .add("totalWeight", snap.totalWeight)
      .add("dropped", snap.dropped)
      .add("truncated", snap.truncated)
      .add("periodUs", snap.samplePeriodUs)
      .add("stacks", static_cast<std::uint64_t>(snap.entries.size()))
      .add("traces", static_cast<std::uint64_t>(snap.traces.size()));
  const auto top = obs::topFrames(snap, req.profileTopN);
  w.add("top", static_cast<std::uint64_t>(top.size()));
  for (std::size_t i = 0; i < top.size(); ++i) {
    const std::string p = "top." + std::to_string(i);
    w.add(p + ".frame", top[i].frame)
        .add(p + ".samples", top[i].samples)
        .add(p + ".weight", top[i].weight)
        .add(p + ".share", top[i].share);
  }
  w.add("body", req.profileFormat == "speedscope"
                    ? obs::renderSpeedscope(
                          snap, std::string("epprof-") +
                                    obs::profileKindName(snap.kind))
                    : obs::renderCollapsed(snap));
  return w.str();
}

std::string encodeError(const std::string& message) {
  return ObjectWriter().add("status", "bad_request").add("error", message).str();
}

}  // namespace ep::serve::wire
