// Service observability: a consistent snapshot of everything the broker
// knows about its own behaviour.
//
// The fleet-survey lesson of serverpark.* applies to the serving layer
// itself — a recommendation service for energy-proportional operation
// had better expose the numbers needed to judge *its* proportionality:
// request mix, rejection causes, queue depth, cache effectiveness and
// the latency distribution.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/lru_cache.hpp"

namespace ep::serve {

// Fixed-bucket latency histogram (milliseconds, upper bounds; the last
// bucket is the overflow).  Buckets are roughly geometric so both a
// microsecond cache hit and a multi-second cold study land usefully.
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 13;
  // Upper bound of bucket i in milliseconds; the final bucket catches
  // everything above the last bound.
  static constexpr std::array<double, kBuckets - 1> kUpperBoundsMs = {
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0, 500.0, 2000.0};

  std::array<std::uint64_t, kBuckets> counts{};

  void record(double ms) {
    for (std::size_t i = 0; i < kUpperBoundsMs.size(); ++i) {
      if (ms <= kUpperBoundsMs[i]) {
        ++counts[i];
        return;
      }
    }
    ++counts[kBuckets - 1];
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }

  // Upper bound (ms) of the bucket containing quantile q in (0, 1];
  // +inf is reported as the last finite bound * 10 for printing.
  [[nodiscard]] double quantileUpperBoundMs(double q) const;
};

struct ServeMetrics {
  // Admission: every submit ends in exactly one of these.
  std::uint64_t accepted = 0;  // entered the service (queued/coalesced/hit)
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t rejectedOverload = 0;  // adaptive admission limit fast-fails
  std::uint64_t shedDeadline = 0;      // deadline-aware sheds at admission

  // Outcome: every *accepted* request ends in exactly one of these.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;            // engine error
  std::uint64_t rejectedDeadline = 0;  // expired before completion
  std::uint64_t rejectedCircuitOpen = 0;  // breaker open, nothing stale

  // Sharing.
  std::uint64_t coalesced = 0;         // requests that joined an in-flight study
  std::uint64_t studiesExecuted = 0;   // cold engine evaluations

  // Resilience.
  std::uint64_t breakerOpens = 0;      // breaker open transitions (all devices)
  std::uint64_t staleServed = 0;       // responses from the stale store
  const char* breakerStateP100 = "closed";
  const char* breakerStateK40c = "closed";
  std::uint64_t cacheHits = 0;         // cache lookups that hit
  std::uint64_t cacheMisses = 0;       // cache lookups that missed
  std::uint64_t cacheEvictions = 0;
  std::size_t cacheSize = 0;
  std::size_t cacheCapacity = 0;

  // Instantaneous state.
  std::size_t queueDepth = 0;      // submitted, not yet picked up by a worker
  std::size_t inFlightStudies = 0; // engine evaluations currently running
  std::size_t admissionLimit = 0;  // AIMD concurrency limit (0 = disabled)

  // Latency of completed requests, submit -> response.
  LatencyHistogram latency;
};

// Multi-line human-readable rendering (tools and benches).
[[nodiscard]] std::string formatMetrics(const ServeMetrics& m);

}  // namespace ep::serve
