// Wire framing for the epnet event-loop transport.
//
// Two framings share one TCP port, distinguished by the first byte a
// client sends (first-byte sniffing keeps every pre-existing line-JSON
// client working against the new frontend):
//
//   * Line JSON (legacy): requests start with '{' (or whitespace);
//     one JSON object per '\n'-terminated line, one response line per
//     request.  Exactly the PR 1 protocol.
//   * EPB1 binary: the connection opens with the 4-byte magic "EPB1",
//     after which every frame — both directions — is
//         varint(payload length) || payload
//     where payload[0] is an opcode and the rest is opcode-specific.
//     Lengths are LEB128 varints (7 bits per byte, little-endian,
//     high bit = continuation) and are capped by maxFrameBytes, so a
//     hostile declared length can never grow a buffer unboundedly.
//
// Opcodes (the codec for kOpTune lives in serve/wire_binary.hpp — this
// layer is transport-only and never interprets payloads):
//   0x00 kOpJson — payload is a JSON text request/response (the full
//        line-JSON vocabulary tunneled through binary framing).
//   0x01 kOpTune — compact binary tune request/response.
//
// FrameDecoder is the per-connection incremental state machine: feed()
// it raw bytes as they arrive; it emits complete frames and flags
// protocol errors (oversize declared length, malformed varint, unknown
// negotiation byte) without ever buffering more than one frame ceiling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ep::net {

inline constexpr char kMagic[4] = {'E', 'P', 'B', '1'};
inline constexpr std::uint8_t kOpJson = 0x00;
inline constexpr std::uint8_t kOpTune = 0x01;

// Append v as a LEB128 varint (at most 10 bytes for a full uint64).
void putVarint(std::string& out, std::uint64_t v);

// Decode one varint from [p, p+len).  Returns the number of bytes
// consumed, 0 when more input is needed, -1 on malformed input (more
// than 10 bytes, or non-canonical overflow past 64 bits).
int readVarint(const char* p, std::size_t len, std::uint64_t* out);

// Append one framed payload: varint(1 + body.size()) || opcode || body.
void appendFrame(std::string& out, std::uint8_t opcode,
                 std::string_view body);

// One complete inbound frame.
struct Frame {
  bool binary = false;   // arrived under EPB1 framing (reply in kind)
  std::uint8_t opcode = kOpJson;  // kOpJson for line-JSON requests
  std::string payload;   // JSON text for kOpJson, codec bytes otherwise
};

// Incremental per-connection decoder: line splitter until the first
// byte picks a mode, EPB1 frame parser afterwards.  The mode is sticky
// for the connection lifetime — a "mode switch" mid-connection is a
// protocol error (or simply malformed JSON), never a reinterpretation.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t maxFrameBytes)
      : maxFrameBytes_(maxFrameBytes) {}

  enum class Mode { Sniffing, Json, Binary, Broken };

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  // Bytes buffered but not yet emitted as frames (bounded by the frame
  // ceiling plus one read chunk).
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

  // Consume `data`, appending every complete frame to *frames.  Returns
  // false when the connection is broken (protocol error): `error()`
  // describes it, and the caller should answer once and close.  Frames
  // already decoded before the error are still appended.
  bool feed(std::string_view data, std::vector<Frame>* frames);

 private:
  bool fail(const char* message) {
    mode_ = Mode::Broken;
    error_ = message;
    return false;
  }
  bool drainJson(std::vector<Frame>* frames);
  bool drainBinary(std::vector<Frame>* frames);

  std::size_t maxFrameBytes_;
  Mode mode_ = Mode::Sniffing;
  std::string buf_;
  std::string error_;
};

}  // namespace ep::net
