#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/profiler.hpp"

namespace ep::net {

namespace {

// Connection ids encode the owning event loop in the top bits so
// respond() can route a completion without any shared lookup table.
constexpr int kConnLoopShift = 48;

}  // namespace

struct Server::EventLoop {
  Server* server = nullptr;
  std::size_t index = 0;
  int epollFd = -1;
  int listenFd = -1;
  int wakeFd = -1;
  std::thread thread;
  std::atomic<bool> quit{false};

  struct PendingWrite {
    ResponseBuffer buf;
    std::size_t offset = 0;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::uint64_t nextSeq = 0;     // assigned to the next inbound frame
    std::uint64_t nextToSend = 0;  // next seq owed to the peer
    // Completions that arrived ahead of an earlier, still-pending seq.
    std::map<std::uint64_t, ResponseBuffer> ready;
    std::deque<PendingWrite> writeq;
    std::size_t queuedBytes = 0;  // unsent bytes across writeq
    bool wantWrite = false;       // EPOLLOUT currently armed
    bool closeAfterFlush = false;
    bool dirty = false;  // queued in dirtyIds this iteration

    explicit Conn(std::size_t maxFrame) : decoder(maxFrame) {}
  };

  std::unordered_map<int, std::unique_ptr<Conn>> connsByFd;
  std::unordered_map<std::uint64_t, Conn*> connsById;
  std::uint64_t nextConnSerial = 0;

  struct Completion {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    ResponseBuffer buf;
  };
  // Cross-thread respond() deliveries; wakeSignaled avoids writing the
  // eventfd more than once per drain.
  std::mutex inboxMu;
  std::vector<Completion> inbox;
  bool wakeSignaled = false;  // guarded by inboxMu

  // Per-iteration scratch.
  std::vector<InboundFrame> batch;
  std::vector<std::uint64_t> dirtyIds;

  ~EventLoop() {
    if (wakeFd >= 0) ::close(wakeFd);
  }

  void run() {
    tlsLoop = this;
    // epprof: label + register this event thread so network-side CPU
    // shows up in continuous profiles under its own root frame.
    obs::ProfileThreadLabel profileRoot("net/event_loop");
    obs::Profiler::global().registerCurrentThread();
    std::vector<epoll_event> events(128);
    while (!quit.load(std::memory_order_acquire)) {
      const int n =
          ::epoll_wait(epollFd, events.data(),
                       static_cast<int>(events.size()), /*timeout=*/-1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      batch.clear();
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t ev = events[i].events;
        if (fd == listenFd) {
          acceptAll();
          continue;
        }
        if (fd == wakeFd) {
          std::uint64_t tick = 0;
          while (::read(wakeFd, &tick, sizeof tick) > 0) {
          }
          continue;
        }
        auto it = connsByFd.find(fd);
        if (it == connsByFd.end()) continue;  // closed earlier this round
        Conn* c = it->second.get();
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          closeConn(*c);
          continue;
        }
        if ((ev & EPOLLIN) != 0) {
          if (!readConn(*c)) continue;  // connection closed
        }
        if ((ev & EPOLLOUT) != 0) {
          markDirty(*c);
        }
      }
      drainInbox();
      if (!batch.empty()) {
        server->cBatches_.inc();
        server->cFrames_.inc(batch.size());
        auto handing = std::move(batch);
        batch = {};
        // Inline respond() calls from the handler land directly via
        // tlsLoop and mark connections dirty for the flush below.
        server->handler_(*server, std::move(handing));
      }
      drainInbox();
      flushDirty();
    }
    tlsLoop = nullptr;
  }

  void acceptAll() {
    for (;;) {
      const int fd =
          ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or a transient accept error: wait for the next edge
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<Conn>(server->options_.maxFrameBytes);
      conn->fd = fd;
      conn->id = (static_cast<std::uint64_t>(index) << kConnLoopShift) |
                 ++nextConnSerial;
      const ServerChaosHooks* chaos = server->options_.chaos;
      if (chaos != nullptr && chaos->dropOnAccept &&
          chaos->dropOnAccept(conn->id)) {
        // Injected accept fault: the peer sees a reset on its next I/O.
        // The connection serial is consumed either way, so a campaign's
        // ids are a pure function of accept order.
        ::close(fd);
        continue;
      }
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.fd = fd;
      if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      connsById[conn->id] = conn.get();
      connsByFd[fd] = std::move(conn);
      server->cConnections_.inc();
      server->gOpen_.add(1);
    }
  }

  // Drain the socket to EAGAIN, decode, append frames to this
  // iteration's batch.  Returns false when the connection was closed.
  bool readConn(Conn& c) {
    if (c.decoder.mode() == FrameDecoder::Mode::Broken) return true;
    char chunk[65536];
    for (;;) {
      const ssize_t got = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (got > 0) {
        server->cBytesRead_.inc(static_cast<std::uint64_t>(got));
        std::vector<Frame> frames;
        bool ok;
        bool chaosClose = false;
        const ServerChaosHooks* chaos = server->options_.chaos;
        if (chaos != nullptr && chaos->onInbound) {
          std::string mutated(chunk, static_cast<std::size_t>(got));
          chaosClose = chaos->onInbound(c.id, mutated);
          ok = c.decoder.feed(mutated, &frames);
        } else {
          ok = c.decoder.feed(
              std::string_view(chunk, static_cast<std::size_t>(got)), &frames);
        }
        for (auto& f : frames) {
          InboundFrame in;
          in.conn = c.id;
          in.seq = c.nextSeq++;
          in.binary = f.binary;
          in.opcode = f.opcode;
          in.payload = std::move(f.payload);
          batch.push_back(std::move(in));
        }
        if (!ok) {
          protocolError(c);
          return true;  // conn stays alive until the error reply flushes
        }
        if (chaosClose) {
          // Injected mid-stream drop: the connection dies now, so late
          // respond() calls for frames decoded from the mutated chunk
          // are silently dropped — exactly the lost-response shape a
          // real mid-request reset produces.
          closeConn(c);
          return false;
        }
        // A short read means the kernel buffer is empty (stream
        // socket); a full chunk means there may be more.
        if (got < static_cast<ssize_t>(sizeof chunk)) return true;
        continue;
      }
      if (got == 0) {
        closeConn(c);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      closeConn(c);
      return false;
    }
  }

  // Answer a framing error in the connection's negotiated framing, then
  // close once everything already owed (earlier seqs first) has
  // flushed.  Reads stop permanently: the decoder is Broken.
  void protocolError(Conn& c) {
    server->cProtocolErrors_.inc();
    std::string body = "{\"status\":\"bad_request\",\"error\":\"";
    body += c.decoder.error();  // fixed internal strings: no escaping needed
    body += "\"}";
    std::string framed;
    if (c.decoder.mode() == FrameDecoder::Mode::Binary ||
        (c.decoder.mode() == FrameDecoder::Mode::Broken &&
         c.decoder.error() == std::string("bad negotiation magic"))) {
      appendFrame(framed, kOpJson, body);
    } else {
      framed = body + "\n";
    }
    // The error takes the next seq so pipelined responses already in
    // flight still arrive, in order, before the close.
    const std::uint64_t seq = c.nextSeq++;
    c.closeAfterFlush = true;
    ::shutdown(c.fd, SHUT_RD);
    deliver(c.id, seq, makeBuffer(std::move(framed)));
  }

  void deliver(std::uint64_t id, std::uint64_t seq, ResponseBuffer buf) {
    auto it = connsById.find(id);
    if (it == connsById.end()) return;  // connection already gone: drop
    Conn& c = *it->second;
    if (buf == nullptr) buf = makeBuffer(std::string());
    c.ready.emplace(seq, std::move(buf));
    // Promote every now-contiguous completion into the write queue.
    for (auto r = c.ready.find(c.nextToSend); r != c.ready.end();
         r = c.ready.find(c.nextToSend)) {
      c.queuedBytes += r->second->size();
      c.writeq.push_back(PendingWrite{std::move(r->second), 0});
      c.ready.erase(r);
      ++c.nextToSend;
    }
    markDirty(c);
  }

  void markDirty(Conn& c) {
    if (!c.dirty) {
      c.dirty = true;
      dirtyIds.push_back(c.id);
    }
  }

  void drainInbox() {
    std::vector<Completion> local;
    {
      std::lock_guard<std::mutex> lk(inboxMu);
      if (inbox.empty()) {
        wakeSignaled = false;
        return;
      }
      local.swap(inbox);
      wakeSignaled = false;
    }
    for (auto& comp : local) deliver(comp.conn, comp.seq, std::move(comp.buf));
  }

  void flushDirty() {
    // flushConn may close (and erase) the connection: iterate by id.
    for (std::size_t i = 0; i < dirtyIds.size(); ++i) {
      auto it = connsById.find(dirtyIds[i]);
      if (it == connsById.end()) continue;
      Conn& c = *it->second;
      c.dirty = false;
      flushConn(c);
    }
    dirtyIds.clear();
  }

  // Write as much of the queue as the socket accepts.  May close the
  // connection (slow-reader eviction, write error, closeAfterFlush).
  void flushConn(Conn& c) {
    while (!c.writeq.empty()) {
      iovec iov[64];
      int cnt = 0;
      for (const auto& pw : c.writeq) {
        if (cnt == 64) break;
        iov[cnt].iov_base =
            const_cast<char*>(pw.buf->data() + pw.offset);
        iov[cnt].iov_len = pw.buf->size() - pw.offset;
        ++cnt;
      }
      const ssize_t n = ::writev(c.fd, iov, cnt);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (c.queuedBytes > server->options_.writeHighWaterBytes) {
            server->cEvicted_.inc();
            closeConn(c);
            return;
          }
          armWrite(c, true);
          return;
        }
        closeConn(c);
        return;
      }
      server->cBytesWritten_.inc(static_cast<std::uint64_t>(n));
      c.queuedBytes -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0 && !c.writeq.empty()) {
        PendingWrite& front = c.writeq.front();
        const std::size_t avail = front.buf->size() - front.offset;
        if (left >= avail) {
          left -= avail;
          c.writeq.pop_front();
        } else {
          front.offset += left;
          left = 0;
        }
      }
    }
    if (c.closeAfterFlush && c.ready.empty()) {
      closeConn(c);
      return;
    }
    armWrite(c, false);
  }

  void armWrite(Conn& c, bool enable) {
    if (c.wantWrite == enable) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | (enable ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
      c.wantWrite = enable;
    }
  }

  void closeConn(Conn& c) {
    const int fd = c.fd;
    const std::uint64_t id = c.id;
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connsById.erase(id);
    connsByFd.erase(fd);  // frees c: do not touch it past this line
    server->gOpen_.sub(1);
  }

  void closeAllConns() {
    for (auto& [fd, conn] : connsByFd) {
      ::close(fd);
      server->gOpen_.sub(1);
    }
    connsByFd.clear();
    connsById.clear();
  }

  static thread_local EventLoop* tlsLoop;
};

thread_local Server::EventLoop* Server::EventLoop::tlsLoop = nullptr;

Server::Server(ServerOptions options, BatchHandler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      ownedRegistry_(options_.registry == nullptr
                         ? std::make_unique<obs::Registry>()
                         : nullptr),
      cConnections_(registry().counter("ep_net_connections_total",
                                       "Connections accepted")),
      cFrames_(registry().counter("ep_net_frames_total",
                                  "Request frames decoded")),
      cBatches_(registry().counter(
          "ep_net_batches_total", "Cross-connection batches handed off")),
      cEvicted_(registry().counter(
          "ep_net_evicted_total",
          "Connections evicted for stalling past the write high-water mark")),
      cProtocolErrors_(registry().counter(
          "ep_net_protocol_errors_total", "Connections broken by framing")),
      cBytesRead_(registry().counter("ep_net_bytes_read_total",
                                     "Bytes read from sockets")),
      cBytesWritten_(registry().counter("ep_net_bytes_written_total",
                                        "Bytes written to sockets")),
      gOpen_(registry().gauge("ep_net_open_connections",
                              "Currently open connections")) {
  if (options_.eventThreads == 0) options_.eventThreads = 1;
}

obs::Registry& Server::registry() {
  return options_.registry != nullptr ? *options_.registry : *ownedRegistry_;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto failWith = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    for (auto& loop : loops_) {
      if (loop->listenFd >= 0) ::close(loop->listenFd);
      if (loop->epollFd >= 0) ::close(loop->epollFd);
    }
    loops_.clear();
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host: " + options_.host;
    return false;
  }

  const std::size_t nThreads = options_.eventThreads;
  for (std::size_t i = 0; i < nThreads; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->server = this;
    loop->index = i;

    loop->listenFd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (loop->listenFd < 0) {
      loops_.push_back(std::move(loop));
      return failWith("socket");
    }
    int one = 1;
    ::setsockopt(loop->listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (nThreads > 1) {
      // Shard accepts across the event threads in the kernel.
      ::setsockopt(loop->listenFd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
    }
    if (::bind(loop->listenFd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      loops_.push_back(std::move(loop));
      return failWith("bind");
    }
    if (::listen(loop->listenFd, options_.backlog) != 0) {
      loops_.push_back(std::move(loop));
      return failWith("listen");
    }
    if (i == 0) {
      // Ephemeral port: learn the kernel's pick so the remaining
      // listeners (and port()) bind the same one.
      socklen_t len = sizeof addr;
      if (::getsockname(loop->listenFd, reinterpret_cast<sockaddr*>(&addr),
                        &len) != 0) {
        loops_.push_back(std::move(loop));
        return failWith("getsockname");
      }
      port_ = ntohs(addr.sin_port);
    }

    loop->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epollFd < 0 || loop->wakeFd < 0) {
      loops_.push_back(std::move(loop));
      return failWith("epoll/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = loop->listenFd;
    ::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->listenFd, &ev);
    ev.data.fd = loop->wakeFd;
    ::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->wakeFd, &ev);

    loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    EventLoop* raw = loop.get();
    loop->thread = std::thread([raw] { raw->run(); });
  }
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& loop : loops_) {
    loop->quit.store(true, std::memory_order_release);
    std::uint64_t tick = 1;
    [[maybe_unused]] ssize_t rc = ::write(loop->wakeFd, &tick, sizeof tick);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    loop->closeAllConns();
    if (loop->listenFd >= 0) {
      ::close(loop->listenFd);
      loop->listenFd = -1;
    }
    if (loop->epollFd >= 0) {
      ::close(loop->epollFd);
      loop->epollFd = -1;
    }
    // wakeFd stays open until ~EventLoop so straggling respond() calls
    // from worker threads (dropped anyway) never write a reused fd.
  }
}

void Server::respond(std::uint64_t conn, std::uint64_t seq,
                     ResponseBuffer buf) {
  const std::size_t loopIdx = static_cast<std::size_t>(conn >> kConnLoopShift);
  if (loopIdx >= loops_.size()) return;
  EventLoop* loop = loops_[loopIdx].get();
  if (EventLoop::tlsLoop == loop) {
    loop->deliver(conn, seq, std::move(buf));
    return;
  }
  bool needWake = false;
  {
    std::lock_guard<std::mutex> lk(loop->inboxMu);
    loop->inbox.push_back(EventLoop::Completion{conn, seq, std::move(buf)});
    if (!loop->wakeSignaled) {
      loop->wakeSignaled = true;
      needWake = true;
    }
  }
  if (needWake && loop->wakeFd >= 0) {
    std::uint64_t tick = 1;
    [[maybe_unused]] ssize_t rc = ::write(loop->wakeFd, &tick, sizeof tick);
  }
}

}  // namespace ep::net
