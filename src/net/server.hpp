// epnet: an edge-triggered epoll event-loop TCP server with
// cross-connection request batching and zero-copy response fan-out.
//
// Why it exists: the PR 1 frontend spent a thread per connection and a
// wakeup per request, which capped epserved at ~45k req/s while the
// in-process broker does hundreds of thousands — exactly the serving
// overhead the energy-nonproportionality papers indict (cycles burned
// per request that do no useful work still draw near-peak power).
//
// Architecture
//   * N event threads (ServerOptions::eventThreads), each owning its
//     own epoll instance, its own listener (SO_REUSEPORT sharding when
//     N > 1, so the kernel spreads accepts without a shared accept
//     lock), an eventfd for cross-thread wakeups, and every connection
//     the kernel handed it.  No connection state is ever touched by
//     two event threads.
//   * Edge-triggered reads: one EPOLLIN wakeup drains a socket to
//     EAGAIN, the FrameDecoder splits the bytes into frames, and all
//     frames from all ready sockets of one epoll_wait round are
//     accumulated into a single batch handed to the BatchHandler — the
//     cross-connection batching that lets the broker amortize one lock
//     acquisition and one pool hop over the whole round.
//   * Responses: the handler answers each frame via respond() exactly
//     once, from any thread.  Buffers are refcounted
//     (shared_ptr<const string>): rendered once, enqueued per
//     connection without copying, written with writev().  Per-frame
//     sequence numbers restore pipelined response order — a fast
//     cache hit answered inline never overtakes a slow cold study
//     answered from a worker thread on the same connection.
//   * Slow readers: each connection's pending write queue is bounded
//     by writeHighWaterBytes; a peer that stalls past it is evicted
//     (connection closed, ep_net_evicted_total incremented) instead of
//     buffering unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace ep::net {

// Refcounted response bytes: render once, enqueue anywhere.
using ResponseBuffer = std::shared_ptr<const std::string>;

inline ResponseBuffer makeBuffer(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

// Fault-injection test seam (bound by chaos::NetChaos; see
// src/chaos/net_chaos.hpp).  All callbacks run on event threads with
// the connection's state consistent; unset std::functions are skipped.
// A null hook pointer costs one pointer compare per accept/read — the
// chaos-off hot path is byte-for-byte the PR 8 behaviour.
struct ServerChaosHooks {
  // Consulted once per accepted connection; true = close it immediately
  // (the peer sees a reset on its next I/O).
  std::function<bool(std::uint64_t conn)> dropOnAccept;
  // Consulted with every inbound chunk before it reaches the frame
  // decoder; may mutate the bytes (corruption).  Returning true
  // additionally hard-closes the connection after the chunk is decoded.
  std::function<bool(std::uint64_t conn, std::string& bytes)> onInbound;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; port() reports the choice
  std::size_t eventThreads = 1;
  int backlog = 256;
  std::size_t maxFrameBytes = std::size_t{1} << 20;
  // Slow-reader eviction threshold: pending unsent response bytes.
  std::size_t writeHighWaterBytes = std::size_t{8} << 20;
  // Metrics registry for the ep_net_* family.  nullptr = the server
  // owns a private registry, so concurrent servers in one process never
  // alias each other's counters; daemons that want the ep_net_* family
  // on their process-wide {"op":"metrics"} surface pass
  // &obs::Registry::global() explicitly.
  obs::Registry* registry = nullptr;
  // Deterministic fault injection (tests/drills only); nullptr = off.
  // Must outlive the server.
  const ServerChaosHooks* chaos = nullptr;
};

// One decoded inbound frame, tagged with enough identity to answer it.
struct InboundFrame {
  std::uint64_t conn = 0;  // opaque connection id
  std::uint64_t seq = 0;   // per-connection arrival order
  bool binary = false;     // reply must use EPB1 framing
  std::uint8_t opcode = kOpJson;
  std::string payload;     // JSON text (kOpJson) or codec bytes
};

class Server;

// Called on an event thread with every frame drained in one loop
// iteration (possibly spanning many connections).  For each frame the
// handler must eventually call Server::respond exactly once — inline
// for cheap requests, from a worker thread for expensive ones.  The
// buffer passed to respond() must already be fully framed bytes
// (JSON line + '\n', or an EPB1 frame).
using BatchHandler =
    std::function<void(Server& server, std::vector<InboundFrame>&& batch)>;

class Server {
 public:
  Server(ServerOptions options, BatchHandler handler);
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + spawn the event threads.  False (with *error set)
  // on socket failure.
  bool start(std::string* error);

  // Close listeners and every connection, join the event threads.
  // Pending unanswered frames are dropped (their late respond() calls
  // are ignored).  Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  // Deliver the response for frame (conn, seq).  Thread-safe; callable
  // from the handler inline or from any worker thread.  Responses are
  // written to the socket in seq order regardless of completion order.
  // Silently dropped when the connection is already gone.
  void respond(std::uint64_t conn, std::uint64_t seq, ResponseBuffer buf);

  // Test/ops introspection.
  [[nodiscard]] std::uint64_t evicted() const { return cEvicted_.value(); }
  [[nodiscard]] std::uint64_t protocolErrors() const {
    return cProtocolErrors_.value();
  }
  [[nodiscard]] std::int64_t openConnections() const {
    return gOpen_.value();
  }
  // The registry holding this server's ep_net_* family: the one passed
  // in ServerOptions, or the server-owned private registry.
  [[nodiscard]] obs::Registry& registry();

 private:
  struct EventLoop;
  friend struct EventLoop;

  ServerOptions options_;
  BatchHandler handler_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<EventLoop>> loops_;

  // Owned when options_.registry == nullptr; declared before the
  // counter references so it outlives their initialization.
  std::unique_ptr<obs::Registry> ownedRegistry_;
  obs::Counter& cConnections_;
  obs::Counter& cFrames_;
  obs::Counter& cBatches_;
  obs::Counter& cEvicted_;
  obs::Counter& cProtocolErrors_;
  obs::Counter& cBytesRead_;
  obs::Counter& cBytesWritten_;
  obs::Gauge& gOpen_;
};

}  // namespace ep::net
