#include "net/frame.hpp"

#include <cstring>

namespace ep::net {

void putVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

int readVarint(const char* p, std::size_t len, std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const auto byte = static_cast<std::uint8_t>(p[i]);
    if (i == 9 && byte > 0x01) return -1;  // would overflow 64 bits
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return static_cast<int>(i) + 1;
    }
    shift += 7;
    if (i + 1 == 10) return -1;  // 10 continuation bytes: malformed
  }
  return 0;  // ran out of input mid-varint
}

void appendFrame(std::string& out, std::uint8_t opcode,
                 std::string_view body) {
  putVarint(out, body.size() + 1);
  out += static_cast<char>(opcode);
  out.append(body.data(), body.size());
}

bool FrameDecoder::feed(std::string_view data, std::vector<Frame>* frames) {
  if (mode_ == Mode::Broken) return false;
  buf_.append(data.data(), data.size());

  if (mode_ == Mode::Sniffing) {
    if (buf_.empty()) return true;
    // Skip leading whitespace before sniffing (a JSON client may lead
    // with a blank line); a buffer that is all whitespace stays hungry.
    std::size_t ws = 0;
    while (ws < buf_.size() &&
           (buf_[ws] == ' ' || buf_[ws] == '\t' || buf_[ws] == '\r' ||
            buf_[ws] == '\n')) {
      ++ws;
    }
    if (ws > 0) buf_.erase(0, ws);
    if (buf_.empty()) return true;
    if (buf_[0] == kMagic[0]) {
      // Candidate EPB1 negotiation: wait for the full 4-byte magic.
      if (buf_.size() < sizeof kMagic) return true;
      if (std::memcmp(buf_.data(), kMagic, sizeof kMagic) != 0) {
        return fail("bad negotiation magic");
      }
      buf_.erase(0, sizeof kMagic);
      mode_ = Mode::Binary;
    } else if (buf_[0] == '{') {
      mode_ = Mode::Json;
    } else {
      return fail("unrecognized protocol (expected '{' or EPB1 magic)");
    }
  }

  return mode_ == Mode::Json ? drainJson(frames) : drainBinary(frames);
}

bool FrameDecoder::drainJson(std::vector<Frame>* frames) {
  std::size_t nl;
  while ((nl = buf_.find('\n')) != std::string::npos) {
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.size() > maxFrameBytes_) return fail("frame too large");
    Frame f;
    f.binary = false;
    f.opcode = kOpJson;
    f.payload = std::move(line);
    frames->push_back(std::move(f));
  }
  // A line that never ends must not grow our memory without bound.
  if (buf_.size() > maxFrameBytes_) return fail("frame too large");
  return true;
}

bool FrameDecoder::drainBinary(std::vector<Frame>* frames) {
  for (;;) {
    std::uint64_t len = 0;
    const int used = readVarint(buf_.data(), buf_.size(), &len);
    if (used == 0) return true;  // partial length prefix: wait
    if (used < 0) return fail("malformed frame length");
    if (len == 0) return fail("empty frame");
    if (len > maxFrameBytes_) return fail("frame too large");
    const std::size_t need = static_cast<std::size_t>(used) + len;
    if (buf_.size() < need) return true;  // mid-frame: wait
    Frame f;
    f.binary = true;
    f.opcode = static_cast<std::uint8_t>(buf_[static_cast<std::size_t>(used)]);
    f.payload.assign(buf_, static_cast<std::size_t>(used) + 1, len - 1);
    buf_.erase(0, need);
    if (f.opcode != kOpJson && f.opcode != kOpTune) {
      return fail("unknown frame opcode");
    }
    frames->push_back(std::move(f));
  }
}

}  // namespace ep::net
