#include "hw/gpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/mathutil.hpp"

namespace ep::hw {

namespace {

// Latency-hiding saturation: fraction of peak throughput reachable at a
// given occupancy.  1 - exp(-occ/scale) rises steeply and saturates, the
// standard shape of achieved-throughput-vs-occupancy curves.
double latencyHiding(double occupancy, double scale) {
  return 1.0 - std::exp(-occupancy / scale);
}

// Warp quantization: BS^2 threads occupy ceil(BS^2/32) full warps.
double warpEfficiency(int bs, int warpSize) {
  const double threads = static_cast<double>(bs) * bs;
  const double warps = std::ceil(threads / warpSize);
  return threads / (warps * warpSize);
}

// DRAM coalescing: a row segment of BS doubles spans BS*8 bytes; requests
// smaller than a 32-byte sector waste the rest of the sector.
double coalescingEfficiency(int bs) {
  const double bytesPerRow = static_cast<double>(bs) * 8.0;
  return std::min(1.0, bytesPerRow / 32.0);
}

// Issue-efficiency loss from the instruction-cache pressure of G textual
// repetitions of the device matmul code (G >= 4 exceeds the icache).
double icacheLevels(int g) {
  if (g < 4) return 0.0;
  return std::log2(static_cast<double>(g)) - 1.0;
}

// DVFS "bins" of the autoboost governor.  Kernels made of few large
// resident blocks present a sustained utilization signal and are driven
// to the top boost state; many small blocks retire frequently, the
// utilization telemetry dips at every block boundary, and the governor
// settles on a lower clock.  Returns the applied clock ratio >= 1.
double boostRatioFor(const GpuSpec& spec, const GpuTuning& tuning,
                     const Occupancy& occ) {
  if (!spec.hasAutoBoost) return 1.0;
  const double full = spec.clockRatioBoost();
  if (occ.blocksPerSm <= 2) return full;
  if (occ.blocksPerSm <= 4) {
    return 1.0 + (full - 1.0) * tuning.midBinBoostFraction;
  }
  return 1.0;
}

// The shared-memory-bound inner loop: each FMA consumes two 8-byte
// operands from shared memory, so the sustainable FP64 rate is limited by
// shared bandwidth.  Fraction of FP64 peak sustainable by this kernel.
double sharedMemoryPeakFraction(const GpuSpec& /*spec*/) {
  // 16 B of shared traffic per FMA vs ~4 B/flop deliverable: both GK110B
  // (256 B/cycle shared, 64 FP64 FMA/cycle) and GP100 (128 B/cycle, 32
  // FMA/cycle) sit at the same ~25 % ratio for this access pattern.
  return 0.25;
}

}  // namespace

Joules KernelModel::dynamicEnergy() const {
  Joules e = corePower * time;
  if (uncoreActive) {
    e += uncorePower * (time + uncoreTail);
  }
  return e;
}

GpuModel::GpuModel(GpuSpec spec)
    : spec_(std::move(spec)), tuning_(defaultTuning(spec_)) {}

GpuModel::GpuModel(GpuSpec spec, GpuTuning tuning)
    : spec_(std::move(spec)), tuning_(tuning) {}

GpuTuning GpuModel::defaultTuning(const GpuSpec& spec) {
  GpuTuning t;
  // Constants calibrated (tools/tune + analytic solution recorded in
  // DESIGN.md) so that the configuration-space structure matches the
  // paper's Section V observations: on the P100 the residency-power and
  // clock-bin mechanisms produce the 2-3 point global fronts and the
  // (50 %, 11 %) / (12.5 %, 2.5 %) trade-offs; on the K40c the absence
  // of autoboost collapses the global front to BS=32 while local fronts
  // retain a ~(18 %, 7 %) trade-off.
  if (spec.hasAutoBoost) {
    // P100-class: dominated by warp-scheduler/register-file residency
    // power in the boosted clock domain; HBM2 is cheap per byte.
    t.smEnergyPerGflop = 0.0005;  // J/Gflop at base clock
    t.memEnergyPerGB = 0.0584;    // J/GB (HBM2)
    t.residencyPower = 21.86;     // W at full occupancy, base clock
    t.fetchPowerPerLevel = 2.0;   // W per icache level
    t.constantActivePower = 15.12;
    t.occScaleCompute = 0.163;
    t.boostPowerExponent = 2.5;
    t.midBinBoostFraction = 0.396;
    t.gLinearPenalty = 0.006;
    t.runWarmupFraction = 0.02;
    t.bandwidthEfficiency = 0.847;
    t.uncoreTailSec = 0.793;
  } else {
    // K40c-class: fixed clocks; GDDR5 costs more per byte.
    t.smEnergyPerGflop = 0.0821;  // J/Gflop
    t.memEnergyPerGB = 0.163;     // J/GB (GDDR5)
    t.residencyPower = 13.24;
    t.fetchPowerPerLevel = 3.2;
    t.constantActivePower = 8.08;
    t.occScaleCompute = 0.30;
    t.gLinearPenalty = 0.0006;
    t.runWarmupFraction = 0.0323;
    t.bandwidthEfficiency = 0.782;
    t.uncoreTailSec = 2.0;
  }
  return t;
}

Occupancy GpuModel::occupancyFor(int bs) const {
  EP_REQUIRE(bs >= 1, "block dimension must be >= 1");
  const int threadsPerBlock = bs * bs;
  if (threadsPerBlock > spec_.maxThreadsPerBlock) {
    throw ResourceError("block of " + std::to_string(threadsPerBlock) +
                        " threads exceeds device limit");
  }
  const int sharedBytesPerBlock = 2 * 8 * bs * bs;
  if (sharedBytesPerBlock > spec_.sharedMemPerBlockKB * 1024) {
    throw ResourceError("shared memory per block exceeds device limit");
  }
  const int byThreads = spec_.maxThreadsPerSM / threadsPerBlock;
  const int byShared = sharedBytesPerBlock == 0
                           ? spec_.maxBlocksPerSM
                           : spec_.sharedMemPerSMKB * 1024 /
                                 sharedBytesPerBlock;
  const int bySlots = spec_.maxBlocksPerSM;

  Occupancy o;
  o.blocksPerSm = std::min({byThreads, byShared, bySlots});
  EP_REQUIRE(o.blocksPerSm >= 1, "block cannot be resident at all");
  if (o.blocksPerSm == byThreads) {
    o.limitedBy = "threads";
  } else if (o.blocksPerSm == byShared) {
    o.limitedBy = "shared";
  } else {
    o.limitedBy = "blocks";
  }
  o.threadsPerSm = o.blocksPerSm * threadsPerBlock;
  o.fraction = static_cast<double>(o.threadsPerSm) /
               static_cast<double>(spec_.maxThreadsPerSM);
  return o;
}

bool GpuModel::isLaunchable(const MatMulConfig& cfg) const {
  if (cfg.n < 1 || cfg.bs < 1 || cfg.g < 1 || cfg.r < 1) return false;
  if (cfg.bs * cfg.bs > spec_.maxThreadsPerBlock) return false;
  if (2 * 8 * cfg.bs * cfg.bs > spec_.sharedMemPerBlockKB * 1024)
    return false;
  // Three N x N double matrices must fit in board memory.
  const double bytes = 3.0 * 8.0 * static_cast<double>(cfg.n) * cfg.n;
  return bytes <= static_cast<double>(spec_.memoryGB) * 1024.0 * 1024.0 *
                      1024.0;
}

KernelModel GpuModel::modelMatMul(const MatMulConfig& cfg) const {
  if (!isLaunchable(cfg)) {
    throw ResourceError("configuration is not launchable on " + spec_.name);
  }
  const Occupancy occ = occupancyFor(cfg.bs);
  const double products = static_cast<double>(cfg.totalProducts());

  // Tile padding: the grid covers ceil(N/BS) tiles per dimension and the
  // kernel loops over full tiles (bounds-checked loads), so the executed
  // volume corresponds to Nt = ceil(N/BS)*BS.
  const auto tiles = static_cast<double>(ceilDiv(cfg.n, cfg.bs));
  const double nt = tiles * cfg.bs;

  const double flopsPerProduct = 2.0 * nt * nt * nt;
  // Each A/B element is loaded Nt/BS times (once per consuming block);
  // C is read and written once.
  const double bytesPerProduct =
      2.0 * 8.0 * nt * nt * tiles + 3.0 * 8.0 * nt * nt;

  const double warpEff = warpEfficiency(cfg.bs, spec_.warpSize);
  const double occEffC = latencyHiding(occ.fraction, tuning_.occScaleCompute);
  const double occEffM = latencyHiding(occ.fraction, tuning_.occScaleMemory);
  const double icLevels = icacheLevels(cfg.g);
  const double issueEff =
      std::max(0.5, 1.0 - tuning_.icachePenaltyPerLevel * icLevels -
                        tuning_.gLinearPenalty * (cfg.g - 1));
  const double boost = boostRatioFor(spec_, tuning_, occ);

  // Compute roofline: the shared-memory-fed FP64 pipeline at the boosted
  // clock, derated by warp fill, latency hiding and icache stalls.
  const double peakFlops = spec_.peakGflopsDouble * 1e9 *
                           sharedMemoryPeakFraction(spec_) * boost;
  const double computeRate = peakFlops * warpEff * occEffC * issueEff;
  const double tCompute = flopsPerProduct / computeRate;

  // Memory roofline: DRAM traffic at coalescing-derated bandwidth.
  const double memRate = spec_.memBandwidthGBs * 1e9 *
                         tuning_.bandwidthEfficiency *
                         coalescingEfficiency(cfg.bs) * occEffM;
  const double tMemory = bytesPerProduct / memRate;

  // Smooth-max roofline combination (p-norm) — real kernels overlap the
  // two partially, so the transition is soft but close to max().
  constexpr double kRooflineSharpness = 12.0;
  const double tProduct =
      std::pow(std::pow(tCompute, kRooflineSharpness) +
                   std::pow(tMemory, kRooflineSharpness),
               1.0 / kRooflineSharpness);

  // Every run of a group starts with cold L2/TLB state for the streamed
  // matrices: a small warm-up cost per run (R of them per launch).
  // The GigaThread engine dispatches each block once per launch.
  constexpr double kLaunchOverheadSec = 8e-6;
  constexpr double kBlockDispatchSec = 64e-9;
  const double warmup = tuning_.runWarmupFraction * tProduct;
  const double tKernel = products * tProduct + cfg.r * warmup +
                         tiles * tiles * kBlockDispatchSec +
                         kLaunchOverheadSec;

  KernelModel m;
  m.time = Seconds{tKernel};
  m.occupancy = occ;
  m.boostRatio = boost;
  m.achievedGflops = products * flopsPerProduct / tKernel / 1e9;
  m.achievedBandwidthGBs = products * bytesPerProduct / tKernel / 1e9;

  // --- Energy decomposition (dynamic, above idle) ---
  // Switching energy per flop scales with V^2 ~ boost^2; the voltage
  // exponent is part of the boost power response.
  const double boostEnergyScale =
      std::pow(boost, tuning_.boostPowerExponent - 1.0);
  const double smEnergy = products * flopsPerProduct / 1e9 *
                          tuning_.smEnergyPerGflop * boostEnergyScale;
  const double memEnergy =
      products * bytesPerProduct / 1e9 * tuning_.memEnergyPerGB;
  const double residencyEnergy = tuning_.residencyPower * occ.fraction *
                                 std::pow(boost, 3.0) * tKernel;
  const double fetchEnergy =
      tuning_.fetchPowerPerLevel * icLevels * tKernel;
  const double constEnergy = tuning_.constantActivePower * tKernel;
  const double coreEnergy =
      smEnergy + memEnergy + residencyEnergy + fetchEnergy + constEnergy;
  m.corePower = Watts{coreEnergy / tKernel};

  // The 58 W uncore component: engaged for small workloads; on autoboost
  // parts it is tied to the top boost bin (it is part of the boosted
  // uncore clock domain), on fixed-clock parts it engages for every
  // launch below the threshold.
  const bool sizeGated = cfg.n <= spec_.additivityThresholdN;
  const bool binGated =
      !spec_.hasAutoBoost || boost >= spec_.clockRatioBoost() - 1e-12;
  m.uncoreActive = sizeGated && binGated;
  m.uncorePower = spec_.uncorePower;
  m.uncoreTail = tuning_.uncoreTailSec >= 0.0
                     ? Seconds{tuning_.uncoreTailSec}
                     : spec_.uncoreTail;

  // --- CUPTI ground truth ---
  m.flopCount = static_cast<std::uint64_t>(products * flopsPerProduct);
  m.dramBytes = static_cast<std::uint64_t>(products * bytesPerProduct);
  // Per k-tile each thread performs 2 shared stores (loading As/Bs) and
  // 2*BS shared reads in the inner product loop.
  const double sharedPerProduct =
      nt * nt * tiles * (2.0 + 2.0 * cfg.bs + 2.0);
  m.sharedLoadStore =
      static_cast<std::uint64_t>(products * sharedPerProduct);
  m.globalLoadTransactions =
      static_cast<std::uint64_t>(products * bytesPerProduct / 32.0);
  return m;
}

KernelModel GpuModel::modelFft2d(int n) const {
  EP_REQUIRE(n >= 2, "FFT size must be >= 2");
  // The paper's work metric for the 2D FFT of an N x N signal.
  const double work = 5.0 * static_cast<double>(n) * n *
                      std::log2(static_cast<double>(n));  // paper: W

  // CUFFT-like behaviour: power-of-two sizes run the fast radix path;
  // other sizes decompose and pay per extra prime-factor pass, with a
  // Bluestein fallback for large prime factors.
  double radixPenalty = 1.0;
  {
    int m = n;
    for (int p : {2, 3, 5, 7}) {
      bool used = false;
      while (m % p == 0) {
        m /= p;
        used = true;
      }
      if (p > 2 && used) radixPenalty += 0.06;  // mixed-radix passes
    }
    if (m > 1) radixPenalty += 1.6;  // Bluestein: ~3 transforms + padding
  }

  // Row + column passes, each streaming the matrix from DRAM; Bluestein
  // and mixed-radix plans move proportionally more data (padded
  // transforms, extra passes).
  const double bytes =
      2.0 * 2.0 * 16.0 * static_cast<double>(n) * n * radixPenalty;

  // Small transforms cannot fill the device: utilization ramps with the
  // number of rows relative to resident thread capacity.
  const double rowsForSaturation =
      static_cast<double>(spec_.smCount) * spec_.maxThreadsPerSM / 256.0;
  const double saturation =
      latencyHiding(static_cast<double>(n) / rowsForSaturation, 0.6);

  const double fftPeakFraction = 0.35;  // FFTs are shuffle/memory heavy
  const double rate = spec_.peakGflopsDouble * 1e9 * fftPeakFraction *
                      saturation / radixPenalty;
  const double tCompute = work / rate;
  const double tMemory = bytes / (spec_.memBandwidthGBs * 1e9 *
                                  latencyHiding(saturation, 0.5));
  const double t = std::max(tCompute, tMemory) + 20e-6;

  KernelModel m;
  m.time = Seconds{t};
  m.boostRatio = 1.0;
  m.achievedGflops = work / t / 1e9;
  m.achievedBandwidthGBs = bytes / t / 1e9;
  m.occupancy = occupancyFor(16);  // 256-thread FFT blocks

  const double smEnergy =
      work / 1e9 * tuning_.smEnergyPerGflop * radixPenalty * 0.8;
  const double memEnergy = bytes / 1e9 * tuning_.memEnergyPerGB;
  const double residencyEnergy =
      tuning_.residencyPower * saturation * t;
  const double constEnergy = tuning_.constantActivePower * t;
  m.corePower = Watts{(smEnergy + memEnergy + residencyEnergy + constEnergy) /
                      t};
  m.uncoreActive = n <= spec_.additivityThresholdN;
  m.uncorePower = spec_.uncorePower;
  m.uncoreTail = spec_.uncoreTail;

  m.flopCount = static_cast<std::uint64_t>(work);
  m.dramBytes = static_cast<std::uint64_t>(bytes);
  m.sharedLoadStore = static_cast<std::uint64_t>(work / 2.0);
  m.globalLoadTransactions = static_cast<std::uint64_t>(bytes / 32.0);
  return m;
}

}  // namespace ep::hw
