#include "hw/spec.hpp"

namespace ep::hw {

CpuSpec haswellE52670v3() {
  CpuSpec s;
  s.name = "Intel Haswell E5-2670 v3";
  s.coresPerSocket = 12;      // paper: Table I
  s.sockets = 2;              // paper: Table I
  s.smtWaysPerCore = 2;       // paper: hyperthreading enabled (Section III)
  s.clockMHz = 2300.0;        // nominal; Table I lists the governor's 1200.402
  s.l1dKB = 32;               // paper: Table I
  s.l1iKB = 32;               // paper: Table I
  s.l2KB = 256;               // paper: Table I
  s.l3KB = 30720;             // paper: Table I
  s.memoryGB = 64;            // paper: Table I
  s.memBandwidthGBs = 136.0;  // 4-ch DDR4-2133 x 2 sockets (datasheet)
  s.tdpPerSocket = Watts{120.0};
  s.nodeIdlePower = Watts{90.0};
  // 12 cores x 2 sockets x 16 DP flops/cycle (AVX2 FMA) x 2.3 GHz.
  s.peakGflops = 883.0;
  return s;
}

GpuSpec nvidiaK40c() {
  GpuSpec s;
  s.name = "Nvidia K40c";
  s.cudaCores = 2880;         // paper: Table I
  s.baseClockMHz = 745.0;     // paper: Table I
  s.boostClockMHz = 745.0;    // default application clocks: no autoboost
  s.smCount = 15;             // GK110B: 15 SMX x 192 cores
  s.memoryGB = 12;            // paper: Table I
  s.l2KB = 1536;              // paper: Table I
  s.tdp = Watts{235.0};       // paper: Table I
  s.boardIdlePower = Watts{25.0};
  s.memBandwidthGBs = 288.0;  // GDDR5 datasheet
  s.peakGflopsDouble = 1430.0;  // 960 FP64 units x 745 MHz x 2
  s.maxThreadsPerBlock = 1024;
  s.maxThreadsPerSM = 2048;
  s.maxBlocksPerSM = 16;
  s.sharedMemPerBlockKB = 48;
  s.sharedMemPerSMKB = 48;
  s.uncorePower = Watts{58.0};       // paper: Section V-A (Fig 6)
  s.uncoreTail = Seconds{0.9};
  s.additivityThresholdN = 10240;    // paper: Section V-A
  s.hasAutoBoost = false;
  return s;
}

GpuSpec nvidiaP100Pcie() {
  GpuSpec s;
  s.name = "Nvidia P100 PCIe";
  s.cudaCores = 3584;          // paper: Table I
  s.baseClockMHz = 1126.0;     // GP100 PCIe base clock (datasheet)
  s.boostClockMHz = 1328.0;    // paper: Table I lists the boost clock
  s.smCount = 56;              // GP100: 56 SMs x 64 cores
  s.memoryGB = 12;             // paper: Table I (12 GB CoWoS HBM2)
  s.l2KB = 4096;               // paper: Table I
  s.tdp = Watts{250.0};        // paper: Table I
  s.boardIdlePower = Watts{30.0};
  s.memBandwidthGBs = 549.0;   // 12 GB PCIe variant datasheet
  s.peakGflopsDouble = 4036.0;  // 1792 FP64 units x 1126 MHz x 2
  s.maxThreadsPerBlock = 1024;
  s.maxThreadsPerSM = 2048;
  s.maxBlocksPerSM = 32;
  s.sharedMemPerBlockKB = 48;
  s.sharedMemPerSMKB = 64;
  s.uncorePower = Watts{58.0};       // paper: Section V-A (Fig 6)
  s.uncoreTail = Seconds{0.9};
  s.additivityThresholdN = 15360;    // paper: Section V-A
  s.hasAutoBoost = true;
  return s;
}

}  // namespace ep::hw
