#include "hw/cpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep::hw {

namespace {

// --- DGEMM response constants (Haswell-class node) ---
// Peak-fraction of a single core's FP64 pipe each BLAS reaches.
constexpr double kMklEfficiency = 0.90;
constexpr double kOpenBlasEfficiency = 0.82;
// Effective bytes of DRAM traffic per flop (post-blocking).
constexpr double kMklBytesPerFlop = 0.13;
constexpr double kOpenBlasBytesPerFlop = 0.16;
// Fraction of solo throughput each SMT sibling sustains when a physical
// core runs two threads (shared ports/L1).
constexpr double kSmtShare = 0.62;
// Effective streaming bandwidth of the node (fraction of datasheet peak).
constexpr double kStreamEfficiency = 0.80;
// Remote-socket traffic fraction when the shared B matrix is streamed
// across sockets (Horizontal partitioning only).
constexpr double kRemoteTrafficFraction = 0.25;
constexpr double kRemoteBandwidthLoss = 0.10;

// --- power constants (dynamic, above node idle) ---
constexpr double kCorePowerFull = 4.0;     // W per fully-busy physical core
constexpr double kSmtExtraPower = 1.2;     // W extra when both siblings busy
constexpr double kUncorePerSocket = 11.0;  // W, L3 + ring when socket active
constexpr double kDramPowerFull = 14.0;    // W at full memory bandwidth
constexpr double kQpiPowerFull = 8.0;      // W at full remote fraction
// dTLB page-walk power: the energy-expensive activity of [8].  Walk rate
// scales with throughput and with the number of threadgroups separately
// streaming the shared B matrix.
constexpr double kTlbPowerBase = 2.0;        // W at 700 GF, one group
constexpr double kTlbGroupFactor = 2.2;      // growth across 12 groups
constexpr double kTlbWalksPerFlop = 2.0e-5;  // walk rate scale

}  // namespace

CpuModel::CpuModel(CpuSpec spec) : spec_(std::move(spec)) {
  EP_REQUIRE(spec_.sockets >= 1 && spec_.coresPerSocket >= 1,
             "malformed CPU spec");
}

bool CpuModel::isRunnable(const CpuDgemmConfig& cfg) const {
  if (cfg.n < 1 || cfg.threadgroups < 1 || cfg.threadsPerGroup < 1) {
    return false;
  }
  if (cfg.totalThreads() > spec_.logicalCores()) return false;
  const double bytes = 3.0 * 8.0 * static_cast<double>(cfg.n) * cfg.n;
  return bytes <=
         static_cast<double>(spec_.memoryGB) * 1024.0 * 1024.0 * 1024.0;
}

CpuRunModel CpuModel::modelDgemm(const CpuDgemmConfig& cfg) const {
  EP_REQUIRE(isRunnable(cfg), "configuration does not fit the machine");
  const int physical = spec_.physicalCores();
  const int logical = spec_.logicalCores();
  const int m = cfg.totalThreads();

  const double variantEff = cfg.variant == BlasVariant::IntelMklLike
                                ? kMklEfficiency
                                : kOpenBlasEfficiency;
  const double bytesPerFlop = cfg.variant == BlasVariant::IntelMklLike
                                  ? kMklBytesPerFlop
                                  : kOpenBlasBytesPerFlop;
  const double corePeak =
      spec_.peakGflops / static_cast<double>(physical);  // GF per core

  // Thread placement: scatter over physical cores first (cores 0..23),
  // then SMT siblings (logical 24..47) — the standard affinity for
  // load-balanced HPC runs.
  std::vector<int> threadsOnCore(physical, 0);
  for (int i = 0; i < m; ++i) threadsOnCore[i % physical] += 1;

  // Raw (pre-bandwidth) throughput per physical core.
  std::vector<double> coreRate(physical, 0.0);
  for (int c = 0; c < physical; ++c) {
    if (threadsOnCore[c] == 1) {
      coreRate[c] = corePeak * variantEff;
    } else if (threadsOnCore[c] >= 2) {
      coreRate[c] = corePeak * variantEff * kSmtShare * threadsOnCore[c];
    }
  }
  double rawGflops = 0.0;
  for (double r : coreRate) rawGflops += r;

  // Socket activity & cross-socket B traffic.
  const int perSocket = spec_.coresPerSocket;
  bool socketActive[2] = {false, false};
  for (int c = 0; c < physical; ++c) {
    if (threadsOnCore[c] > 0) socketActive[c / perSocket] = true;
  }
  const bool spansSockets = socketActive[0] && socketActive[1];
  const bool sharesB = cfg.partition == PartitionScheme::Horizontal;
  const double remoteFraction =
      (spansSockets && sharesB) ? kRemoteTrafficFraction : 0.0;

  // Bandwidth roofline.
  double nodeBandwidth = spec_.memBandwidthGBs * kStreamEfficiency;
  if (!spansSockets) nodeBandwidth *= 0.5;  // one memory domain only
  nodeBandwidth *= 1.0 - kRemoteBandwidthLoss * remoteFraction /
                             kRemoteTrafficFraction *
                             (remoteFraction > 0.0 ? 1.0 : 0.0);
  const double demandGBs = rawGflops * bytesPerFlop;
  const double throttle =
      demandGBs > nodeBandwidth ? nodeBandwidth / demandGBs : 1.0;
  const double gflops = rawGflops * throttle;
  const double achievedBandwidth = demandGBs * throttle;

  // Execution time of the 2 N^3 flop product.
  const double flops = 2.0 * std::pow(static_cast<double>(cfg.n), 3.0);
  const double timeSec = flops / (gflops * 1e9);

  // Per-logical-core utilization as /proc/stat reports it: compute and
  // memory-stall cycles are both "busy"; small involuntary-scheduling
  // losses appear when the memory system saturates, and SMT pairs lose a
  // little to sibling arbitration.
  CpuRunModel out;
  out.coreUtilization.assign(logical, 0.0);
  for (int i = 0; i < m; ++i) {
    const int phys = i % physical;
    const int logicalIdx = i < physical ? phys : physical + phys;
    double u = 1.0;
    if (throttle < 1.0) u -= 0.02 * (1.0 - throttle);
    if (threadsOnCore[phys] >= 2) u -= 0.015;
    if (remoteFraction > 0.0) u -= 0.01;
    out.coreUtilization[logicalIdx] = std::max(0.0, u);
  }
  double sumU = 0.0;
  for (double u : out.coreUtilization) sumU += u;
  out.avgUtilization = sumU / static_cast<double>(logical);

  // --- dynamic power ---
  double power = 0.0;
  for (int c = 0; c < physical; ++c) {
    if (threadsOnCore[c] == 0) continue;
    const double u0 = out.coreUtilization[c];
    const double u1 = out.coreUtilization[physical + c];
    power += kCorePowerFull * std::max(u0, u1);
    if (threadsOnCore[c] >= 2) power += kSmtExtraPower * u1;
  }
  power += kUncorePerSocket * ((socketActive[0] ? 1 : 0) +
                               (socketActive[1] ? 1 : 0));
  power += kDramPowerFull * achievedBandwidth / spec_.memBandwidthGBs;
  power += kQpiPowerFull * remoteFraction / kRemoteTrafficFraction *
           (remoteFraction > 0.0 ? 1.0 : 0.0);
  const double groupPressure =
      1.0 + kTlbGroupFactor *
                (static_cast<double>(cfg.threadgroups) - 1.0) /
                (static_cast<double>(spec_.coresPerSocket) - 1.0);
  const double tlbPower = kTlbPowerBase * (gflops / 700.0) * groupPressure;
  power += tlbPower;

  out.time = Seconds{timeSec};
  out.gflops = gflops;
  out.dynamicPower = Watts{power};
  out.memBandwidthGBs = achievedBandwidth;
  out.tlbWalksPerSec = gflops * 1e9 * kTlbWalksPerFlop * groupPressure;
  return out;
}

CpuRunModel CpuModel::modelFft2d(int n) const {
  EP_REQUIRE(n >= 2, "FFT size must be >= 2");
  const double dn = static_cast<double>(n);
  const double work = 5.0 * dn * dn * std::log2(dn);  // paper: W

  // Radix decomposition of MKL-FFT-like plans.
  double radixPenalty = 1.0;
  {
    int m = n;
    for (int p : {2, 3, 5, 7, 11, 13}) {
      bool used = false;
      while (m % p == 0) {
        m /= p;
        used = true;
      }
      if (p > 2 && used) radixPenalty += 0.05;
    }
    if (m > 1) radixPenalty += 1.5;  // Bluestein fallback
  }

  // Cache/TLB regimes of the row-column algorithm: the column pass
  // strides by 16 N bytes, so once the matrix exceeds L3 the pass pays
  // DRAM latency, and once a column's pages exceed dTLB reach every
  // element access needs a page walk.
  const double matrixBytes = 16.0 * dn * dn;
  const double l3Bytes = static_cast<double>(spec_.l3KB) * 1024.0 *
                         spec_.sockets;
  const double computeRate =
      spec_.peakGflops * 0.12 / radixPenalty;  // FFTs: shuffle-heavy
  double effectiveRate = computeRate;
  double tlbFactor = 1.0;
  if (matrixBytes > l3Bytes) {
    // Memory-bound regime: the row+column passes move ~8 x 16 bytes per
    // matrix point while the work metric assigns 5 log2(N) flops to it,
    // so the bandwidth-limited "work rate" is BW / bytesPerUnitWork.
    const double bytesPerUnitWork = 8.0 * 16.0 / (5.0 * std::log2(dn));
    const double bwRate =
        spec_.memBandwidthGBs * kStreamEfficiency / bytesPerUnitWork;
    effectiveRate = std::min(computeRate, bwRate);
  }
  // dTLB reach on Haswell: 64 entries x 4 KiB per core for 4K pages.
  const double dtlbReachBytes = 64.0 * 4096.0;
  if (16.0 * dn > dtlbReachBytes / 16.0) {
    // Column working set (one row of pages per element) exceeds reach.
    tlbFactor = 1.0 + 0.35 * std::min(
                          1.0, std::log2(16.0 * dn * 16.0 /
                                         dtlbReachBytes) /
                                   4.0);
  }
  effectiveRate /= tlbFactor;

  const double timeSec = work / (effectiveRate * 1e9);

  CpuRunModel out;
  out.time = Seconds{timeSec};
  out.gflops = work / timeSec / 1e9;
  out.coreUtilization.assign(spec_.logicalCores(), 0.0);
  for (int c = 0; c < spec_.physicalCores(); ++c) {
    out.coreUtilization[c] = 0.98;
  }
  out.avgUtilization = 0.98 * spec_.physicalCores() /
                       static_cast<double>(spec_.logicalCores());

  const double bwFraction =
      matrixBytes > l3Bytes
          ? std::min(1.0, (effectiveRate / computeRate) + 0.4)
          : 0.15;
  double power = kCorePowerFull * 0.9 * spec_.physicalCores();
  power += kUncorePerSocket * spec_.sockets;
  power += kDramPowerFull * bwFraction;
  power += kTlbPowerBase * 4.0 * (tlbFactor - 1.0) / 0.35;
  out.dynamicPower = Watts{power};
  out.memBandwidthGBs = spec_.memBandwidthGBs * kStreamEfficiency *
                        bwFraction;
  out.tlbWalksPerSec = (tlbFactor - 1.0) * 1e8;
  return out;
}

}  // namespace ep::hw
