// Analytic performance + power model of a CUDA GPU executing the paper's
// blocked matrix-multiplication kernel (Fig 5).
//
// The model implements the first-order mechanisms through which the
// paper's decision variables (BS, G, R) act on real silicon:
//
//   * occupancy:     blocks/SM limited by thread slots, shared memory and
//                    block slots; BS^2 threads and 2*8*BS^2 bytes of
//                    shared memory per block,
//   * warp quantization: BS^2 threads fill ceil(BS^2/32) warps,
//   * tile quantization: ceil(N/BS) tiles pad the computed volume,
//   * roofline:      compute time vs global-memory time, where global
//                    traffic is 16*N^3/BS bytes (each A/B element is
//                    loaded N/BS times thanks to shared-memory blocking),
//   * coalescing:    sub-32-byte row segments waste DRAM sectors for
//                    small BS,
//   * icache pressure: G textual repetitions of the device function grow
//                    the instruction footprint (G >= 4 starts missing),
//   * autoboost (P100): high-activity kernels raise the core clock; power
//                    rises superlinearly with the boost ratio, which is
//                    what breaks weak EP at the top of the configuration
//                    space on the P100,
//   * uncore component: a constant 58 W consumer active during kernels
//                    with N <= additivityThresholdN and for a short tail
//                    after them (the Fig 6 non-additivity).
//
// Energy decomposes into work-proportional terms (flops, bytes) plus
// residency terms (occupancy x time) plus constant-power terms — the
// combination violates weak EP exactly the way Section V observes.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "hw/spec.hpp"

namespace ep::hw {

// Decision variables of the Fig 5 application for one workload.
struct MatMulConfig {
  int n = 0;   // matrix dimension
  int bs = 0;  // per-block shared-memory dimension, 1..32
  int g = 1;   // group size: device matmul codes textually repeated
  int r = 1;   // number of runs of a group
  [[nodiscard]] int totalProducts() const { return g * r; }
};

struct Occupancy {
  int blocksPerSm = 0;
  int threadsPerSm = 0;
  double fraction = 0.0;  // threadsPerSm / maxThreadsPerSM
  // Which limit bound the occupancy ("threads", "shared", "blocks").
  const char* limitedBy = "";
};

// Everything the experiment layer needs to know about one kernel launch.
struct KernelModel {
  Seconds time{0.0};          // kernel execution time (all G*R products)
  Watts corePower{0.0};       // SM + memory-system dynamic power (above idle)
  double boostRatio = 1.0;    // applied clock boost (1.0 on fixed clocks)
  bool uncoreActive = false;  // 58 W component engaged
  Watts uncorePower{0.0};
  Seconds uncoreTail{0.0};    // post-kernel tail of the uncore component
  Occupancy occupancy;
  double achievedGflops = 0.0;
  double achievedBandwidthGBs = 0.0;
  // Ground-truth event counts for the CUPTI simulation (per launch).
  std::uint64_t flopCount = 0;
  std::uint64_t dramBytes = 0;
  std::uint64_t sharedLoadStore = 0;
  std::uint64_t globalLoadTransactions = 0;

  // Average dynamic power over the kernel window (core + uncore).
  [[nodiscard]] Watts dynamicPower() const {
    return corePower + (uncoreActive ? uncorePower : Watts{0.0});
  }
  // Dynamic energy a perfect (noise-free) wall meter would attribute to
  // the launch, including the uncore tail.
  [[nodiscard]] Joules dynamicEnergy() const;
};

// Tunable architecture-response constants.  Defaults are produced per
// GPU by GpuModel; exposed so ablation benches can switch mechanisms off.
struct GpuTuning {
  double kernelPeakFraction = 0.72;  // best-case fraction of FP64 peak
  double occScaleCompute = 0.22;     // latency-hiding saturation (compute)
  double occScaleMemory = 0.08;      // latency-hiding saturation (memory)
  double icachePenaltyPerLevel = 0.02;  // issue-eff loss per log2(G) >= 2
  double gLinearPenalty = 0.004;     // small issue-eff loss per extra repeat
  double runWarmupFraction = 0.008;  // cold-cache warm-up per run (of one
                                     // product's time)
  double smEnergyPerGflop = 0.0;     // J per Gflop of SM work (set per GPU)
  double memEnergyPerGB = 0.0;       // J per GB of DRAM traffic
  double residencyPower = 0.0;       // W at full occupancy (scheduler/RF)
  double fetchPowerPerLevel = 0.0;   // W per log2(G) >= 2 (icache refills)
  double constantActivePower = 0.0;  // W whenever any kernel is resident
  // Autoboost response (only used when spec.hasAutoBoost): the governor
  // maps the residency pattern to a clock bin; few large blocks sustain
  // the utilization signal (top bin), medium counts settle mid-bin,
  // many small blocks stay at base clock.
  double midBinBoostFraction = 0.40;  // mid bin = 1 + fraction*(full-1)
  double boostPowerExponent = 4.0;   // P ~ beta^exponent (f*V^2 with V~f^1.5)
  // Fraction of datasheet DRAM bandwidth this access pattern sustains.
  double bandwidthEfficiency = 0.80;
  // Post-kernel decay of the uncore component (seconds); negative means
  // "use the spec's value".  The wall-meter measurement window includes
  // this tail (HCLWattsUp waits for power to settle).
  double uncoreTailSec = -1.0;
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec);
  GpuModel(GpuSpec spec, GpuTuning tuning);

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] const GpuTuning& tuning() const { return tuning_; }

  // Occupancy for a block of bs x bs threads with 2*8*bs^2 bytes of
  // shared memory.  Throws ResourceError for invalid block shapes.
  [[nodiscard]] Occupancy occupancyFor(int bs) const;

  // True iff the configuration can launch at all (block limits + device
  // memory for the three N x N matrices).
  [[nodiscard]] bool isLaunchable(const MatMulConfig& cfg) const;

  // Model one kernel launch computing cfg.g * cfg.r matrix products.
  // Throws ResourceError if !isLaunchable(cfg).
  [[nodiscard]] KernelModel modelMatMul(const MatMulConfig& cfg) const;

  // Model of the 2D-FFT application of Fig 1 (CUFFT-like): returns the
  // kernel model for one forward 2D FFT of an N x N complex signal.
  [[nodiscard]] KernelModel modelFft2d(int n) const;

 private:
  [[nodiscard]] static GpuTuning defaultTuning(const GpuSpec& spec);

  GpuSpec spec_;
  GpuTuning tuning_;
};

}  // namespace ep::hw
