// Analytic performance + power model of the dual-socket Haswell node
// executing the paper's load-balanced parallel applications.
//
// The model's purpose is Section III: it produces, for every application
// configuration (partitioning scheme, number of threadgroups, threads
// per group), the per-logical-core utilization vector, execution time,
// and dynamic power.  Power is built from per-core simple-EP terms plus
// the shared-resource terms that break weak EP on real multicores:
// SMT port sharing, per-socket uncore power, DRAM power proportional to
// achieved bandwidth, cross-socket (QPI) traffic for configurations that
// share the B matrix across sockets, and the disproportionately
// expensive dTLB page-walk activity identified by Khokhriakov et al. [8].
#pragma once

#include <vector>

#include "common/units.hpp"
#include "hw/spec.hpp"

namespace ep::hw {

enum class BlasVariant {
  IntelMklLike,   // tighter blocking: lower bytes/flop, higher peak fraction
  OpenBlasLike,
};

enum class PartitionScheme {
  Horizontal,  // Fig 3: A and C split in row panels, B shared
  Square,      // 2-D block decomposition: B also partitioned
};

struct CpuDgemmConfig {
  int n = 0;
  BlasVariant variant = BlasVariant::IntelMklLike;
  PartitionScheme partition = PartitionScheme::Horizontal;
  int threadgroups = 1;     // p
  int threadsPerGroup = 1;  // t
  [[nodiscard]] int totalThreads() const {
    return threadgroups * threadsPerGroup;
  }
};

struct CpuRunModel {
  Seconds time{0.0};
  Watts dynamicPower{0.0};
  double gflops = 0.0;
  // Utilization of each of the 48 logical cores in [0,1] as /proc/stat
  // would report it (busy fraction of wall time).
  std::vector<double> coreUtilization;
  double avgUtilization = 0.0;  // mean over ALL logical cores
  // Model internals exposed for analysis benches.
  double memBandwidthGBs = 0.0;
  double tlbWalksPerSec = 0.0;
  [[nodiscard]] Joules dynamicEnergy() const { return dynamicPower * time; }
};

class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }

  // True iff the configuration fits the machine (p*t <= logical cores)
  // and the three matrices fit in memory.
  [[nodiscard]] bool isRunnable(const CpuDgemmConfig& cfg) const;

  // Model the Fig 3 parallel DGEMM application under `cfg`.
  [[nodiscard]] CpuRunModel modelDgemm(const CpuDgemmConfig& cfg) const;

  // Model the Fig 1 multithreaded 2D-FFT application (MKL-FFT-like),
  // one thread per physical core.
  [[nodiscard]] CpuRunModel modelFft2d(int n) const;

 private:
  CpuSpec spec_;
};

}  // namespace ep::hw
