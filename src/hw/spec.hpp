// Processor specifications (the paper's Table I) plus the additional
// architectural constants the performance/power models need.  Constants
// marked "paper:" are taken from the paper's text; the rest are public
// vendor datasheet values for the same silicon.
#pragma once

#include <string>

#include "common/units.hpp"

namespace ep::hw {

struct CpuSpec {
  std::string name;
  int coresPerSocket = 0;
  int sockets = 0;
  int smtWaysPerCore = 1;  // hyperthreading
  double clockMHz = 0.0;
  int l1dKB = 0;
  int l1iKB = 0;
  int l2KB = 0;
  int l3KB = 0;          // per socket
  int memoryGB = 0;
  double memBandwidthGBs = 0.0;  // node peak
  Watts tdpPerSocket{0.0};
  Watts nodeIdlePower{0.0};
  // Peak double-precision GFLOP/s of the whole node (all cores, AVX FMA).
  double peakGflops = 0.0;

  [[nodiscard]] int physicalCores() const { return coresPerSocket * sockets; }
  [[nodiscard]] int logicalCores() const {
    return physicalCores() * smtWaysPerCore;
  }
};

struct GpuSpec {
  std::string name;
  int cudaCores = 0;
  double baseClockMHz = 0.0;
  double boostClockMHz = 0.0;  // == base for GPUs without autoboost
  int smCount = 0;
  int memoryGB = 0;
  int l2KB = 0;
  Watts tdp{0.0};
  Watts boardIdlePower{0.0};
  double memBandwidthGBs = 0.0;
  double peakGflopsDouble = 0.0;  // FP64 peak at base clock
  // CUDA execution limits.
  int maxThreadsPerBlock = 0;
  int maxThreadsPerSM = 0;
  int maxBlocksPerSM = 0;
  int sharedMemPerBlockKB = 0;
  int sharedMemPerSMKB = 0;
  int warpSize = 32;
  // Energy-nonproportionality behaviour observed in the paper (Fig 6):
  // an uncore component draws `uncorePower` during a kernel launch and
  // for `uncoreTail` afterwards whenever N <= additivityThresholdN.
  Watts uncorePower{0.0};        // paper: 58 W
  Seconds uncoreTail{0.0};
  int additivityThresholdN = 0;  // paper: 15360 (P100), 10240 (K40c)
  // Whether the part runs autoboost (P100) or fixed application clocks
  // (K40c default) — drives the weak-EP difference between the two GPUs.
  bool hasAutoBoost = false;

  [[nodiscard]] double clockRatioBoost() const {
    return boostClockMHz / baseClockMHz;
  }
};

// Table I: Intel Haswell E5-2670 v3, dual socket.
[[nodiscard]] CpuSpec haswellE52670v3();

// Table I: Nvidia K40c.
[[nodiscard]] GpuSpec nvidiaK40c();

// Table I: Nvidia P100 PCIe.
[[nodiscard]] GpuSpec nvidiaP100Pcie();

}  // namespace ep::hw
