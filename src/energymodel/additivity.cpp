#include "energymodel/additivity.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ep::model {

double additivityError(double base1, double base2, double compound) {
  const double expected = base1 + base2;
  EP_REQUIRE(expected > 0.0, "additivity needs positive base observations");
  return std::fabs(compound - expected) / expected;
}

std::vector<EventAdditivity> analyzeCounterAdditivity(
    const cusim::CuptiCounters& base1, const cusim::CuptiCounters& base2,
    const cusim::CuptiCounters& compound) {
  std::vector<EventAdditivity> out;
  for (std::size_t i = 0; i < cusim::kCuptiEventCount; ++i) {
    const auto e = static_cast<cusim::CuptiEvent>(i);
    EventAdditivity rec;
    rec.event = cusim::cuptiEventName(e);
    rec.base1 = base1.read(e);
    rec.base2 = base2.read(e);
    rec.compound = compound.read(e);
    const double expected =
        static_cast<double>(rec.base1) + static_cast<double>(rec.base2);
    rec.error = expected > 0.0
                    ? std::fabs(static_cast<double>(rec.compound) - expected) /
                          expected
                    : 0.0;
    out.push_back(rec);
  }
  return out;
}

std::vector<std::string> selectAdditiveEvents(
    const std::vector<EventAdditivity>& records, double maxError) {
  EP_REQUIRE(maxError >= 0.0, "threshold must be non-negative");
  std::vector<std::string> out;
  for (const auto& r : records) {
    if (r.error <= maxError) out.push_back(r.event);
  }
  return out;
}

EnergyAdditivity analyzeEnergyAdditivity(double baseEnergy,
                                         double compoundEnergy, int scale) {
  EP_REQUIRE(scale >= 1, "scale must be >= 1");
  EP_REQUIRE(baseEnergy > 0.0, "base energy must be positive");
  EnergyAdditivity r;
  r.scale = scale;
  r.baseEnergy = baseEnergy;
  r.compoundEnergy = compoundEnergy;
  r.additiveEnergy = scale * baseEnergy;
  r.error = std::fabs(compoundEnergy - r.additiveEnergy) / r.additiveEnergy;
  return r;
}

}  // namespace ep::model
