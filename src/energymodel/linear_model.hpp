// Linear dynamic-energy predictive models on performance events.
//
// Following [33]'s practical implications: model variables are selected
// by (a) additivity and (b) positive correlation with dynamic energy;
// the fit is forced through the origin (zero work => zero dynamic
// energy) and coefficients must be non-negative to be physically
// meaningful (each event consumes energy).  The model is the tool the
// paper's Section V-C wants for localizing nonproportional components.
#pragma once

#include <string>
#include <vector>

#include "stats/regression.hpp"

namespace ep::model {

struct EnergyObservation {
  std::vector<double> eventCounts;  // aligned with variable names
  double dynamicEnergyJ = 0.0;
};

struct EnergyModelReport {
  std::vector<std::string> variables;
  std::vector<double> coefficients;  // J per event count
  double r2 = 0.0;
  // Per-variable Pearson correlation with dynamic energy.
  std::vector<double> correlations;
  // Variables dropped because their fitted coefficient was negative.
  std::vector<std::string> dropped;
};

class EnergyPredictiveModel {
 public:
  // `variables` names the columns of every observation's eventCounts.
  explicit EnergyPredictiveModel(std::vector<std::string> variables);

  void addObservation(EnergyObservation obs);
  [[nodiscard]] std::size_t observationCount() const {
    return observations_.size();
  }

  // Fit through the origin; iteratively drops negative-coefficient
  // variables (non-physical) and refits.  Requires more observations
  // than surviving variables.
  [[nodiscard]] EnergyModelReport fit() const;

  // Predict dynamic energy with a fitted report.
  [[nodiscard]] static double predict(const EnergyModelReport& report,
                                      const std::vector<double>& counts);

 private:
  std::vector<std::string> variables_;
  std::vector<EnergyObservation> observations_;
};

}  // namespace ep::model
