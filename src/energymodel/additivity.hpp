// The additivity property from the theory of energy predictive models of
// computing [33], as used in Section IV:
//
//   A model variable (performance event, or dynamic energy itself) is
//   additive if its value for a *compound* application — the serial
//   execution of two base applications — equals the sum of its values
//   for the base applications.  Additivity is a manifestation of energy
//   conservation; non-additive variables cannot appear in a reliable
//   linear energy model, and non-additive *energy* exposes a consumer
//   that is not proportional to work (the paper's 58 W component).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cudasim/cupti.hpp"

namespace ep::model {

// Relative additivity error of a compound observation vs its bases:
// |compound - (base1 + base2)| / (base1 + base2).
[[nodiscard]] double additivityError(double base1, double base2,
                                     double compound);

struct EventAdditivity {
  std::string event;
  std::uint64_t base1 = 0;
  std::uint64_t base2 = 0;
  std::uint64_t compound = 0;
  double error = 0.0;
};

// Compare CUPTI counter sets of two base applications and their
// compound.  Uses the *reported* (possibly overflowed) values — the
// instrument's view, which is what a model builder has.
[[nodiscard]] std::vector<EventAdditivity> analyzeCounterAdditivity(
    const cusim::CuptiCounters& base1, const cusim::CuptiCounters& base2,
    const cusim::CuptiCounters& compound);

// Events whose additivity error is below `maxError` — the candidate
// variables for a linear energy model.
[[nodiscard]] std::vector<std::string> selectAdditiveEvents(
    const std::vector<EventAdditivity>& records, double maxError);

struct EnergyAdditivity {
  int scale = 0;          // compound = `scale` serial copies of the base
  double baseEnergy = 0;  // E(1)
  double compoundEnergy = 0;  // E(scale)
  double additiveEnergy = 0;  // scale * E(1)
  double error = 0.0;         // relative non-additivity
};

// Dynamic-energy additivity when an application is repeated g times
// inside one execution (the Fig 6 study: E(g) vs g * E(1)).
[[nodiscard]] EnergyAdditivity analyzeEnergyAdditivity(double baseEnergy,
                                                       double compoundEnergy,
                                                       int scale);

}  // namespace ep::model
