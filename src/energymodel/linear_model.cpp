#include "energymodel/linear_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ep::model {

EnergyPredictiveModel::EnergyPredictiveModel(
    std::vector<std::string> variables)
    : variables_(std::move(variables)) {
  EP_REQUIRE(!variables_.empty(), "model needs at least one variable");
}

void EnergyPredictiveModel::addObservation(EnergyObservation obs) {
  EP_REQUIRE(obs.eventCounts.size() == variables_.size(),
             "observation width mismatch");
  EP_REQUIRE(obs.dynamicEnergyJ >= 0.0, "energy must be non-negative");
  observations_.push_back(std::move(obs));
}

EnergyModelReport EnergyPredictiveModel::fit() const {
  EP_REQUIRE(observations_.size() > variables_.size(),
             "need more observations than variables");
  // Active set of variable indices; shrink until all coefficients >= 0.
  std::vector<std::size_t> active(variables_.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  EnergyModelReport report;

  std::vector<double> y;
  y.reserve(observations_.size());
  for (const auto& o : observations_) y.push_back(o.dynamicEnergyJ);

  stats::MultiLinearFit fit;
  for (;;) {
    EP_REQUIRE(!active.empty(), "all variables dropped: no physical model");
    std::vector<std::vector<double>> rows;
    rows.reserve(observations_.size());
    for (const auto& o : observations_) {
      std::vector<double> row;
      row.reserve(active.size());
      for (std::size_t idx : active) row.push_back(o.eventCounts[idx]);
      rows.push_back(std::move(row));
    }
    fit = stats::fitMultiLinear(rows, y, /*withIntercept=*/false);
    // Find the most negative coefficient, if any.
    std::size_t worst = active.size();
    double worstValue = 0.0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (fit.coefficients[i] < worstValue) {
        worstValue = fit.coefficients[i];
        worst = i;
      }
    }
    if (worst == active.size()) break;
    report.dropped.push_back(variables_[active[worst]]);
    active.erase(active.begin() + static_cast<long>(worst));
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    report.variables.push_back(variables_[active[i]]);
    report.coefficients.push_back(fit.coefficients[i]);
  }
  report.r2 = fit.r2;

  // Correlations of the surviving variables with energy.
  for (std::size_t idx : active) {
    std::vector<double> x;
    x.reserve(observations_.size());
    for (const auto& o : observations_) x.push_back(o.eventCounts[idx]);
    report.correlations.push_back(stats::pearsonCorrelation(x, y));
  }
  return report;
}

double EnergyPredictiveModel::predict(const EnergyModelReport& report,
                                      const std::vector<double>& counts) {
  EP_REQUIRE(counts.size() == report.coefficients.size(),
             "count vector width mismatch");
  double e = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    e += report.coefficients[i] * counts[i];
  }
  return e;
}

}  // namespace ep::model
