// Consistent-hash ring: the fleet's cache-partitioning function.
//
// Each shard contributes `virtualNodes` points to a 64-bit ring; a
// (device, workload) key is owned by the shard whose point follows the
// key's hash clockwise.  Virtual nodes smooth the partition (balance
// within a few tens of percent at 64 vnodes), and removal of one shard
// moves only the keys that shard owned (~1/N of the space) to the
// clockwise successors — the property the fleet's rebalance drill
// depends on: a topology change must not stampede every shard's cache.
//
// All hashing is deterministic (FNV-1a over the shard id chained
// through the splitmix64 mixer), so tests and replays see the same
// partition on every platform.
//
// Not internally synchronized.  The router treats a ring as immutable
// once published: topology changes build a modified copy and swap an
// atomic shared_ptr, so lookups never take a lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace ep::fleet {

// Ring position of a (device, workload-size) cache identity.
[[nodiscard]] std::uint64_t ringKeyHash(serve::Device device, int n);

class HashRing {
 public:
  explicit HashRing(std::size_t virtualNodes = 64);

  // Topology edits are idempotent: adding a present shard or removing
  // an absent one is a no-op.
  void addShard(const std::string& id);
  void removeShard(const std::string& id);

  [[nodiscard]] bool contains(const std::string& id) const;
  [[nodiscard]] std::size_t shardCount() const { return ids_.size(); }
  [[nodiscard]] std::size_t virtualNodes() const { return virtualNodes_; }
  [[nodiscard]] std::vector<std::string> shards() const;  // sorted ids

  // The shard owning `keyHash`; empty string on an empty ring.
  [[nodiscard]] const std::string& shardFor(std::uint64_t keyHash) const;

  // Up to `count` distinct shards in clockwise ring order from the
  // key: [0] is the owner ("home"), [1] its successor (the stale-
  // replica holder), and so on.
  [[nodiscard]] std::vector<std::string> preferenceOrder(
      std::uint64_t keyHash, std::size_t count) const;

 private:
  std::size_t virtualNodes_;
  std::map<std::uint64_t, std::string> points_;  // ring position -> shard
  std::set<std::string> ids_;
};

}  // namespace ep::fleet
