// FleetRouter: the cluster layer above epserve's single-process Broker.
//
// N replicated broker shards sit behind one router.  Each shard owns a
// subset of the modeled devices and its own result cache; the caches
// are partitioned by a consistent-hash ring (fleet/ring.hpp), so a
// given (device, workload) key has one "home" shard that amortizes the
// key's cold study across all requests for it.  The router scores the
// live shards with a pluggable policy (fleet/policy.hpp) — round-robin
// baseline, queue-depth least-loaded, or energy-aware placement priced
// by the PR 5 per-request energy ledger (EWMA cold-study J/request per
// workload class).
//
// Concurrency contract (the part TSan and the acceptance criteria pin
// down): the routing decision takes NO lock shared across shards.
//   * Ring topology is an immutable HashRing snapshot behind an
//     atomic<shared_ptr>; admin edits copy-modify-swap it.
//   * Every per-shard scoring input (aliveness, in-flight count,
//     breaker mirror) and the cluster EWMA price table are relaxed
//     atomics, updated from broker completion hooks.
// The only router mutexes are adminMu_ (topology edits, rare) and
// clusterMu_ (Pareto-front inserts on the *completion* path — O(log n)
// per executed study, never consulted while scoring).
//
// Fault story: killShard() simulates losing a node (the router stops
// routing to it; the shard's state survives for revival, like a
// partitioned node).  Executed studies are replicated into the ring
// successor's stale-while-error store, so when a key's home is dead
// the router answers from the replica — flagged stale on the wire —
// instead of paying a fresh cold study or an error.
//
// Cluster-level Pareto fronts, maintained by O(log n) streaming insert
// (pareto/streaming_front.hpp), never re-peeled:
//   * config front — every executed study's global front streamed in:
//     the cluster's best-known (time, energy) configurations.
//   * service front — one (latency, attributed joules) point per
//     request that executed a cold study: what answering actually cost.
// Both keep an insert log so frontsConsistent() can check the
// streaming fronts bitwise against a fresh batch recompute — the
// invariant the shard-kill drill asserts across a ring rebalance.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fleet/policy.hpp"
#include "fleet/ring.hpp"
#include "obs/events.hpp"
#include "obs/profile_export.hpp"
#include "pareto/streaming_front.hpp"
#include "serve/broker.hpp"

namespace ep::fleet {

struct FleetShardConfig {
  std::string id;
  std::shared_ptr<const serve::TuningEngine> engine;
  serve::BrokerOptions broker{};
  // The modeled devices this shard serves.
  std::vector<serve::Device> devices = {serve::Device::P100,
                                        serve::Device::K40c};
};

// Self-healing shard health (the epchaos tentpole's fleet half).
//
// A periodic probe — a cheap synthetic tune against a fixed key — is
// sent to every shard.  A probe FAILS when the shard's circuit breaker
// is open on any device it serves (the breaker is the failure
// detector: the fixed probe key caches after its first study, so only
// the breaker can see an engine that started dying under real
// traffic), when the probe response is not Ok or had to be served
// stale, or when the shard does not answer inside probeTimeoutMs.
//
// ejectAfterFailures consecutive failures auto-eject the shard: the
// router stops routing to it through EXACTLY the same alive flag that
// killShard() flips, so routing and ring-successor stale-serving
// behave bitwise-identically to a manual kill.  An ejected shard keeps
// being probed (half-open); reinstateAfterSuccesses consecutive
// successes — possible once the shard breaker leaves "open" after its
// openMs — auto-reinstate it.  A shard killed *manually* is the
// operator's decision: the monitor never probes or resurrects it.
struct FleetHealthOptions {
  bool enabled = false;
  // Synthetic probe request (fixed key: caches after the first study).
  int probeN = 1 << 12;
  double probeMaxDegradation = 0.5;
  double probeDeadlineMs = 0.0;  // 0 = probes carry no deadline
  // A shard that does not answer the probe inside this window counts
  // as a failure (hung engine); the abandoned probe still releases its
  // slot through the completion hook if it ever finishes.
  double probeTimeoutMs = 250.0;
  int ejectAfterFailures = 3;
  int reinstateAfterSuccesses = 2;
  // Cadence of the optional background monitor (startHealthMonitor()).
  double probeIntervalMs = 50.0;
};

struct FleetOptions {
  std::size_t virtualNodes = 64;
  PolicyKind policy = PolicyKind::EnergyAware;
  PolicyWeights weights{};
  // Smoothing of the cold-study J/request price per workload class.
  double ewmaAlpha = 0.25;
  // How long a CircuitOpen response marks the router's relaxed breaker
  // mirror (the scoring path never touches the broker's own breaker).
  double breakerMirrorMs = 250.0;
  // Replicate executed studies into the ring successor's stale store.
  bool replicateToSuccessor = true;
  // Active health probing + auto eject/reinstate; off by default so a
  // chaos-free fleet is bitwise-identical to one built before epchaos.
  FleetHealthOptions health{};
};

struct FleetRequest {
  // nullopt = "auto": the router picks the cheaper device by the EWMA
  // price table (unsampled devices count as free, so both get explored).
  std::optional<serve::Device> device;
  int n = 0;
  double maxDegradation = 0.0;
  double deadlineMs = 0.0;
};

struct RouteDecision {
  std::string shardId;
  serve::Device device = serve::Device::P100;
  bool home = false;           // landed on the key's ring home
  bool staleFallback = false;  // home dead, answered from a replica
};

struct FleetShardMetrics {
  std::string id;
  bool alive = true;
  bool inRing = true;
  bool ejected = false;  // auto-ejected by health probes (not manual kill)
  std::uint64_t routed = 0;
  std::uint64_t inFlight = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t staleServed = 0;
  std::uint64_t studiesExecuted = 0;
  double attributedJoules = 0.0;
  // Instantaneous serving state, read from the shard broker at
  // snapshot time: latency quantile upper bounds and queue depth.
  double q50Ms = 0.0;
  double q99Ms = 0.0;
  std::uint64_t queueDepth = 0;
};

struct FleetMetrics {
  PolicyKind policy = PolicyKind::EnergyAware;
  std::vector<FleetShardMetrics> shards;
  std::uint64_t requests = 0;
  std::uint64_t staleFallbacks = 0;
  std::uint64_t noCandidate = 0;
  double clusterJoules = 0.0;
  std::size_t configFrontSize = 0;
  std::size_t serviceFrontSize = 0;
  // Health-monitor totals (all zero when FleetHealthOptions.enabled
  // is false).
  std::uint64_t healthProbes = 0;
  std::uint64_t healthProbeFailures = 0;
  std::uint64_t shardsEjected = 0;
  std::uint64_t shardsReinstated = 0;
};

class FleetRouter {
 public:
  explicit FleetRouter(std::vector<FleetShardConfig> shards,
                       FleetOptions options = {});
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Route and serve one tune request (blocking; call from any number
  // of client threads).  `decision`, when non-null, reports where and
  // why the request landed.
  [[nodiscard]] serve::TuneResponse tune(const FleetRequest& req,
                                         RouteDecision* decision = nullptr);

  // One member of a submitTuneBatch() call; mirrors
  // serve::Broker::TuneBatchItem at the fleet layer.
  struct FleetTuneBatchItem {
    FleetRequest req;
    obs::TraceContext ctx;
    std::function<void(serve::TuneResponse&&)> done;
  };

  // Route every item (lock-free scoring, exactly as tune()), answer
  // the inline outcomes (invalid request, stale fallback, no live
  // candidate) immediately, then hand each shard its members through
  // ONE serve::Broker::submitTuneBatch call — the event-loop frontend
  // amortizes one lock acquisition and one pool hop per shard per
  // epoll round instead of paying them per request.  Every `done` runs
  // exactly once, under its item's trace context.
  void submitTuneBatch(std::vector<FleetTuneBatchItem> items);

  // Route a study sweep to the least-loaded live shard serving the
  // device (sweeps span workload classes, so ring affinity of a single
  // key does not apply).
  [[nodiscard]] serve::StudyResponse study(const serve::StudyRequest& req,
                                           std::string* shardId = nullptr);

  [[nodiscard]] std::vector<std::string> shardIds() const;

  // Drill operations; all return false for an unknown shard id.
  // Kill/revive simulate node loss: a killed shard keeps its state but
  // receives no traffic until revived.  Both clear any health-monitor
  // state: a manual kill/revive is the operator overriding the probes.
  bool killShard(const std::string& id);
  bool reviveShard(const std::string& id);

  // Self-healing: probe every shard once and apply the eject /
  // reinstate state machine (no-op unless FleetHealthOptions.enabled).
  // Deterministic and synchronous — drills and tests drive it
  // directly; daemons run it from the background monitor instead.
  void healthTick();
  // Start the background monitor thread (one healthTick every
  // probeIntervalMs).  Idempotent; stopped by shutdown().
  void startHealthMonitor();
  // True while `id` is auto-ejected by the health monitor (false for
  // unknown ids and for manual kills).
  [[nodiscard]] bool shardEjected(const std::string& id) const;
  // Eject/reinstate transitions recorded by the health monitor (kind
  // "shard_ejected" / "shard_reinstated"), in seq order.
  [[nodiscard]] std::vector<obs::FlightEvent> healthEvents(
      std::uint64_t sinceSeq = 0) const;
  // Ring rebalance: remove/re-add a shard's vnodes (copy-on-write; in-
  // flight lookups keep the snapshot they started with).
  bool removeShardFromRing(const std::string& id);
  bool addShardToRing(const std::string& id);

  [[nodiscard]] FleetMetrics metrics() const;
  // One-line flat-JSON body of the {"op":"fleet"} wire snapshot.
  [[nodiscard]] std::string renderWireSnapshot() const;

  // Cluster metric federation: per-shard broker registry snapshots
  // (shard id + RegistrySnapshot, dead shards included — their metrics
  // still exist), and the merged cluster registry: counters summed,
  // gauges labeled {shard="<id>"}, histograms bucket-merged.
  [[nodiscard]] std::vector<std::pair<std::string, obs::RegistrySnapshot>>
  shardSnapshots() const;
  [[nodiscard]] obs::RegistrySnapshot clusterSnapshot() const;
  // The federated registry rendered as a text exposition; every series
  // from a shard-scoped merge keeps or gains its shard label upstream.
  [[nodiscard]] std::string renderClusterMetrics(
      obs::ExpositionFormat format) const;

  // Profile federation, mirroring metric federation: shardProfiles()
  // partitions the process profiler's aggregated stacks on the
  // "shard/<id>" root frames each shard pool pushes (per-shard stacks
  // with the root stripped; trace slices stay cluster-global), and
  // clusterProfile() merges them back — shard-rooted — together with
  // router-side stacks and the global per-trace slices.
  [[nodiscard]] std::vector<std::pair<std::string, obs::ProfileSnapshot>>
  shardProfiles(obs::ProfileKind kind) const;
  [[nodiscard]] obs::ProfileSnapshot clusterProfile(obs::ProfileKind kind) const;

  // Read-only access to one shard's broker (nullptr for unknown ids):
  // the daemon layer uses it to drain per-shard watchdog recorders for
  // {"op":"events"} with shard tags.
  [[nodiscard]] const serve::Broker* shardBroker(const std::string& id) const;

  // Cluster fronts (sorted by ascending time) and their oracle:
  // frontsConsistent() recomputes both fronts batch-style from the
  // insert logs and compares bitwise against the streaming state.
  [[nodiscard]] std::vector<pareto::BiPoint> configFront() const;
  [[nodiscard]] std::vector<pareto::BiPoint> serviceFront() const;
  [[nodiscard]] bool frontsConsistent() const;

  // The EWMA cold-study price the scorer currently charges for placing
  // workload `n` on `device` off its home shard (0 = no samples yet).
  [[nodiscard]] double ewmaColdJoules(serve::Device device, int n) const;

  // The current ring home of key (device, n); empty when the ring is.
  [[nodiscard]] std::string homeShard(serve::Device device, int n) const;

  // Drain every shard.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  static constexpr std::size_t kDevices = 2;
  static constexpr std::size_t kClasses = 32;  // bit-width buckets of n

  struct Shard {
    std::string id;
    std::vector<serve::Device> devices;
    std::atomic<bool> alive{true};
    // Health-monitor state: ejected distinguishes an auto-eject (keep
    // probing, may reinstate) from a manual kill (operator owns it).
    std::atomic<bool> ejected{false};
    std::atomic<int> probeFailures{0};
    std::atomic<int> probeSuccesses{0};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> inFlight{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> staleServed{0};
    std::atomic<std::uint64_t> studiesExecuted{0};
    std::atomic<std::uint64_t> joulesBits{0};  // double, bit-cast
    // Relaxed mirror of the shard's per-device breaker: steady-clock
    // ns until which the scorer treats the device circuit as open.
    std::array<std::atomic<std::uint64_t>, kDevices> breakerOpenUntilNs{};
    std::unique_ptr<serve::Broker> broker;

    [[nodiscard]] bool serves(serve::Device d) const;
  };

  static std::size_t deviceIndex(serve::Device d) {
    return d == serve::Device::K40c ? 1 : 0;
  }
  static std::size_t workloadClass(int n);
  static std::uint64_t nowNs();

  [[nodiscard]] serve::Device pickDevice(int n) const;

  // Routing outcome shared by tune() and submitTuneBatch(): either the
  // request was answered during routing (`immediate` set: invalid
  // input, stale fallback, no candidate) or it must be submitted to
  // shards_[shard] as `req` (routed/inFlight already incremented).
  struct RoutedTune {
    std::optional<serve::TuneResponse> immediate;
    std::size_t shard = 0;
    serve::TuneRequest req;
  };
  [[nodiscard]] RoutedTune routeTune(const FleetRequest& freq,
                                     RouteDecision* decision);

  [[nodiscard]] std::shared_ptr<const HashRing> ringSnapshot() const {
    return ring_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const Shard* shardById(const std::string& id) const;
  [[nodiscard]] Shard* shardById(const std::string& id);

  // One synthetic probe against `s`; true = healthy.  Never takes the
  // admin lock; accounts its in-flight slot like routed traffic.
  [[nodiscard]] bool probeShard(Shard& s);

  // Broker completion hooks (run on shard worker/submitter threads).
  void onTuneComplete(std::size_t shardIndex, const serve::TuneRequest& req,
                      const serve::TuneResponse& resp);
  void onStudyExecuted(std::size_t shardIndex, serve::Device device, int n,
                       const std::shared_ptr<const core::WorkloadResult>& r);

  void updateEwma(serve::Device device, int n, double coldJoules);
  void recordServicePoint(const serve::TuneResponse& resp);

  FleetOptions options_;

  // Cluster EWMA cold-study price table, indexed [device][class].
  std::array<std::atomic<std::uint64_t>, kDevices * kClasses> ewmaBits_{};

  std::atomic<std::uint64_t> rotation_{0};  // round-robin / tie rotation
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> staleFallbacks_{0};
  std::atomic<std::uint64_t> noCandidate_{0};

  // Streaming cluster fronts + full insert logs (the batch oracle).
  // Completion-path only; never touched while scoring.
  mutable std::mutex clusterMu_;
  pareto::StreamingFront configFront_;
  std::vector<pareto::BiPoint> configLog_;
  pareto::StreamingFront serviceFront_;
  std::vector<pareto::BiPoint> serviceLog_;
  std::uint64_t servicePointSeq_ = 0;

  std::mutex adminMu_;  // serializes topology edits and shutdown
  bool shutdown_ = false;
  std::atomic<std::shared_ptr<const HashRing>> ring_;

  // Health-monitor state; null unless FleetHealthOptions.enabled, so a
  // health-off router carries no extra registry and clusterSnapshot()
  // stays byte-identical to the pre-epchaos fleet.
  struct HealthState {
    explicit HealthState(const FleetHealthOptions& opts);
    obs::Registry registry;
    obs::Counter& probes;
    obs::Counter& probeFailures;
    obs::Counter& ejects;
    obs::Counter& reinstates;
    obs::FlightRecorder recorder{64};
    std::mutex tickMu;  // one healthTick at a time (monitor vs drill)
    std::mutex monitorMu;
    std::condition_variable monitorCv;
    bool stopMonitor = false;
    std::thread monitor;
  };
  std::unique_ptr<HealthState> health_;

  // Immutable after construction (only atomics inside mutate); declared
  // last so shards drain before the state their hooks reference dies.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, std::size_t> shardIndex_;
};

}  // namespace ep::fleet
