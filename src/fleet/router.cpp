#include "fleet/router.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "pareto/front.hpp"
#include "serve/wire.hpp"

namespace ep::fleet {

namespace {

double bitsToDouble(std::uint64_t b) { return std::bit_cast<double>(b); }
std::uint64_t doubleToBits(double d) { return std::bit_cast<std::uint64_t>(d); }

void atomicAddDouble(std::atomic<std::uint64_t>& a, double v) {
  std::uint64_t old = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(old, doubleToBits(bitsToDouble(old) + v),
                                  std::memory_order_relaxed)) {
  }
}

// EWMA with bits==0 ("never sampled") as the empty state: the first
// sample is adopted verbatim.  Cold-study costs are strictly positive,
// so 0.0 cannot be a legitimate stored value.
void atomicEwma(std::atomic<std::uint64_t>& a, double sample, double alpha) {
  std::uint64_t old = a.load(std::memory_order_relaxed);
  for (;;) {
    const double prev = bitsToDouble(old);
    const double next =
        (old == 0) ? sample : alpha * sample + (1.0 - alpha) * prev;
    if (a.compare_exchange_weak(old, doubleToBits(next),
                                std::memory_order_relaxed)) {
      return;
    }
  }
}

bool samePoint(const pareto::BiPoint& a, const pareto::BiPoint& b) {
  return a.time == b.time && a.energy == b.energy &&
         a.configId == b.configId && a.label == b.label;
}

bool sameFront(const std::vector<pareto::BiPoint>& a,
               const std::vector<pareto::BiPoint>& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), samePoint);
}

}  // namespace

bool FleetRouter::Shard::serves(serve::Device d) const {
  return std::find(devices.begin(), devices.end(), d) != devices.end();
}

std::size_t FleetRouter::workloadClass(int n) {
  const auto width = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(n > 0 ? n : 1)));
  return std::min(width, kClasses) - 1;
}

std::uint64_t FleetRouter::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

FleetRouter::HealthState::HealthState(const FleetHealthOptions& opts)
    : probes(registry.counter("fleet_health_probes_total",
                              "Synthetic health probes sent to shards")),
      probeFailures(registry.counter("fleet_health_probe_failures_total",
                                     "Health probes that failed")),
      ejects(registry.counter("fleet_shard_ejected_total",
                              "Shards auto-ejected by the health monitor")),
      reinstates(registry.counter(
          "fleet_shard_reinstated_total",
          "Ejected shards auto-reinstated after probe recovery")) {
  EP_REQUIRE(opts.ejectAfterFailures >= 1,
             "ejectAfterFailures must be >= 1");
  EP_REQUIRE(opts.reinstateAfterSuccesses >= 1,
             "reinstateAfterSuccesses must be >= 1");
  EP_REQUIRE(opts.probeN > 0, "probeN must be positive");
}

FleetRouter::FleetRouter(std::vector<FleetShardConfig> shards,
                         FleetOptions options)
    : options_(options) {
  EP_REQUIRE(!shards.empty(), "fleet needs at least one shard");
  EP_REQUIRE(options_.ewmaAlpha > 0.0 && options_.ewmaAlpha <= 1.0,
             "ewmaAlpha must be in (0, 1]");
  if (options_.health.enabled) {
    health_ = std::make_unique<HealthState>(options_.health);
  }
  auto ring = std::make_shared<HashRing>(options_.virtualNodes);
  shards_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    FleetShardConfig& cfg = shards[i];
    EP_REQUIRE(!cfg.id.empty(), "shard id must be non-empty");
    EP_REQUIRE(cfg.engine != nullptr, "shard needs an engine");
    EP_REQUIRE(!cfg.devices.empty(), "shard needs at least one device");
    EP_REQUIRE(shardIndex_.emplace(cfg.id, i).second,
               "duplicate shard id");
    auto shard = std::make_unique<Shard>();
    shard->id = cfg.id;
    shard->devices = cfg.devices;
    serve::BrokerOptions bopts = cfg.broker;
    // epprof: each shard's worker threads carry a "shard/<id>" root
    // frame, so cluster CPU/energy profiles partition by shard (the
    // profile analogue of metric federation's shard labels).
    if (bopts.profileLabel.empty()) bopts.profileLabel = "shard/" + cfg.id;
    bopts.onTuneComplete = [this, i](const serve::TuneRequest& req,
                                     const serve::TuneResponse& resp) {
      onTuneComplete(i, req, resp);
    };
    bopts.onStudyExecuted =
        [this, i](serve::Device device, int n,
                  std::shared_ptr<const core::WorkloadResult> result) {
          onStudyExecuted(i, device, n, result);
        };
    shard->broker =
        std::make_unique<serve::Broker>(cfg.engine, std::move(bopts));
    ring->addShard(cfg.id);
    shards_.push_back(std::move(shard));
  }
  ring_.store(std::shared_ptr<const HashRing>(std::move(ring)),
              std::memory_order_release);
}

FleetRouter::~FleetRouter() { shutdown(); }

void FleetRouter::shutdown() {
  std::lock_guard lk(adminMu_);
  if (shutdown_) return;
  shutdown_ = true;
  if (health_ != nullptr && health_->monitor.joinable()) {
    {
      std::lock_guard mlk(health_->monitorMu);
      health_->stopMonitor = true;
    }
    health_->monitorCv.notify_all();
    health_->monitor.join();
  }
  for (auto& s : shards_) s->broker->shutdown();
}

const FleetRouter::Shard* FleetRouter::shardById(const std::string& id) const {
  const auto it = shardIndex_.find(id);
  return it == shardIndex_.end() ? nullptr : shards_[it->second].get();
}

FleetRouter::Shard* FleetRouter::shardById(const std::string& id) {
  const auto it = shardIndex_.find(id);
  return it == shardIndex_.end() ? nullptr : shards_[it->second].get();
}

std::vector<std::string> FleetRouter::shardIds() const {
  std::vector<std::string> ids;
  ids.reserve(shards_.size());
  for (const auto& s : shards_) ids.push_back(s->id);
  return ids;
}

double FleetRouter::ewmaColdJoules(serve::Device device, int n) const {
  return bitsToDouble(
      ewmaBits_[deviceIndex(device) * kClasses + workloadClass(n)].load(
          std::memory_order_relaxed));
}

std::string FleetRouter::homeShard(serve::Device device, int n) const {
  return ringSnapshot()->shardFor(ringKeyHash(device, n));
}

void FleetRouter::updateEwma(serve::Device device, int n, double coldJoules) {
  if (coldJoules <= 0.0) return;
  atomicEwma(ewmaBits_[deviceIndex(device) * kClasses + workloadClass(n)],
             coldJoules, options_.ewmaAlpha);
}

serve::Device FleetRouter::pickDevice(int n) const {
  const double p = ewmaColdJoules(serve::Device::P100, n);
  const double k = ewmaColdJoules(serve::Device::K40c, n);
  if (p == 0.0 && k == 0.0) {
    // No price signal yet for this class: alternate so both devices
    // get sampled, after which the cheaper one wins below.
    return rotation_.load(std::memory_order_relaxed) % 2 == 0
               ? serve::Device::P100
               : serve::Device::K40c;
  }
  if (p == 0.0) return serve::Device::P100;  // optimistic exploration
  if (k == 0.0) return serve::Device::K40c;
  return k < p ? serve::Device::K40c : serve::Device::P100;
}

FleetRouter::RoutedTune FleetRouter::routeTune(const FleetRequest& freq,
                                               RouteDecision* decision) {
  obs::Span span("fleet/route_tune");
  requests_.fetch_add(1, std::memory_order_relaxed);

  RoutedTune routed;
  serve::TuneRequest& req = routed.req;
  req.n = freq.n;
  req.maxDegradation = freq.maxDegradation;
  req.deadlineMs = freq.deadlineMs;
  if (freq.n <= 0 || freq.maxDegradation < 0.0) {
    serve::TuneResponse resp;
    resp.status = serve::Status::Error;
    resp.error = "invalid fleet tune request (need n > 0, maxDegradation >= 0)";
    routed.immediate = std::move(resp);
    return routed;
  }
  req.device = freq.device ? *freq.device : pickDevice(freq.n);
  if (decision != nullptr) {
    *decision = RouteDecision{};
    decision->device = req.device;
  }

  // Scoring inputs: an immutable ring snapshot plus per-shard relaxed
  // atomics.  No lock shared across shards is taken on this path.
  const std::uint64_t key = ringKeyHash(req.device, req.n);
  const auto ring = ringSnapshot();
  const auto pref = ring->preferenceOrder(key, shards_.size());
  const auto prefRank = [&](const std::string& id) {
    const auto it = std::find(pref.begin(), pref.end(), id);
    return static_cast<std::size_t>(it - pref.begin());  // pref.size() = none
  };

  const std::uint64_t now = nowNs();
  const double coldPrice = ewmaColdJoules(req.device, req.n);
  std::vector<CandidateSnapshot> cands(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    CandidateSnapshot& c = cands[i];
    c.index = i;
    c.preference = prefRank(s.id);
    c.inFlight = s.inFlight.load(std::memory_order_relaxed);
    c.expectedJoules = c.preference == 0 ? 0.0 : coldPrice;
    c.breakerOpen =
        s.breakerOpenUntilNs[deviceIndex(req.device)].load(
            std::memory_order_relaxed) > now;
    c.alive = s.alive.load(std::memory_order_relaxed) && s.serves(req.device);
  }

  // Cross-shard stale serving: when the key's home shard is dead, its
  // replica lives in the next live shard's stale store — answer from
  // there (flagged stale) instead of paying a fresh cold study.
  if (!pref.empty() && !cands[shardIndex_.at(pref[0])].alive &&
      options_.replicateToSuccessor) {
    for (std::size_t p = 1; p < pref.size(); ++p) {
      Shard& rep = *shards_[shardIndex_.at(pref[p])];
      if (!cands[shardIndex_.at(pref[p])].alive) continue;
      rep.inFlight.fetch_add(1, std::memory_order_relaxed);
      // On a hit the broker fires onTuneComplete, which balances the
      // in-flight increment; a miss fires nothing, so undo by hand.
      if (auto stale = rep.broker->tuneFromStale(req)) {
        rep.routed.fetch_add(1, std::memory_order_relaxed);
        staleFallbacks_.fetch_add(1, std::memory_order_relaxed);
        if (decision != nullptr) {
          decision->shardId = rep.id;
          decision->staleFallback = true;
        }
        routed.immediate = std::move(*stale);
        return routed;
      }
      rep.inFlight.fetch_sub(1, std::memory_order_relaxed);
      break;  // only the first live preference shard holds the replica
    }
  }

  const auto pick =
      pickCandidate(options_.policy, options_.weights, cands,
                    rotation_.fetch_add(1, std::memory_order_relaxed));
  if (!pick) {
    noCandidate_.fetch_add(1, std::memory_order_relaxed);
    serve::TuneResponse resp;
    resp.status = serve::Status::Error;
    resp.error = "no live shard serves device " +
                 std::string(serve::deviceName(req.device));
    routed.immediate = std::move(resp);
    return routed;
  }
  Shard& s = *shards_[*pick];
  if (decision != nullptr) {
    decision->shardId = s.id;
    decision->home = cands[*pick].preference == 0;
  }
  s.routed.fetch_add(1, std::memory_order_relaxed);
  s.inFlight.fetch_add(1, std::memory_order_relaxed);
  // onTuneComplete (fired when the response is delivered) decrements
  // inFlight and does all outcome accounting.
  routed.shard = *pick;
  return routed;
}

serve::TuneResponse FleetRouter::tune(const FleetRequest& freq,
                                      RouteDecision* decision) {
  RoutedTune routed = routeTune(freq, decision);
  if (routed.immediate) return std::move(*routed.immediate);
  return shards_[routed.shard]->broker->submitTune(routed.req).get();
}

void FleetRouter::submitTuneBatch(std::vector<FleetTuneBatchItem> items) {
  // Route every item first (lock-free), then one Broker batch per
  // shard so admission locks and pool hops amortize across the batch.
  std::unordered_map<std::size_t, std::vector<serve::Broker::TuneBatchItem>>
      perShard;
  for (auto& item : items) {
    RoutedTune routed;
    {
      // Route under the item's own context so the fleet/route_tune
      // span (and any stale-fallback answer) lands on its trace.
      obs::ScopedTraceContext tctx(item.ctx);
      routed = routeTune(item.req, nullptr);
      if (routed.immediate) {
        item.done(std::move(*routed.immediate));
        continue;
      }
    }
    serve::Broker::TuneBatchItem member;
    member.req = routed.req;
    member.ctx = item.ctx;
    member.done = std::move(item.done);
    perShard[routed.shard].push_back(std::move(member));
  }
  for (auto& [shard, members] : perShard) {
    shards_[shard]->broker->submitTuneBatch(std::move(members));
  }
}

serve::StudyResponse FleetRouter::study(const serve::StudyRequest& req,
                                        std::string* shardId) {
  obs::Span span("fleet/route_study");
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Sweeps span workload classes, so key affinity does not apply:
  // place least-loaded among the live shards serving the device.
  const std::uint64_t now = nowNs();
  std::vector<CandidateSnapshot> cands(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    cands[i].index = i;
    cands[i].inFlight = s.inFlight.load(std::memory_order_relaxed);
    cands[i].breakerOpen =
        s.breakerOpenUntilNs[deviceIndex(req.device)].load(
            std::memory_order_relaxed) > now;
    cands[i].alive =
        s.alive.load(std::memory_order_relaxed) && s.serves(req.device);
  }
  const auto pick =
      pickCandidate(PolicyKind::QueueDepth, options_.weights, cands,
                    rotation_.fetch_add(1, std::memory_order_relaxed));
  if (!pick) {
    noCandidate_.fetch_add(1, std::memory_order_relaxed);
    serve::StudyResponse resp;
    resp.status = serve::Status::Error;
    resp.error = "no live shard serves device " +
                 std::string(serve::deviceName(req.device));
    return resp;
  }
  Shard& s = *shards_[*pick];
  if (shardId != nullptr) *shardId = s.id;
  s.routed.fetch_add(1, std::memory_order_relaxed);
  s.inFlight.fetch_add(1, std::memory_order_relaxed);
  serve::StudyResponse resp = s.broker->submitStudy(req).get();
  // Studies have no completion hook; account here.
  s.inFlight.fetch_sub(1, std::memory_order_relaxed);
  if (resp.status == serve::Status::Ok) {
    s.completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.rejected.fetch_add(1, std::memory_order_relaxed);
  }
  if (resp.report.studiesExecuted > 0) {
    s.studiesExecuted.fetch_add(resp.report.studiesExecuted,
                                std::memory_order_relaxed);
    atomicAddDouble(s.joulesBits, resp.report.attributedJoules);
  }
  return resp;
}

void FleetRouter::onTuneComplete(std::size_t shardIndex,
                                 const serve::TuneRequest& req,
                                 const serve::TuneResponse& resp) {
  Shard& s = *shards_[shardIndex];
  s.inFlight.fetch_sub(1, std::memory_order_relaxed);
  const std::size_t di = deviceIndex(req.device);
  if (resp.status == serve::Status::Ok) {
    s.completed.fetch_add(1, std::memory_order_relaxed);
    if (resp.stale) s.staleServed.fetch_add(1, std::memory_order_relaxed);
    if (resp.report.studiesExecuted > 0) {
      s.studiesExecuted.fetch_add(resp.report.studiesExecuted,
                                  std::memory_order_relaxed);
      atomicAddDouble(s.joulesBits, resp.report.attributedJoules);
      updateEwma(req.device, req.n, resp.report.attributedJoules);
      recordServicePoint(resp);
    }
    if (!resp.stale) {
      s.breakerOpenUntilNs[di].store(0, std::memory_order_relaxed);
    }
  } else {
    s.rejected.fetch_add(1, std::memory_order_relaxed);
    if (resp.status == serve::Status::CircuitOpen) {
      s.breakerOpenUntilNs[di].store(
          nowNs() + static_cast<std::uint64_t>(options_.breakerMirrorMs * 1e6),
          std::memory_order_relaxed);
    }
  }
}

void FleetRouter::onStudyExecuted(
    std::size_t shardIndex, serve::Device device, int n,
    const std::shared_ptr<const core::WorkloadResult>& result) {
  if (options_.replicateToSuccessor && shards_.size() > 1) {
    const auto ring = ringSnapshot();
    // Replica target: the first shard in ring preference order that is
    // not the executor AND serves the device — the successor when the
    // home executed, the home itself when an overflow shard did.  The
    // serves() filter matters only for heterogeneous fleets: a replica
    // on a shard that cannot serve the device would never be found by
    // the stale-fallback path (which skips non-serving shards).
    for (const auto& id :
         ring->preferenceOrder(ringKeyHash(device, n), shards_.size())) {
      if (id == shards_[shardIndex]->id) continue;
      Shard* target = shardById(id);
      if (target == nullptr || !target->serves(device)) continue;
      target->broker->installStaleResult(device, n, result);
      break;
    }
  }
  std::lock_guard lk(clusterMu_);
  for (const auto& p : result->globalFront) {
    configFront_.insert(p);
    configLog_.push_back(p);
  }
}

void FleetRouter::recordServicePoint(const serve::TuneResponse& resp) {
  std::lock_guard lk(clusterMu_);
  pareto::BiPoint p;
  p.time = resp.latency;
  p.energy = Joules{resp.report.attributedJoules};
  p.configId = servicePointSeq_++;
  serviceFront_.insert(p);
  serviceLog_.push_back(p);
}

bool FleetRouter::killShard(const std::string& id) {
  Shard* s = shardById(id);
  if (s == nullptr) return false;
  s->alive.store(false, std::memory_order_relaxed);
  // A manual kill overrides the health monitor: with ejected clear the
  // monitor neither probes the shard nor resurrects it.
  s->ejected.store(false, std::memory_order_relaxed);
  s->probeFailures.store(0, std::memory_order_relaxed);
  s->probeSuccesses.store(0, std::memory_order_relaxed);
  return true;
}

bool FleetRouter::reviveShard(const std::string& id) {
  Shard* s = shardById(id);
  if (s == nullptr) return false;
  s->alive.store(true, std::memory_order_relaxed);
  s->ejected.store(false, std::memory_order_relaxed);
  s->probeFailures.store(0, std::memory_order_relaxed);
  s->probeSuccesses.store(0, std::memory_order_relaxed);
  return true;
}

bool FleetRouter::probeShard(Shard& s) {
  // The breaker is the probe's failure detector for engine death: the
  // fixed probe key caches after its first study, so only the breaker
  // — tripped by real traffic hitting uncached keys — can see an
  // engine that started failing.  Open on any served device = sick.
  const serve::ServeMetrics m = s.broker->metrics();
  for (const serve::Device d : s.devices) {
    const char* state =
        deviceIndex(d) == 0 ? m.breakerStateP100 : m.breakerStateK40c;
    if (std::string_view(state) == "open") return false;
  }
  serve::TuneRequest req;
  req.device = s.devices.front();
  req.n = options_.health.probeN;
  req.maxDegradation = options_.health.probeMaxDegradation;
  req.deadlineMs = options_.health.probeDeadlineMs;
  // Probes bypass routing, but the broker's onTuneComplete hook still
  // fires and decrements inFlight — balance it here.  A probe that
  // outlives the timeout keeps its slot until the hook runs, which is
  // exactly right: a hung shard *is* loaded.
  s.inFlight.fetch_add(1, std::memory_order_relaxed);
  auto fut = s.broker->submitTune(req);
  if (options_.health.probeTimeoutMs > 0.0) {
    const auto wait = std::chrono::duration<double, std::milli>(
        options_.health.probeTimeoutMs);
    if (fut.wait_for(wait) != std::future_status::ready) return false;
  }
  const serve::TuneResponse resp = fut.get();
  return resp.status == serve::Status::Ok && !resp.stale;
}

void FleetRouter::healthTick() {
  if (health_ == nullptr) return;
  std::lock_guard lk(health_->tickMu);
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const bool alive = s.alive.load(std::memory_order_relaxed);
    const bool ejected = s.ejected.load(std::memory_order_relaxed);
    if (!alive && !ejected) continue;  // manually killed: operator owns it
    health_->probes.inc();
    if (probeShard(s)) {
      s.probeFailures.store(0, std::memory_order_relaxed);
      if (!ejected) continue;
      const int runs =
          s.probeSuccesses.fetch_add(1, std::memory_order_relaxed) + 1;
      if (runs < options_.health.reinstateAfterSuccesses) continue;
      s.probeSuccesses.store(0, std::memory_order_relaxed);
      s.ejected.store(false, std::memory_order_relaxed);
      // The exact store reviveShard() makes, so routing after an
      // auto-reinstate is bitwise-identical to a manual revive.
      s.alive.store(true, std::memory_order_relaxed);
      health_->reinstates.inc();
      obs::FlightEvent e;
      e.timeNs = nowNs();
      e.value = static_cast<double>(runs);
      e.threshold = static_cast<double>(options_.health.reinstateAfterSuccesses);
      obs::setFlightField(e.kind, "shard_reinstated");
      obs::setFlightField(e.scope, s.id.c_str());
      obs::setFlightField(e.message,
                          "probes recovered; shard back in rotation");
      health_->recorder.record(e);
    } else {
      health_->probeFailures.inc();
      s.probeSuccesses.store(0, std::memory_order_relaxed);
      if (ejected) continue;
      const int fails =
          s.probeFailures.fetch_add(1, std::memory_order_relaxed) + 1;
      if (fails < options_.health.ejectAfterFailures) continue;
      s.probeFailures.store(0, std::memory_order_relaxed);
      s.ejected.store(true, std::memory_order_relaxed);
      // The exact store killShard() makes: routing and ring-successor
      // stale-serving treat an auto-eject like a manual kill.
      s.alive.store(false, std::memory_order_relaxed);
      health_->ejects.inc();
      obs::FlightEvent e;
      e.timeNs = nowNs();
      e.value = static_cast<double>(fails);
      e.threshold = static_cast<double>(options_.health.ejectAfterFailures);
      obs::setFlightField(e.kind, "shard_ejected");
      obs::setFlightField(e.scope, s.id.c_str());
      obs::setFlightField(e.message,
                          "consecutive probe failures; shard ejected");
      health_->recorder.record(e);
    }
  }
}

void FleetRouter::startHealthMonitor() {
  if (health_ == nullptr) return;
  std::lock_guard lk(adminMu_);
  if (shutdown_ || health_->monitor.joinable()) return;
  health_->monitor = std::thread([this] {
    std::unique_lock mlk(health_->monitorMu);
    for (;;) {
      const auto interval = std::chrono::duration<double, std::milli>(
          options_.health.probeIntervalMs);
      if (health_->monitorCv.wait_for(
              mlk, interval, [this] { return health_->stopMonitor; })) {
        return;
      }
      mlk.unlock();
      healthTick();
      mlk.lock();
    }
  });
}

bool FleetRouter::shardEjected(const std::string& id) const {
  const Shard* s = shardById(id);
  return s != nullptr && s->ejected.load(std::memory_order_relaxed);
}

std::vector<obs::FlightEvent> FleetRouter::healthEvents(
    std::uint64_t sinceSeq) const {
  if (health_ == nullptr) return {};
  return health_->recorder.snapshot(sinceSeq);
}

bool FleetRouter::removeShardFromRing(const std::string& id) {
  if (shardById(id) == nullptr) return false;
  std::lock_guard lk(adminMu_);
  auto next = std::make_shared<HashRing>(*ringSnapshot());
  next->removeShard(id);
  ring_.store(std::shared_ptr<const HashRing>(std::move(next)),
              std::memory_order_release);
  return true;
}

bool FleetRouter::addShardToRing(const std::string& id) {
  if (shardById(id) == nullptr) return false;
  std::lock_guard lk(adminMu_);
  auto next = std::make_shared<HashRing>(*ringSnapshot());
  next->addShard(id);
  ring_.store(std::shared_ptr<const HashRing>(std::move(next)),
              std::memory_order_release);
  return true;
}

FleetMetrics FleetRouter::metrics() const {
  FleetMetrics out;
  out.policy = options_.policy;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.staleFallbacks = staleFallbacks_.load(std::memory_order_relaxed);
  out.noCandidate = noCandidate_.load(std::memory_order_relaxed);
  const auto ring = ringSnapshot();
  out.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    FleetShardMetrics m;
    m.id = s->id;
    m.alive = s->alive.load(std::memory_order_relaxed);
    m.ejected = s->ejected.load(std::memory_order_relaxed);
    m.inRing = ring->contains(s->id);
    m.routed = s->routed.load(std::memory_order_relaxed);
    m.inFlight = s->inFlight.load(std::memory_order_relaxed);
    m.completed = s->completed.load(std::memory_order_relaxed);
    m.rejected = s->rejected.load(std::memory_order_relaxed);
    m.staleServed = s->staleServed.load(std::memory_order_relaxed);
    m.studiesExecuted = s->studiesExecuted.load(std::memory_order_relaxed);
    m.attributedJoules =
        bitsToDouble(s->joulesBits.load(std::memory_order_relaxed));
    const serve::ServeMetrics sm = s->broker->metrics();
    m.q50Ms = sm.latency.quantileUpperBoundMs(0.50);
    m.q99Ms = sm.latency.quantileUpperBoundMs(0.99);
    m.queueDepth = sm.queueDepth;
    out.clusterJoules += m.attributedJoules;
    out.shards.push_back(std::move(m));
  }
  if (health_ != nullptr) {
    out.healthProbes = health_->probes.value();
    out.healthProbeFailures = health_->probeFailures.value();
    out.shardsEjected = health_->ejects.value();
    out.shardsReinstated = health_->reinstates.value();
  }
  std::lock_guard lk(clusterMu_);
  out.configFrontSize = configFront_.size();
  out.serviceFrontSize = serviceFront_.size();
  return out;
}

std::string FleetRouter::renderWireSnapshot() const {
  const FleetMetrics m = metrics();
  const bool consistent = frontsConsistent();
  serve::wire::ObjectWriter w;
  std::uint64_t alive = 0;
  for (const auto& s : m.shards) alive += s.alive ? 1 : 0;
  w.add("status", "ok")
      .add("policy", policyName(m.policy))
      .add("shards", static_cast<std::uint64_t>(m.shards.size()))
      .add("aliveShards", alive)
      .add("requests", m.requests)
      .add("staleFallbacks", m.staleFallbacks)
      .add("noCandidate", m.noCandidate)
      .add("clusterJoules", m.clusterJoules)
      .add("configFrontSize", static_cast<std::uint64_t>(m.configFrontSize))
      .add("serviceFrontSize", static_cast<std::uint64_t>(m.serviceFrontSize))
      .add("frontsConsistent", consistent);
  // Health keys only exist on a health-enabled fleet, so the snapshot
  // of a chaos-free fleet is byte-identical to the pre-epchaos one.
  if (health_ != nullptr) {
    w.add("healthProbes", m.healthProbes)
        .add("healthProbeFailures", m.healthProbeFailures)
        .add("shardsEjected", m.shardsEjected)
        .add("shardsReinstated", m.shardsReinstated);
  }
  for (const auto& s : m.shards) {
    const std::string prefix = "shard." + s.id + ".";
    w.add(prefix + "alive", s.alive)
        .add(prefix + "inRing", s.inRing);
    if (health_ != nullptr) w.add(prefix + "ejected", s.ejected);
    w.add(prefix + "routed", s.routed)
        .add(prefix + "inFlight", s.inFlight)
        .add(prefix + "completed", s.completed)
        .add(prefix + "rejected", s.rejected)
        .add(prefix + "staleServed", s.staleServed)
        .add(prefix + "studiesExecuted", s.studiesExecuted)
        .add(prefix + "attributedJoules", s.attributedJoules)
        .add(prefix + "q50Ms", s.q50Ms)
        .add(prefix + "q99Ms", s.q99Ms)
        .add(prefix + "queueDepth", s.queueDepth);
  }
  return w.str();
}

std::vector<std::pair<std::string, obs::RegistrySnapshot>>
FleetRouter::shardSnapshots() const {
  std::vector<std::pair<std::string, obs::RegistrySnapshot>> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.emplace_back(s->id, s->broker->snapshotRegistry());
  }
  return out;
}

obs::RegistrySnapshot FleetRouter::clusterSnapshot() const {
  auto shards = shardSnapshots();
  if (health_ != nullptr) {
    // The health registry federates like a shard of its own; absent
    // entirely when health is off, so the merged snapshot of a
    // health-off fleet is byte-identical to the pre-epchaos merge.
    shards.emplace_back("health", health_->registry.snapshot());
  }
  return obs::mergeShardSnapshots(shards);
}

std::string FleetRouter::renderClusterMetrics(
    obs::ExpositionFormat format) const {
  return obs::renderExposition(clusterSnapshot(), format);
}

std::vector<std::pair<std::string, obs::ProfileSnapshot>>
FleetRouter::shardProfiles(obs::ProfileKind kind) const {
  // All shards share one process (and therefore one Profiler); the
  // partition key is the "shard/<id>" root frame the shard pools push.
  const obs::ProfileSnapshot global = obs::Profiler::global().snapshot(kind);
  std::vector<std::pair<std::string, obs::ProfileSnapshot>> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    obs::ProfileSnapshot snap;
    snap.kind = global.kind;
    snap.samplePeriodUs = global.samplePeriodUs;
    const std::string root = "shard/" + s->id;
    for (const obs::ProfileEntry& e : global.entries) {
      if (e.stack.empty() || e.stack.front() != root) continue;
      obs::ProfileEntry stripped;
      if (e.stack.size() == 1) {
        // CPU at the root itself: the worker's own dispatch loop.
        stripped.stack = {"(worker)"};
      } else {
        stripped.stack.assign(e.stack.begin() + 1, e.stack.end());
      }
      stripped.samples = e.samples;
      stripped.weight = e.weight;
      snap.samples += e.samples;
      snap.totalWeight += e.weight;
      snap.entries.push_back(std::move(stripped));
    }
    out.emplace_back(s->id, std::move(snap));
  }
  return out;
}

obs::ProfileSnapshot FleetRouter::clusterProfile(obs::ProfileKind kind) const {
  // Reconstruct the cluster view through the same merge the wire layer
  // uses, then carry over router-side stacks (frontend threads, event
  // loops) and the global per-trace slices that a per-shard partition
  // cannot attribute.
  const obs::ProfileSnapshot global = obs::Profiler::global().snapshot(kind);
  obs::ProfileSnapshot merged = obs::mergeProfileSnapshots(shardProfiles(kind));
  merged.kind = global.kind;
  merged.samplePeriodUs = global.samplePeriodUs;
  merged.dropped = global.dropped;
  merged.truncated = global.truncated;
  for (const obs::ProfileEntry& e : global.entries) {
    if (!e.stack.empty() && e.stack.front().rfind("shard/", 0) == 0 &&
        shardIndex_.count(e.stack.front().substr(6)) != 0) {
      continue;  // already federated through its shard
    }
    merged.samples += e.samples;
    merged.totalWeight += e.weight;
    merged.entries.push_back(e);
  }
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const obs::ProfileEntry& a, const obs::ProfileEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.stack < b.stack;
            });
  merged.traces = global.traces;
  return merged;
}

const serve::Broker* FleetRouter::shardBroker(const std::string& id) const {
  const Shard* s = shardById(id);
  return s == nullptr ? nullptr : s->broker.get();
}

std::vector<pareto::BiPoint> FleetRouter::configFront() const {
  std::lock_guard lk(clusterMu_);
  return configFront_.snapshot();
}

std::vector<pareto::BiPoint> FleetRouter::serviceFront() const {
  std::lock_guard lk(clusterMu_);
  return serviceFront_.snapshot();
}

bool FleetRouter::frontsConsistent() const {
  std::lock_guard lk(clusterMu_);
  return sameFront(configFront_.snapshot(), pareto::paretoFront(configLog_)) &&
         sameFront(serviceFront_.snapshot(),
                   pareto::paretoFront(serviceLog_));
}

}  // namespace ep::fleet
