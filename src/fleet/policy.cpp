#include "fleet/policy.hpp"

namespace ep::fleet {

const char* policyName(PolicyKind k) {
  switch (k) {
    case PolicyKind::RoundRobin:
      return "round-robin";
    case PolicyKind::QueueDepth:
      return "queue";
    case PolicyKind::EnergyAware:
      return "energy";
  }
  return "unknown";
}

std::optional<PolicyKind> parsePolicy(const std::string& s) {
  if (s == "rr" || s == "round-robin") return PolicyKind::RoundRobin;
  if (s == "queue" || s == "queue-depth") return PolicyKind::QueueDepth;
  if (s == "energy" || s == "energy-aware") return PolicyKind::EnergyAware;
  return std::nullopt;
}

double scoreCandidate(PolicyKind kind, const PolicyWeights& w,
                      const CandidateSnapshot& c) {
  double score = 0.0;
  switch (kind) {
    case PolicyKind::RoundRobin:
      break;  // stateless: rotation in pickCandidate decides
    case PolicyKind::QueueDepth:
      score = w.queue * static_cast<double>(c.inFlight);
      break;
    case PolicyKind::EnergyAware:
      score = w.queue * static_cast<double>(c.inFlight) +
              w.energy * c.expectedJoules +
              (c.preference > 0 ? w.nonHome : 0.0);
      break;
  }
  if (c.breakerOpen) score += w.breakerOpen;
  return score;
}

std::optional<std::size_t> pickCandidate(
    PolicyKind kind, const PolicyWeights& w,
    const std::vector<CandidateSnapshot>& candidates, std::size_t rotation) {
  const std::size_t n = candidates.size();
  if (n == 0) return std::nullopt;
  std::optional<std::size_t> best;
  double bestScore = 0.0;
  // Scan in rotated order so equal scores hand out shards fairly (and
  // RoundRobin, where every score ties, degenerates to exactly that
  // rotation).  EnergyAware breaks ties toward the ring home instead:
  // affinity is its whole point.
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i =
        (kind == PolicyKind::EnergyAware) ? step : (step + rotation) % n;
    const CandidateSnapshot& c = candidates[i];
    if (!c.alive) continue;
    const double score = scoreCandidate(kind, w, c);
    bool better = !best || score < bestScore;
    if (kind == PolicyKind::EnergyAware && best && score == bestScore) {
      const CandidateSnapshot& b = candidates[*best];
      better = c.preference < b.preference ||
               (c.preference == b.preference && c.index < b.index);
    }
    if (better) {
      best = i;
      bestScore = score;
    }
  }
  return best;
}

}  // namespace ep::fleet
