// Pluggable shard-scoring policies for the fleet router.
//
// A policy turns a per-shard CandidateSnapshot — assembled by the
// router from relaxed-atomic per-shard gauges, never from a lock the
// shards share — into a scalar cost; the router sends the request to
// the cheapest live candidate.
//
//   RoundRobin   ignores all state (baseline; the router rotates).
//   QueueDepth   classic least-loaded: cost = live in-flight count.
//   EnergyAware  adds the energy price of the placement itself: a
//     request routed away from its key's ring home will, with high
//     probability, pay a fresh cold study — EWMA J/request for the
//     workload class, the PR 5 ledger's price signal — while the home
//     shard amortizes that study across every request for the key.
//     Nonproportionality is the opportunity here: skipping a redundant
//     cold study saves its whole dynamic-energy bill, so placement is
//     an energy decision, not just a latency one.
//
// An open breaker makes a candidate effectively last-resort under
// every scoring policy (routing into a breaker buys a guaranteed
// rejection or a stale answer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ep::fleet {

enum class PolicyKind { RoundRobin, QueueDepth, EnergyAware };

[[nodiscard]] const char* policyName(PolicyKind k);
// Accepts "rr"/"round-robin", "queue", "energy"/"energy-aware".
[[nodiscard]] std::optional<PolicyKind> parsePolicy(const std::string& s);

struct PolicyWeights {
  double queue = 1.0;        // cost per in-flight request on the shard
  double energy = 1.0;       // cost per expected joule of the placement
  double nonHome = 0.125;    // small bias toward the ring home on ties
  double breakerOpen = 1e9;  // open breaker = last resort
};

// One shard as the router sees it at scoring time.  Every field is a
// relaxed-atomic snapshot; nothing here required a lock to read.
struct CandidateSnapshot {
  std::size_t index = 0;       // dense shard index (round-robin order)
  std::size_t preference = 0;  // ring order from the key: 0 = home
  std::uint64_t inFlight = 0;  // requests routed, not yet completed
  // Expected extra joules of placing the request here: the cluster
  // EWMA cold-study cost for the workload class when the shard is not
  // the key's home (its cache almost surely misses), 0 at home.
  double expectedJoules = 0.0;
  bool breakerOpen = false;    // router's relaxed mirror of the device breaker
  bool alive = true;
};

// Scalar cost under `kind` (lower is better).  RoundRobin scores 0 for
// everything — selection happens in pickCandidate via `rotation`.
[[nodiscard]] double scoreCandidate(PolicyKind kind, const PolicyWeights& w,
                                    const CandidateSnapshot& c);

// Index into `candidates` of the winner: the live candidate with the
// lowest score.  Ties break toward the ring home (lowest preference,
// then lowest index) for EnergyAware, and rotate through shard indices
// starting at `rotation` otherwise — round-robin is exactly the
// all-ties case.  nullopt when no candidate is alive.
[[nodiscard]] std::optional<std::size_t> pickCandidate(
    PolicyKind kind, const PolicyWeights& w,
    const std::vector<CandidateSnapshot>& candidates, std::size_t rotation);

}  // namespace ep::fleet
