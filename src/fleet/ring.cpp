#include "fleet/ring.hpp"

#include <algorithm>
#include <iterator>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ep::fleet {

namespace {

// FNV-1a over the shard id, finished through the avalanche mixer so
// ids differing in one character land far apart on the ring.
std::uint64_t shardIdHash(const std::string& id) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : id) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

}  // namespace

std::uint64_t ringKeyHash(serve::Device device, int n) {
  return mix64(mix64(0, static_cast<std::uint64_t>(device)),
               static_cast<std::uint64_t>(n));
}

HashRing::HashRing(std::size_t virtualNodes) : virtualNodes_(virtualNodes) {
  EP_REQUIRE(virtualNodes_ >= 1, "ring needs >= 1 virtual node per shard");
}

void HashRing::addShard(const std::string& id) {
  if (!ids_.insert(id).second) return;
  const std::uint64_t base = shardIdHash(id);
  for (std::size_t v = 0; v < virtualNodes_; ++v) {
    // On the astronomically unlikely vnode-point collision the earlier
    // owner keeps the point; the shard still lands virtualNodes_-1
    // points, which balance tolerates.
    points_.emplace(mix64(base, v), id);
  }
}

void HashRing::removeShard(const std::string& id) {
  if (ids_.erase(id) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    it = (it->second == id) ? points_.erase(it) : std::next(it);
  }
}

bool HashRing::contains(const std::string& id) const {
  return ids_.count(id) != 0;
}

std::vector<std::string> HashRing::shards() const {
  return {ids_.begin(), ids_.end()};
}

const std::string& HashRing::shardFor(std::uint64_t keyHash) const {
  static const std::string kEmpty;
  if (points_.empty()) return kEmpty;
  auto it = points_.lower_bound(keyHash);
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::string> HashRing::preferenceOrder(std::uint64_t keyHash,
                                                   std::size_t count) const {
  std::vector<std::string> order;
  if (points_.empty() || count == 0) return order;
  count = std::min(count, ids_.size());
  order.reserve(count);
  auto it = points_.lower_bound(keyHash);
  if (it == points_.end()) it = points_.begin();  // wrap
  for (std::size_t steps = 0; steps < points_.size() && order.size() < count;
       ++steps) {
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
    }
    if (++it == points_.end()) it = points_.begin();
  }
  return order;
}

}  // namespace ep::fleet
