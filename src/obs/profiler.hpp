// epprof: an always-on continuous sampling profiler with CPU and
// energy-weighted profiles, sliced by the request trace context.
//
// Architecture
//   * Threads register themselves (ThreadPool workers, net event
//     loops, daemon mains).  While the profiler runs, each registered
//     thread owns a POSIX per-thread CPU-time timer
//     (pthread_getcpuclockid + SIGEV_THREAD_ID) that delivers SIGPROF
//     when — and only when — the thread burns CPU, so idle threads
//     cost nothing and sample counts are proportional to CPU time.
//   * The SIGPROF handler is async-signal-safe: it copies the thread's
//     shadow frame stack (obs/profile_frames.hpp) and its TraceContext
//     into a per-thread lock-free SPSC ring — no locks, no allocation,
//     errno preserved.
//   * A background aggregator drains the rings off the hot path into a
//     stack-trie profile store keyed by frame labels, plus per-trace
//     slices (samples and joules by request trace id).
//   * Energy-weighted profile: eppower calls recordEnergySample() at
//     the MeasureObserver seam in EnergyMeasurer::measure with the
//     protocol's attributed dynamic joules — exactly the quantity the
//     PR 5 request ledger sums — folded onto the measuring thread's
//     current stack.  Flamegraph width is therefore joules, and a
//     trace's energy slice reconciles against its RequestReport.
//
// The profiler is a process singleton (signal dispositions and timers
// are process state).  All control calls are thread-safe; start/stop
// may be cycled freely.  When stopped the process pays one relaxed
// load per Span and nothing else.
#pragma once

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>
#include <time.h>
#include <unordered_map>
#include <vector>

#include "obs/profile_frames.hpp"
#include "obs/trace.hpp"

namespace ep::obs {

enum class ProfileKind { Cpu, Energy };

[[nodiscard]] const char* profileKindName(ProfileKind k);

struct ProfilerOptions {
  // Per-thread CPU time between samples.  The default (10 ms = 100 Hz
  // per busy thread) is the always-on rate the overhead bench gates.
  std::uint64_t samplePeriodUs = 10000;
  // Samples buffered per thread between aggregator drains; the handler
  // drops (and counts) when full rather than blocking.
  std::size_t ringCapacity = 512;
  // Aggregator wakeup cadence.
  std::uint64_t aggregateIntervalMs = 50;
  // Per-trace slice cap: beyond this, new trace ids fold into slice 0
  // so a long-running daemon cannot grow without bound.
  std::size_t maxTraceSlices = 4096;
  // Arm the SIGPROF sampling machinery.  Off gives a deterministic
  // energy-only profiler (no signals, no timers) — what the ledger
  // reconciliation test and pure energy accounting need.
  bool cpuSampling = true;
};

// One aggregated stack: root-first frame labels, self sample count and
// self weight (seconds for Cpu, joules for Energy).
struct ProfileEntry {
  std::vector<std::string> stack;
  std::uint64_t samples = 0;
  double weight = 0.0;
};

// Per-request slice: how many samples / joules landed while this trace
// id was installed.  traceId 0 collects untraced work (and overflow
// past maxTraceSlices).
struct TraceSlice {
  std::uint64_t traceId = 0;
  std::uint64_t samples = 0;
  double weight = 0.0;
};

struct ProfileSnapshot {
  ProfileKind kind = ProfileKind::Cpu;
  std::uint64_t samplePeriodUs = 0;  // 0 when cpu sampling was off
  std::uint64_t samples = 0;         // Cpu: signal samples; Energy: windows
  double totalWeight = 0.0;          // Cpu: seconds; Energy: joules
  std::uint64_t dropped = 0;         // ring-full losses
  std::uint64_t truncated = 0;       // stacks clipped at kMaxProfileFrames
  std::vector<ProfileEntry> entries;  // weight-descending
  std::vector<TraceSlice> traces;     // weight-descending
};

class Profiler {
 public:
  // The process-wide profiler.  Deliberately leaked: signal handlers
  // and late-exiting threads may touch it during teardown.
  static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Register the calling thread for sampling.  Idempotent; cheap when
  // the profiler never runs (no ring is allocated until start()).  The
  // thread auto-unregisters at exit.
  void registerCurrentThread();
  // Early explicit unregistration (normally the thread-exit hook does
  // this).  Safe to call on an unregistered thread.
  void unregisterCurrentThread();

  // Arm the profiler: install the SIGPROF handler, start per-thread
  // timers and the aggregator.  Returns false (and changes nothing) if
  // already running.  Does NOT clear previously aggregated profiles —
  // call clear() for a fresh window.
  bool start(const ProfilerOptions& options = {});
  // Disarm: stop timers, drain every ring, join the aggregator.  The
  // aggregated store stays readable (and start() resumes into it).
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  // Drop all aggregated state (both kinds, trace slices, counters).
  void clear();

  // Fold `joules` onto the calling thread's current shadow stack in
  // the energy profile, sliced by `traceId`.  Called by eppower once
  // per finished measurement protocol; a no-op unless running.
  void recordEnergySample(double joules, std::uint64_t traceId);

  // Drain all rings and return the aggregated profile of one kind.
  [[nodiscard]] ProfileSnapshot snapshot(ProfileKind kind);

  // Threads currently registered (observability / tests).
  [[nodiscard]] std::size_t registeredThreads() const;

 private:
  Profiler() = default;

  struct RawSample {
    std::uint64_t traceId = 0;
    std::int32_t depth = 0;
    std::int32_t clipped = 0;
    const char* frames[prof_detail::kMaxProfileFrames];
  };

  // SPSC ring: the signal handler produces, the aggregator consumes.
  struct SampleRing {
    std::vector<RawSample> slots;  // sized at arm time, stable while armed
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  struct ThreadState {
    prof_detail::FrameStack* stack = nullptr;  // thread's TLS, owner-thread lifetime
    TraceContext* ctx = nullptr;               // thread's TLS trace context
    pthread_t pthread{};
    pid_t tid = 0;  // kernel tid: SIGEV_THREAD_ID signal target
    SampleRing ring;
    timer_t timer{};
    bool timerArmed = false;                 // guarded by mu_
    std::atomic<bool> retired{false};        // owner thread exited
  };

  // Self-weight trie node keyed by frame label.
  struct TrieNode {
    std::uint64_t samples = 0;
    double weight = 0.0;
    std::map<std::string, std::unique_ptr<TrieNode>> children;
  };

  struct Store {
    TrieNode root;
    std::uint64_t samples = 0;
    double totalWeight = 0.0;
    std::unordered_map<std::uint64_t, TraceSlice> traces;
  };

  static void sigprofHandler(int signo, siginfo_t* info, void* uctx);

  void armThreadLocked(ThreadState& st);
  void disarmThreadLocked(ThreadState& st);
  void aggregatorLoop();
  // Drain every ring into the CPU store; prunes retired threads whose
  // rings are empty.  Caller holds storeMu_, NOT mu_.
  void drainRings();
  void foldSample(Store& store, const char* const* frames, int depth,
                  std::uint64_t traceId, double weight, bool clipped);
  [[nodiscard]] ProfileSnapshot snapshotLocked(const Store& store,
                                               ProfileKind kind) const;

  mutable std::mutex mu_;  // thread registry + arm/disarm state
  std::vector<std::shared_ptr<ThreadState>> threads_;
  ProfilerOptions options_{};
  std::atomic<bool> running_{false};

  std::thread aggregator_;
  std::mutex aggMu_;
  std::condition_variable aggCv_;
  bool stopAggregator_ = false;

  // Aggregated profile stores; storeMu_ is ordered AFTER mu_ (the
  // aggregator takes storeMu_ then briefly mu_ inside drainRings to
  // copy the thread list — never the reverse).
  mutable std::mutex storeMu_;
  Store cpu_;
  Store energy_;
  std::uint64_t truncated_ = 0;
  std::uint64_t dropped_ = 0;
  // Mirrors of the arm-time options the aggregation path needs,
  // guarded by storeMu_ (options_ itself is guarded by mu_).
  double cpuSampleWeight_ = 0.0;     // seconds per CPU sample
  std::uint64_t periodUs_ = 0;       // 0 until CPU sampling first armed
  std::size_t maxTraceSlices_ = 4096;
};

}  // namespace ep::obs
