// eptsdb: a lock-light in-process time-series store for the fleet
// observability plane.
//
// A TimeSeriesStore holds one fixed-capacity ring of (time, value)
// samples per series.  Series are keyed by their exposition identity —
// `name` or `name{k="v",...}` with 0.0.4-escaped label values — so a
// tsdb key is exactly the sample line a Prometheus scrape would show.
// Histograms are decomposed at ingest into the same series a remote
// TSDB would store: `<name>_count`, `<name>_sum`, and one cumulative
// `<name>_bucket{...,le="..."}` per bound, plus a HistogramMeta record
// so windowed quantiles can be recovered from cumulative bucket deltas
// (last-in-window minus first-in-window).
//
// Feeding the store is the Scraper: a background thread that snapshots
// a registry source every intervalMs and ingests it at the clock's
// current time.  The clock is injectable, and scrapeOnce() runs one
// synchronous scrape, so tests drive synthetic time deterministically
// with no thread and no sleeps.
//
// Concurrency: ingest takes the store's writer lock (scrape cadence,
// not request cadence — hundreds of ms); queries take a shared lock.
// The hot serving path never touches the store.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace ep::obs {

struct TsdbSample {
  std::int64_t timeNs = 0;
  double value = 0.0;
};

// Windowed aggregate over one series.  rate is per second, computed
// from the first and last in-window samples (0 when fewer than two).
struct SeriesAggregate {
  std::size_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  double first = 0.0;
  double last = 0.0;
  double rate = 0.0;
  std::int64_t firstTimeNs = 0;
  std::int64_t lastTimeNs = 0;
};

// How a histogram family decomposed into tsdb series at ingest.
struct HistogramMeta {
  std::string prefix;  // name + label block, without le
  std::vector<double> bounds;
  std::vector<std::string> bucketKeys;  // cumulative; +Inf last
  std::string countKey;
  std::string sumKey;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t ringCapacity = 512);

  // Append one sample per series in the snapshot at timeNs.  New
  // series are created on first sight; rings overwrite their oldest
  // sample when full.
  void ingest(const RegistrySnapshot& snap, std::int64_t timeNs);

  // All samples with fromNs <= timeNs <= toNs, oldest first.  Unknown
  // keys return empty.
  [[nodiscard]] std::vector<TsdbSample> range(const std::string& key,
                                              std::int64_t fromNs,
                                              std::int64_t toNs) const;

  [[nodiscard]] SeriesAggregate aggregate(const std::string& key,
                                          std::int64_t fromNs,
                                          std::int64_t toNs) const;

  // Windowed quantile over a histogram family (all label children
  // summed): cumulative bucket deltas across the window select the
  // smallest bound covering fraction q.  Falls back to the lifetime
  // (latest-sample) distribution when the window holds fewer than two
  // scrapes, and +infinity when q lands in the +Inf bucket.  Returns
  // NaN when the family is unknown or empty.
  [[nodiscard]] double histogramQuantile(const std::string& family, double q,
                                         std::int64_t fromNs,
                                         std::int64_t toNs) const;

  // Histogram decompositions whose prefix starts with `family` (the
  // family name, optionally followed by a label block).
  [[nodiscard]] std::vector<HistogramMeta> histogramsForFamily(
      const std::string& family) const;

  // Value-series keys (not histogram buckets) whose metric name is
  // exactly `family`.
  [[nodiscard]] std::vector<std::string> keysForFamily(
      const std::string& family) const;

  [[nodiscard]] std::vector<std::string> seriesKeys() const;
  [[nodiscard]] std::size_t seriesCount() const;
  [[nodiscard]] std::size_t ringCapacity() const { return capacity_; }

 private:
  struct Series {
    std::vector<TsdbSample> ring;  // capacity_ slots once saturated
    std::size_t head = 0;          // next write position
    std::size_t size = 0;
    void push(TsdbSample s, std::size_t capacity);
  };

  void append(const std::string& key, std::int64_t timeNs, double value);
  [[nodiscard]] const Series* seriesFor(const std::string& key) const;

  const std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Series> series_;
  std::vector<std::string> keyOrder_;  // insertion order, for listings
  std::unordered_map<std::string, HistogramMeta> histograms_;  // by prefix
  std::vector<std::string> histogramOrder_;
};

// Background scraper: snapshot a source registry every intervalMs and
// ingest it into the store.  start()/stop() manage the thread;
// scrapeOnce() is the synchronous, synthetic-time-testable core.
class Scraper {
 public:
  using SnapshotFn = std::function<RegistrySnapshot()>;
  using ClockFn = std::function<std::int64_t()>;  // ns, monotonic

  struct Options {
    std::int64_t intervalMs = 250;
    // Defaults to steady_clock; tests inject synthetic time.
    ClockFn clock;
    // Runs after every scrape with the scrape's timestamp — the SLO
    // engine evaluates here so alerts ride the scrape cadence.
    std::function<void(std::int64_t nowNs)> afterScrape;
  };

  Scraper(TimeSeriesStore* store, SnapshotFn source);  // default options
  Scraper(TimeSeriesStore* store, SnapshotFn source, Options options);
  ~Scraper();  // stop()

  Scraper(const Scraper&) = delete;
  Scraper& operator=(const Scraper&) = delete;

  void start();
  void stop();

  // One synchronous scrape at the clock's current time.
  void scrapeOnce();

  [[nodiscard]] std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t lastScrapeDurationNs() const {
    return lastScrapeDurationNs_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  TimeSeriesStore* store_;
  SnapshotFn source_;
  Options options_;
  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<std::int64_t> lastScrapeDurationNs_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace ep::obs
