#include "obs/profile_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace ep::obs {

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

void appendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

// The integer count a collapsed line carries: raw samples for CPU
// profiles, rounded microjoules for energy (flamegraph.pl only takes
// integers, and typical windows are single-digit joules).
std::uint64_t collapsedCount(const ProfileSnapshot& snap,
                             const ProfileEntry& e) {
  if (snap.kind == ProfileKind::Energy) {
    const double uj = e.weight * 1e6;
    return uj <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(uj));
  }
  return e.samples;
}

}  // namespace

std::string renderCollapsed(const ProfileSnapshot& snap) {
  std::string out;
  for (const ProfileEntry& e : snap.entries) {
    const std::uint64_t n = collapsedCount(snap, e);
    if (n == 0) continue;
    std::string line;
    for (std::size_t i = 0; i < e.stack.size(); ++i) {
      if (i != 0) line += ';';
      line += e.stack[i];
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(n));
    out += line;
    out += buf;
  }
  return out;
}

std::string renderSpeedscope(const ProfileSnapshot& snap,
                             const std::string& name) {
  // Intern frames in first-seen order (entries are weight-descending,
  // so hot frames get small indices).
  std::vector<std::string> frames;
  std::unordered_map<std::string, std::size_t> index;
  auto intern = [&](const std::string& f) {
    auto [it, inserted] = index.emplace(f, frames.size());
    if (inserted) frames.push_back(f);
    return it->second;
  };
  struct Row {
    std::vector<std::size_t> stack;
    double weight;
  };
  std::vector<Row> rows;
  rows.reserve(snap.entries.size());
  double total = 0.0;
  for (const ProfileEntry& e : snap.entries) {
    Row r;
    r.stack.reserve(e.stack.size());
    for (const std::string& f : e.stack) r.stack.push_back(intern(f));
    r.weight = e.weight;
    total += e.weight;
    rows.push_back(std::move(r));
  }

  const char* unit = snap.kind == ProfileKind::Energy ? "none" : "seconds";
  std::string out;
  out += "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\n";
  out += "\"shared\":{\"frames\":[\n";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out += "{\"name\":";
    appendJsonString(out, frames[i]);
    out += i + 1 < frames.size() ? "},\n" : "}\n";
  }
  out += "]},\n";
  out += "\"profiles\":[\n";
  out += "{\"type\":\"sampled\",\"name\":";
  appendJsonString(out, name);
  out += ",\"unit\":\"";
  out += unit;
  out += "\",\"startValue\":0,\"endValue\":";
  appendDouble(out, total);
  out += ",\n\"samples\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ',';
    out += '[';
    for (std::size_t j = 0; j < rows[i].stack.size(); ++j) {
      if (j != 0) out += ',';
      char buf[24];
      std::snprintf(buf, sizeof buf, "%zu", rows[i].stack[j]);
      out += buf;
    }
    out += ']';
  }
  out += "],\n\"weights\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ',';
    appendDouble(out, rows[i].weight);
  }
  out += "]}\n";
  out += "],\n\"name\":";
  appendJsonString(out, name);
  out += ",\"activeProfileIndex\":0,\"exporter\":\"epprof\"}\n";
  return out;
}

std::vector<FrameShare> topFrames(const ProfileSnapshot& snap,
                                  std::size_t topN) {
  std::unordered_map<std::string, FrameShare> acc;
  std::unordered_set<std::string> seen;  // per-stack dedup (recursion)
  for (const ProfileEntry& e : snap.entries) {
    seen.clear();
    for (const std::string& f : e.stack) {
      if (!seen.insert(f).second) continue;
      FrameShare& fs = acc[f];
      fs.frame = f;
      fs.samples += e.samples;
      fs.weight += e.weight;
    }
  }
  std::vector<FrameShare> out;
  out.reserve(acc.size());
  for (auto& [f, fs] : acc) {
    if (snap.totalWeight > 0.0) fs.share = fs.weight / snap.totalWeight;
    out.push_back(std::move(fs));
  }
  std::sort(out.begin(), out.end(), [](const FrameShare& a,
                                       const FrameShare& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.samples != b.samples) return a.samples > b.samples;
    return a.frame < b.frame;
  });
  if (topN > 0 && out.size() > topN) out.resize(topN);
  return out;
}

ProfileSnapshot mergeProfileSnapshots(
    const std::vector<std::pair<std::string, ProfileSnapshot>>& shards) {
  ProfileSnapshot merged;
  bool first = true;
  for (const auto& [shard, snap] : shards) {
    if (first) {
      merged.kind = snap.kind;
      merged.samplePeriodUs = snap.samplePeriodUs;
      first = false;
    }
    merged.samples += snap.samples;
    merged.totalWeight += snap.totalWeight;
    merged.dropped += snap.dropped;
    merged.truncated += snap.truncated;
    const std::string root = "shard/" + shard;
    for (const ProfileEntry& e : snap.entries) {
      ProfileEntry re;
      re.stack.reserve(e.stack.size() + 1);
      re.stack.push_back(root);
      re.stack.insert(re.stack.end(), e.stack.begin(), e.stack.end());
      re.samples = e.samples;
      re.weight = e.weight;
      merged.entries.push_back(std::move(re));
    }
    for (const TraceSlice& t : snap.traces) {
      // Same trace id can touch several shards (fleet fan-out): sum.
      auto it = std::find_if(merged.traces.begin(), merged.traces.end(),
                             [&](const TraceSlice& m) {
                               return m.traceId == t.traceId;
                             });
      if (it == merged.traces.end()) {
        merged.traces.push_back(t);
      } else {
        it->samples += t.samples;
        it->weight += t.weight;
      }
    }
  }
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.stack < b.stack;
            });
  std::sort(merged.traces.begin(), merged.traces.end(),
            [](const TraceSlice& a, const TraceSlice& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.traceId < b.traceId;
            });
  return merged;
}

}  // namespace ep::obs
