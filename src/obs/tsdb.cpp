#include "obs/tsdb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ep::obs {

namespace {

void appendEscaped(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// The exposition identity of a series: name{k="v",...} with escaped
// values, optionally with a trailing le="..." — identical to the
// sample-line prefix renderExposition would emit.
std::string seriesKey(const std::string& name, const Labels& labels,
                      const char* leBound = nullptr) {
  std::string key = name;
  if (labels.empty() && leBound == nullptr) return key;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    appendEscaped(key, v);
    key += '"';
  }
  if (leBound != nullptr) {
    if (!first) key += ',';
    key += "le=\"";
    key += leBound;
    key += '"';
  }
  key += '}';
  return key;
}

std::string metricNameOf(const std::string& key) {
  const std::size_t brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// TimeSeriesStore

TimeSeriesStore::TimeSeriesStore(std::size_t ringCapacity)
    : capacity_(ringCapacity == 0 ? 1 : ringCapacity) {}

void TimeSeriesStore::Series::push(TsdbSample s, std::size_t capacity) {
  if (ring.size() < capacity) {
    ring.push_back(s);
  } else {
    ring[head] = s;
    head = (head + 1) % capacity;
  }
}

void TimeSeriesStore::append(const std::string& key, std::int64_t timeNs,
                             double value) {
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) {
    it->second.ring.reserve(std::min<std::size_t>(capacity_, 16));
    keyOrder_.push_back(key);
  }
  it->second.push({timeNs, value}, capacity_);
}

void TimeSeriesStore::ingest(const RegistrySnapshot& snap,
                             std::int64_t timeNs) {
  std::unique_lock lk(mu_);
  for (const auto& fam : snap.families) {
    for (const auto& s : fam.series) {
      switch (fam.kind) {
        case MetricKind::Counter:
          append(seriesKey(fam.name, s.labels), timeNs,
                 static_cast<double>(s.counterValue));
          break;
        case MetricKind::DoubleCounter:
          append(seriesKey(fam.name, s.labels), timeNs, s.doubleValue);
          break;
        case MetricKind::Gauge:
          append(seriesKey(fam.name, s.labels), timeNs,
                 static_cast<double>(s.gaugeValue));
          break;
        case MetricKind::Histogram: {
          const std::string prefix = seriesKey(fam.name, s.labels);
          auto [mit, minserted] = histograms_.try_emplace(prefix);
          HistogramMeta& meta = mit->second;
          if (minserted) {
            meta.prefix = prefix;
            meta.bounds = s.bounds;
            meta.countKey = seriesKey(fam.name + "_count", s.labels);
            meta.sumKey = seriesKey(fam.name + "_sum", s.labels);
            char bound[40];
            for (double b : s.bounds) {
              std::snprintf(bound, sizeof bound, "%.10g", b);
              meta.bucketKeys.push_back(
                  seriesKey(fam.name + "_bucket", s.labels, bound));
            }
            meta.bucketKeys.push_back(
                seriesKey(fam.name + "_bucket", s.labels, "+Inf"));
            histogramOrder_.push_back(prefix);
          }
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < s.buckets.size(); ++i) {
            cum += s.buckets[i];
            if (i < meta.bucketKeys.size()) {
              append(meta.bucketKeys[i], timeNs, static_cast<double>(cum));
            }
          }
          append(meta.countKey, timeNs, static_cast<double>(cum));
          append(meta.sumKey, timeNs, s.sum);
          break;
        }
      }
    }
  }
}

const TimeSeriesStore::Series* TimeSeriesStore::seriesFor(
    const std::string& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

namespace {

// Chronological in-window samples of one ring (callers hold the lock).
template <typename Fn>
void forEachInWindow(const std::vector<TsdbSample>& ring, std::size_t head,
                     std::size_t capacity, std::int64_t fromNs,
                     std::int64_t toNs, Fn&& fn) {
  const std::size_t n = ring.size();
  const bool saturated = n == capacity;
  for (std::size_t i = 0; i < n; ++i) {
    const TsdbSample& s = ring[saturated ? (head + i) % n : i];
    if (s.timeNs < fromNs || s.timeNs > toNs) continue;
    fn(s);
  }
}

}  // namespace

std::vector<TsdbSample> TimeSeriesStore::range(const std::string& key,
                                               std::int64_t fromNs,
                                               std::int64_t toNs) const {
  std::shared_lock lk(mu_);
  std::vector<TsdbSample> out;
  if (const Series* s = seriesFor(key)) {
    forEachInWindow(s->ring, s->head, capacity_, fromNs, toNs,
                    [&](const TsdbSample& x) { out.push_back(x); });
  }
  return out;
}

SeriesAggregate TimeSeriesStore::aggregate(const std::string& key,
                                           std::int64_t fromNs,
                                           std::int64_t toNs) const {
  std::shared_lock lk(mu_);
  SeriesAggregate agg;
  const Series* s = seriesFor(key);
  if (s == nullptr) return agg;
  forEachInWindow(s->ring, s->head, capacity_, fromNs, toNs,
                  [&](const TsdbSample& x) {
                    if (agg.samples == 0) {
                      agg.min = agg.max = agg.first = x.value;
                      agg.firstTimeNs = x.timeNs;
                      agg.avg = 0.0;
                    }
                    agg.min = std::min(agg.min, x.value);
                    agg.max = std::max(agg.max, x.value);
                    agg.avg += x.value;
                    agg.last = x.value;
                    agg.lastTimeNs = x.timeNs;
                    ++agg.samples;
                  });
  if (agg.samples > 0) {
    agg.avg /= static_cast<double>(agg.samples);
    const double dtSec =
        static_cast<double>(agg.lastTimeNs - agg.firstTimeNs) * 1e-9;
    if (dtSec > 0.0) agg.rate = (agg.last - agg.first) / dtSec;
  }
  return agg;
}

std::vector<HistogramMeta> TimeSeriesStore::histogramsForFamily(
    const std::string& family) const {
  std::shared_lock lk(mu_);
  std::vector<HistogramMeta> out;
  for (const std::string& prefix : histogramOrder_) {
    const bool exact = prefix == family;
    const bool labeled = prefix.size() > family.size() &&
                         prefix.compare(0, family.size(), family) == 0 &&
                         prefix[family.size()] == '{';
    if (exact || labeled) out.push_back(histograms_.at(prefix));
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::keysForFamily(
    const std::string& family) const {
  std::shared_lock lk(mu_);
  std::vector<std::string> out;
  for (const std::string& key : keyOrder_) {
    if (metricNameOf(key) == family) out.push_back(key);
  }
  return out;
}

double TimeSeriesStore::histogramQuantile(const std::string& family, double q,
                                          std::int64_t fromNs,
                                          std::int64_t toNs) const {
  const std::vector<HistogramMeta> metas = histogramsForFamily(family);
  if (metas.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::vector<double>& bounds = metas.front().bounds;
  const std::size_t nBuckets = bounds.size() + 1;
  std::vector<double> windowed(nBuckets, 0.0);  // cumulative deltas
  std::vector<double> lifetime(nBuckets, 0.0);  // latest cumulative
  for (const HistogramMeta& meta : metas) {
    if (meta.bounds != bounds) continue;  // incompatible child; skip
    for (std::size_t i = 0; i < nBuckets; ++i) {
      const auto samples = range(meta.bucketKeys[i], fromNs, toNs);
      if (samples.empty()) continue;
      lifetime[i] += samples.back().value;
      if (samples.size() >= 2) {
        windowed[i] += samples.back().value - samples.front().value;
      }
    }
  }
  // Fewer than two in-window scrapes leave no delta; fall back to the
  // lifetime distribution rather than answering NaN.
  const std::vector<double>& cum =
      windowed[nBuckets - 1] > 0.0 ? windowed : lifetime;
  const double total = cum[nBuckets - 1];
  if (!(total > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  const double target = std::max(0.0, std::min(1.0, q)) * total;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (cum[i] >= target) return bounds[i];
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<std::string> TimeSeriesStore::seriesKeys() const {
  std::shared_lock lk(mu_);
  return keyOrder_;
}

std::size_t TimeSeriesStore::seriesCount() const {
  std::shared_lock lk(mu_);
  return series_.size();
}

// ---------------------------------------------------------------------------
// Scraper

Scraper::Scraper(TimeSeriesStore* store, SnapshotFn source)
    : Scraper(store, std::move(source), Options{}) {}

Scraper::Scraper(TimeSeriesStore* store, SnapshotFn source, Options options)
    : store_(store), source_(std::move(source)), options_(std::move(options)) {
  if (!options_.clock) options_.clock = steadyNowNs;
  if (options_.intervalMs <= 0) options_.intervalMs = 1;
}

Scraper::~Scraper() { stop(); }

void Scraper::scrapeOnce() {
  const std::int64_t started = steadyNowNs();
  const std::int64_t now = options_.clock();
  store_->ingest(source_(), now);
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  lastScrapeDurationNs_.store(steadyNowNs() - started,
                              std::memory_order_relaxed);
  if (options_.afterScrape) options_.afterScrape(now);
}

void Scraper::start() {
  std::lock_guard lk(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Scraper::stop() {
  {
    std::lock_guard lk(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Scraper::run() {
  std::unique_lock lk(mu_);
  while (running_) {
    lk.unlock();
    scrapeOnce();
    lk.lock();
    if (!running_) break;
    cv_.wait_for(lk, std::chrono::milliseconds(options_.intervalMs),
                 [this] { return !running_; });
  }
}

}  // namespace ep::obs
