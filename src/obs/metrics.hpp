// epobs metrics: a thread-safe registry of named counters, gauges and
// fixed-bucket histograms with Prometheus text exposition.
//
// Design constraints, in order:
//   1. The increment path must be cheap enough for hot loops (broker
//      admission, thread-pool dispatch, per-config measurement): every
//      mutation is a single relaxed atomic RMW — no locks, no map
//      lookups.  Call sites obtain a Metric& once (registration takes
//      the registry mutex) and keep the reference; references stay
//      valid for the registry's lifetime.
//   2. Snapshots may be taken from any thread at any time.  Individual
//      values are exact; cross-metric consistency is NOT guaranteed
//      (standard Prometheus semantics) — readers that need an
//      invariant between two counters must order their reads.
//   3. This library sits below epcommon (the thread pool itself is
//      instrumented), so it depends on nothing but the standard
//      library and reports misuse with std::invalid_argument instead
//      of EP_REQUIRE.
//
// Labels: a metric family (one name, one HELP/TYPE) may carry several
// child series distinguished by label sets, e.g.
// ep_request_energy_joules{device="p100"}.  Label names follow the
// Prometheus grammar; label values are escaped (\\, \", \n) in the
// 0.0.4 text exposition.  All children of a family must share one
// metric kind.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ep::obs {

// Ordered label set of one child series (insertion order is rendered
// verbatim; keep it stable per family).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Public metric kind, shared by the registry internals and the
// snapshot/federation layer below.
enum class MetricKind { Counter, DoubleCounter, Gauge, Histogram };

// A per-bucket exemplar: the most recent (trace id, observed value)
// pair that landed in a histogram bucket.  Captured by a per-bucket
// seqlock so observe() stays lock-free and readers never see a torn
// pair; concurrent writers may skip (best-effort recency).
struct Exemplar {
  std::uint64_t traceId = 0;
  double value = 0.0;
  std::uint64_t seq = 0;  // process-wide recency order; 0 = never set
};

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Monotonically increasing real-valued total (joules, seconds).  add()
// is a CAS loop on a double, like Histogram's sum.
class DoubleCounter {
 public:
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Instantaneous signed level (queue depths, in-flight work).  add/sub
// deltas compose correctly when several owners share one gauge.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram: `upperBounds.size() + 1` buckets, the last
// one catching everything above the final bound (the +Inf bucket).
// Bounds must be strictly increasing.  observe() is lock-free: one
// relaxed RMW on the bucket plus a CAS loop on the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);
  // Observe and, when exemplarTraceId != 0, record the pair as the
  // bucket's exemplar (lock-free best-effort: a writer that loses the
  // seqlock claim simply skips — the bucket keeps a recent exemplar).
  void observe(double v, std::uint64_t exemplarTraceId);

  [[nodiscard]] const std::vector<double>& upperBounds() const {
    return bounds_;
  }
  [[nodiscard]] std::size_t bucketCount() const { return bounds_.size() + 1; }
  // Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucketValue(std::size_t i) const;
  // The bucket's exemplar; seq == 0 when none was ever recorded (or a
  // writer was mid-update on every read attempt).
  [[nodiscard]] Exemplar exemplar(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  // Seqlock slot: version odd while a writer owns it.  All fields are
  // atomics, so torn reads are logically rejected via the version and
  // never a data race.
  struct ExemplarSlot {
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::uint64_t> traceId{0};
    std::atomic<std::uint64_t> valueBits{0};
    std::atomic<std::uint64_t> seq{0};
  };

  [[nodiscard]] std::size_t bucketIndexFor(double v) const;
  void recordExemplar(std::size_t bucket, double v, std::uint64_t traceId);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::unique_ptr<ExemplarSlot[]> exemplarSlots_;
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Point-in-time registry snapshots: the substrate for exposition
// rendering, the eptsdb scraper, and cluster federation.  Values are
// plain data — no atomics — so snapshots can be merged, shipped and
// rendered off the hot path.

struct SnapshotExemplar {
  std::string traceId;  // lower-hex; empty = absent
  double value = 0.0;
  std::uint64_t seq = 0;  // recency order across the process; 0 = absent
};

struct SeriesSnapshot {
  Labels labels;
  std::uint64_t counterValue = 0;  // MetricKind::Counter
  double doubleValue = 0.0;        // MetricKind::DoubleCounter
  std::int64_t gaugeValue = 0;     // MetricKind::Gauge
  // MetricKind::Histogram: per-series bounds plus non-cumulative bucket
  // counts (+Inf last, so buckets.size() == bounds.size() + 1).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  double sum = 0.0;
  // Parallel to buckets when any bucket holds an exemplar; else empty.
  std::vector<SnapshotExemplar> exemplars;
};

struct FamilySnapshot {
  MetricKind kind = MetricKind::Counter;
  std::string name;
  std::string help;
  std::vector<SeriesSnapshot> series;  // insertion order
};

struct RegistrySnapshot {
  std::vector<FamilySnapshot> families;  // insertion order
  // Concatenate another snapshot.  Same-name families merge their
  // series lists (first HELP/kind wins; a kind conflict throws) so the
  // combined exposition keeps exactly one header per family.
  void append(RegistrySnapshot other);
};

enum class ExpositionFormat {
  Prometheus004,   // text/plain; version=0.0.4
  OpenMetrics100,  // application/openmetrics-text; version=1.0.0
};

// Render a snapshot in either exposition format.  The Prometheus 0.0.4
// output is byte-identical to the pre-snapshot renderer; OpenMetrics
// adds `_total` counter sample naming, per-bucket exemplars
// (`# {trace_id="..."} value`) and the mandatory `# EOF` terminator.
[[nodiscard]] std::string renderExposition(const RegistrySnapshot& snap,
                                           ExpositionFormat format);

// Pairwise histogram-series merge: element-wise bucket addition plus
// sum (bounds must match exactly, else std::invalid_argument); each
// bucket keeps the exemplar with the larger seq (the newer one), which
// makes the merge associative and commutative.
[[nodiscard]] SeriesSnapshot mergeHistogramSeries(const SeriesSnapshot& a,
                                                  const SeriesSnapshot& b);

class Registry;

// Register the ep_build_info info-style gauge (value pinned to 1;
// identity in git_hash / build_type / compiler labels) on `registry`.
// Idempotent.  Registry::global() and per-component registries that
// expose over the wire (serve broker) call this so every exposition —
// including federated cluster views, where gauges gain shard labels —
// carries build identity.
void registerBuildInfo(Registry& registry);

// Federate per-shard registry snapshots into one cluster snapshot:
// counters and double counters are summed across shards by label set,
// histograms bucket-merged, and gauges kept per shard with an appended
// shard="<id>" label (summing instantaneous levels would lie).
[[nodiscard]] RegistrySnapshot mergeShardSnapshots(
    const std::vector<std::pair<std::string, RegistrySnapshot>>& shards);

// Named metric directory.  Registration is idempotent: asking for an
// existing name+labels with a matching kind (and, for histograms,
// matching bounds) returns the same object; a kind/bounds conflict —
// including between labelled children of one family — throws.  Metric
// names must match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
// [a-zA-Z_][a-zA-Z0-9_]* (the Prometheus grammar).  Returned
// references live as long as the registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  DoubleCounter& doubleCounter(const std::string& name,
                               const std::string& help,
                               const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upperBounds,
                       const Labels& labels = {});

  // Point-in-time copy of every family and series (values loaded
  // relaxed; cross-metric consistency follows the usual Prometheus
  // caveat).  The snapshot is plain data: merge, ship or render it off
  // the hot path.
  [[nodiscard]] RegistrySnapshot snapshot() const;

  // Prometheus text exposition (version 0.0.4): # HELP / # TYPE
  // comments once per family followed by every child series with its
  // escaped label block; histograms expand into cumulative
  // _bucket{le="..."} series plus _sum and _count.
  [[nodiscard]] std::string renderPrometheus() const;

  // OpenMetrics 1.0 text exposition (`_total` counter samples,
  // per-bucket exemplars, `# EOF` terminator).
  [[nodiscard]] std::string renderOpenMetrics() const;

  // The process-wide registry used by library-internal instrumentation
  // (thread pool, cusim executor, study runner).  Components that need
  // isolated counters (the serve broker, unit tests) own their own
  // Registry instead.
  static Registry& global();

 private:
  using Kind = MetricKind;
  struct Entry {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<DoubleCounter> doubleCounter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string name;
    std::string help;
    std::vector<std::unique_ptr<Entry>> entries;  // insertion order
  };

  Entry& find(const std::string& name, Kind kind, const std::string& help,
              const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  // insertion order
  std::unordered_map<std::string, Family*> byName_;
};

}  // namespace ep::obs
