// epobs metrics: a thread-safe registry of named counters, gauges and
// fixed-bucket histograms with Prometheus text exposition.
//
// Design constraints, in order:
//   1. The increment path must be cheap enough for hot loops (broker
//      admission, thread-pool dispatch, per-config measurement): every
//      mutation is a single relaxed atomic RMW — no locks, no map
//      lookups.  Call sites obtain a Metric& once (registration takes
//      the registry mutex) and keep the reference; references stay
//      valid for the registry's lifetime.
//   2. Snapshots may be taken from any thread at any time.  Individual
//      values are exact; cross-metric consistency is NOT guaranteed
//      (standard Prometheus semantics) — readers that need an
//      invariant between two counters must order their reads.
//   3. This library sits below epcommon (the thread pool itself is
//      instrumented), so it depends on nothing but the standard
//      library and reports misuse with std::invalid_argument instead
//      of EP_REQUIRE.
//
// Labels: a metric family (one name, one HELP/TYPE) may carry several
// child series distinguished by label sets, e.g.
// ep_request_energy_joules{device="p100"}.  Label names follow the
// Prometheus grammar; label values are escaped (\\, \", \n) in the
// 0.0.4 text exposition.  All children of a family must share one
// metric kind.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ep::obs {

// Ordered label set of one child series (insertion order is rendered
// verbatim; keep it stable per family).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Monotonically increasing real-valued total (joules, seconds).  add()
// is a CAS loop on a double, like Histogram's sum.
class DoubleCounter {
 public:
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Instantaneous signed level (queue depths, in-flight work).  add/sub
// deltas compose correctly when several owners share one gauge.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram: `upperBounds.size() + 1` buckets, the last
// one catching everything above the final bound (the +Inf bucket).
// Bounds must be strictly increasing.  observe() is lock-free: one
// relaxed RMW on the bucket plus a CAS loop on the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upperBounds() const {
    return bounds_;
  }
  [[nodiscard]] std::size_t bucketCount() const { return bounds_.size() + 1; }
  // Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucketValue(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

// Named metric directory.  Registration is idempotent: asking for an
// existing name+labels with a matching kind (and, for histograms,
// matching bounds) returns the same object; a kind/bounds conflict —
// including between labelled children of one family — throws.  Metric
// names must match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
// [a-zA-Z_][a-zA-Z0-9_]* (the Prometheus grammar).  Returned
// references live as long as the registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  DoubleCounter& doubleCounter(const std::string& name,
                               const std::string& help,
                               const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upperBounds,
                       const Labels& labels = {});

  // Prometheus text exposition (version 0.0.4): # HELP / # TYPE
  // comments once per family followed by every child series with its
  // escaped label block; histograms expand into cumulative
  // _bucket{le="..."} series plus _sum and _count.
  [[nodiscard]] std::string renderPrometheus() const;

  // The process-wide registry used by library-internal instrumentation
  // (thread pool, cusim executor, study runner).  Components that need
  // isolated counters (the serve broker, unit tests) own their own
  // Registry instead.
  static Registry& global();

 private:
  enum class Kind { Counter, DoubleCounter, Gauge, Histogram };
  struct Entry {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<DoubleCounter> doubleCounter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string name;
    std::string help;
    std::vector<std::unique_ptr<Entry>> entries;  // insertion order
  };

  Entry& find(const std::string& name, Kind kind, const std::string& help,
              const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  // insertion order
  std::unordered_map<std::string, Family*> byName_;
};

}  // namespace ep::obs
