#include "obs/events.hpp"

#include <algorithm>
#include <cstdio>

namespace ep::obs {

namespace {

std::size_t roundUpPow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

void appendJsonString(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : mask_(roundUpPow2(capacity) - 1),
      slots_(new Slot[mask_ + 1]) {
  for (std::size_t i = 0; i <= mask_; ++i) {
    slots_[i].bytes.reset(new std::atomic<unsigned char>[sizeof(FlightEvent)]);
    for (std::size_t b = 0; b < sizeof(FlightEvent); ++b) {
      slots_[i].bytes[b].store(0, std::memory_order_relaxed);
    }
  }
}

void FlightRecorder::record(FlightEvent e) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & mask_];
  // Claim the slot: the previous tenant (one lap behind, or 0 on the
  // first lap) must have fully published.  A failed claim means a
  // writer has been stalled for a whole lap — drop rather than tear.
  std::uint64_t expected = seq > mask_ + 1 ? seq - (mask_ + 1) : 0;
  if (!slot.claim.compare_exchange_strong(expected, seq,
                                          std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  e.seq = seq;
  unsigned char raw[sizeof(FlightEvent)];
  std::memcpy(raw, &e, sizeof raw);
  for (std::size_t b = 0; b < sizeof raw; ++b) {
    slot.bytes[b].store(raw[b], std::memory_order_relaxed);
  }
  slot.publish.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot(
    std::uint64_t sinceSeq) const {
  std::vector<FlightEvent> out;
  for (std::size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t published = slot.publish.load(std::memory_order_acquire);
    if (published == 0 || published <= sinceSeq) continue;
    unsigned char raw[sizeof(FlightEvent)];
    for (std::size_t b = 0; b < sizeof raw; ++b) {
      raw[b] = slot.bytes[b].load(std::memory_order_relaxed);
    }
    // Reject torn reads: a writer that claimed the slot mid-copy has
    // bumped claim past publish; one that finished has bumped publish.
    if (slot.claim.load(std::memory_order_acquire) != published ||
        slot.publish.load(std::memory_order_acquire) != published) {
      continue;
    }
    FlightEvent e;
    std::memcpy(&e, raw, sizeof e);
    if (e.seq != published) continue;  // interleaved lapped write
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string encodeFlightEventLine(const FlightEvent& e) {
  return encodeFlightEventLine(e, "");
}

std::string encodeFlightEventLine(const FlightEvent& e,
                                  const std::string& shard) {
  char buf[48];
  std::string out = "{\"seq\":" + std::to_string(e.seq);
  if (!shard.empty()) {
    out += ",\"shard\":";
    appendJsonString(out, shard.c_str());
  }
  out += ",\"timeNs\":" + std::to_string(e.timeNs);
  out += ",\"kind\":";
  appendJsonString(out, e.kind);
  out += ",\"scope\":";
  appendJsonString(out, e.scope);
  out += ",\"value\":";
  std::snprintf(buf, sizeof buf, "%.10g", e.value);
  out += buf;
  out += ",\"threshold\":";
  std::snprintf(buf, sizeof buf, "%.10g", e.threshold);
  out += buf;
  out += ",\"trace\":";
  std::snprintf(buf, sizeof buf, "\"%llx\"",
                static_cast<unsigned long long>(e.traceId));
  out += buf;
  out += ",\"message\":";
  appendJsonString(out, e.message);
  out += "}";
  return out;
}

}  // namespace ep::obs
